"""Minimal ELF64 container: Binary abstraction, reader/writer, builder."""

from repro.elf.builder import BinaryBuilder, DATA_BASE, PLT_BASE, RODATA_BASE, TEXT_BASE
from repro.elf.format import ElfError, load_binary, read_elf, save_binary, write_elf
from repro.elf.image import Binary, FetchError, Section

__all__ = [
    "Binary", "BinaryBuilder", "ElfError", "FetchError", "Section",
    "load_binary", "read_elf", "save_binary", "write_elf",
    "TEXT_BASE", "PLT_BASE", "RODATA_BASE", "DATA_BASE",
]
