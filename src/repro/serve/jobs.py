"""Job and unit bookkeeping for the lifting service.

A **job** is what a client submits and polls: one lift, one corpus run,
or one chaos probe.  A **unit** is what a worker executes: a lift job has
exactly one, a corpus job has one per corpus task (so the pool interleaves
corpus work with other tenants' jobs instead of head-of-line blocking).

Job lifecycle::

    queued -> running -> done
                      -> failed      (structured diagnostics, never a hang)
           -> cancelled              (from queued or running)

``running`` means at least one unit is on a worker.  A job is ``done``
when every unit finished; ``failed`` when any unit exhausted its retries
or raised a deterministic error (remaining units still run to completion
so a corpus job's diagnostics name *all* the broken entries).

Heartbeats: every transition appends a schema-validated progress event
(:mod:`repro.obs.progress` job kinds) to the job's bounded event log,
which ``watch`` streams and tests replay.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs.progress import validate_progress_obj

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Heartbeat log cap per job — a watch stream is a debugging aid, not an
#: unbounded buffer; corpus jobs emit 2 events per unit.
MAX_JOB_EVENTS = 10_000


def backoff_delay(attempt: int, base: float, cap: float) -> float:
    """Capped exponential backoff before retry *attempt* (1-based):
    ``min(cap, base * 2**(attempt-1))``."""
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    return min(cap, base * (2.0 ** (attempt - 1)))


@dataclass
class Unit:
    """One worker-executable payload plus its retry state."""

    id: str
    job_id: str
    payload: Any
    priority: int = 0
    attempts: int = 0          # execution attempts started so far
    crashes: int = 0           # worker deaths while running this unit
    state: str = "queued"      # queued | running | done | failed | cancelled
    worker_pid: int | None = None
    not_before: float = 0.0    # backoff deadline (monotonic clock)
    result: Any = None
    error: dict | None = None


@dataclass
class Job:
    """One client-visible submission."""

    id: str
    tenant: str
    kind: str                  # "lift" | "corpus" | "chaos"
    spec: dict
    priority: int = 0
    state: str = "queued"
    created_ts: float = field(default_factory=time.time)
    started_ts: float | None = None
    finished_ts: float | None = None
    units_total: int = 0
    units_done: int = 0
    #: "store" when the answer came straight from the lift store,
    #: "inflight" when it attached to an identical queued/running job,
    #: "worker" when it was lifted fresh.
    source: str = "worker"
    #: Diagnostics for failed jobs (per failed unit).
    diagnostics: list[dict] = field(default_factory=list)
    #: The client-facing result payload once done.
    result: dict | None = None
    #: Aggregated per-job metrics (instructions, seconds, counter deltas).
    metrics: dict = field(default_factory=dict)
    #: Schema-validated heartbeat events, seq gap-free from 0.
    events: list[dict] = field(default_factory=list)
    events_dropped: int = 0
    #: Jobs deduplicated onto this one (completed together with it).
    followers: list[str] = field(default_factory=list)

    # -- heartbeats --------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> None:
        event = {"kind": kind, "seq": len(self.events) + self.events_dropped,
                 "ts": round(time.time(), 6), **fields}
        validate_progress_obj(event)
        if len(self.events) >= MAX_JOB_EVENTS:
            # Keep seq numbering honest: drop the oldest, count it.
            self.events.pop(0)
            self.events_dropped += 1
        self.events.append(event)

    # -- views -------------------------------------------------------------

    def status_dict(self) -> dict:
        """The client-facing job status object."""
        out = {
            "id": self.id,
            "tenant": self.tenant,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "source": self.source,
            "created_ts": round(self.created_ts, 6),
            "units_total": self.units_total,
            "units_done": self.units_done,
        }
        if self.started_ts is not None:
            out["started_ts"] = round(self.started_ts, 6)
        if self.finished_ts is not None:
            out["finished_ts"] = round(self.finished_ts, 6)
        if self.diagnostics:
            out["diagnostics"] = self.diagnostics
        if self.metrics:
            out["metrics"] = self.metrics
        return out

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed", "cancelled")


class IdAllocator:
    """Monotonic ``j-N`` / ``u-N`` ids (process-local, never reused)."""

    def __init__(self, prefix: str) -> None:
        self._prefix = prefix
        self._counter = itertools.count(1)

    def next(self) -> str:
        return f"{self._prefix}-{next(self._counter)}"


def summarize_record(record) -> dict:
    """The client-facing view of one lift's FunctionRecord."""
    return {
        "name": record.name,
        "outcome": record.outcome,
        "instructions": record.instructions,
        "states": record.states,
        "seconds": round(record.seconds, 6),
        "annotations": dict(record.annotations),
    }
