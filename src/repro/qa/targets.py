"""The qa target binaries: small programs every campaign trial lifts.

Each target is chosen to exercise one trusted mechanism, so the curated
fault set can pair every fault with a program whose verification verdict
that fault actually influences:

* ``arith``    — straight-line arithmetic with shifts (τ ALU transformers,
  replayed value postconditions);
* ``branch``   — a clamp diamond (condition clauses, predicate join);
* ``guard``    — early-return chain (clause/value coupling per branch);
* ``loop``     — a bounded accumulation loop (join fixpoint, back edges);
* ``stack``    — local-array traffic (memory regions, displacement maths);
* ``overflow`` — the Section 5.1 buffer overflow (the SMT separation
  verdict is the only thing standing between this binary and a bogus
  "verified");
* ``frame``/``scratch`` — hand-assembled bodies with stable encodings, the
  substrate for byte-level mutants (frame imbalance, ret-slot stores,
  callee-save clobbers).

``battery`` is the pseudo-target whose only detector is the τ-vs-emulator
differential battery of :mod:`repro.qa.diffsweep`.
"""

from __future__ import annotations

from repro.corpus.failures import buffer_overflow
from repro.elf import Binary, BinaryBuilder
from repro.isa import Imm, Mem
from repro.minicc import compile_source

#: Name of the pseudo-target that runs the differential battery.
BATTERY = "battery"


def _arith() -> Binary:
    return compile_source("""
long main(long x, long y) {
    long t = x * 3 + y;
    t = t ^ (y << 2);
    t = t - (x & y);
    return t + 7;
}
""", name="qa_arith")


def _branch() -> Binary:
    # A genuine diamond: both arms fall through to a merge point, so the
    # lifter must join predicates (early-return shapes never would).
    return compile_source("""
long main(long x) {
    long r = x;
    if (x < 0) r = 0 - x;
    if (r > 255) r = 255;
    return r + 7;
}
""", name="qa_branch")


def _guard() -> Binary:
    # Early-return shape: each jcc picks between paths with *different*
    # observable results, so mislabelled condition clauses contradict
    # downstream values (a symmetric diamond would hide a clause swap —
    # the edge-group disjunction ∨Q is invariant under relabelling).
    return compile_source("""
long main(long x) {
    if (x < 0) return 0;
    if (x > 255) return 255;
    return x + 1;
}
""", name="qa_guard")


def _loop() -> Binary:
    return compile_source("""
long main(long n) {
    long sum = 0;
    for (long i = 0; i < 8; i = i + 1) {
        sum = sum + i + n;
    }
    return sum;
}
""", name="qa_loop")


def _stack() -> Binary:
    return compile_source("""
long main(long n) {
    long buf[4];
    for (long i = 0; i < 4; i = i + 1) buf[i] = i + n;
    if (n < 0) n = 0;
    if (n > 3) n = 3;
    return buf[n];
}
""", name="qa_stack")


def _frame() -> Binary:
    builder = BinaryBuilder("qa_frame")
    text = builder.text
    text.label("main")
    text.emit("sub", "rsp", Imm(0x20, 32))
    text.emit("mov", Mem(64, base="rsp", disp=0x8), "rdi")
    text.emit("mov", "rax", Mem(64, base="rsp", disp=0x8))
    text.emit("add", "rsp", Imm(0x20, 32))
    text.emit("ret")
    return builder.build(entry="main")


def _scratch() -> Binary:
    builder = BinaryBuilder("qa_scratch")
    text = builder.text
    text.label("main")
    text.emit("mov", "rax", "rdi")
    text.emit("add", "rax", Imm(1, 32))
    text.emit("ret")
    return builder.build(entry="main")


_BUILDERS = {
    "arith": _arith,
    "branch": _branch,
    "guard": _guard,
    "loop": _loop,
    "stack": _stack,
    "overflow": buffer_overflow,
    "frame": _frame,
    "scratch": _scratch,
}


def build_target(name: str) -> Binary:
    """Build one qa target by name (KeyError on typos)."""
    return _BUILDERS[name]()


def target_names() -> list[str]:
    return sorted(_BUILDERS)
