"""Fuzzing the central theorem: lifted output overapproximates execution.

Hypothesis generates random mini-C programs; each is compiled, lifted, and
executed concretely on random inputs.  Whenever the lift succeeds, every
concretely executed instruction address must appear in the lifted
disassembly, and the concrete control-flow steps must follow lifted edges
(Theorem 4.7 / Definition 4.6, observed at the address level).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import lift
from repro.machine import CPU, MachineError
from repro.minicc import compile_source

# -- a compact random-program generator -------------------------------------------

VARS = ("a", "b", "c")


def exprs(depth: int):
    leaf = st.one_of(
        st.integers(min_value=-50, max_value=50).map(str),
        st.sampled_from(VARS),
    )
    if depth == 0:
        return leaf
    sub = exprs(depth - 1)
    binop = st.tuples(sub, st.sampled_from(["+", "-", "*", "&", "|", "^"]), sub) \
        .map(lambda t: f"({t[0]} {t[1]} {t[2]})")
    shift = st.tuples(sub, st.sampled_from(["<<", ">>"]),
                      st.integers(min_value=0, max_value=5)) \
        .map(lambda t: f"({t[0]} {t[1]} {t[2]})")
    return st.one_of(leaf, binop, shift)


def conditions():
    return st.tuples(
        exprs(1), st.sampled_from(["<", "<=", ">", ">=", "==", "!="]), exprs(1)
    ).map(lambda t: f"{t[0]} {t[1]} {t[2]}")


def statements(depth: int):
    assign = st.tuples(st.sampled_from(VARS), exprs(depth)) \
        .map(lambda t: f"{t[0]} = {t[1]};")
    if depth == 0:
        return assign
    sub = st.lists(statements(depth - 1), min_size=1, max_size=3) \
        .map(lambda body: " ".join(body))
    if_stmt = st.tuples(conditions(), sub).map(
        lambda t: f"if ({t[0]}) {{ {t[1]} }}"
    )
    if_else = st.tuples(conditions(), sub, sub).map(
        lambda t: f"if ({t[0]}) {{ {t[1]} }} else {{ {t[2]} }}"
    )
    # Bounded loops only: the concrete run must terminate.
    loop = st.tuples(st.integers(min_value=1, max_value=5), sub).map(
        lambda t: f"for (long i = 0; i < {t[0]}; i = i + 1) {{ {t[1]} }}"
    )
    return st.one_of(assign, if_stmt, if_else, loop)


programs = st.lists(statements(2), min_size=1, max_size=5).map(
    lambda body: (
        "long main(long a, long b) {\n"
        "    long c = 0;\n    "
        + "\n    ".join(body)
        + "\n    return a + b + c;\n}"
    )
)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    source=programs,
    arg_a=st.integers(min_value=-1000, max_value=1000),
    arg_b=st.integers(min_value=-1000, max_value=1000),
)
def test_fuzz_lift_overapproximates_execution(source, arg_a, arg_b):
    binary = compile_source(source, name="fuzz")
    result = lift(binary, max_states=20_000, timeout_seconds=20)
    if not result.verified:
        return  # rejection is a permitted outcome; mis-lifting is not

    cpu = CPU(binary)
    cpu.regs["rdi"] = arg_a & ((1 << 64) - 1)
    cpu.regs["rsi"] = arg_b & ((1 << 64) - 1)
    try:
        cpu.run(max_steps=50_000)
    except MachineError:
        return  # e.g. step budget; nothing to check

    executed = set(cpu.trace)
    lifted = set(result.instructions)
    missing = executed - lifted
    assert not missing, (
        f"executed but not lifted: {[hex(a) for a in sorted(missing)]}\n"
        f"program:\n{source}"
    )

    # Address-level edge coverage: each consecutive concrete step must be a
    # lifted control-flow successor.
    allowed: dict[int, set[int]] = {}
    for edge in result.graph.edges:
        if edge.dst[0] == "code":
            allowed.setdefault(edge.instr_addr, set()).add(edge.dst[1])
    for src, dst in zip(cpu.trace, cpu.trace[1:]):
        instr = result.instructions[src]
        if instr.mnemonic == "call":
            continue  # context-free: the callee entry edge is by symbol
        assert dst in allowed.get(src, ()), (
            f"untracked edge {src:#x} -> {dst:#x} ({instr})\n{source}"
        )


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    source=programs,
    arg_a=st.integers(min_value=-100, max_value=100),
)
def test_fuzz_compiled_semantics_stable(source, arg_a):
    """Compiling twice and running both gives identical results (the
    compiler and emulator are deterministic)."""
    first = compile_source(source, name="one")
    second = compile_source(source, name="two")
    results = []
    for binary in (first, second):
        cpu = CPU(binary)
        cpu.regs["rdi"] = arg_a & ((1 << 64) - 1)
        cpu.regs["rsi"] = 7
        try:
            cpu.run(max_steps=50_000)
        except MachineError:
            return
        results.append(cpu.regs["rax"])
    assert results[0] == results[1]
