"""The Section 2 example: overlapping instructions and "weird" edges.

A 64-bit port of Figure 1: a jump-table dispatch whose stored pointer can
be clobbered — when the two store pointers alias — by an immediate that
happens to be the address of the *middle* of the first instruction, whose
trailing byte 0xc3 decodes as ``ret``.  A provably overapproximative HG
must contain both the intended jump-table edges and the ROP-gadget edge.
"""

from __future__ import annotations

import pytest

from repro import lift
from repro.elf import BinaryBuilder
from repro.isa import Imm, Mem, abs32, abs64, insn


@pytest.fixture(scope="module")
def weird_binary():
    builder = BinaryBuilder("weird")
    t = builder.text
    t.label("main")
    # 48 3d c3 00 00 00 — cmp rax, 0xc3; the byte at main+2 is c3 (= ret).
    t.emit("cmp", "rax", Imm(0xC3, 32))
    t.emit("ja", "out")
    t.emit("movabs", "rcx", abs64("table"))
    t.emit("mov", "rax", Mem(64, base="rcx", index="rax", scale=8))
    t.emit("mov", Mem(64, base="rdi"), "rax")          # *rdi = a_jt
    # *rsi = main+2: if rsi aliases rdi this redirects the jump into the
    # middle of the cmp instruction.  (The paper's 32-bit example stores a
    # dword; a 64-bit indirect jmp reads a qword, so store a qword here.)
    t.emit("mov", Mem(64, base="rsi"), abs32("main", addend=2))
    t.emit("jmp", Mem(64, base="rdi"))
    t.label("out")
    t.emit("ret")
    t.label("case0")
    t.emit("mov", "eax", Imm(10, 32))
    t.emit("ret")
    t.label("case1")
    t.emit("mov", "eax", Imm(11, 32))
    t.emit("ret")
    rod = builder.rodata
    rod.label("table")
    for index in range(0xC4):
        rod.quad(abs64("case0" if index % 2 == 0 else "case1"))
    return builder.build(entry="main")


def test_cmp_encoding_contains_ret_byte(weird_binary):
    entry = weird_binary.entry
    assert weird_binary.read(entry, 6) == bytes.fromhex("483dc3000000")
    weird = weird_binary.fetch(entry + 2)
    assert weird.mnemonic == "ret"


@pytest.fixture(scope="module")
def weird_result(weird_binary):
    return lift(weird_binary, max_targets=4096)


def test_lift_succeeds_with_overapproximation(weird_result):
    assert weird_result.verified


def test_jump_table_edges_present(weird_result):
    """The intended behavior: the indirect jmp reaches both cases."""
    instructions = weird_result.instructions
    jmp_addr = next(
        addr for addr, instr in instructions.items()
        if instr.mnemonic == "jmp" and instr.operands
    )
    targets = weird_result.graph.control_flow_targets(jmp_addr)
    labels = weird_result.binary if False else None
    mnemonics_at = {t: instructions[t].mnemonic for t in targets if t in instructions}
    # case0/case1 entries are movs.
    assert list(mnemonics_at.values()).count("mov") >= 2


def test_weird_edge_found(weird_result, weird_binary):
    """The aliasing fork produces an edge into the middle of the cmp
    instruction — a ROP gadget (ret) at main+2."""
    weird_addr = weird_binary.entry + 2
    assert weird_addr in weird_result.instructions
    assert weird_result.instructions[weird_addr].mnemonic == "ret"
    jmp_addr = next(
        addr for addr, instr in weird_result.instructions.items()
        if instr.mnemonic == "jmp" and instr.operands
    )
    assert weird_addr in weird_result.graph.control_flow_targets(jmp_addr)


def test_weird_ret_returns_to_caller(weird_result, weird_binary):
    """The ROP ret at main+2 executes with an untouched stack, so it
    returns to the function's return symbol — the a_r edge of Figure 1."""
    weird_addr = weird_binary.entry + 2
    ret_edges = [
        e for e in weird_result.graph.edges
        if e.instr_addr == weird_addr and e.dst[0] == "ret"
    ]
    assert ret_edges


def test_aliasing_assumption_recorded(weird_result):
    assert any(a.kind == "alignment" for a in weird_result.assumptions)


def test_overapproximation_covers_concrete_aliasing_run(weird_binary):
    """Concretely execute the aliasing scenario; every executed address
    must appear in the lifted disassembly (overapproximation witness)."""
    from repro.machine import CPU

    result = lift(weird_binary, max_targets=4096)
    scratch = 0x420000 - 0x100  # unmapped-but-usable scratch address
    cpu = CPU(weird_binary)
    cpu.regs["rax"] = 2
    cpu.regs["rdi"] = scratch
    cpu.regs["rsi"] = scratch           # aliasing!
    cpu.run(max_steps=100)
    executed = set(cpu.trace)
    lifted = set(result.instructions)
    assert executed <= lifted, f"missing: {[hex(a) for a in executed - lifted]}"
    assert weird_binary.entry + 2 in executed  # the ROP ret really runs


def test_overapproximation_covers_concrete_normal_run(weird_binary):
    from repro.machine import CPU

    result = lift(weird_binary, max_targets=4096)
    cpu = CPU(weird_binary)
    cpu.regs["rax"] = 2
    cpu.regs["rdi"] = 0x430000
    cpu.regs["rsi"] = 0x430100          # distinct: normal dispatch
    cpu.run(max_steps=100)
    assert cpu.exit_code == 10          # case0
    assert set(cpu.trace) <= set(result.instructions)
