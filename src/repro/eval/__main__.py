"""CLI: ``python -m repro.eval
<table1|table2|figure3|failures|bench|obs|qa|history|all>``."""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's tables and figures on the "
                    "synthetic corpus.",
    )
    parser.add_argument("what", choices=["table1", "table2", "figure3",
                                         "failures", "scaling", "lint",
                                         "pointer", "bench", "obs", "qa",
                                         "history", "all"])
    parser.add_argument("--scale", type=int, default=1,
                        help="corpus scale factor (default 1)")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-binary lifting timeout in seconds")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for corpus lifting "
                             "(default 1 = serial)")
    parser.add_argument("--quick", action="store_true",
                        help="bench: use the scale-1 corpus instead of "
                             "scale 3")
    parser.add_argument("--check-determinism", action="store_true",
                        help="bench: also lift with 2 workers and require "
                             "the canonical reports to match")
    parser.add_argument("--trace-overhead", action="store_true",
                        help="bench: also measure the obs-enabled lift-time "
                             "ratio (scale-1 corpus, default sampling)")
    parser.add_argument("--cold", action="store_true",
                        help="bench: measure the cold (empty-store) cached "
                             "lift; with --warm, records both sides of the "
                             "persistent-store split")
    parser.add_argument("--warm", action="store_true",
                        help="bench: measure the warm (populated-store) "
                             "cached lift; implies the cold pass that "
                             "populates it")
    parser.add_argument("--schedule-ab", action="store_true",
                        help="bench: also run the address-vs-SCC schedule "
                             "A/B (scale-1 corpus)")
    parser.add_argument("--summaries-ab", action="store_true",
                        help="bench: also run the pointer-summaries "
                             "feedback A/B (off vs --pointer-summaries)")
    parser.add_argument("--serve-ab", action="store_true",
                        help="bench: also run the corpus through an "
                             "in-process repro serve daemon and require "
                             "its canonical report to match the direct "
                             "run byte-for-byte")
    parser.add_argument("--serve-workers", type=int, default=2,
                        help="serve A/B: daemon worker-pool size "
                             "(default 2)")
    parser.add_argument("--engine", choices=["tau", "uop"], default="tau",
                        help="transfer engine for corpus lifting: tau "
                             "(reference tree-walker) or uop (compiled "
                             "micro-op interpreter; default tau)")
    parser.add_argument("--engine-ab", action="store_true",
                        help="bench: also run the tau-vs-uop engine A/B "
                             "(interleaved rounds, byte-identity gates, "
                             "cold-path transfer throughput)")
    parser.add_argument("--ab-rounds", type=int, default=2,
                        help="engine A/B: interleaved measurement rounds "
                             "(default 2)")
    parser.add_argument("--sampling", type=int, default=None,
                        help="obs: record 1 in N high-frequency events "
                             "(default: the obs layer's default)")
    parser.add_argument("--profile", action="store_true",
                        help="bench: also fold an obs-enabled corpus lift "
                             "into the phase cost profile (gated: >=95%% "
                             "of lift wall must be attributed)")
    parser.add_argument("--no-history", action="store_true",
                        help="bench: do not append this run to "
                             "benchmarks/history")
    parser.add_argument("--history-dir", default=None,
                        help="history/bench: history directory (default "
                             "benchmarks/history under the repo root)")
    parser.add_argument("--check", action="store_true",
                        help="history: gate the newest run of each key "
                             "against its rolling baseline (exit 1 on "
                             "regression)")
    parser.add_argument("--list", action="store_true", dest="list_runs",
                        help="history: list recorded runs")
    parser.add_argument("--key", default=None,
                        help="history: restrict --check/--list to one "
                             "run key")
    parser.add_argument("--window", type=int, default=None,
                        help="history: rolling-baseline window "
                             "(default 5 runs)")
    parser.add_argument("--min-throughput-ratio", type=float, default=None,
                        help="history gate: minimum current/baseline "
                             "instrs-per-second ratio (default 0.5)")
    parser.add_argument("--max-smt-ratio", type=float, default=None,
                        help="history gate: maximum SMT-query ratio "
                             "(default 1.10)")
    parser.add_argument("--max-join-ratio", type=float, default=None,
                        help="history gate: maximum join-count ratio "
                             "(default 1.10)")
    parser.add_argument("--max-rss-ratio", type=float, default=None,
                        help="history gate: maximum peak-RSS ratio "
                             "(default 1.5)")
    parser.add_argument("--out", default="BENCH_pr10.json",
                        help="bench: output JSON path "
                             "(default BENCH_pr10.json)")
    parser.add_argument("--campaign", choices=["quick", "full"],
                        default="quick",
                        help="qa: campaign size (default quick)")
    parser.add_argument("--seed", type=int, default=2022,
                        help="qa: campaign seed (default 2022)")
    parser.add_argument("--qa-out", default=None,
                        help="qa: also write the canonical JSON report "
                             "to this path")
    parser.add_argument("--witness-dir", default="qa-witnesses",
                        help="qa: directory for missed-expectation "
                             "witnesses (default qa-witnesses)")
    args = parser.parse_args(argv)

    if args.what in ("table1", "all"):
        from repro.eval.table1 import generate_table1

        _, text = generate_table1(scale=args.scale,
                                  timeout_seconds=args.timeout,
                                  jobs=args.jobs, engine=args.engine)
        print(text)
    if args.what in ("table2", "all"):
        from repro.eval.table2 import generate_table2

        _, text = generate_table2()
        print(text)
    if args.what in ("figure3", "all"):
        from repro.eval.figure3 import generate_figure3

        _, text = generate_figure3(scale=args.scale,
                                   timeout_seconds=args.timeout,
                                   jobs=args.jobs, engine=args.engine)
        print(text)
    if args.what == "scaling":
        from repro.eval.scaling import format_scaling, run_scaling

        print(format_scaling(run_scaling(timeout_seconds=args.timeout,
                                         jobs=args.jobs)))
    if args.what == "lint":
        from repro.eval.lint_report import generate_lint_report

        print(generate_lint_report(scale=args.scale,
                                   timeout_seconds=args.timeout))
    if args.what == "pointer":
        from repro.eval.pointer_report import generate_pointer_report

        _, text = generate_pointer_report(scale=args.scale,
                                          timeout_seconds=args.timeout)
        print(text)
    if args.what == "bench":
        from repro.perf.bench import BENCHMARKS_DIR, bench_report

        # Bench defaults to the scale-3 corpus (the acceptance target);
        # --quick drops to scale 1, an explicit --scale wins outright.
        bench_scale = args.scale if args.scale != 1 else (1 if args.quick
                                                          else 3)
        history_dir = None
        if not args.no_history:
            history_dir = args.history_dir or BENCHMARKS_DIR / "history"
        payload, text = bench_report(
            scale=bench_scale,
            jobs=args.jobs,
            timeout_seconds=args.timeout,
            check_determinism=args.check_determinism,
            check_trace_overhead=args.trace_overhead,
            check_cache=args.cold or args.warm,
            check_schedule=args.schedule_ab,
            check_summaries=args.summaries_ab,
            check_profile=args.profile,
            check_serve=args.serve_ab,
            check_engine=args.engine_ab,
            engine_rounds=args.ab_rounds,
            serve_workers=args.serve_workers,
            history_dir=history_dir,
            out_path=args.out,
        )
        print(text)
        determinism = payload["current"].get("determinism")
        if determinism is not None and not determinism["ok"]:
            print("bench: serial and parallel reports differ",
                  file=sys.stderr)
            return 1
        overhead = payload.get("trace_overhead")
        if overhead is not None and overhead["overhead_ratio"] > 1.05:
            print(f"bench: tracing overhead {overhead['overhead_ratio']:.3f}x "
                  "exceeds the 1.05x bound", file=sys.stderr)
            return 1
        cache = payload.get("cache")
        if cache is not None and not (cache["reports_identical"]
                                      and cache["reports_identical_jobs2"]):
            print("bench: warm cached report differs from the cold one",
                  file=sys.stderr)
            return 1
        schedule = payload.get("schedule")
        if schedule is not None and not schedule["verdicts_identical"]:
            print("bench: address and scc schedules reached different "
                  "verdicts", file=sys.stderr)
            return 1
        summaries = payload.get("summaries")
        if summaries is not None and not (summaries["verdicts_identical"]
                                          and summaries["annotations_bounded"]):
            print("bench: pointer-summaries refinement changed a verdict "
                  "or grew annotations", file=sys.stderr)
            return 1
        profile = payload.get("profile")
        if profile is not None and profile.get("coverage", 0.0) < 0.95:
            print(f"bench: profile attributes only "
                  f"{profile.get('coverage', 0.0):.1%} of lift wall time "
                  "to named phases (bound: 95%)", file=sys.stderr)
            return 1
        serve = payload.get("serve")
        if serve is not None and not (serve["reports_identical"]
                                      and serve["dedup_source"] == "store"):
            print("bench: serve daemon report differs from the direct run "
                  "or the duplicate lift was not answered from the store",
                  file=sys.stderr)
            return 1
        engine = payload.get("engine")
        if engine is not None:
            if not (engine["reports_identical"]
                    and engine["reports_identical_jobs2"]):
                print("bench: tau and uop canonical reports differ (or uop "
                      "serial vs jobs=2 differ)", file=sys.stderr)
                return 1
            if not engine["compile_cold_each_round"]:
                print("bench: uop compile-table warmth leaked across "
                      "engine A/B rounds", file=sys.stderr)
                return 1
            if engine["cold_path_speedup"] < 5.0:
                print(f"bench: uop cold-path transfer speedup "
                      f"{engine['cold_path_speedup']:.2f}x is below the "
                      "5x target", file=sys.stderr)
                return 1
    if args.what == "history":
        from repro.obs.history import (
            DEFAULT_WINDOW,
            HistoryStore,
            Thresholds,
            check_latest,
            render_history,
        )
        from repro.perf.bench import BENCHMARKS_DIR

        store = HistoryStore(args.history_dir or BENCHMARKS_DIR / "history")
        if args.list_runs or not args.check:
            print(render_history(store.runs(args.key)))
        if args.check:
            defaults = Thresholds()
            thresholds = Thresholds(
                min_throughput_ratio=args.min_throughput_ratio
                if args.min_throughput_ratio is not None
                else defaults.min_throughput_ratio,
                max_smt_ratio=args.max_smt_ratio
                if args.max_smt_ratio is not None else defaults.max_smt_ratio,
                max_join_ratio=args.max_join_ratio
                if args.max_join_ratio is not None
                else defaults.max_join_ratio,
                max_rss_ratio=args.max_rss_ratio
                if args.max_rss_ratio is not None else defaults.max_rss_ratio,
            )
            results = check_latest(store, key=args.key, thresholds=thresholds,
                                   window=args.window or DEFAULT_WINDOW)
            if not results:
                print("history: nothing to check (no recorded runs)",
                      file=sys.stderr)
                return 1
            for result in results:
                print(result.render())
            if not all(result.ok for result in results):
                print("history: regression gate failed", file=sys.stderr)
                return 1
    if args.what == "obs":
        from repro.eval.obs_report import generate_obs_report
        from repro.obs.tracer import DEFAULT_SAMPLING

        _, text = generate_obs_report(
            scale=args.scale, timeout_seconds=args.timeout, jobs=args.jobs,
            sampling=args.sampling if args.sampling else DEFAULT_SAMPLING,
        )
        print(text)
    if args.what == "qa":
        import json

        from repro.eval.qa_report import generate_qa_report

        payload, text = generate_qa_report(
            campaign=args.campaign, seed=args.seed, jobs=args.jobs,
            witness_dir=args.witness_dir, engine=args.engine,
        )
        print(text)
        if args.qa_out:
            with open(args.qa_out, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True, indent=1)
        if not payload["gate_ok"]:
            print("qa: campaign gate failed (missed faults or false "
                  "positives)", file=sys.stderr)
            return 1
    if args.what in ("failures", "all"):
        from repro.eval.failures_report import generate_failures_report

        print(generate_failures_report())
    return 0


if __name__ == "__main__":
    sys.exit(main())
