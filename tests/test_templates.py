"""Per-template corpus tests: each template compiles, runs concretely with
a Python-model cross-check, and produces its designed lift outcome."""

from __future__ import annotations

import pytest

from repro.corpus import templates as T
from repro.hoare import lift_function
from repro.machine import run_binary
from repro.minicc import compile_source


def build(source: str, entry: str):
    return compile_source(source, name="tpl", entry=entry, export_labels=True)


def run(source: str, entry: str, args=(), handlers=None):
    binary = build(source, entry)
    cpu = run_binary(binary, args=list(args), extern_handlers=handlers or {})
    value = cpu.regs["rax"]
    return value - (1 << 64) if value >> 63 else value


def lifted(source: str, entry: str, **kw):
    binary = build(source, entry)
    kw.setdefault("max_states", 8000)
    kw.setdefault("timeout_seconds", 15)
    return lift_function(binary, entry, **kw)


def test_arith_template():
    src = T.make_arith("t", multiplier=3, addend=7)
    x, y = 11, 5
    expected = ((x * 3 + y) - (x & y)) ^ (y << 2)
    expected += 7
    assert run(src, "arith_t", [x, y]) == expected
    assert lifted(src, "arith_t").verified


def test_clamp_template():
    src = T.make_clamp("t", lo=0, hi=255)
    assert run(src, "clamp_t", [-5]) == 0
    assert run(src, "clamp_t", [300]) == 255
    assert run(src, "clamp_t", [77]) == 77
    assert lifted(src, "clamp_t").verified


def test_loop_sum_template():
    src = T.make_loop_sum("t")
    assert run(src, "loopsum_t", [10]) == sum(range(10))
    assert lifted(src, "loopsum_t").verified


def test_global_table_walk_template():
    src = T.make_global_table_walk("t", size=8)
    n = 5
    expected = sum(i * n for i in range(n + 1))
    assert run(src, "walk_t", [n]) == expected
    assert lifted(src, "walk_t").verified


def test_local_buffer_template():
    src = T.make_local_buffer("t", size=8)
    assert run(src, "localbuf_t", [3]) == 3 + 3
    assert run(src, "localbuf_t", [100]) == 7 + 100  # clamped index
    assert lifted(src, "localbuf_t").verified


def test_switch_dispatch_template():
    src = T.make_switch_dispatch("t", cases=5, base=100)
    for op in range(5):
        assert run(src, "dispatch_t", [op]) == 100 + op
    assert run(src, "dispatch_t", [99]) == -1
    result = lifted(src, "dispatch_t")
    assert result.verified
    assert result.stats.resolved_indirections == 1  # the jump table


def test_state_machine_template():
    src = T.make_state_machine("t", states=5)
    # Python model of the same FSM.
    state = 2
    for _ in range(7):
        state = (state * 2 + 1) % 5
    assert run(src, "fsm_t", [7, 2]) == state
    assert lifted(src, "fsm_t").verified


def test_callback_invoker_template():
    src = T.make_callback_invoker("t")
    result = lifted(src, "invoke_t")
    assert result.verified
    assert result.stats.unresolved_calls == 1  # the callback (column C)
    assert run(src, "invoke_t", [0, 5]) == -1  # null-callback path


def test_callback_registry_template():
    src = T.make_callback_registry("t", slots=4)
    reg = lifted(src, "register_t")
    assert reg.verified
    fire = lifted(src, "fire_t")
    assert fire.verified
    assert fire.stats.unresolved_calls == 1


def test_recursive_template():
    src = T.make_recursive("t")
    assert run(src, "recur_t", [5]) == 120
    assert lifted(src, "recur_t").verified


def test_extern_user_template():
    src = T.make_extern_user("t", extern_name="malloc")
    result = lifted(src, "use_t")
    assert result.verified
    assert any(ob.callee == "malloc" for ob in result.obligations)

    def malloc(cpu):
        cpu.regs["rax"] = 0x700000

    assert run(src, "use_t", [64], handlers={"malloc": malloc}) == 0x700000


def test_buffer_writer_extern_template():
    src = T.make_buffer_writer_extern("t", size=40)
    result = lifted(src, "fillbuf_t")
    assert result.verified
    obligation = next(ob for ob in result.obligations if ob.callee == "memset")
    assert obligation.pointer_args  # a frame pointer escapes


def test_helper_chain_template():
    src = T.make_helper_chain("t", depth=3)
    # chain_t_0(x) = chain_t_1(x+0); chain_t_1 = chain_t_2(x+1); _2 = x*3
    assert run(src, "chain_t_0", [5]) == (5 + 0 + 1) * 3
    assert lifted(src, "chain_t_0").verified


def test_byte_scanner_template():
    src = T.make_byte_scanner("t", size=16)
    # scanbuf is zero-initialized; scanning for 0 counts all 16 bytes.
    assert run(src, "scan_t", [0]) == 16
    assert run(src, "scan_t", [7]) == 0
    assert lifted(src, "scan_t").verified


def test_checksum_template():
    src = T.make_checksum("t", size=12)
    assert run(src, "checksum_t") == 0  # zero-initialized header
    assert lifted(src, "checksum_t").verified


def test_bitops_template():
    src = T.make_bitops("t")
    assert run(src, "bits_t", [0b101101]) == 4
    assert lifted(src, "bits_t").verified


def test_divider_template():
    src = T.make_divider("t", divisor=10)
    assert run(src, "divmod_t", [1234]) == 123 * 1000 + 4
    assert lifted(src, "divmod_t").verified


def test_unrolled_template():
    src = T.make_unrolled("t", steps=10)
    acc = 7
    for i in range(10):
        acc = acc * (2 + i % 5) + (7 >> (i % 7)) - (i * 3 + 1)
        acc &= (1 << 64) - 1
    got = run(src, "unrolled_t", [7]) & ((1 << 64) - 1)
    assert got == acc
    result = lifted(src, "unrolled_t")
    assert result.verified
    assert result.stats.states == result.stats.instructions
