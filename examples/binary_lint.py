#!/usr/bin/env python3
"""Binary linting on top of the verified Hoare graph.

The lifter proves sanity properties; the analysis layer answers a softer
question — "is this code *suspicious*?" — with classic dataflow over the
derived CFG, using the same τ semantics for instruction effects (one
source of truth, no second decoder opinion).  This demo lints a clean
compiled program, then each seeded-bug binary, and finally shows the
stack-height analysis independently re-deriving the paper's
``rsp = RSP0 + 8`` return invariant.

Run:  python examples/binary_lint.py
"""

from repro import lift
from repro.analysis import (
    AnalysisContext,
    render_text,
    return_heights,
    rsp_invariant_holds,
    run_lint,
)
from repro.corpus import ALL_LINTBUGS
from repro.minicc import compile_source

CLEAN = """
long helper(long x) { return x * 3 + 1; }
long main(long a, long b) {
  long acc = 0;
  for (long i = 0; i < a; i = i + 1) acc = acc + helper(b + i);
  return acc;
}
"""


def main() -> None:
    print("=== clean compiled program ===")
    result = lift(compile_source(CLEAN))
    print(result.summary())
    report = run_lint(result)
    print(render_text(report))

    ctx = AnalysisContext(result)
    print("\nstack-height cross-check of the return invariant:")
    for view in ctx.views:
        for check in return_heights(ctx, view):
            print(f"  fn {check.function:#x}: ret @{check.addr:#x} with "
                  f"rsp = RSP0{check.height:+d}"
                  f" -> rsp_after = RSP0 + 8: {'ok' if check.ok else 'VIOLATED'}")
    print(f"  invariant holds: {rsp_invariant_holds(ctx)}")

    for name, (builder, expected_rule) in sorted(ALL_LINTBUGS.items()):
        print(f"\n=== seeded bug: {name} (expect {expected_rule}) ===")
        result = lift(builder())
        print(result.summary())
        print(render_text(run_lint(result)))


if __name__ == "__main__":
    main()
