"""Concrete evaluation of symbolic expressions.

Used to *check* symbolic artifacts against concrete machine states: the
``s ⊢ P`` judgement of the paper needs to evaluate every clause in a
concrete state, and the differential tests evaluate τ's outputs against the
real emulator.
"""

from __future__ import annotations

from typing import Callable

from repro.expr.ast import (
    App,
    Const,
    Deref,
    Expr,
    FlagRef,
    RegRef,
    Var,
    mask,
    to_signed,
)


class EvalEnv:
    """Environment for concrete evaluation.

    *variables* maps Var names to unsigned integers; *read_mem* reads
    ``size`` bytes at a concrete address (little-endian) — typically the
    *initial* memory of the concrete execution, since ``Deref`` denotes
    initial-state reads; *registers*/*flags* resolve transient references.
    """

    def __init__(
        self,
        variables: dict[str, int] | None = None,
        read_mem: Callable[[int, int], int] | None = None,
        registers: dict[str, int] | None = None,
        flags: dict[str, int] | None = None,
    ):
        self.variables = variables or {}
        self.read_mem = read_mem
        self.registers = registers or {}
        self.flags = flags or {}


class EvalError(LookupError):
    """The expression references something the environment cannot resolve."""


def evaluate(expr: Expr, env: EvalEnv) -> int:
    """Evaluate *expr* to an unsigned integer (modulo ``2**expr.width``)."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        if expr.name not in env.variables:
            raise EvalError(f"unbound variable {expr.name}")
        return env.variables[expr.name] & mask(expr.width)
    if isinstance(expr, RegRef):
        if expr.name not in env.registers:
            raise EvalError(f"unbound register {expr.name}")
        return env.registers[expr.name] & mask(expr.width)
    if isinstance(expr, FlagRef):
        if expr.name not in env.flags:
            raise EvalError(f"unbound flag {expr.name}")
        return env.flags[expr.name] & 1
    if isinstance(expr, Deref):
        if env.read_mem is None:
            raise EvalError("no memory reader in environment")
        addr = evaluate(expr.addr, env)
        return env.read_mem(addr, expr.size) & mask(expr.width)
    if isinstance(expr, App):
        return _eval_app(expr, env)
    raise TypeError(f"unknown expression type: {expr!r}")


def _eval_app(expr: App, env: EvalEnv) -> int:
    width = expr.width
    op = expr.op
    args = expr.args

    if op == "ite":
        cond = evaluate(args[0], env)
        return evaluate(args[1] if cond & 1 else args[2], env) & mask(width)

    vals = [evaluate(arg, env) for arg in args]

    if op == "add":
        return sum(vals) & mask(width)
    if op == "sub":
        return (vals[0] - vals[1]) & mask(width)
    if op == "mul":
        product = 1
        for val in vals:
            product *= val
        return product & mask(width)
    if op == "neg":
        return (-vals[0]) & mask(width)
    if op == "and":
        return vals[0] & vals[1] & mask(width)
    if op == "or":
        return (vals[0] | vals[1]) & mask(width)
    if op == "xor":
        return (vals[0] ^ vals[1]) & mask(width)
    if op == "not":
        return (~vals[0]) & mask(width)
    if op == "shl":
        return (vals[0] << (vals[1] & (width - 1))) & mask(width)
    if op == "shr":
        return ((vals[0] & mask(width)) >> (vals[1] & (width - 1))) & mask(width)
    if op == "sar":
        return (to_signed(vals[0], width) >> (vals[1] & (width - 1))) & mask(width)
    if op == "udiv":
        if vals[1] == 0:
            raise EvalError("division by zero")
        return (vals[0] // vals[1]) & mask(width)
    if op == "urem":
        if vals[1] == 0:
            raise EvalError("division by zero")
        return (vals[0] % vals[1]) & mask(width)
    if op == "sdiv":
        if vals[1] == 0:
            raise EvalError("division by zero")
        left, right = to_signed(vals[0], width), to_signed(vals[1], width)
        quotient = abs(left) // abs(right)
        if (left < 0) != (right < 0):
            quotient = -quotient
        return quotient & mask(width)
    if op == "srem":
        if vals[1] == 0:
            raise EvalError("division by zero")
        left, right = to_signed(vals[0], width), to_signed(vals[1], width)
        remainder = abs(left) % abs(right)
        if left < 0:
            remainder = -remainder
        return remainder & mask(width)
    if op == "zext":
        return vals[0] & mask(args[0].width)
    if op == "sext":
        return to_signed(vals[0], args[0].width) & mask(width)
    if op == "low":
        return vals[0] & mask(width)
    if op == "eq":
        arg_width = max(args[0].width, args[1].width)
        return int((vals[0] & mask(arg_width)) == (vals[1] & mask(arg_width)))
    if op == "ltu":
        arg_width = max(args[0].width, args[1].width)
        return int((vals[0] & mask(arg_width)) < (vals[1] & mask(arg_width)))
    if op == "leu":
        arg_width = max(args[0].width, args[1].width)
        return int((vals[0] & mask(arg_width)) <= (vals[1] & mask(arg_width)))
    if op == "lts":
        arg_width = max(args[0].width, args[1].width)
        return int(to_signed(vals[0], arg_width) < to_signed(vals[1], arg_width))
    if op == "les":
        arg_width = max(args[0].width, args[1].width)
        return int(to_signed(vals[0], arg_width) <= to_signed(vals[1], arg_width))
    if op == "bool_not":
        return 1 - (vals[0] & 1)
    if op == "bool_and":
        return vals[0] & vals[1] & 1
    if op == "bool_or":
        return (vals[0] | vals[1]) & 1
    if op == "parity":
        return 1 - (bin(vals[0] & 0xFF).count("1") & 1)
    raise EvalError(f"unhandled operator {op}")
