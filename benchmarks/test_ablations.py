"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Joining** (Definition 3.3/3.12): with joining disabled, the number of
   explored states on a loopy program explodes (and exploration only stops
   because of the budget); with joining, states ≈ instructions.
2. **Immediate-pointer compatibility refinement** (Section 4): without it,
   the Figure 1 weird-edge binary's aliasing/separate fork collapses at
   the join and the indirect jump becomes unresolvable.
3. **Memory-model forking vs destroying** (Definition 3.7): capping ins()
   at one outcome (destroy-like) loses the aliasing case split and the
   weird edge disappears.
"""

from __future__ import annotations

import pytest

from repro import lift
from repro.elf import BinaryBuilder
from repro.isa import Imm, Mem, abs32, abs64
from repro.minicc import compile_source

LOOPY = """
long main(long n) {
    long sum = 0;
    for (long i = 0; i < n; i = i + 1) {
        sum = sum + i;
        if (sum > 1000) sum = sum - 1000;
    }
    return sum;
}
"""


def _lift_with_joining():
    return lift(compile_source(LOOPY, name="loopy"))


def _lift_without_joining(budget: int = 400):
    """Disable joining by making every state its own vertex."""
    import repro.hoare.graph as graph_module

    original = graph_module.code_key
    counter = [0]

    def unique_key(state, text_range):
        counter[0] += 1
        return ("code", state.rip, counter[0])

    graph_module.code_key = unique_key
    import repro.hoare.lifter as lifter_module

    original_lifter_key = lifter_module.code_key
    lifter_module.code_key = unique_key
    try:
        return lift(compile_source(LOOPY, name="loopy"), max_states=budget)
    finally:
        graph_module.code_key = original
        lifter_module.code_key = original_lifter_key


def test_ablation_joining(benchmark):
    with_join = benchmark.pedantic(_lift_with_joining, rounds=1, iterations=1)
    without_join = _lift_without_joining(budget=400)
    assert with_join.verified
    # With joining: fixpoint at ~#instructions states.
    assert with_join.stats.states <= with_join.stats.instructions + 4
    # Without joining: the loop unrolls forever; only the budget stops it.
    assert not without_join.verified
    assert any(e.kind == "timeout" for e in without_join.errors)


def weird_binary():
    builder = BinaryBuilder("weird")
    t = builder.text
    t.label("main")
    t.emit("cmp", "rax", Imm(0xC3, 32))
    t.emit("ja", "out")
    t.emit("movabs", "rcx", abs64("table"))
    t.emit("mov", "rax", Mem(64, base="rcx", index="rax", scale=8))
    t.emit("mov", Mem(64, base="rdi"), "rax")
    t.emit("mov", Mem(64, base="rsi"), abs32("main", addend=2))
    t.emit("jmp", Mem(64, base="rdi"))
    t.label("out")
    t.emit("ret")
    t.label("case0")
    t.emit("ret")
    rod = builder.rodata
    rod.label("table")
    for _ in range(0xC4):
        rod.quad(abs64("case0"))
    return builder.build(entry="main")


def test_ablation_immediate_pointer_refinement(benchmark):
    """Without keeping text-immediate states apart, the aliasing fork joins
    with the separate fork and the weird edge is lost to an annotation."""
    binary = weird_binary()
    full = benchmark.pedantic(
        lambda: lift(binary, max_targets=4096), rounds=1, iterations=1
    )
    weird_addr = binary.entry + 2
    assert weird_addr in full.instructions  # the ROP ret was found

    import repro.hoare.graph as graph_module
    import repro.hoare.lifter as lifter_module

    original = graph_module.code_key

    def coarse_key(state, text_range):
        return ("code", state.rip)  # Definition 4.3 without the refinement

    graph_module.code_key = coarse_key
    lifter_module.code_key = coarse_key
    try:
        coarse = lift(binary, max_targets=4096)
    finally:
        graph_module.code_key = original
        lifter_module.code_key = original
    # With the refinement the jump-table fork resolves (column A) and the
    # weird edge is found; without it the joined vertex can no longer bound
    # the jump target at all.
    assert full.stats.resolved_indirections >= 1
    assert coarse.stats.resolved_indirections == 0
    assert coarse.stats.unresolved_jumps >= 1


def test_ablation_memory_model_forking():
    """Capping ins() to a single outcome destroys instead of forking: the
    aliasing case (and its weird edge) disappears while remaining sound
    (the jump is annotated unresolved, not mis-resolved)."""
    import repro.semantics.tau as tau_module
    from repro.memmodel import ins as full_ins

    binary = weird_binary()

    def single_outcome_ins(region, model, bounds=None, max_forks=8):
        from repro.memmodel.model import MemModel, InsResult

        results = full_ins(region, model, bounds, max_forks)
        if len(results) <= 1:
            return results
        destroyed = model.destroyed | model.all_regions() | {region}
        return [InsResult(MemModel(frozenset(), destroyed))]

    original = tau_module.ins
    tau_module.ins = single_outcome_ins
    try:
        result = lift(binary, max_targets=4096)
    finally:
        tau_module.ins = original
    weird_addr = binary.entry + 2
    assert weird_addr not in result.instructions
    assert result.stats.unresolved_jumps >= 1 or not result.verified
