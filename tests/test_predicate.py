"""Predicate tests: clauses, flag conditions, eval, and the join lattice."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import Const, EvalEnv, RegRef, Var, const, simplify as s, var
from repro.pred import (
    Clause,
    FlagState,
    Predicate,
    condition_clause,
    join_predicates,
    less_abstract,
)
from repro.smt.intervals import Interval
from repro.smt.solver import Region

RSP0 = var("rsp0")
RDI0 = var("rdi0")
RET = var("ret0")


def base_pred(**extra_regs) -> Predicate:
    regs = {"rip": const(0x401000), "rsp": RSP0, "rdi": RDI0}
    regs.update(extra_regs)
    return Predicate.make(
        regs=regs, mem={Region(RSP0, 8): RET}
    )


# -- clauses -------------------------------------------------------------------

def test_clause_negation_and_flip():
    clause = Clause(RDI0, "ltu", const(5))
    assert clause.negated().op == "geu"
    flipped = clause.flipped()
    assert flipped.lhs == const(5) and flipped.op == "gtu"


def test_clause_holds_unsigned_and_signed():
    env = EvalEnv(variables={"rdi0": (1 << 64) - 1})  # -1 as unsigned
    assert Clause(RDI0, "gtu", const(5)).holds(env)
    assert Clause(RDI0, "lts", const(5)).holds(env)


def test_clause_normalized_keeps_term_left():
    clause = Clause(const(5), "ltu", RDI0)
    normalized = clause.normalized()
    assert normalized.lhs == RDI0 and normalized.op == "gtu"


# -- flag conditions ------------------------------------------------------------

def test_cmp_ja_condition():
    flags = FlagState("cmp", RDI0, const(0xC3, 32), 32)
    taken = condition_clause(flags, "a", taken=True)
    assert taken == Clause(RDI0, "gtu", const(0xC3, 32), 32)
    fallthrough = condition_clause(flags, "a", taken=False)
    assert fallthrough == Clause(RDI0, "leu", const(0xC3, 32), 32)


def test_test_self_conditions():
    flags = FlagState("test", RDI0, RDI0, 64)
    zero = condition_clause(flags, "e", taken=True)
    assert zero == Clause(RDI0, "eq", const(0, 64), 64)
    sign = condition_clause(flags, "s", taken=True)
    assert sign.op == "lts"


def test_unexpressible_condition_is_none():
    flags = FlagState("cmp", RDI0, const(1), 64)
    assert condition_clause(flags, "p", taken=True) is None


# -- eval (Definition 4.1) --------------------------------------------------------

def test_eval_resolves_registers():
    pred = base_pred(rax=s.add(RDI0, const(8)))
    result = pred.eval(s.add(RegRef("rax"), const(4)))
    assert result == s.add(RDI0, const(12))


def test_eval_unknown_register_is_bottom():
    pred = base_pred()
    assert pred.eval(RegRef("r11")) is None


def test_interval_from_clauses():
    pred = base_pred().with_clause(Clause(RDI0, "leu", const(0xC3)))
    assert pred.interval_of(RDI0) == Interval(0, 0xC3)
    assert pred.interval_of(RSP0) is None


# -- concrete satisfaction ---------------------------------------------------------

def memory_from(table):
    def read(addr, size):
        return table.get((addr, size), 0)

    return read


def test_holds_checks_regs_mem_clauses():
    pred = base_pred().with_clause(Clause(RDI0, "ltu", const(100)))
    env = EvalEnv(
        variables={"rsp0": 0x7FFF_0000, "rdi0": 42, "ret0": 0xAAA},
        registers={"rip": 0x401000, "rsp": 0x7FFF_0000, "rdi": 42},
        read_mem=memory_from({(0x7FFF_0000, 8): 0xAAA}),
    )
    assert pred.holds(env)
    env.registers["rdi"] = 43  # diverges from valuation
    assert not pred.holds(env)


def test_holds_rejects_violated_clause():
    pred = base_pred().with_clause(Clause(RDI0, "ltu", const(10)))
    env = EvalEnv(
        variables={"rsp0": 0x7FFF_0000, "rdi0": 50, "ret0": 0xAAA},
        registers={"rip": 0x401000, "rsp": 0x7FFF_0000, "rdi": 50},
        read_mem=memory_from({(0x7FFF_0000, 8): 0xAAA}),
    )
    assert not pred.holds(env)


# -- the join (Definition 3.3 / Example 3.4) -----------------------------------------

def test_join_identical_predicates_is_identity():
    pred = base_pred(rax=const(3))
    assert join_predicates(pred, pred, 0x401000) == pred


def test_join_range_abstraction_example_3_4():
    """{a = 3} ⊔ {a = 4} => {a in [3,4]} via a join variable."""
    p = base_pred(rax=const(3))
    q = base_pred(rax=const(4))
    joined = join_predicates(p, q, 0x401000)
    rax = joined.get_reg("rax")
    assert isinstance(rax, Var) and rax.name.startswith("join@")
    assert joined.interval_of(rax) == Interval(3, 4)


def test_join_drops_incomparable_values():
    p = base_pred(rax=RDI0)
    q = base_pred(rax=var("rsi0"))
    joined = join_predicates(p, q, 0x401000)
    rax = joined.get_reg("rax")
    assert isinstance(rax, Var) and rax.name.startswith("join@")
    assert joined.interval_of(rax) is None  # unbounded


def test_join_keeps_shared_memory_valuation():
    p = base_pred()
    q = base_pred()
    joined = join_predicates(p, q, 0x401000)
    assert joined.mem_dict()[Region(RSP0, 8)] == RET


def test_join_grows_interval_hull_on_rejoin():
    p = base_pred(rax=const(3))
    q = base_pred(rax=const(4))
    joined = join_predicates(p, q, 0x401000)
    wider = join_predicates(joined, base_pred(rax=const(100)), 0x401000)
    rax = wider.get_reg("rax")
    assert isinstance(rax, Var)
    assert wider.interval_of(rax) == Interval(3, 100)  # exact hull


def test_join_stable_inside_bounds():
    p = base_pred(rax=const(3))
    q = base_pred(rax=const(4))
    joined = join_predicates(p, q, 0x401000)
    again = join_predicates(joined, base_pred(rax=const(3)), 0x401000)
    assert again == joined
    assert less_abstract(base_pred(rax=const(3)), joined, 0x401000)


def test_join_intersects_branch_clauses():
    clause = Clause(RDI0, "ltu", const(8))
    p = base_pred().with_clause(clause)
    q = base_pred().with_clause(clause).with_clause(Clause(RDI0, "gtu", const(2)))
    joined = join_predicates(p, q, 0x401000)
    assert clause in joined.clauses
    assert Clause(RDI0, "gtu", const(2)) not in joined.clauses


def test_join_reaches_fixpoint_on_bounded_value_sets():
    """Joining a bounded set of values converges to its interval hull; a
    second pass over the same values is the identity (fixpoint).  Unbounded
    ascending chains are cut by the lifter's widen-after-k (not here)."""
    pred = base_pred(rax=const(0))
    for value in list(range(1, 20)) + list(range(20)):
        pred = join_predicates(pred, base_pred(rax=const(value)), 0x401000)
    final = join_predicates(pred, base_pred(rax=const(7)), 0x401000)
    assert final == pred
    rax = pred.get_reg("rax")
    assert pred.interval_of(rax) == Interval(0, 19)


def test_lifter_widening_caps_unbounded_counters():
    """A loop counter with no bound still terminates: the lifter widens."""
    from repro import lift
    from repro.minicc import compile_source

    source = """
    long g;
    long main() {
        long i = 0;
        while (1 == 1) { g = i; i = i + 1; }
        return 0;
    }
    """
    result = lift(compile_source(source, name="spin"), max_states=20_000)
    # The infinite loop never returns; lifting must terminate regardless
    # (either a clean graph or a rejection, but no hang / state explosion).
    assert result.stats.states < 20_000


def test_flags_join():
    flags = FlagState("cmp", RDI0, const(5), 64)
    p = base_pred().with_flags(flags)
    joined_same = join_predicates(p, p, 0x401000)
    assert joined_same.flags == flags
    # Different comparison constants: the operand pair joins to a bounded
    # variable, keeping the flag state (and future branch clauses) alive.
    q = base_pred().with_flags(FlagState("cmp", RDI0, const(6), 64))
    joined = join_predicates(p, q, 0x401000)
    assert joined.flags is not None
    assert joined.flags.kind == "cmp" and joined.flags.a == RDI0
    assert joined.interval_of(joined.flags.b) == Interval(5, 6)
    # Different kinds cannot be joined.
    r = base_pred().with_flags(FlagState("test", RDI0, RDI0, 64))
    assert join_predicates(p, r, 0x401000).flags is None


# -- join soundness property: s |= P or s |= Q  =>  s |= P ⊔ Q -----------------------

@settings(max_examples=200)
@given(
    v0=st.integers(min_value=0, max_value=100),
    v1=st.integers(min_value=0, max_value=100),
    concrete=st.integers(min_value=0, max_value=100),
    pick_p=st.booleans(),
)
def test_prop_join_soundness(v0, v1, concrete, pick_p):
    p = base_pred(rax=const(v0))
    q = base_pred(rax=const(v1))
    chosen_value = v0 if pick_p else v1
    env = EvalEnv(
        variables={"rsp0": 0x7FFF_0000, "rdi0": concrete, "ret0": 1},
        registers={"rip": 0x401000, "rsp": 0x7FFF_0000, "rdi": concrete,
                   "rax": chosen_value},
        read_mem=memory_from({(0x7FFF_0000, 8): 1}),
    )
    chosen = p if pick_p else q
    assert chosen.holds(env)
    joined = join_predicates(p, q, 0x401000)
    # The join variable is existentially quantified: find its witness.
    rax = joined.get_reg("rax")
    if isinstance(rax, Var):
        env.variables[rax.name] = chosen_value
    assert joined.holds(env)
