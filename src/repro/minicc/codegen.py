"""Code generation: mini-C AST → x86-64 via the assembler/builder.

The style is deliberately close to ``gcc -O0``: locals live at fixed
``rbp`` offsets, expressions evaluate into ``rax`` with a push/pop
discipline for temporaries, and dense ``switch`` statements compile to
rodata jump tables (the construct Table 1's resolved-indirection column
measures).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.elf import Binary, BinaryBuilder
from repro.isa import Imm, Mem, abs64
from repro.minicc import cast as c


class CodegenError(ValueError):
    pass


_ARG_REGS = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")
_ARG_REGS32 = ("edi", "esi", "edx", "ecx", "r8d", "r9d")

#: Jump tables are emitted when the case range is at most this dense bound.
_MAX_TABLE_SPAN = 256


@dataclass
class _Local:
    offset: int        # negative rbp offset of the slot (or array base)
    ctype: c.CType
    array: int | None  # element count when this is an array


class _FunctionCompiler:
    def __init__(self, compiler: "Compiler", function: c.Function):
        self.compiler = compiler
        self.function = function
        self.text = compiler.builder.text
        self.locals: dict[str, _Local] = {}
        self.frame_size = 0
        self.loop_stack: list[tuple[str, str]] = []  # (break, continue)

    # -- label helpers ------------------------------------------------------------
    def label(self, hint: str) -> str:
        return f".L_{self.function.name}_{hint}_{next(self.compiler.counter)}"

    # -- leaf operands --------------------------------------------------------------
    # Loading simple operands straight into a scratch register (instead of
    # the push/pop temporary discipline) matches what real -O0 compilers
    # emit and keeps loop-carried pointers analyzable.
    def is_leaf(self, expr) -> bool:
        if isinstance(expr, c.Num):
            return -(1 << 31) <= expr.value < (1 << 31)
        if isinstance(expr, c.Name):
            slot = self.locals.get(expr.ident)
            return slot is not None
        return False

    def emit_leaf(self, reg: str, expr) -> c.CType:
        """Load a leaf operand into *reg* (64-bit) without touching rax."""
        t = self.text
        if isinstance(expr, c.Num):
            t.emit("mov", reg, Imm(expr.value, 32))
            return c.LONG
        slot = self.locals[expr.ident]
        if slot.array is not None:
            t.emit("lea", reg, Mem(64, base="rbp", disp=slot.offset))
            return slot.ctype.pointer_to()
        if slot.ctype.size == 8 or slot.ctype.is_pointer:
            t.emit("mov", reg, Mem(64, base="rbp", disp=slot.offset))
        elif slot.ctype.size == 4:
            t.emit("movsxd", reg, Mem(32, base="rbp", disp=slot.offset))
        else:
            t.emit("movsx", reg, Mem(8, base="rbp", disp=slot.offset))
        return slot.ctype

    # -- frame layout ----------------------------------------------------------------
    def alloc_local(self, name: str, ctype: c.CType, array: int | None) -> _Local:
        size = ctype.size * (array or 1)
        size = (size + 7) & ~7
        self.frame_size += size
        slot = _Local(-self.frame_size, ctype, array)
        self.locals[name] = slot
        return slot

    def _collect_frame(self, stmt) -> None:
        """Pre-scan for declarations so the prologue can reserve the frame."""
        if isinstance(stmt, c.Block):
            for inner in stmt.statements:
                self._collect_frame(inner)
        elif isinstance(stmt, c.Decl):
            if stmt.name in self.locals:
                # Re-declaration in a sibling scope (e.g. two for-loops
                # using `long i`): reuse the slot if the types agree.
                slot = self.locals[stmt.name]
                if slot.ctype != stmt.ctype or slot.array != stmt.array:
                    raise CodegenError(
                        f"conflicting redeclaration of {stmt.name!r}"
                    )
            else:
                self.alloc_local(stmt.name, stmt.ctype, stmt.array)
        elif isinstance(stmt, c.If):
            self._collect_frame(stmt.then)
            if stmt.otherwise:
                self._collect_frame(stmt.otherwise)
        elif isinstance(stmt, (c.While,)):
            self._collect_frame(stmt.body)
        elif isinstance(stmt, c.For):
            if stmt.init is not None:
                self._collect_frame(stmt.init)
            self._collect_frame(stmt.body)
        elif isinstance(stmt, c.Switch):
            for case in stmt.cases:
                for inner in case.body:
                    self._collect_frame(inner)

    # -- entry point --------------------------------------------------------------------
    def compile(self) -> None:
        t = self.text
        t.label(self.function.name)
        t.emit("push", "rbp")
        t.emit("mov", "rbp", "rsp")
        for index, param in enumerate(self.function.params):
            if index < len(_ARG_REGS):
                self.alloc_local(param.name, param.ctype, None)
            else:
                # System V: the 7th+ arguments live in the caller's frame at
                # [rbp + 16 + 8k]; they are accessed in place.
                offset = 16 + 8 * (index - len(_ARG_REGS))
                self.locals[param.name] = _Local(offset, param.ctype, None)
        self._collect_frame(self.function.body)
        frame = (self.frame_size + 15) & ~15
        if frame:
            t.emit("sub", "rsp", Imm(frame, 32))
        for index, param in enumerate(self.function.params):
            if index >= len(_ARG_REGS):
                break
            slot = self.locals[param.name]
            t.emit("mov", Mem(64, base="rbp", disp=slot.offset), _ARG_REGS[index])
        self.compile_block(self.function.body)
        # Fall-off-the-end return (value unspecified, rax as-is).
        self.emit_epilogue()

    def emit_epilogue(self) -> None:
        self.text.emit("leave")
        self.text.emit("ret")

    # -- statements -------------------------------------------------------------------------
    def compile_block(self, block: c.Block) -> None:
        for stmt in block.statements:
            self.compile_statement(stmt)

    def compile_statement(self, stmt) -> None:
        t = self.text
        if isinstance(stmt, c.Block):
            self.compile_block(stmt)
        elif isinstance(stmt, c.ExprStmt):
            self.compile_expr(stmt.expr)
        elif isinstance(stmt, c.Decl):
            if stmt.init is not None:
                self.compile_expr(stmt.init)
                slot = self.locals[stmt.name]
                self.store_to(Mem(_width(slot.ctype),
                                  base="rbp", disp=slot.offset), slot.ctype)
        elif isinstance(stmt, c.Return):
            if stmt.value is not None:
                self.compile_expr(stmt.value)
            self.emit_epilogue()
        elif isinstance(stmt, c.If):
            else_label = self.label("else")
            end_label = self.label("endif")
            self.compile_condition(stmt.cond, else_label)
            self.compile_statement(stmt.then)
            if stmt.otherwise is not None:
                t.emit("jmp", end_label)
                t.label(else_label)
                self.compile_statement(stmt.otherwise)
                t.label(end_label)
            else:
                t.label(else_label)
        elif isinstance(stmt, c.While):
            head = self.label("while")
            done = self.label("endwhile")
            t.label(head)
            self.compile_condition(stmt.cond, done)
            self.loop_stack.append((done, head))
            self.compile_statement(stmt.body)
            self.loop_stack.pop()
            t.emit("jmp", head)
            t.label(done)
        elif isinstance(stmt, c.For):
            if stmt.init is not None:
                self.compile_statement(stmt.init)
            head = self.label("for")
            step_label = self.label("forstep")
            done = self.label("endfor")
            t.label(head)
            if stmt.cond is not None:
                self.compile_condition(stmt.cond, done)
            self.loop_stack.append((done, step_label))
            self.compile_statement(stmt.body)
            self.loop_stack.pop()
            t.label(step_label)
            if stmt.step is not None:
                self.compile_expr(stmt.step)
            t.emit("jmp", head)
            t.label(done)
        elif isinstance(stmt, c.Break):
            if not self.loop_stack:
                raise CodegenError("break outside loop")
            t.emit("jmp", self.loop_stack[-1][0])
        elif isinstance(stmt, c.Continue):
            if not self.loop_stack:
                raise CodegenError("continue outside loop")
            t.emit("jmp", self.loop_stack[-1][1])
        elif isinstance(stmt, c.Switch):
            self.compile_switch(stmt)
        else:
            raise CodegenError(f"unknown statement {stmt!r}")

    def compile_condition(self, cond, false_label: str) -> None:
        """Evaluate *cond*; jump to *false_label* when it is zero."""
        t = self.text
        if isinstance(cond, c.Binary) and cond.op in (
            "<", "<=", ">", ">=", "==", "!="
        ):
            if self.is_leaf(cond.right):
                self.compile_expr(cond.left)
                self.emit_leaf("rcx", cond.right)
            else:
                self.compile_expr(cond.right)
                t.emit("push", "rax")
                self.compile_expr(cond.left)
                t.emit("pop", "rcx")
            t.emit("cmp", "rax", "rcx")
            negated = {"<": "ge", "<=": "g", ">": "le", ">=": "l",
                       "==": "ne", "!=": "e"}[cond.op]
            t.emit(f"j{negated}", false_label)
            return
        self.compile_expr(cond)
        t.emit("test", "rax", "rax")
        t.emit("je", false_label)

    def compile_switch(self, stmt: c.Switch) -> None:
        t = self.text
        self.compile_expr(stmt.scrutinee)
        end_label = self.label("endswitch")
        default_label = end_label
        case_labels: dict[int, str] = {}
        for case in stmt.cases:
            if case.value is None:
                default_label = self.label("default")
            else:
                case_labels[case.value] = self.label(f"case{case.value & 0xffff}")

        values = sorted(case_labels)
        dense = (
            len(values) >= 3
            and values[-1] - values[0] < _MAX_TABLE_SPAN
            and min(values) >= 0
        )
        if dense:
            low, high = values[0], values[-1]
            table_label = self.label("jumptable")
            if low:
                t.emit("sub", "rax", Imm(low, 32))
            t.emit("cmp", "rax", Imm(high - low, 32))
            t.emit("ja", default_label)
            t.emit("movabs", "rcx", abs64(table_label))
            t.emit("mov", "rax", Mem(64, base="rcx", index="rax", scale=8))
            t.emit("jmp", "rax")
            rodata = self.compiler.builder.rodata
            rodata.align(8)
            rodata.label(table_label)
            for value in range(low, high + 1):
                rodata.quad(abs64(case_labels.get(value, default_label)))
        else:
            for value in values:
                t.emit("cmp", "rax", Imm(value, 32))
                t.emit("je", case_labels[value])
            t.emit("jmp", default_label)

        self.loop_stack.append((end_label, end_label))
        for case in stmt.cases:
            if case.value is None:
                t.label(default_label)
            else:
                t.label(case_labels[case.value])
            for inner in case.body:
                self.compile_statement(inner)
        self.loop_stack.pop()
        t.label(end_label)

    # -- expressions ---------------------------------------------------------------------------
    def compile_expr(self, expr) -> c.CType:
        """Evaluate *expr* into rax (64-bit, sign-extended); returns its type."""
        t = self.text
        if isinstance(expr, c.Num):
            if -(1 << 31) <= expr.value < (1 << 31):
                t.emit("mov", "rax", Imm(expr.value, 32))
            else:
                t.emit("movabs", "rax", Imm(expr.value, 64))
            return c.LONG
        if isinstance(expr, c.Name):
            return self.load_name(expr.ident)
        if isinstance(expr, c.Assign):
            return self.compile_assign(expr)
        if isinstance(expr, c.Unary):
            return self.compile_unary(expr)
        if isinstance(expr, c.Binary):
            return self.compile_binary(expr)
        if isinstance(expr, c.Index):
            ctype = self.compile_address_of(expr)
            self.load_from_rax_address(ctype)
            return ctype
        if isinstance(expr, c.Call):
            return self.compile_call(expr)
        raise CodegenError(f"unknown expression {expr!r}")

    def load_name(self, ident: str) -> c.CType:
        t = self.text
        compiler = self.compiler
        if ident in self.locals:
            slot = self.locals[ident]
            if slot.array is not None:
                t.emit("lea", "rax", Mem(64, base="rbp", disp=slot.offset))
                return slot.ctype.pointer_to()
            self.load_slot(Mem(_width(slot.ctype), base="rbp", disp=slot.offset),
                           slot.ctype)
            return slot.ctype
        if ident in compiler.globals:
            glob = compiler.globals[ident]
            t.emit("movabs", "rax", abs64(f"g_{ident}"))
            if glob.array is not None:
                return glob.ctype.pointer_to()
            self.load_from_rax_address(glob.ctype)
            return glob.ctype
        if ident in compiler.function_names:
            t.emit("movabs", "rax", abs64(ident))
            return c.LONG  # function pointer value
        if ident in compiler.extern_names:
            t.emit("movabs", "rax", abs64(ident))
            return c.LONG
        raise CodegenError(f"undefined identifier {ident!r}")

    def load_slot(self, mem: Mem, ctype: c.CType) -> None:
        t = self.text
        if ctype.size == 8 or ctype.is_pointer:
            t.emit("mov", "rax", Mem(64, base=mem.base, index=mem.index,
                                     scale=mem.scale, disp=mem.disp))
        elif ctype.size == 4:
            t.emit("movsxd", "rax",
                   Mem(32, base=mem.base, index=mem.index,
                       scale=mem.scale, disp=mem.disp))
        else:
            t.emit("movsx", "rax",
                   Mem(8, base=mem.base, index=mem.index,
                       scale=mem.scale, disp=mem.disp))

    def load_from_rax_address(self, ctype: c.CType) -> None:
        self.load_slot(Mem(_width(ctype), base="rax"), ctype)

    def store_to(self, mem: Mem, ctype: c.CType) -> None:
        """Store rax (truncated to the type's width) to *mem*."""
        t = self.text
        width = _width(ctype)
        if width == 64:
            t.emit("mov", mem, "rax")
        elif width == 32:
            t.emit("mov", Mem(32, base=mem.base, index=mem.index,
                              scale=mem.scale, disp=mem.disp), "eax")
        else:
            t.emit("mov", Mem(8, base=mem.base, index=mem.index,
                              scale=mem.scale, disp=mem.disp), "al")

    def compile_address_of(self, expr) -> c.CType:
        """Evaluate the address of an lvalue into rax; returns element type."""
        t = self.text
        if isinstance(expr, c.Name):
            if expr.ident in self.locals:
                slot = self.locals[expr.ident]
                t.emit("lea", "rax", Mem(64, base="rbp", disp=slot.offset))
                return slot.ctype
            if expr.ident in self.compiler.globals:
                t.emit("movabs", "rax", abs64(f"g_{expr.ident}"))
                return self.compiler.globals[expr.ident].ctype
            if expr.ident in self.compiler.function_names or \
                    expr.ident in self.compiler.extern_names:
                t.emit("movabs", "rax", abs64(expr.ident))
                return c.LONG
            raise CodegenError(f"cannot take address of {expr.ident!r}")
        if isinstance(expr, c.Unary) and expr.op == "*":
            ctype = self.compile_expr(expr.operand)
            return ctype.pointee() if ctype.is_pointer else c.LONG
        if isinstance(expr, c.Index):
            t = self.text
            if self.is_leaf(expr.index):
                base_type = self.compile_expr(expr.base)
                element = base_type.pointee() if base_type.is_pointer else c.LONG
                self.emit_leaf("rcx", expr.index)
                scale = element.size
                if scale == 1:
                    t.emit("add", "rax", "rcx")
                elif scale in (2, 4, 8):
                    t.emit("lea", "rax",
                           Mem(64, base="rax", index="rcx", scale=scale))
                else:
                    t.emit("imul", "rcx", "rcx", Imm(scale, 32))
                    t.emit("add", "rax", "rcx")
                return element
            base_type = self.compile_expr(expr.base)
            element = base_type.pointee() if base_type.is_pointer else c.LONG
            t.emit("push", "rax")
            self.compile_expr(expr.index)
            scale = element.size
            if scale in (1, 2, 4, 8):
                t.emit("pop", "rcx")
                if scale == 1:
                    t.emit("add", "rax", "rcx")
                else:
                    t.emit(
                        "lea", "rax",
                        Mem(64, base="rcx", index="rax", scale=scale),
                    )
            else:
                t.emit("imul", "rax", "rax", Imm(scale, 32))
                t.emit("pop", "rcx")
                t.emit("add", "rax", "rcx")
            return element
        raise CodegenError(f"not an lvalue: {expr!r}")

    def is_simple_lvalue(self, target) -> bool:
        """True when try_address_into_rcx will succeed (no code emitted)."""
        if isinstance(target, c.Name):
            if target.ident in self.locals:
                return self.locals[target.ident].array is None
            glob = self.compiler.globals.get(target.ident)
            return glob is not None and glob.array is None
        if isinstance(target, c.Unary) and target.op == "*":
            return self.is_leaf(target.operand)
        if isinstance(target, c.Index):
            return self.is_leaf(target.base) and self.is_leaf(target.index)
        return False

    def try_address_into_rcx(self, target) -> c.CType | None:
        """Compute a simple lvalue's address into rcx (scratch rdx) without
        touching rax; returns the element type, or None if too complex."""
        t = self.text
        if isinstance(target, c.Name):
            if target.ident in self.locals:
                slot = self.locals[target.ident]
                if slot.array is None:
                    t.emit("lea", "rcx", Mem(64, base="rbp", disp=slot.offset))
                    return slot.ctype
                return None
            if target.ident in self.compiler.globals:
                glob = self.compiler.globals[target.ident]
                if glob.array is None:
                    t.emit("movabs", "rcx", abs64(f"g_{target.ident}"))
                    return glob.ctype
            return None
        if isinstance(target, c.Unary) and target.op == "*" and \
                self.is_leaf(target.operand):
            ctype = self.emit_leaf("rcx", target.operand)
            return ctype.pointee() if ctype.is_pointer else c.LONG
        if isinstance(target, c.Index) and self.is_leaf(target.base) and \
                self.is_leaf(target.index):
            base_type = self.emit_leaf("rcx", target.base)
            element = base_type.pointee() if base_type.is_pointer else c.LONG
            self.emit_leaf("rdx", target.index)
            scale = element.size
            if scale == 1:
                t.emit("add", "rcx", "rdx")
            elif scale in (2, 4, 8):
                t.emit("lea", "rcx", Mem(64, base="rcx", index="rdx", scale=scale))
            else:
                t.emit("imul", "rdx", "rdx", Imm(scale, 32))
                t.emit("add", "rcx", "rdx")
            return element
        return None

    def compile_assign(self, expr: c.Assign) -> c.CType:
        t = self.text
        target = expr.target
        if isinstance(target, c.Name) and target.ident in self.locals \
                and self.locals[target.ident].array is None:
            ctype = self.locals[target.ident].ctype
            self.compile_expr(expr.value)
            slot = self.locals[target.ident]
            self.store_to(Mem(_width(ctype), base="rbp", disp=slot.offset), ctype)
            return ctype
        # Value first, then a register-only address computation when the
        # target is simple — avoids spilling loop-carried pointers.
        if self.is_simple_lvalue(target):
            self.compile_expr(expr.value)
            ctype = self.try_address_into_rcx(target)
            assert ctype is not None
            self.store_to(Mem(_width(ctype), base="rcx"), ctype)
            return ctype
        ctype = self.compile_address_of(target)
        t.emit("push", "rax")
        self.compile_expr(expr.value)
        t.emit("pop", "rcx")
        self.store_to(Mem(_width(ctype), base="rcx"), ctype)
        return ctype

    def compile_unary(self, expr: c.Unary) -> c.CType:
        t = self.text
        if expr.op == "&":
            element = self.compile_address_of(expr.operand)
            return element.pointer_to()
        if expr.op == "*":
            ctype = self.compile_expr(expr.operand)
            element = ctype.pointee() if ctype.is_pointer else c.LONG
            self.load_from_rax_address(element)
            return element
        ctype = self.compile_expr(expr.operand)
        if expr.op == "-":
            t.emit("neg", "rax")
        elif expr.op == "~":
            t.emit("not", "rax")
        elif expr.op == "!":
            t.emit("test", "rax", "rax")
            t.emit("sete", "al")
            t.emit("movzx", "eax", "al")
        return c.LONG if expr.op != "-" else ctype

    def compile_binary(self, expr: c.Binary) -> c.CType:
        t = self.text
        if expr.op in ("&&", "||"):
            return self.compile_short_circuit(expr)
        if self.is_leaf(expr.right):
            left_type = self.compile_expr(expr.left)
            right_type = self.emit_leaf("rcx", expr.right)
        else:
            # Evaluate right first so the left lands in rax without a swap.
            right_type = self.compile_expr(expr.right)
            t.emit("push", "rax")
            left_type = self.compile_expr(expr.left)
            t.emit("pop", "rcx")

        # Pointer arithmetic: scale the integer side.
        if expr.op in ("+", "-") and left_type.is_pointer and \
                not right_type.is_pointer:
            scale = left_type.pointee().size
            if scale > 1:
                t.emit("imul", "rcx", "rcx", Imm(scale, 32))

        op = expr.op
        if op == "+":
            t.emit("add", "rax", "rcx")
        elif op == "-":
            t.emit("sub", "rax", "rcx")
        elif op == "*":
            t.emit("imul", "rax", "rcx")
        elif op in ("/", "%"):
            t.emit("cqo")
            t.emit("idiv", "rcx")
            if op == "%":
                t.emit("mov", "rax", "rdx")
        elif op == "&":
            t.emit("and", "rax", "rcx")
        elif op == "|":
            t.emit("or", "rax", "rcx")
        elif op == "^":
            t.emit("xor", "rax", "rcx")
        elif op in ("<<", ">>"):
            # Count must be in cl; it is in rcx already.
            t.emit("shl" if op == "<<" else "sar", "rax", "cl")
        elif op in ("<", "<=", ">", ">=", "==", "!="):
            t.emit("cmp", "rax", "rcx")
            cc = {"<": "l", "<=": "le", ">": "g", ">=": "ge",
                  "==": "e", "!=": "ne"}[op]
            t.emit(f"set{cc}", "al")
            t.emit("movzx", "eax", "al")
            return c.LONG
        else:
            raise CodegenError(f"unknown operator {op!r}")
        return left_type if left_type.is_pointer else c.LONG

    def compile_short_circuit(self, expr: c.Binary) -> c.CType:
        t = self.text
        out = self.label("sc_end")
        self.compile_expr(expr.left)
        t.emit("test", "rax", "rax")
        if expr.op == "&&":
            t.emit("mov", "eax", Imm(0, 32))
            t.emit("je", out)
        else:
            t.emit("mov", "eax", Imm(1, 32))
            t.emit("jne", out)
        self.compile_expr(expr.right)
        t.emit("test", "rax", "rax")
        t.emit("setne", "al")
        t.emit("movzx", "eax", "al")
        t.label(out)
        return c.LONG

    def compile_call(self, expr: c.Call) -> c.CType:
        t = self.text
        compiler = self.compiler
        callee = expr.callee
        # C function-call semantics: (*f)(x) and f(x) through a function
        # pointer both call the pointer *value* — no memory dereference.
        while isinstance(callee, c.Unary) and callee.op == "*":
            callee = callee.operand
        direct: str | None = None
        if isinstance(callee, c.Name):
            ident = callee.ident
            if ident in compiler.function_names or ident in compiler.extern_names:
                if ident not in self.locals and ident not in compiler.globals:
                    direct = ident
        if direct is None:
            self.compile_expr(callee)
            t.emit("push", "rax")
        register_args = expr.args[:len(_ARG_REGS)]
        stack_args = expr.args[len(_ARG_REGS):]
        # Stack args pushed right-to-left so arg7 ends nearest the call frame.
        for arg in reversed(stack_args):
            self.compile_expr(arg)
            t.emit("push", "rax")
        # With the callee (if indirect) below the stack args, move it into
        # r10 via a temporary load from its slot before arguments spill.
        for arg in register_args:
            self.compile_expr(arg)
            t.emit("push", "rax")
        for index in reversed(range(len(register_args))):
            t.emit("pop", _ARG_REGS[index])
        if direct is not None:
            if direct in compiler.extern_names:
                compiler.builder.extern(direct)
            t.emit("call", direct)
        else:
            if stack_args:
                # The callee value sits below the stack args: load it.
                t.emit("mov", "r10",
                       Mem(64, base="rsp", disp=8 * len(stack_args)))
                t.emit("call", "r10")
                t.emit("add", "rsp", Imm(8 * len(stack_args) + 8, 32))
                return c.LONG
            t.emit("pop", "r10")
            t.emit("call", "r10")
            return c.LONG
        if stack_args:
            t.emit("add", "rsp", Imm(8 * len(stack_args), 32))
        return c.LONG


def _width(ctype: c.CType) -> int:
    if ctype.is_pointer:
        return 64
    return max(ctype.size * 8, 8)


class Compiler:
    """Compiles a mini-C program into a Binary."""

    def __init__(self, program: c.Program, name: str = "a.out",
                 entry: str = "main", optimize: int = 0):
        self.program = program
        self.name = name
        self.entry = entry
        self.optimize = optimize
        self.builder = BinaryBuilder(name)
        self.counter = itertools.count()
        self.globals = {glob.name: glob for glob in program.globals}
        self.function_names = {fn.name for fn in program.functions}
        self.extern_names = {ext.name for ext in program.externs}

    def compile(self, export_labels: bool = False) -> Binary:
        for name in sorted(self.extern_names):
            self.builder.extern(name)
        for function in self.program.functions:
            _FunctionCompiler(self, function).compile()
        if self.optimize:
            from repro.minicc.peephole import optimize_items

            self.builder.text._items = optimize_items(self.builder.text._items)
        data = self.builder.data
        for glob in self.program.globals:
            data.align(8)
            data.label(f"g_{glob.name}")
            count = glob.array or 1
            size = glob.ctype.size
            values: list[int]
            if isinstance(glob.init, list):
                values = glob.init + [0] * (count - len(glob.init))
            elif glob.init is not None:
                values = [glob.init] + [0] * (count - 1)
            else:
                values = [0] * count
            for value in values:
                data.raw((value & ((1 << (size * 8)) - 1)).to_bytes(size, "little"))
        return self.builder.build(entry=self.entry, export_labels=export_labels)


def compile_source(source: str, name: str = "a.out", entry: str = "main",
                   export_labels: bool = False, optimize: int = 0) -> Binary:
    """Compile mini-C *source* text into a loaded Binary.

    *optimize* = 1 enables the peephole passes (store-load forwarding,
    immediate folding, jump threading) — the corpus's "-O1" flavour."""
    from repro.minicc.parser import parse

    return Compiler(parse(source), name, entry, optimize).compile(export_labels)
