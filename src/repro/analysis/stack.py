"""Stack-height tracking: an independent re-derivation of the paper's
``rsp = RSP0 + 8`` return invariant.

The fact is the pair (``rsp`` offset from the entry ``RSP0``, ``rbp``
offset when ``rbp`` currently mirrors the stack); offsets come from the
τ-probe's result expressions (``probe:rsp + c`` → delta ``c``), so ``push``
/ ``pop`` / ``sub rsp, n`` / ``leave`` / ``mov rsp, rbp`` all flow through
one rule with no mnemonic table.  The lifter proves the invariant
symbolically inside the Hoare graph; this analysis re-checks it purely
numerically over the derived CFG — sharing neither the predicate join nor
the solver — which is what makes it a meaningful cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.expr import Expr, Var, to_signed
from repro.isa import Instruction
from repro.smt.linear import linearize
from repro.semantics.defuse import reg_marker
from repro.analysis.cfgview import FunctionView
from repro.analysis.context import AnalysisContext
from repro.analysis.engine import Dataflow, Solution, solve


@dataclass(frozen=True)
class StackVal:
    """``rsp = RSP0 + height`` / ``rbp = RSP0 + frame`` (None = unknown)."""

    height: int | None = 0
    frame: int | None = None
    reached: bool = True

    def __str__(self) -> str:
        if not self.reached:
            return "⊥"
        h = "?" if self.height is None else f"{self.height:+#x}"
        return f"rsp=RSP0{h}"


BOTTOM = StackVal(height=None, frame=None, reached=False)
TOP = StackVal(height=None, frame=None, reached=True)


def _join(a: StackVal, b: StackVal) -> StackVal:
    if not a.reached:
        return b
    if not b.reached:
        return a
    return StackVal(
        height=a.height if a.height == b.height else None,
        frame=a.frame if a.frame == b.frame else None,
        reached=True,
    )


def resolve_offset(expr: Expr, value: StackVal) -> int | None:
    """Evaluate a probe-result expression to an RSP0 offset, if linear in
    exactly one of the rsp/rbp markers."""
    linear = linearize(expr)
    offset = to_signed(linear.const, 64)
    if not linear.terms:
        return None                     # absolute address: not stack-relative
    if len(linear.terms) != 1:
        return None
    term, coeff = linear.terms[0]
    if coeff != 1 or not isinstance(term, Var):
        return None
    if term == reg_marker("rsp"):
        base = value.height
    elif term == reg_marker("rbp"):
        base = value.frame
    else:
        return None
    return None if base is None else base + offset


def stack_problem(ctx: AnalysisContext) -> Dataflow:
    def transfer(instr: Instruction, value: StackVal) -> StackVal:
        if not value.reached:
            return value
        du = ctx.def_use(instr)
        height, frame = value.height, value.frame
        if "rsp" in du.defs:
            result = du.result_of("rsp")
            height = resolve_offset(result, value) if result is not None else None
        if "rbp" in du.defs:
            result = du.result_of("rbp")
            frame = resolve_offset(result, value) if result is not None else None
        return StackVal(height=height, frame=frame, reached=True)

    return Dataflow(
        direction="forward",
        boundary=StackVal(height=0, frame=None),
        bottom=BOTTOM,
        join=_join,
        transfer=transfer,
        widen=lambda old, new: TOP,
    )


def solve_stack(ctx: AnalysisContext, view: FunctionView) -> Solution:
    return solve(view, stack_problem(ctx))


@dataclass(frozen=True)
class RetCheck:
    """Verdict for one ``ret`` site."""

    addr: int
    function: int
    height: int | None          # rsp offset from RSP0 *before* the ret
    ok: bool                    # height == 0, i.e. rsp = RSP0 + 8 after ret


def return_heights(ctx: AnalysisContext, view: FunctionView) -> list[RetCheck]:
    """Check every ``ret`` of one function against the return invariant."""
    solution = solve_stack(ctx, view)
    problem = stack_problem(ctx)
    checks: list[RetCheck] = []
    for leader in view.blocks:
        for instr, value in solution.before_each(view, problem, leader):
            if instr.mnemonic != "ret" or instr.addr is None:
                continue
            height = value.height if value.reached else None
            checks.append(RetCheck(
                addr=instr.addr,
                function=view.entry,
                height=height,
                ok=height == 0,
            ))
    return checks


def rsp_invariant_holds(ctx: AnalysisContext) -> bool:
    """True iff the stack analysis re-derives ``rsp = RSP0 + 8`` at every
    ``ret`` of every function — independently of the lifter's proof."""
    all_checks = [
        check for view in ctx.views for check in return_heights(ctx, view)
    ]
    return bool(all_checks) and all(check.ok for check in all_checks)
