"""Robustness fuzzing: the decoder and interval machinery never lie.

* Random bytes either decode to an instruction (whose re-encoding decodes
  back to itself — decode∘encode is the identity on decoder outputs) or
  raise DecodeError; nothing else.
* Random clause sets: any concrete value satisfying all clauses lies in
  the interval ``intersect_intervals`` derives (interval soundness,
  including the signed two-pass logic).
* Machine flag semantics at the overflow boundaries.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import EvalEnv, const, var
from repro.isa import DecodeError, decode, encode
from repro.isa.encode import EncodeError
from repro.pred.clause import Clause, intersect_intervals


@settings(max_examples=600)
@given(data=st.binary(min_size=1, max_size=16))
def test_fuzz_decoder_total(data):
    try:
        instr = decode(data)
    except DecodeError:
        return
    assert 1 <= instr.size <= len(data)
    # Decoder outputs are canonical: re-encoding and re-decoding is stable.
    try:
        recoded = encode(instr)
    except EncodeError:
        # A decodable-but-not-encodable corner (e.g. redundant prefix
        # forms); tolerated as long as decode itself was consistent.
        return
    again = decode(recoded)
    assert again.mnemonic == instr.mnemonic
    assert again.operands == instr.operands


@settings(max_examples=600)
@given(
    data=st.binary(min_size=1, max_size=16),
    offset=st.integers(min_value=0, max_value=15),
)
def test_fuzz_decoder_any_offset(data, offset):
    """Mid-buffer decoding (the weird-edge path) never crashes."""
    if offset >= len(data):
        return
    try:
        instr = decode(data, offset)
    except DecodeError:
        return
    assert instr.size >= 1


X = var("x")

clause_strategy = st.tuples(
    st.sampled_from(["ltu", "leu", "gtu", "geu", "eq", "lts", "les",
                     "gts", "ges", "ne"]),
    st.integers(min_value=0, max_value=1 << 40),
).map(lambda t: Clause(X, t[0], const(t[1]), 64))


@settings(max_examples=500)
@given(
    clauses=st.lists(clause_strategy, min_size=0, max_size=4),
    value=st.integers(min_value=0, max_value=(1 << 64) - 1),
)
def test_prop_interval_soundness(clauses, value):
    """value ⊨ all clauses  ⇒  value ∈ intersect_intervals(x, clauses)."""
    env = EvalEnv(variables={"x": value})
    if not all(clause.holds(env) for clause in clauses):
        return
    interval = intersect_intervals(X, clauses)
    assert interval.contains(value), (
        f"{value:#x} satisfies {[str(c) for c in clauses]} but "
        f"is outside [{interval.lo:#x}, {interval.hi:#x}]"
    )


# -- machine flag edge cases -------------------------------------------------------

def _flags_after(mnemonic, a, b, width=64):
    from repro.elf import BinaryBuilder
    from repro.isa import Imm, insn
    from repro.machine import CPU

    builder = BinaryBuilder("flags")
    builder.text.label("main")
    builder.text.emit(mnemonic, "rax" if width == 64 else "eax", "rcx" if width == 64 else "ecx")
    builder.text.emit("ret")
    binary = builder.build(entry="main")
    cpu = CPU(binary)
    cpu.regs["rax"] = a & ((1 << 64) - 1)
    cpu.regs["rcx"] = b & ((1 << 64) - 1)
    cpu.step()
    return dict(cpu.flags)


def test_add_overflow_flag():
    flags = _flags_after("add", (1 << 63) - 1, 1)   # INT_MAX + 1
    assert flags["of"] == 1
    assert flags["sf"] == 1
    flags = _flags_after("add", 1, 1)
    assert flags["of"] == 0


def test_sub_borrow_flag():
    flags = _flags_after("sub", 0, 1)
    assert flags["cf"] == 1       # unsigned borrow
    assert flags["zf"] == 0
    flags = _flags_after("sub", 5, 5)
    assert flags["zf"] == 1 and flags["cf"] == 0


def test_cmp_signed_overflow():
    # INT_MIN - 1 overflows: SF != OF => "less" is still correct.
    flags = _flags_after("cmp", 1 << 63, 1)
    assert flags["of"] == 1
    assert (flags["sf"] ^ flags["of"]) == 1  # signed-less-than holds


@settings(max_examples=300)
@given(
    a=st.integers(min_value=0, max_value=(1 << 64) - 1),
    b=st.integers(min_value=0, max_value=(1 << 64) - 1),
)
def test_prop_machine_condition_consistency(a, b):
    """Machine flags after cmp agree with direct comparisons for every
    condition code the lifter models."""
    from repro.elf import BinaryBuilder
    from repro.machine import CPU
    from repro.expr import to_signed

    builder = BinaryBuilder("cc")
    builder.text.label("main")
    builder.text.emit("cmp", "rax", "rcx")
    builder.text.emit("ret")
    cpu = CPU(builder.build(entry="main"))
    cpu.regs["rax"], cpu.regs["rcx"] = a, b
    cpu.step()
    sa, sb = to_signed(a, 64), to_signed(b, 64)
    assert cpu.condition("e") == (a == b)
    assert cpu.condition("b") == (a < b)
    assert cpu.condition("a") == (a > b)
    assert cpu.condition("l") == (sa < sb)
    assert cpu.condition("ge") == (sa >= sb)
    assert cpu.condition("le") == (sa <= sb)
