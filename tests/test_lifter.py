"""End-to-end Hoare-graph extraction tests (Algorithm 1 + extensions)."""

from __future__ import annotations

import pytest

from repro import lift
from repro.elf import BinaryBuilder
from repro.isa import Imm, Mem, abs64, insn


def build(program, entry="main", **kwargs):
    builder = BinaryBuilder("lift-test")
    program(builder)
    return builder.build(entry=entry, **kwargs)


def straightline(b):
    t = b.text
    t.label("main")
    t.emit("push", "rbp")
    t.emit("mov", "rbp", "rsp")
    t.emit("mov", "eax", Imm(42, 32))
    t.emit("pop", "rbp")
    t.emit("ret")


def test_straightline_lifts_all_instructions():
    result = lift(build(straightline))
    assert result.verified
    assert result.stats.instructions == 5
    assert sorted(result.instructions) == sorted(
        instr.addr for instr in result.instructions.values()
    )
    mnemonics = [result.instructions[a].mnemonic for a in sorted(result.instructions)]
    assert mnemonics == ["push", "mov", "mov", "pop", "ret"]


def test_straightline_states_close_to_instructions():
    result = lift(build(straightline))
    assert result.stats.states == result.stats.instructions


def test_ret_produces_return_edge():
    result = lift(build(straightline))
    ret_edges = [e for e in result.graph.edges if e.dst[0] == "ret"]
    assert len(ret_edges) == 1
    assert ret_edges[0].dst[1] == result.entry


def test_branching_and_join():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("cmp", "rdi", Imm(5, 32))
        t.emit("ja", "big")
        t.emit("mov", "eax", Imm(1, 32))
        t.emit("jmp", "out")
        t.label("big")
        t.emit("mov", "eax", Imm(2, 32))
        t.label("out")
        t.emit("ret")

    result = lift(build(program))
    assert result.verified
    # Every instruction reached; the two paths join at "out".
    assert result.stats.instructions == 6
    assert not result.annotations


def test_loop_reaches_fixpoint():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("xor", "eax", "eax")
        t.label("loop")
        t.emit("add", "rax", "rdi")
        t.emit("sub", "rdi", Imm(1, 32))
        t.emit("test", "rdi", "rdi")
        t.emit("jne", "loop")
        t.emit("ret")

    result = lift(build(program))
    assert result.verified
    assert result.stats.instructions == 6
    assert not result.annotations


def test_internal_call_explored_once_and_continuation_reachable():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("call", "helper")
        t.emit("call", "helper")
        t.emit("mov", "ecx", Imm(1, 32))
        t.emit("ret")
        t.label("helper")
        t.emit("mov", "eax", Imm(7, 32))
        t.emit("ret")

    result = lift(build(program))
    assert result.verified
    # helper body lifted once; both continuations explored.
    mnemonics = [result.instructions[a].mnemonic
                 for a in sorted(result.instructions)]
    assert mnemonics == ["call", "call", "mov", "ret", "mov", "ret"]
    # Two ret sinks: main's and helper's.
    ret_functions = {e.dst[1] for e in result.graph.edges if e.dst[0] == "ret"}
    assert len(ret_functions) == 2


def test_function_that_never_returns_blocks_continuation():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("call", "spin")
        t.emit("mov", "eax", Imm(1, 32))  # unreachable: spin never returns
        t.emit("ret")
        t.label("spin")
        t.label("again")
        t.emit("jmp", "again")

    result = lift(build(program))
    assert result.verified
    mnemonics = {result.instructions[a].mnemonic for a in result.instructions}
    # The continuation mov/ret must NOT be lifted.
    assert "mov" not in mnemonics


def test_external_call_cleans_state_and_generates_obligation():
    def program(b):
        b.extern("malloc")
        t = b.text
        t.label("main")
        t.emit("push", "rbp")
        t.emit("mov", "edi", Imm(64, 32))
        t.emit("call", "malloc")
        t.emit("pop", "rbp")
        t.emit("ret")

    result = lift(build(program))
    assert result.verified
    assert any(ob.callee == "malloc" for ob in result.obligations)
    obligation = next(ob for ob in result.obligations if ob.callee == "malloc")
    assert any("RSP0" in span for span in obligation.preserve)


def test_terminating_external_stops_exploration():
    def program(b):
        b.extern("exit")
        t = b.text
        t.label("main")
        t.emit("mov", "edi", Imm(0, 32))
        t.emit("call", "exit")
        t.emit("hlt")   # unreachable

    result = lift(build(program))
    assert result.verified
    exits = [e for e in result.graph.edges if e.dst == ("exit", "exit")]
    assert exits
    mnemonics = {i.mnemonic for i in result.instructions.values()}
    assert "hlt" not in mnemonics


def test_pthread_call_rejected_as_concurrency():
    def program(b):
        b.extern("pthread_create")
        t = b.text
        t.label("main")
        t.emit("call", "pthread_create")
        t.emit("ret")

    result = lift(build(program))
    assert not result.verified
    assert result.errors[0].kind == "concurrency"


def test_jump_table_resolved():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("cmp", "rdi", Imm(2, 32))
        t.emit("ja", "default")
        t.emit("movabs", "rax", abs64("table"))
        t.emit("mov", "rax", Mem(64, base="rax", index="rdi", scale=8))
        t.emit("jmp", "rax")
        t.label("default")
        t.emit("mov", "eax", Imm(99, 32))
        t.emit("ret")
        t.label("case0")
        t.emit("mov", "eax", Imm(10, 32))
        t.emit("ret")
        t.label("case1")
        t.emit("mov", "eax", Imm(11, 32))
        t.emit("ret")
        t.label("case2")
        t.emit("mov", "eax", Imm(12, 32))
        t.emit("ret")
        rod = b.rodata
        rod.label("table")
        rod.quad(abs64("case0"))
        rod.quad(abs64("case1"))
        rod.quad(abs64("case2"))

    result = lift(build(program))
    assert result.verified
    assert result.stats.resolved_indirections == 1
    assert result.stats.unresolved_jumps == 0
    # All four outcomes lifted.
    mnemonics = [result.instructions[a].mnemonic
                 for a in sorted(result.instructions)]
    assert mnemonics.count("ret") == 4
    # The indirect jmp has exactly three code successors.
    jmp_addr = next(a for a, i in result.instructions.items() if i.mnemonic == "jmp")
    assert len(result.graph.control_flow_targets(jmp_addr)) == 3


def test_unresolved_indirect_jump_annotated():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("jmp", "rdi")   # completely unknown target

    result = lift(build(program))
    assert result.verified  # annotated, not rejected
    assert result.stats.unresolved_jumps == 1
    assert any(a.kind == "unresolved-jump" for a in result.annotations)


def test_unresolved_indirect_call_treated_as_external():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("call", "rdi")
        t.emit("mov", "eax", Imm(3, 32))
        t.emit("ret")

    result = lift(build(program))
    assert result.verified
    assert result.stats.unresolved_calls == 1
    # Exploration continued past the call.
    mnemonics = [i.mnemonic for i in result.instructions.values()]
    assert "mov" in mnemonics
    assert any(ob.callee == "<indirect>" for ob in result.obligations)


def test_buffer_overflow_rejected():
    """Writing through an unknown stack offset defeats the return-address
    proof: no HG (Section 5.1, item 2)."""
    def program(b):
        t = b.text
        t.label("main")
        t.emit("sub", "rsp", Imm(32, 32))
        # rdi is an unbounded index: [rsp + rdi*8] may hit the return addr.
        t.emit("mov", Mem(64, base="rsp", index="rdi", scale=8), Imm(0, 32))
        t.emit("add", "rsp", Imm(32, 32))
        t.emit("ret")

    result = lift(build(program))
    assert not result.verified
    assert any(e.kind in ("return-address", "calling-convention")
               for e in result.errors)


def test_unbalanced_stack_rejected():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("sub", "rsp", Imm(8, 32))
        t.emit("ret")   # returns to a local, not the return address

    result = lift(build(program))
    assert not result.verified


def test_clobbered_callee_saved_register_rejected():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("xor", "ebx", "ebx")  # clobbers rbx without saving
        t.emit("ret")

    result = lift(build(program))
    assert not result.verified
    assert any(e.kind == "calling-convention" for e in result.errors)


def test_callee_saved_register_saved_and_restored_ok():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("push", "rbx")
        t.emit("xor", "ebx", "ebx")
        t.emit("mov", "rax", "rbx")
        t.emit("pop", "rbx")
        t.emit("ret")

    result = lift(build(program))
    assert result.verified


def test_tail_call_to_external():
    def program(b):
        b.extern("puts")
        t = b.text
        t.label("main")
        t.emit("jmp", "puts")   # tail call

    result = lift(build(program))
    assert result.verified
    assert any(ob.callee == "puts" for ob in result.obligations)
    assert any(e.dst[0] == "ret" for e in result.graph.edges)


def test_recursive_function():
    def program(b):
        t = b.text
        t.label("main")          # factorial-ish structure
        t.emit("test", "rdi", "rdi")
        t.emit("je", "base")
        t.emit("sub", "rdi", Imm(1, 32))
        t.emit("call", "main")
        t.emit("ret")
        t.label("base")
        t.emit("mov", "eax", Imm(1, 32))
        t.emit("ret")

    result = lift(build(program))
    assert result.verified
    assert result.stats.instructions == 7


def test_summary_format():
    result = lift(build(straightline))
    text = result.summary()
    assert "OK" in text and "instructions" in text


def test_call_to_non_executable_target_annotated():
    def program(b):
        t = b.text
        t.label("main")
        # call into .rodata: not executable
        t.emit("call", Imm(0x20000, 32))
        t.emit("ret")

    binary = build(program)
    result = lift(binary)
    assert result.stats.unresolved_calls == 1
    assert any(a.kind == "unresolved-call" for a in result.annotations)


def test_jump_into_unmapped_memory_annotated():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("jmp", Imm(0x100000, 32))  # far outside any section

    result = lift(build(program))
    assert any(a.kind == "undecodable" for a in result.annotations)


def test_weird_concrete_return_address_followed():
    """push imm; ret is a concrete 'weird' return: the edge is followed."""
    def program(b):
        t = b.text
        t.label("main")
        t.emit("movabs", "rax", abs64("target"))
        t.emit("push", "rax")
        t.emit("ret")                  # pops the pushed address: jump!
        t.label("target")
        t.emit("mov", "eax", Imm(9, 32))
        t.emit("ret")

    result = lift(build(program))
    assert result.verified, [str(e) for e in result.errors]
    mnemonics = [result.instructions[a].mnemonic
                 for a in sorted(result.instructions)]
    assert mnemonics.count("mov") == 1  # the target block was lifted


def test_ret_with_immediate_pops_args():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("push", Imm(1, 32))
        t.emit("call", "callee")
        t.emit("add", "rsp", Imm(8, 32))
        t.emit("ret")
        t.label("callee")
        t.emit("mov", "rax", Mem(64, base="rsp", disp=8))
        t.emit("ret")

    result = lift(build(program))
    assert result.verified, [str(e) for e in result.errors]
