"""Symbolic states and the lifting context.

A symbolic state (a Hoare-graph vertex, Definition 3.2) pairs a predicate
with a memory model.  The extra fields support the paper's extensions:
``epoch`` counts external-call havocs (so post-call reads get fresh-but-
deterministic unknowns) and ``reachable`` implements Section 4.2.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.elf import Binary
from repro.expr import Const, Expr, Var
from repro.memmodel import MemModel, join_models
from repro.perf.counters import gated as _gated
from repro.pred import Predicate, join_predicates
from repro.smt.solver import Region


class NameGen:
    """Deterministic fresh-name source for havoc variables.

    The counter is a plain int so callers can observe how many names a
    computation consumed (:attr:`issued`): the uop engine memoizes a
    transfer result only when it provably consumed no fresh names, which
    it detects by comparing ``issued`` before and after execution.
    """

    def __init__(self) -> None:
        self._counter = 0

    @property
    def issued(self) -> int:
        """Number of fresh names handed out so far."""
        return self._counter

    def fresh(self, prefix: str, width: int = 64) -> Var:
        count = self._counter
        self._counter = count + 1
        return Var(f"{prefix}%{count}", width)


@dataclass
class LiftContext:
    """Everything τ needs besides the state itself."""

    binary: Binary
    names: NameGen = field(default_factory=NameGen)
    #: Whole-binary mode may read initial .data bytes; library mode may not.
    trust_data: bool = True


@dataclass(frozen=True)
class SymState:
    """A Hoare-graph vertex: predicate × memory model (+ bookkeeping)."""

    pred: Predicate
    model: MemModel
    #: Bumped when an external call (or unknown write) havocs memory.
    epoch: int = 0
    #: Known-reachable flag (Section 4.2.2: post-call states start False).
    reachable: bool = True

    @property
    def rip(self) -> int | None:
        value = self.pred.rip
        if isinstance(value, Const):
            return value.value
        return None

    def with_pred(self, pred: Predicate) -> "SymState":
        return replace(self, pred=pred)

    def with_model(self, model: MemModel) -> "SymState":
        return replace(self, model=model)

    def mark_reachable(self, flag: bool = True) -> "SymState":
        return replace(self, reachable=flag)

    def __str__(self) -> str:
        return f"⟨{self.pred}, {self.model}, epoch={self.epoch}⟩"


def initial_state(entry: int, ret_symbol: Var | None = None) -> SymState:
    """The paper's σ_I: rsp = rsp0, *[rsp0, 8] = return symbol, rip = entry.

    All other registers hold their initial-value variables (``rdi0``...).
    """
    from repro.isa.registers import GPR64

    from repro.memmodel import MemTree

    regs: dict[str, Expr] = {"rip": Const(entry)}
    for reg in GPR64:
        regs[reg] = Var(f"{reg}0")
    mem: dict[Region, Expr] = {}
    trees: frozenset = frozenset()
    if ret_symbol is not None:
        ret_region = Region(Var("rsp0"), 8)
        mem[ret_region] = ret_symbol
        # The return-address region is tracked in the memory model from the
        # start: every later insertion decides (or forks) its relation to
        # it, so separation from the frame survives joins *structurally*.
        trees = frozenset({MemTree.leaf(ret_region)})
    return SymState(
        pred=Predicate.make(regs=regs, mem=mem), model=MemModel(trees)
    )


def join_states(s0: SymState, s1: SymState, rip: int) -> SymState:
    """Definition 3.15: component-wise join.

    Identity short-circuit: the join is idempotent, so joining a state
    with itself (component-wise) only needs the bookkeeping fields merged.
    With hash-consed expressions, states re-enqueued unchanged hit this
    path instead of re-running the full predicate/model joins.
    """
    if s0.pred is s1.pred and s0.model is s1.model:
        _gated("join_shortcircuits")
        return SymState(
            pred=s0.pred,
            model=s0.model,
            epoch=max(s0.epoch, s1.epoch),
            reachable=s0.reachable or s1.reachable,
        )
    return SymState(
        pred=join_predicates(s0.pred, s1.pred, rip),
        model=join_models(s0.model, s1.model),
        epoch=max(s0.epoch, s1.epoch),
        reachable=s0.reachable or s1.reachable,
    )


def states_equal(s0: SymState, s1: SymState) -> bool:
    if s0 is s1:
        _gated("equal_shortcircuits")
        return True
    if s0.epoch != s1.epoch:
        return False
    pred_equal = s0.pred is s1.pred or s0.pred == s1.pred
    if not pred_equal:
        return False
    if s0.pred is s1.pred and s0.model is s1.model:
        _gated("equal_shortcircuits")
    return s0.model is s1.model or s0.model == s1.model
