"""Guards for the performance layer: counters, cache registry, resets.

The perf counters and the cache registry sit on the lifter's hottest
paths; these tests pin down the contracts the rest of the PR relies on:
counters are near-free when disabled, reset cleanly, and no state bleeds
between tests through the interning tables or memo caches.
"""

from __future__ import annotations

import pytest

from repro.perf import cache_stats, hit_rate, reset_caches
from repro.perf.counters import PerfCounters, counters


@pytest.fixture(autouse=True)
def _clean_perf_state():
    """Every test starts and ends with empty caches and zeroed counters."""
    reset_caches()
    counters.enabled = True
    yield
    counters.enabled = True
    reset_caches()


def test_reset_zeroes_every_field():
    counters.expr_new += 7
    counters.solver_hits += 3
    counters.reset()
    assert all(getattr(counters, name) == 0 for name in counters._FIELDS)


def test_reset_preserves_enabled_flag():
    counters.enabled = False
    counters.reset()
    assert counters.enabled is False


def test_snapshot_is_a_detached_copy():
    snap = counters.snapshot()
    counters.expr_new += 5
    assert snap["expr_new"] + 5 == counters.expr_new
    assert set(snap) == set(counters._FIELDS)


def test_delta_and_merge_arithmetic():
    before = {"expr_new": 10, "solver_hits": 2}
    after = {"expr_new": 25, "solver_hits": 2, "solver_misses": 4}
    delta = PerfCounters.delta(before, after)
    assert delta == {"expr_new": 15, "solver_hits": 0, "solver_misses": 4}

    total: dict[str, int] = {"expr_new": 1}
    PerfCounters.merge(total, delta)
    PerfCounters.merge(total, delta)
    assert total == {"expr_new": 31, "solver_hits": 0, "solver_misses": 8}


def test_disabled_counters_do_not_count():
    from repro.expr.ast import Var

    counters.enabled = False
    before = counters.snapshot()
    # Both a fresh construction (miss) and a re-construction (hit).
    Var("perfcounters_disabled_probe")
    Var("perfcounters_disabled_probe")
    assert counters.snapshot() == before

    counters.enabled = True
    Var("perfcounters_enabled_probe")
    assert counters.expr_new > before["expr_new"]


def test_construction_counts_hits_and_misses():
    from repro.expr.ast import Const

    counters.reset()
    a = Const(0xBEEF_0001)   # miss: not interned yet this test
    b = Const(0xBEEF_0001)   # hit
    assert a is b
    assert counters.expr_new >= 1
    assert counters.intern_hits >= 1


def test_cache_stats_shape():
    stats = cache_stats()
    # The core hot-path caches must all be registered.
    for name in ("expr.intern", "simplify.sum", "smt.decide",
                 "smt.fingerprint_terms", "pred.interval_of"):
        assert name in stats, f"{name} not registered"
        assert {"hits", "misses", "size"} <= set(stats[name])


def test_reset_caches_clears_registered_state():
    from repro.expr.ast import Var
    from repro.expr.simplify import add

    add(Var("pc_reset_x"), Var("pc_reset_y"))
    assert cache_stats()["simplify.sum"]["size"] > 0
    reset_caches()
    stats = cache_stats()
    assert stats["simplify.sum"]["size"] == 0
    assert stats["smt.decide"] == {"hits": 0, "misses": 0, "size": 0}
    assert counters.snapshot() == dict.fromkeys(counters._FIELDS, 0)


def test_no_cross_test_bleed_through_intern_tables():
    """After a reset, re-construction re-interns (no stale table entries)."""
    from repro.expr.ast import Var

    first = Var("pc_bleed_probe")
    reset_caches()
    counters.reset()
    second = Var("pc_bleed_probe")
    # The table was dropped, so this construction is a fresh miss ...
    assert counters.expr_new == 1
    # ... and pre-reset nodes stay comparable via the structural fallback.
    assert first == second and hash(first) == hash(second)


def test_hit_rate_guards_empty():
    assert hit_rate(0, 0) == 0.0
    assert hit_rate(3, 1) == 0.75
