"""The differential soundness gate: concrete runs vs predicted regions.

The pointer analysis claims, for every classified access site, a MAY-set
of regions the accessed address lies in.  This gate runs the concrete
emulator (:mod:`repro.machine.cpu`) over the qa targets, records every
memory access the machine actually performs, attributes it to the
instruction that performed it, and asserts the concrete address falls
inside the predicted region set.  A miss is a soundness bug in the
analysis — exactly the class of bug the call-cleaning refinement would
silently convert into a wrong lift.

Attribution mechanics: the CPU is single-stepped with a recording
:class:`~repro.machine.cpu.Memory`, so the log slice of one step belongs
to the instruction at the pre-step ``rip``.  A shadow call stack maps
``StackFrame`` regions to concrete frame bases (``RSP0`` = the value of
``rsp`` on function entry); a bump allocator behind ``malloc``/``calloc``
maps ``Heap`` allocation sites to concrete block ranges.  Steps taken
inside external stubs are the handlers' own effects — modelled by the
external summaries, not per-instruction predictions — and are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elf import Binary
from repro.machine.cpu import CPU, MASK64, MachineError, Memory, STACK_TOP
from repro.semantics import DefUse
from repro.analysis.context import AnalysisContext
from repro.analysis.pointer.domain import (
    Global,
    Heap,
    StackFrame,
    Unknown,
)
from repro.analysis.pointer.summaries import PointerAnalysis
from repro.analysis.pointer.transfer import ALLOCATORS

#: Argument vectors the gate drives each target with (one value per run,
#: SysV: rdi).  Chosen to hit both arms of the qa clamps and guards.
DEFAULT_ARGS = (0, 1, 5, 300)

_HEAP_BASE = 0x6000_0000_0000
_DU_TOP = DefUse.unknown()


class _RecordingMemory(Memory):
    """Memory that logs every (kind, addr, size) access."""

    def __init__(self, binary: Binary) -> None:
        super().__init__(binary)
        self.log: list[tuple[str, int, int]] = []

    def read(self, addr: int, size: int) -> int:
        self.log.append(("load", addr & MASK64, size))
        return super().read(addr, size)

    def write(self, addr: int, value: int, size: int) -> None:
        self.log.append(("store", addr & MASK64, size))
        super().write(addr, value, size)


@dataclass(frozen=True)
class GateMiss:
    """One concrete access the analysis failed to predict."""

    instr_addr: int
    kind: str
    concrete_addr: int
    size: int
    detail: str

    def __str__(self) -> str:
        return (f"{self.instr_addr:#x} {self.kind} of "
                f"[{self.concrete_addr:#x}, {self.size}]: {self.detail}")


@dataclass
class GateReport:
    """Outcome of gating one binary."""

    name: str
    runs: int = 0
    checked: int = 0
    skipped: int = 0          # stub / out-of-view / τ-opaque accesses
    misses: list[GateMiss] = field(default_factory=list)
    machine_errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.misses

    def summary(self) -> str:
        flag = "OK" if self.ok else f"{len(self.misses)} MISSES"
        return (f"{self.name}: {flag}, {self.checked} accesses checked "
                f"over {self.runs} runs ({self.skipped} skipped)")


def _heap_handlers(binary: Binary, call_sites: dict[int, int],
                   allocs: list[tuple[int | None, int, int]]):
    """Extern handlers for the allocator family, recording each block's
    (site, base, size) so ``Heap`` predictions can be checked."""
    cursor = [_HEAP_BASE]

    def allocate(cpu: CPU, size: int) -> None:
        ret = cpu.memory.read(cpu.regs["rsp"], 8)
        site = call_sites.get(ret)
        base = cursor[0]
        cursor[0] += max(16, (size + 15) & ~15)
        allocs.append((site, base, size))
        cpu.regs["rax"] = base

    handlers = {
        "malloc": lambda cpu: allocate(cpu, cpu.regs["rdi"]),
        "calloc": lambda cpu: allocate(
            cpu, (cpu.regs["rdi"] * cpu.regs["rsi"]) & MASK64),
        "aligned_alloc": lambda cpu: allocate(cpu, cpu.regs["rsi"]),
        "realloc": lambda cpu: allocate(cpu, cpu.regs["rsi"]),
        "free": lambda cpu: None,
    }
    assert set(handlers) >= ALLOCATORS
    return handlers


def _frame_base(shadow: list[tuple[int, int]], fn: int) -> int | None:
    """The concrete RSP0 of the innermost live activation of *fn*."""
    for entry, rsp0 in reversed(shadow):
        if entry == fn:
            return rsp0
    return None


def _covers(region, addr: int, shadow, allocs) -> bool:
    if isinstance(region, Unknown):
        return True
    if isinstance(region, Global):
        return region.lo <= addr <= region.hi
    if isinstance(region, StackFrame):
        rsp0 = _frame_base(shadow, region.fn)
        if rsp0 is None:
            return False
        offset = addr - rsp0
        if offset >= 1 << 63:
            offset -= 1 << 64
        return region.lo <= offset <= region.hi
    if isinstance(region, Heap):
        return any(
            (region.site is None or site == region.site)
            and base <= addr < base + size
            for site, base, size in allocs
        )
    return False


def run_gate(binary: Binary, result=None, analysis: PointerAnalysis | None = None,
             args=DEFAULT_ARGS, max_steps: int = 200_000) -> GateReport:
    """Gate one binary: every concrete access must fall in its MAY-set."""
    if result is None:
        from repro.hoare.lifter import lift

        result = lift(binary, cache=False)
    if analysis is None:
        analysis = PointerAnalysis(AnalysisContext(result)).run()
    ctx = analysis.ctx

    predictions: dict[tuple[int, str], object] = {}
    view_addrs: set[int] = set()
    for entry, facts in analysis.functions.items():
        predictions.update(facts.accesses)
        view = ctx.view_of(entry)
        if view is not None:
            for instrs in view.instrs.values():
                view_addrs.update(
                    i.addr for i in instrs if i.addr is not None)

    call_sites = {
        instr.end: addr
        for addr, instr in result.instructions.items()
        if instr.mnemonic == "call"
    }

    report = GateReport(name=binary.name)
    for arg in args:
        _run_once(binary, result, ctx, predictions, view_addrs, call_sites,
                  arg, max_steps, report)
        report.runs += 1
    return report


def _run_once(binary, result, ctx, predictions, view_addrs, call_sites,
              arg: int, max_steps: int, report: GateReport) -> None:
    allocs: list[tuple[int | None, int, int]] = []
    memory = _RecordingMemory(binary)
    cpu = CPU(binary, memory=memory, rip=result.entry, max_steps=max_steps)
    cpu.extern_handlers.update(_heap_handlers(binary, call_sites, allocs))
    cpu.regs["rdi"] = arg & MASK64

    shadow: list[tuple[int, int]] = [(result.entry, cpu.regs["rsp"])]
    tail_to_stub = False
    for _ in range(max_steps):
        if cpu.halted:
            break
        rip = cpu.rip
        in_stub = binary.external_name(rip) is not None
        instr = result.instructions.get(rip) if not in_stub else None
        rsp_before = cpu.regs["rsp"]
        mark = len(memory.log)
        try:
            cpu.step()
        except MachineError as exc:
            report.machine_errors.append(f"{binary.name}@{rip:#x}: {exc}")
            break
        accesses = memory.log[mark:]

        if in_stub:
            # Handler effects are the external summary's business.
            report.skipped += len(accesses)
            if tail_to_stub and len(shadow) > 1:
                # The stub popped the *caller's* return address.
                shadow.pop()
            tail_to_stub = False
            continue

        _check_step(rip, instr, accesses, predictions, view_addrs,
                    shadow, allocs, ctx, report)

        # Shadow call-stack maintenance, driven by the observed transfer.
        new_rip = cpu.rip
        mnemonic = instr.mnemonic if instr is not None else None
        if mnemonic == "call":
            if binary.external_name(new_rip) is None:
                shadow.append((new_rip, (rsp_before - 8) & MASK64))
        elif mnemonic == "ret":
            if len(shadow) > 1:
                shadow.pop()
        elif binary.external_name(new_rip) is not None:
            tail_to_stub = True
        elif (new_rip != shadow[-1][0]
              and ctx.view_of(new_rip) is not None
              and new_rip not in _view_blocks(ctx, shadow[-1][0])):
            # A direct transfer into another function's entry that is not
            # a call: a tail call — the callee reuses this activation.
            shadow[-1] = (new_rip, rsp_before)


def _view_blocks(ctx, entry: int) -> tuple[int, ...]:
    view = ctx.view_of(entry)
    return view.blocks if view is not None else ()


def _check_step(rip, instr, accesses, predictions, view_addrs, shadow,
                allocs, ctx, report: GateReport) -> None:
    for kind, addr, size in accesses:
        if rip not in view_addrs:
            # The analysis never claimed this instruction (partial lift).
            report.skipped += 1
            continue
        access = predictions.get((rip, kind))
        if access is None:
            if instr is not None and ctx.def_use(instr) == _DU_TOP:
                # τ-opaque: the analysis degraded to top and recorded no
                # site; the transfer dropped all facts, which is sound.
                report.skipped += 1
                continue
            report.misses.append(GateMiss(
                rip, kind, addr, size,
                "no predicted access at a classified instruction",
            ))
            continue
        report.checked += 1
        if not any(_covers(region, addr, shadow, allocs)
                   for region in access.regions):
            predicted = ", ".join(sorted(str(r) for r in access.regions))
            report.misses.append(GateMiss(
                rip, kind, addr, size,
                f"outside predicted {{{predicted}}}",
            ))


def gate_qa_targets(args=DEFAULT_ARGS) -> list[GateReport]:
    """Run the gate over every qa target (the CI smoke entry point)."""
    from repro.qa.targets import build_target, target_names

    reports = []
    for name in target_names():
        reports.append(run_gate(build_target(name), args=args))
    return reports
