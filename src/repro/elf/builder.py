"""Convenience builder assembling a complete :class:`Binary` from sections.

Wraps one :class:`~repro.isa.Assembler` per section, allocates external
function stubs, and wires label cross-references between sections (e.g. a
jump table in ``.rodata`` holding ``.text`` addresses).
"""

from __future__ import annotations

from repro.elf.image import Binary, Section
from repro.isa import Assembler

#: Default section layout (clear of the ELF header page).
TEXT_BASE = 0x401000
PLT_BASE = 0x400800
RODATA_BASE = 0x410000
DATA_BASE = 0x420000

_STUB_SIZE = 16


class BinaryBuilder:
    """Build a Binary with .text/.rodata/.data sections and extern stubs.

    Usage::

        builder = BinaryBuilder("demo")
        builder.text.label("main")
        builder.text.emit("ret")
        malloc = builder.extern("malloc")     # stub address
        binary = builder.build(entry="main")
    """

    def __init__(self, name: str = "a.out", text_base: int = TEXT_BASE,
                 rodata_base: int = RODATA_BASE, data_base: int = DATA_BASE,
                 plt_base: int = PLT_BASE):
        self.name = name
        self.text = Assembler(base=text_base)
        self.rodata = Assembler(base=rodata_base)
        self.data = Assembler(base=data_base)
        self._plt_base = plt_base
        self._externals: dict[str, int] = {}

    def extern(self, name: str) -> int:
        """Allocate (or look up) an external-function stub; returns its address."""
        if name not in self._externals:
            self._externals[name] = self._plt_base + _STUB_SIZE * len(self._externals)
        return self._externals[name]

    def build(self, entry: str | int = "main",
              symbols: dict[str, int] | None = None,
              export_labels: bool = False) -> Binary:
        """Assemble all sections and produce the Binary.

        *entry* is a text label or address.  With *export_labels*, every text
        label is exported as a function symbol (shared-object mode).
        """
        # Share labels across sections so rodata can reference text and
        # vice versa: assemble text first (two passes resolve its own refs),
        # then export its labels to the data assemblers.
        self.text._layout()
        for other in (self.rodata, self.data):
            other.labels.update(self.text.labels)
            other._layout()
        # Data labels (e.g. globals) may be referenced from text too.
        self.text.labels.update(self.rodata.labels)
        self.text.labels.update(self.data.labels)
        for name, addr in self._externals.items():
            self.text.labels[name] = addr

        text_bytes = self.text.assemble()
        self.rodata.labels.update(self.text.labels)
        self.data.labels.update(self.text.labels)
        rodata_bytes = self.rodata.assemble()
        data_bytes = self.data.assemble()

        sections = [Section(".text", self.text.base, text_bytes, executable=True)]
        if self._externals:
            stub_code = (b"\x0f\x0b" + b"\x90" * (_STUB_SIZE - 2)) * len(self._externals)
            sections.append(Section(".plt.repro", self._plt_base, stub_code,
                                    executable=True))
        if rodata_bytes:
            sections.append(Section(".rodata", self.rodata.base, rodata_bytes))
        if data_bytes:
            sections.append(Section(".data", self.data.base, data_bytes,
                                    writable=True))

        if isinstance(entry, str):
            entry_addr = self.text.labels[entry]
        else:
            entry_addr = entry

        binary = Binary(
            entry=entry_addr,
            sections=sections,
            externals={addr: name for name, addr in self._externals.items()},
            symbols=dict(symbols or {}),
            name=self.name,
        )
        if export_labels:
            for label, addr in self.text.labels.items():
                if binary.is_executable(addr) and label not in binary.externals.values():
                    binary.symbols.setdefault(label, addr)
        return binary
