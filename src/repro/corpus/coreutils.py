"""CoreUtils-like programs for the Table 2 / Isabelle-export experiment.

The paper exports six MacOS CoreUtils binaries (hexdump, od, wc, tar, du,
gzip) to Isabelle/HOL.  These mini-C analogues implement each tool's core
loop at reduced size while preserving the *relative* ordering of both
instruction counts (tar > gzip > od > hexdump > du > wc) and indirection
counts (hexdump/od highest, wc zero).
"""

from __future__ import annotations

from repro.elf import Binary
from repro.minicc import compile_source
from repro.corpus import templates as T


def _dispatch_block(tag: str, count: int, cases: int = 6) -> str:
    """`count` dense switches → `count` resolved indirections."""
    out = []
    for i in range(count):
        out.append(T.make_switch_dispatch(f"{tag}{i}", cases=cases, base=i * 10))
    return "\n".join(out)


def _filler(tag: str, count: int) -> tuple[str, str]:
    """`count` assorted helper functions + a driver expression."""
    sources = []
    calls = []
    for i in range(count):
        kind = i % 5
        name = f"{tag}{i}"
        if kind == 0:
            sources.append(T.make_arith(name, multiplier=2 + i % 7))
            calls.append(f"acc = acc + arith_{name}(acc, n);")
        elif kind == 1:
            sources.append(T.make_loop_sum(name))
            calls.append(f"acc = acc + loopsum_{name}(n & 15);")
        elif kind == 2:
            sources.append(T.make_bitops(name))
            calls.append(f"acc = acc + bits_{name}(acc);")
        elif kind == 3:
            sources.append(T.make_byte_scanner(name, size=16))
            calls.append(f"acc = acc + scan_{name}(n & 255);")
        else:
            sources.append(T.make_checksum(name, size=12))
            calls.append(f"acc = acc + checksum_{name}();")
    return "\n".join(sources), "\n    ".join(calls)


def _program(name: str, fillers: int, dispatches: int) -> Binary:
    filler_src, filler_calls = _filler(f"{name}f", fillers)
    dispatch_src = _dispatch_block(f"{name}d", dispatches)
    dispatch_calls = "\n    ".join(
        f"acc = acc + dispatch_{name}d{i}(n & 5);" for i in range(dispatches)
    )
    source = f"""
{filler_src}
{dispatch_src}
long main(long n) {{
    long acc = 0;
    {filler_calls}
    {dispatch_calls}
    return acc & 255;
}}
"""
    return compile_source(source, name=name)


#: name -> (filler helper count, dispatch/jump-table count).  Sized so the
#: instruction-count ordering matches Table 2: tar > gzip > od > hexdump >
#: du > wc, and the indirection ordering matches too.
COREUTILS_SHAPES = {
    "hexdump": (10, 6),
    "od": (13, 6),
    "wc": (2, 0),
    "tar": (26, 3),
    "du": (4, 2),
    "gzip": (16, 4),
}


def build_coreutils() -> dict[str, Binary]:
    """All six Table 2 programs."""
    return {
        name: _program(name, fillers, dispatches)
        for name, (fillers, dispatches) in COREUTILS_SHAPES.items()
    }
