"""repro — formally verified lifting of C-compiled x86-64 binaries.

A from-scratch reproduction of "Formally Verified Lifting of C-Compiled
x86-64 Binaries" (PLDI 2022): provably overapproximative binary lifting to
Hoare graphs, with exportable proof artifacts.

Quickstart::

    from repro import lift, load_binary
    result = lift(load_binary("path/to/elf"))
    print(result.summary())
    for annotation in result.annotations:
        print(annotation)
"""

from repro.elf import Binary, BinaryBuilder, load_binary, save_binary
from repro.hoare import (
    Annotation,
    HoareGraph,
    LiftResult,
    Obligation,
    VerificationError,
    lift,
    lift_function,
)
from repro.machine import CPU, run_binary
from repro.verify import SanityReport, verify_binary, verify_function

__version__ = "1.0.0"

__all__ = [
    "Binary", "BinaryBuilder", "load_binary", "save_binary",
    "Annotation", "HoareGraph", "LiftResult", "Obligation",
    "VerificationError", "lift", "lift_function",
    "CPU", "run_binary",
    "SanityReport", "verify_binary", "verify_function",
    "__version__",
]
