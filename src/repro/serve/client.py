"""Client side of the lifting service: one connection, blocking calls.

:class:`ServeClient` speaks the :mod:`repro.serve.protocol` JSONL dialect
over a Unix socket and validates every response before surfacing it — a
malformed server reply raises :class:`ServeError` rather than leaking a
raw dict of unknown shape.  Server-side errors (``ok: false``) raise
:class:`JobError` carrying the structured code.

Responses can legitimately be larger than requests (a corpus job's result
embeds the canonical report), so the client reads with a wider line cap
than the server accepts.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Callable, Iterator

from repro.serve import protocol

#: Response lines can carry whole canonical reports — allow 64 MiB.
MAX_RESPONSE_BYTES = 64 << 20


class ServeError(RuntimeError):
    """Transport or framing failure talking to the daemon."""


class JobError(RuntimeError):
    """A structured ``ok: false`` reply."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ServeClient:
    """A blocking client for one ``repro serve`` daemon.

    Usable as a context manager; every public method is one round-trip
    (except :meth:`watch`, which streams).  Not thread-safe — use one
    client per thread.
    """

    def __init__(self, socket_path: str, tenant: str = "default",
                 timeout: float | None = 60.0) -> None:
        self.socket_path = socket_path
        self.tenant = tenant
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        try:
            self._sock.connect(socket_path)
        except OSError as exc:
            self._sock.close()
            raise ServeError(
                f"cannot connect to {socket_path!r}: {exc}") from None
        self._reader = protocol.LineReader(self._sock, MAX_RESPONSE_BYTES)

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    # -- wire primitives ---------------------------------------------------

    def _read_response(self) -> dict:
        try:
            line = self._reader.readline()
        except protocol.ProtocolError as exc:
            raise ServeError(f"bad response framing: {exc.message}") from None
        except OSError as exc:
            raise ServeError(f"connection lost: {exc}") from None
        if line is None:
            raise ServeError("server closed the connection")
        import json

        try:
            obj = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"response is not JSON: {exc}") from None
        if "event" not in obj:
            try:
                protocol.validate_response(obj)
            except ValueError as exc:
                raise ServeError(str(exc)) from None
        return obj

    def request(self, op: str, **fields: Any) -> dict:
        """One validated request/response round-trip.

        Raises :class:`JobError` on a structured server error and
        :class:`ServeError` on transport/framing problems.
        """
        payload = {"op": op, "tenant": self.tenant, **fields}
        protocol.validate_request(payload)
        try:
            self._sock.sendall(protocol.encode(payload))
        except OSError as exc:
            raise ServeError(f"send failed: {exc}") from None
        response = self._read_response()
        if response.get("ok") is False:
            error = response["error"]
            raise JobError(error["code"], error["message"])
        return response

    # -- verbs -------------------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def submit(self, job: dict) -> dict:
        """Submit a job spec; returns ``{job_id, state, source, ...}``."""
        return self.request("submit", job=job)

    def submit_lift(self, path: str, **spec: Any) -> dict:
        return self.submit({"kind": "lift", "path": path, **spec})

    def submit_corpus(self, scale: int = 1, **spec: Any) -> dict:
        return self.submit({"kind": "corpus", "scale": scale, **spec})

    def status(self, job_id: str) -> dict:
        return self.request("status", job_id=job_id)["job"]

    def result(self, job_id: str) -> dict:
        """The finished job's result payload (raises ``not-done`` before)."""
        return self.request("result", job_id=job_id)

    def cancel(self, job_id: str) -> dict:
        return self.request("cancel", job_id=job_id)

    def stats(self) -> dict:
        return self.request("stats")["stats"]

    def drain(self) -> dict:
        return self.request("drain")

    def watch(self, job_id: str,
              on_event: "Callable[[dict], None] | None" = None) -> dict:
        """Stream the job's heartbeat events until it finishes.

        Calls *on_event* per event line; returns the final job status.
        The server closes the connection after a watch, so this client is
        single-use once :meth:`watch` returns.
        """
        payload = {"op": "watch", "tenant": self.tenant, "job_id": job_id}
        protocol.validate_request(payload)
        try:
            self._sock.sendall(protocol.encode(payload))
        except OSError as exc:
            raise ServeError(f"send failed: {exc}") from None
        while True:
            obj = self._read_response()
            if "event" in obj:
                if on_event is not None:
                    on_event(obj["event"])
                continue
            if obj.get("ok") is False:
                error = obj["error"]
                raise JobError(error["code"], error["message"])
            return obj["job"]

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.05) -> dict:
        """Poll until *job_id* reaches a terminal state; returns its
        status dict.  Raises :class:`TimeoutError` on expiry."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']!r} after "
                    f"{timeout}s")
            time.sleep(poll)


def iter_watch_events(socket_path: str, job_id: str,
                      tenant: str = "default") -> Iterator[dict]:
    """Convenience generator over one watch stream (own connection)."""
    with ServeClient(socket_path, tenant=tenant) as client:
        events: list[dict] = []
        client.watch(job_id, on_event=events.append)
        yield from events
