"""The Hoare graph data structure (Definition 3.2).

Vertices are symbolic states keyed by *compatibility key*: the instruction
pointer plus the control-flow-relevant immediates (the Section 4 refinement
— states whose registers hold different text-section addresses are kept
apart instead of joined).  Edges are labelled with the disassembled
instruction; special sink keys represent function returns and terminals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.expr import Const
from repro.isa import Instruction
from repro.semantics import SymState

#: Vertex key: (rip, cf-immediates) for code, or a sink marker tuple.
VertexKey = tuple


def code_key(state: SymState, text_range: tuple[int, int]) -> VertexKey:
    """Compatibility key of a state (Definition 4.3 + the immediate-pointer
    refinement).

    States whose register *or memory* parts hold distinct text-section
    immediates likely differ in future control flow and are not joined
    (Section 4).  When a text immediate sits in memory, the memory model's
    aliasing structure decides what an indirect jump reads, so the model
    fingerprint joins the key — this is what keeps Figure 1's two ``jmp``
    vertices (aliasing vs separate) apart."""
    rip = state.rip
    low, high = text_range

    def is_text(value) -> bool:
        return isinstance(value, Const) and low <= value.value < high

    reg_imms = tuple(
        sorted(
            (reg, value.value)
            for reg, value in state.pred.regs
            if reg != "rip" and is_text(value)
        )
    )
    mem_imms = tuple(
        sorted(
            (str(region), value.value)
            for region, value in state.pred.mem
            if is_text(value)
        )
    )
    if mem_imms:
        fingerprint = tuple(sorted(str(tree) for tree in state.model.trees))
        return ("code", rip, reg_imms, mem_imms, fingerprint)
    return ("code", rip, reg_imms)


def ret_key(function_entry: int) -> VertexKey:
    """Sink vertex: normal return from the function at *function_entry*."""
    return ("ret", function_entry)


def exit_key(reason: str) -> VertexKey:
    """Sink vertex: program termination (exit call, hlt, ud2...)."""
    return ("exit", reason)


@dataclass(frozen=True)
class Edge:
    """One Hoare triple: {src-state} instr {∨ dst-states}."""

    src: VertexKey
    instr_addr: int
    dst: VertexKey

    def __str__(self) -> str:
        return f"{self.src} --{self.instr_addr:#x}--> {self.dst}"


@dataclass
class HoareGraph:
    """Vertices (symbolic states), labelled edges, disassembly."""

    vertices: dict[VertexKey, SymState] = field(default_factory=dict)
    edges: set[Edge] = field(default_factory=set)
    instructions: dict[int, Instruction] = field(default_factory=dict)

    def states_at(self, rip: int) -> list[SymState]:
        return [
            state for key, state in self.vertices.items()
            if key[0] == "code" and key[1] == rip
        ]

    def successors(self, key: VertexKey) -> set[VertexKey]:
        return {edge.dst for edge in self.edges if edge.src == key}

    def out_edges(self, key: VertexKey) -> list[Edge]:
        return [edge for edge in self.edges if edge.src == key]

    def edge_count(self) -> int:
        return len(self.edges)

    def state_count(self) -> int:
        return sum(1 for key in self.vertices if key[0] == "code")

    def instruction_count(self) -> int:
        return len(self.instructions)

    def control_flow_targets(self, addr: int) -> set[int]:
        """All code addresses reachable in one step from instruction *addr*."""
        return {
            edge.dst[1]
            for edge in self.edges
            if edge.instr_addr == addr and edge.dst[0] == "code"
        }
