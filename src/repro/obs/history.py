"""Persistent, append-only perf-run history with regression gating.

Every bench/corpus run so far died with its process; ``bench.py`` grew one
hardcoded ``load_*_baseline`` loader per PR as a workaround.  This module
is the durable replacement: runs append to ``benchmarks/history/`` as two
JSONL files —

* ``records.jsonl`` — the **canonical** (timing-free) form: workload
  identity (kind / scale / jobs / options / semantics fingerprint) plus
  the deterministic cost metrics the paper's evaluation is stated over
  (instructions, functions, SMT queries, joins).  Two runs of the same
  workload on the same semantics produce identical canonical content, so
  this file is meaningful under version control.
* ``timings.jsonl`` — the machine-dependent sidecar, joined by ``id``:
  wall seconds, throughput, peak RSS, GC totals, interpreter/platform.

The regression gate (``python -m repro.eval history --check``) compares
the newest record for a key against a **rolling baseline** of the
preceding runs: deterministic metrics (SMT queries, joins) against the
latest record sharing the semantics fingerprint (they are exact, so the
tolerance is small), timing metrics (throughput, RSS) against the median
of a window (machines vary, so the tolerance is generous).

Stdlib-only, imports nothing from :mod:`repro` outside :mod:`repro.obs`.
"""

from __future__ import annotations

import gc
import hashlib
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Default on-disk location, relative to the repo root.
DEFAULT_HISTORY_DIR = "benchmarks/history"

#: How many prior runs the rolling timing baseline spans.
DEFAULT_WINDOW = 5

#: Deterministic cost metrics carried in the canonical record.
CANONICAL_METRICS = ("instructions", "functions", "smt_queries", "lift_joins")


def options_key(options: dict[str, Any]) -> str:
    """A short stable digest of a run's option dict."""
    blob = json.dumps(options, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:8]


def run_key(kind: str, scale: int, jobs: int,
            options: dict[str, Any]) -> str:
    """The history key a run is grouped under — same key, same workload."""
    return f"{kind}/scale-{scale}/jobs-{jobs}/{options_key(options)}"


def environment() -> dict[str, str]:
    """Interpreter/platform identity for the timing sidecar."""
    return {
        "python": platform.python_version(),
        "platform": f"{platform.system()}-{platform.machine()}",
    }


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes (0 if the
    ``resource`` module is unavailable, e.g. on Windows)."""
    try:
        import resource
    except ImportError:                                # pragma: no cover
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.
    if sys.platform == "darwin":                       # pragma: no cover
        rss //= 1024
    return int(rss)


def gc_stats() -> dict[str, int]:
    """Cumulative collector totals for the timing sidecar."""
    totals = {"collections": 0, "collected": 0, "uncollectable": 0}
    for generation in gc.get_stats():
        for name in totals:
            totals[name] += int(generation.get(name, 0))
    return totals


class HistoryStore:
    """The append-only JSONL pair under one history directory."""

    def __init__(self, root: "Path | str" = DEFAULT_HISTORY_DIR) -> None:
        self.root = Path(root)
        self.records_path = self.root / "records.jsonl"
        self.timings_path = self.root / "timings.jsonl"

    # -- writing -----------------------------------------------------------

    def append(self, kind: str, scale: int, jobs: int,
               options: dict[str, Any], fingerprint: str,
               metrics: dict[str, Any],
               timing: dict[str, Any] | None = None) -> dict[str, Any]:
        """Append one run; returns the canonical record (with its id).

        *metrics* supplies the :data:`CANONICAL_METRICS` (missing ones
        default to 0) plus any extra deterministic counters under
        ``counters``.  *timing* lands in the sidecar verbatim, extended
        with ``id``/``ts``/environment/RSS/GC.
        """
        records = self.records()
        seq = (records[-1]["seq"] + 1) if records else 0
        record: dict[str, Any] = {
            "seq": seq,
            "kind": kind,
            "key": run_key(kind, scale, jobs, options),
            "scale": scale,
            "jobs": jobs,
            "options": dict(sorted(options.items())),
            "fingerprint": fingerprint[:16],
        }
        for name in CANONICAL_METRICS:
            record[name] = int(metrics.get(name, 0))
        extra = {k: v for k, v in metrics.items() if k not in CANONICAL_METRICS}
        if extra:
            record["counters"] = dict(sorted(extra.items()))
        digest = hashlib.sha256(json.dumps(
            record, sort_keys=True, separators=(",", ":")).encode()).hexdigest()
        record = {"id": f"{seq:05d}-{digest[:8]}", **record}
        self.root.mkdir(parents=True, exist_ok=True)
        with self.records_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        sidecar = {
            "id": record["id"],
            "ts": round(time.time(), 3),
            **environment(),
            "peak_rss_kb": peak_rss_kb(),
            "gc": gc_stats(),
            **(timing or {}),
        }
        with self.timings_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(sidecar, sort_keys=True) + "\n")
        return record

    # -- reading -----------------------------------------------------------

    @staticmethod
    def _load_jsonl(path: Path) -> list[dict]:
        if not path.exists():
            return []
        out = []
        for line in path.read_text(encoding="utf-8").splitlines():
            if line.strip():
                out.append(json.loads(line))
        return out

    def records(self, key: str | None = None) -> list[dict]:
        """Canonical records in append order, optionally for one key."""
        records = self._load_jsonl(self.records_path)
        if key is not None:
            records = [r for r in records if r.get("key") == key]
        return records

    def timings(self) -> dict[str, dict]:
        """The timing sidecar, joined by record id."""
        return {t["id"]: t for t in self._load_jsonl(self.timings_path)
                if "id" in t}

    def runs(self, key: str | None = None) -> list[tuple[dict, dict | None]]:
        """(record, timing-or-None) pairs in append order."""
        timings = self.timings()
        return [(r, timings.get(r["id"])) for r in self.records(key)]

    def keys(self) -> list[str]:
        seen: dict[str, None] = {}
        for record in self.records():
            seen.setdefault(record.get("key", "?"))
        return list(seen)


# -- the regression gate ---------------------------------------------------

@dataclass(frozen=True)
class Thresholds:
    """Gate tolerances.  Deterministic metrics are exact per fingerprint,
    so their tolerance is tight; timing metrics absorb machine variance."""

    min_throughput_ratio: float = 0.5    # current/baseline instrs-per-s
    max_smt_ratio: float = 1.10          # current/baseline SMT queries
    max_join_ratio: float = 1.10         # current/baseline joins
    max_rss_ratio: float = 1.5           # current/baseline peak RSS


@dataclass
class Baseline:
    """The rolling reference a run is gated against."""

    key: str
    #: Latest prior record sharing the semantics fingerprint (or None).
    deterministic: dict | None
    #: Median instrs-per-second over the timing window (or None).
    instrs_per_second: float | None
    #: Median peak RSS over the timing window (or None).
    peak_rss_kb: float | None
    window: int = DEFAULT_WINDOW
    samples: int = 0


@dataclass
class GateResult:
    ok: bool
    key: str
    failures: list[str] = field(default_factory=list)
    lines: list[str] = field(default_factory=list)

    def render(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        body = "\n".join(f"  {line}" for line in self.lines)
        tail = ""
        if self.failures:
            tail = "\n" + "\n".join(f"  REGRESSION: {f}" for f in self.failures)
        return f"history gate [{self.key}]: {verdict}\n{body}{tail}"


def _median(values: list[float]) -> float | None:
    if not values:
        return None
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def rolling_baseline(runs: list[tuple[dict, dict | None]], key: str,
                     fingerprint: str,
                     window: int = DEFAULT_WINDOW) -> Baseline:
    """Fold prior *runs* (record, timing) for *key* into a baseline."""
    deterministic = None
    for record, _ in reversed(runs):
        if record.get("fingerprint") == fingerprint[:16]:
            deterministic = record
            break
    tail = runs[-window:]
    rates = [t["instrs_per_second"] for _, t in tail
             if t and isinstance(t.get("instrs_per_second"), (int, float))
             and t["instrs_per_second"] > 0]
    rss = [t["peak_rss_kb"] for _, t in tail
           if t and isinstance(t.get("peak_rss_kb"), (int, float))
           and t["peak_rss_kb"] > 0]
    return Baseline(
        key=key,
        deterministic=deterministic,
        instrs_per_second=_median(rates),
        peak_rss_kb=_median(rss),
        window=window,
        samples=len(tail),
    )


def check_regression(record: dict, timing: dict | None, baseline: Baseline,
                     thresholds: Thresholds = Thresholds()) -> GateResult:
    """Gate one run against a baseline; rendered diff in ``lines``."""
    result = GateResult(ok=True, key=baseline.key)

    def gate(name: str, current: float, reference: float | None,
             ratio_ok, fmt: str = "{:.1f}") -> None:
        if reference is None or reference <= 0:
            result.lines.append(f"{name}: {fmt.format(current)} (no baseline)")
            return
        ratio = current / reference
        ok = ratio_ok(ratio)
        result.lines.append(
            f"{name}: {fmt.format(current)} vs baseline "
            f"{fmt.format(reference)} (x{ratio:.3f})")
        if not ok:
            result.ok = False
            result.failures.append(
                f"{name} x{ratio:.3f} vs baseline {fmt.format(reference)} "
                "exceeds threshold")

    det = baseline.deterministic
    gate("smt_queries", record.get("smt_queries", 0),
         det.get("smt_queries") if det else None,
         lambda r: r <= thresholds.max_smt_ratio, "{:.0f}")
    gate("lift_joins", record.get("lift_joins", 0),
         det.get("lift_joins") if det else None,
         lambda r: r <= thresholds.max_join_ratio, "{:.0f}")
    if det:
        for name in ("instructions", "functions"):
            current, reference = record.get(name, 0), det.get(name, 0)
            result.lines.append(f"{name}: {current} vs baseline {reference}")
            if current != reference:
                result.ok = False
                result.failures.append(
                    f"{name} changed under an identical semantics "
                    f"fingerprint: {reference} -> {current}")
    rate = (timing or {}).get("instrs_per_second")
    if isinstance(rate, (int, float)):
        gate("instrs_per_second", rate, baseline.instrs_per_second,
             lambda r: r >= thresholds.min_throughput_ratio)
    rss = (timing or {}).get("peak_rss_kb")
    if isinstance(rss, (int, float)) and rss > 0:
        gate("peak_rss_kb", rss, baseline.peak_rss_kb,
             lambda r: r <= thresholds.max_rss_ratio, "{:.0f}")
    return result


def check_latest(store: HistoryStore, key: str | None = None,
                 thresholds: Thresholds = Thresholds(),
                 window: int = DEFAULT_WINDOW) -> list[GateResult]:
    """Gate the newest run of each key (or just *key*) against the rolling
    baseline of the runs before it.  A key with a single run passes (there
    is nothing to regress against)."""
    results = []
    for k in ([key] if key else store.keys()):
        runs = store.runs(k)
        if not runs:
            results.append(GateResult(
                ok=False, key=k or "?",
                failures=[f"no history records for key {k!r}"]))
            continue
        (record, timing), prior = runs[-1], runs[:-1]
        baseline = rolling_baseline(
            prior, k, record.get("fingerprint", ""), window)
        results.append(check_regression(record, timing, baseline, thresholds))
    return results


def render_history(runs: list[tuple[dict, dict | None]]) -> str:
    """The ``history --list`` table."""
    if not runs:
        return "history: no recorded runs"
    lines = ["id             seq  key                                "
             "instr    smt.q   joins   instrs/s  rss(kb)"]
    for record, timing in runs:
        rate = (timing or {}).get("instrs_per_second")
        rss = (timing or {}).get("peak_rss_kb")
        lines.append(
            f"{record['id']:<14} {record['seq']:>3}  {record['key']:<34} "
            f"{record.get('instructions', 0):>6} {record.get('smt_queries', 0):>8} "
            f"{record.get('lift_joins', 0):>7} "
            f"{rate if rate is not None else '-':>10} "
            f"{rss if rss is not None else '-':>8}")
    return "\n".join(lines)
