"""Backward liveness of register families (plus the flags pseudo-register).

The ABI boundary is deliberately conservative: at a return, ``rax`` (the
result), ``rsp`` and every callee-saved register are live; a ``call`` uses
all argument registers (we do not track arity) and defines the caller-saved
set.  Over-approximating liveness can only *suppress* dead-store findings,
never fabricate them.
"""

from __future__ import annotations

from repro.isa import Instruction
from repro.isa.registers import ARG_REGISTERS, CALLEE_SAVED, CALLER_SAVED
from repro.analysis.cfgview import FunctionView
from repro.analysis.context import AnalysisContext
from repro.analysis.engine import Dataflow, Solution, solve

#: Pseudo-register standing for the status flags in live sets.
FLAGS = "flags"

RETURN_LIVE = frozenset({"rax", "rsp"} | set(CALLEE_SAVED))
CALL_DEFS = frozenset(set(CALLER_SAVED) | {FLAGS})
CALL_USES = frozenset(set(ARG_REGISTERS) | {"rsp"})


def instr_defs_uses(
    ctx: AnalysisContext, instr: Instruction
) -> tuple[frozenset[str], frozenset[str]]:
    """(defs, uses) of one instruction including the ABI overlay for calls
    and returns and the flags pseudo-register."""
    du = ctx.def_use(instr)
    defs = set(du.defs)
    uses = set(du.uses)
    if du.writes_flags:
        defs.add(FLAGS)
    if du.reads_flags:
        uses.add(FLAGS)
    if instr.mnemonic == "call":
        defs |= CALL_DEFS
        uses |= CALL_USES
    elif instr.mnemonic == "ret":
        uses |= RETURN_LIVE
    return frozenset(defs), frozenset(uses)


def liveness_problem(ctx: AnalysisContext) -> Dataflow:
    def transfer(instr: Instruction, live: frozenset[str]) -> frozenset[str]:
        defs, uses = instr_defs_uses(ctx, instr)
        return (live - defs) | uses

    return Dataflow(
        direction="backward",
        boundary=RETURN_LIVE,
        bottom=frozenset(),
        join=lambda a, b: a | b,
        transfer=transfer,
    )


def solve_liveness(ctx: AnalysisContext, view: FunctionView) -> Solution:
    return solve(view, liveness_problem(ctx))


def live_after(
    ctx: AnalysisContext, view: FunctionView, solution: Solution | None = None
) -> dict[int, frozenset[str]]:
    """Instruction address -> registers live immediately after it."""
    if solution is None:
        solution = solve_liveness(ctx, view)
    problem = liveness_problem(ctx)
    out: dict[int, frozenset[str]] = {}
    for leader in view.blocks:
        for instr, value in solution.after_each(view, problem, leader):
            if instr.addr is not None:
                out[instr.addr] = value
    return out
