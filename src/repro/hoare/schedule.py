"""Loop-aware fixpoint scheduling for the lifter's state bag.

The lifter explores a bag of symbolic states ordered by a priority key
(see ``INTERNALS.md`` §6).  A flat instruction-address order approximates
weak-topological order only for forward-laid-out code: the moment a loop
body sits *after* its exit continuation in the address space (jump-over
layouts, hand-scheduled assembly, cold/hot block splitting), the exit is
explored with a transient early-iteration abstraction and every later
loop iteration re-joins the whole downstream region.

This module computes a better order **statically, before lifting**: a
recursive-descent scan over the binary's direct control flow builds an
instruction-level flow graph, Tarjan's algorithm condenses it into
strongly-connected components, and each address gets the priority key

    ``(scc_rank, head_flag, address)``

where ``scc_rank`` is the topological order of the address's SCC in the
condensation (every predecessor SCC ranks lower), ``head_flag`` is 0 for
loop heads (back-edge targets pop before the rest of their SCC, so
pending head states coalesce into one join per iteration) and 1
otherwise.  All addresses of one loop share one rank, and every exit of
the loop ranks strictly higher — so the loop drains to its local
fixpoint before its exits run, regardless of layout.

Soundness: the schedule only *orders* exploration; it never decides what
is explored.  Addresses the static scan cannot see (targets of indirect
jumps the SMT layer resolves mid-lift, "weird" mid-instruction returns)
fall back to a rank after all statically-known code, ordered by address
— the lifter reaches the same fixpoint, it just may take a different
number of joins to get there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elf import Binary
from repro.isa import DecodeError, Imm, Instruction, condition_of
from repro.elf.image import FetchError

_MASK64 = (1 << 64) - 1

#: Mnemonics after which execution never falls through.
_TERMINAL = frozenset({"ret", "hlt", "ud2", "int3", "syscall"})


def _static_successors(binary: Binary, instr: Instruction) -> tuple[int, ...]:
    """Direct control-flow successors computable without symbolic state.

    Indirect jumps/calls contribute nothing (their targets are resolved
    during lifting and fall back to the default rank); direct calls
    contribute both the callee entry (explored as a context-free
    function) and the return continuation.
    """
    mnemonic = instr.mnemonic
    if mnemonic in _TERMINAL:
        return ()
    if mnemonic == "jmp":
        (target,) = instr.operands
        if isinstance(target, Imm):
            return ((instr.end + target.signed) & _MASK64,)
        return ()
    if mnemonic == "call":
        (target,) = instr.operands
        successors = [instr.end]
        if isinstance(target, Imm):
            callee = (instr.end + target.signed) & _MASK64
            if (binary.external_name(callee) is None
                    and binary.is_executable(callee)):
                successors.append(callee)
        return tuple(successors)
    if mnemonic.startswith("j") and condition_of(mnemonic) is not None:
        (target,) = instr.operands
        return ((instr.end + target.signed) & _MASK64, instr.end)
    return (instr.end,)


@dataclass(frozen=True)
class Schedule:
    """The precomputed exploration order for one lift.

    ``ranks`` maps every statically-reachable instruction address to its
    SCC's topological rank; ``loop_heads`` holds the back-edge targets.
    ``default_rank`` (one past the largest SCC rank) is what unknown
    addresses get, so dynamically-discovered code runs after all
    statically-known code, in address order.
    """

    entry: int
    ranks: dict[int, int] = field(default_factory=dict)
    loop_heads: frozenset[int] = frozenset()
    #: Static flow edges (kept for tests and diagnostics).
    successors: dict[int, tuple[int, ...]] = field(default_factory=dict)
    default_rank: int = 0
    #: Number of loop SCCs found (multi-node SCCs + self-loops).
    loops: int = 0

    def priority(self, addr: int) -> tuple[int, int, int]:
        """The heap key for a state at *addr*: (scc_rank, head?, addr)."""
        rank = self.ranks.get(addr)
        if rank is None:
            return (self.default_rank, 1, addr)
        return (rank, 0 if addr in self.loop_heads else 1, addr)

    def is_loop_member(self, addr: int) -> bool:
        """True iff *addr* belongs to an SCC with a cycle."""
        rank = self.ranks.get(addr)
        if rank is None:
            return False
        return self._loop_ranks is not None and rank in self._loop_ranks

    # Populated by build_schedule; dataclass-frozen, so set via object.__setattr__.
    _loop_ranks: frozenset[int] | None = None


#: Flat address order (the pre-PR5 behaviour), selectable for A/B runs.
ADDRESS_ORDER = "address"
#: SCC-rank order (the default).
SCC_ORDER = "scc"
SCHEDULE_MODES = (ADDRESS_ORDER, SCC_ORDER)


def _scan_flow(binary: Binary, entry: int) -> dict[int, tuple[int, ...]]:
    """Recursive-descent scan from *entry* following direct control flow."""
    flow: dict[int, tuple[int, ...]] = {}
    worklist = [entry]
    while worklist:
        addr = worklist.pop()
        if addr in flow:
            continue
        try:
            instr = binary.fetch(addr)
        except (FetchError, DecodeError):
            flow[addr] = ()
            continue
        successors = tuple(
            succ for succ in _static_successors(binary, instr)
            if binary.external_name(succ) is None and binary.is_mapped(succ)
        )
        flow[addr] = successors
        for succ in successors:
            if succ not in flow:
                worklist.append(succ)
    return flow


def _tarjan_sccs(nodes: list[int],
                 flow: dict[int, tuple[int, ...]]) -> list[list[int]]:
    """Iterative Tarjan; SCCs returned in completion order.

    Completion order is a *reverse* topological order of the condensation
    (an SCC completes only after every SCC it reaches has completed), so
    ``rank = len(sccs) - 1 - completion_index`` is topological.
    """
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            successors = flow.get(node, ())
            for i in range(child_i, len(successors)):
                succ = successors[i]
                if succ not in index:
                    work[-1] = (node, i + 1)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(sorted(scc))
    return sccs


def condense(nodes: list[int],
             flow: dict[int, tuple[int, ...]]) -> list[list[int]]:
    """SCC condensation of an arbitrary graph, in completion order.

    Completion order is a reverse topological order of the condensation:
    an SCC appears only after every SCC it reaches.  Shared by the bag
    scheduler (instruction flow) and the pointer analysis (call graph,
    which wants callees summarized before their callers)."""
    return _tarjan_sccs(nodes, flow)


def build_schedule(binary: Binary, entry: int) -> Schedule:
    """Scan, condense, and rank the function graph rooted at *entry*.

    Deterministic by construction: nodes are visited in sorted order and
    successor tuples come from the decoder in a fixed order, so the same
    binary always produces the same ranks.
    """
    flow = _scan_flow(binary, entry)
    nodes = sorted(flow)
    sccs = _tarjan_sccs(nodes, flow)

    component_of: dict[int, int] = {}
    for scc_index, members in enumerate(sccs):
        for member in members:
            component_of[member] = scc_index

    total = len(sccs)
    ranks: dict[int, int] = {}
    for scc_index, members in enumerate(sccs):
        rank = total - 1 - scc_index
        for member in members:
            ranks[member] = rank

    loop_heads: set[int] = set()
    loop_ranks: set[int] = set()
    loops = 0
    for scc_index, members in enumerate(sccs):
        is_loop = len(members) > 1 or members[0] in flow.get(members[0], ())
        if not is_loop:
            continue
        loops += 1
        rank = total - 1 - scc_index
        loop_ranks.add(rank)
        scc_set = set(members)
        heads = sorted(
            member for member in members
            if member == entry or any(
                pred not in scc_set
                for pred in _predecessors_of(member, flow)
            )
        )
        # A loop unreachable except through its own cycle (cannot happen
        # from a single-entry scan, but keep the invariant): fall back to
        # the lowest address.
        loop_heads.update(heads or members[:1])

    schedule = Schedule(
        entry=entry,
        ranks=ranks,
        loop_heads=frozenset(loop_heads),
        successors=flow,
        default_rank=total,
        loops=loops,
    )
    object.__setattr__(schedule, "_loop_ranks", frozenset(loop_ranks))
    return schedule


def _predecessors_of(addr: int, flow: dict[int, tuple[int, ...]]):
    for src, dsts in flow.items():
        if addr in dsts:
            yield src
