"""Named counters, timers, and histograms for the observability layer.

Extends the flat integer slots of :mod:`repro.perf.counters` with the
shapes the paper's evaluation needs (join depth, SMT wall time, queue
length, instructions per function) while keeping two properties:

* **one-branch gating** — callers guard on ``tracer.enabled`` (a single
  switch for the whole obs layer), so the disabled cost is unchanged;
* **deterministic aggregation** — histograms use fixed power-of-two
  buckets, so merging per-worker snapshots is order-independent and a
  serial corpus run and a worker-pool run roll up to identical canonical
  content.  Wall-clock timers are the exception and are therefore excluded
  from :func:`canonical_snapshot`, exactly like ``seconds`` in the corpus
  report.

Stdlib-only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

from typing import Any


class Histogram:
    """A power-of-two-bucket histogram of non-negative integers.

    Value ``v`` lands in bucket ``v.bit_length()``: bucket 0 holds the
    value 0, bucket ``i`` holds ``[2**(i-1), 2**i)``.  Fixed boundaries
    make merges associative and deterministic.
    """

    __slots__ = ("counts", "total", "sum", "max")

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.total = 0
        self.sum = 0
        self.max = 0

    def observe(self, value: int) -> None:
        bucket = int(value).bit_length() if value > 0 else 0
        self.counts[bucket] = self.counts.get(bucket, 0) + 1
        self.total += 1
        self.sum += value
        if value > self.max:
            self.max = value

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready copy: bucket keys are the inclusive upper bound."""
        buckets = {
            str((1 << b) - 1 if b else 0): n
            for b, n in sorted(self.counts.items())
        }
        return {"count": self.total, "sum": self.sum, "max": self.max,
                "buckets": buckets}

    @staticmethod
    def merge(into: dict[str, Any], other: dict[str, Any]) -> dict[str, Any]:
        """Merge one snapshot into another (returns *into*)."""
        into["count"] = into.get("count", 0) + other.get("count", 0)
        into["sum"] = into.get("sum", 0) + other.get("sum", 0)
        into["max"] = max(into.get("max", 0), other.get("max", 0))
        buckets = into.setdefault("buckets", {})
        for key, n in other.get("buckets", {}).items():
            buckets[key] = buckets.get(key, 0) + n
        return into


def percentile(snapshot: dict[str, Any], q: float) -> float:
    """The *q*-th percentile (0 < q <= 100) estimated from a snapshot.

    Works on the bucket form :meth:`Histogram.snapshot` emits (and hence
    on merged snapshots): the rank lands in one power-of-two bucket
    ``[lo, hi]`` and the estimate interpolates linearly inside it.  A
    derived view only — nothing is stored, so ``canonical_snapshot``
    merges stay order-independent.
    """
    total = snapshot.get("count", 0)
    if not total:
        return 0.0
    rank = q / 100.0 * total
    seen = 0.0
    buckets = sorted((int(upper), n)
                     for upper, n in snapshot.get("buckets", {}).items())
    for upper, n in buckets:
        if seen + n >= rank:
            lo = 0 if upper == 0 else (upper + 1) // 2
            if n <= 1 or upper == lo:
                return float(min(upper, snapshot.get("max", upper)))
            fraction = (rank - seen) / n
            estimate = lo + fraction * (upper - lo)
            return float(min(estimate, snapshot.get("max", estimate)))
        seen += n
    return float(snapshot.get("max", 0))


def percentiles(snapshot: dict[str, Any],
                qs: tuple[float, ...] = (50, 90, 99)) -> dict[str, float]:
    """p50/p90/p99-style estimates for one histogram snapshot."""
    return {f"p{q:g}": percentile(snapshot, q) for q in qs}


class Metrics:
    """A registry of named counters, wall-time accumulators and histograms.

    All three families are created on first use; names are dotted strings
    (``"smt.queries"``, ``"join.depth"``).  Not thread-safe by design —
    the lifter is single-threaded per process, and worker processes each
    own their module-global instance.
    """

    __slots__ = ("counters", "timers", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers: dict[str, list] = {}   # name -> [seconds, count]
        self.histograms: dict[str, Histogram] = {}

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def add_time(self, name: str, seconds: float) -> None:
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = [0.0, 0]
        timer[0] += seconds
        timer[1] += 1

    def observe(self, name: str, value: int) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def reset(self) -> None:
        self.counters = {}
        self.timers = {}
        self.histograms = {}

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict copy of everything (JSON-ready)."""
        return {
            "counters": dict(self.counters),
            "timers": {name: {"seconds": t[0], "count": t[1]}
                       for name, t in self.timers.items()},
            "histograms": {name: h.snapshot()
                           for name, h in self.histograms.items()},
        }


def canonical_snapshot(snapshot: dict[str, Any]) -> dict[str, Any]:
    """The deterministic view of a metrics snapshot.

    Drops the ``timers`` family (wall-clock) — counters and histograms of
    the quantities this repo instruments are pure functions of the lifted
    task, so they survive into canonical report comparisons.
    """
    return {
        "counters": dict(snapshot.get("counters", {})),
        "histograms": {name: dict(h, buckets=dict(h.get("buckets", {})))
                       for name, h in snapshot.get("histograms", {}).items()},
    }


def merge_snapshots(into: dict[str, Any], other: dict[str, Any]) -> dict:
    """Accumulate one :meth:`Metrics.snapshot` dict into another."""
    counters = into.setdefault("counters", {})
    for name, n in other.get("counters", {}).items():
        counters[name] = counters.get(name, 0) + n
    timers = into.setdefault("timers", {})
    for name, t in other.get("timers", {}).items():
        slot = timers.setdefault(name, {"seconds": 0.0, "count": 0})
        slot["seconds"] += t["seconds"]
        slot["count"] += t["count"]
    histograms = into.setdefault("histograms", {})
    for name, h in other.get("histograms", {}).items():
        Histogram.merge(histograms.setdefault(name, {}), h)
    return into


#: The process-global metrics registry, switched together with the tracer
#: (see :func:`repro.obs.enable`).
metrics = Metrics()
