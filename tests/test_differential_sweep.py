"""Satellite (a): τ-vs-emulator differential sweep, one test per form.

Each supported mnemonic/operand shape in the decode table gets its own
parametrized test case running the lockstep harness with seeded random
operands; a failure names the exact instruction that broke the simulation
relation (Lemma 4.5's hypothesis, checked form by form).
"""

from __future__ import annotations

import pytest

from repro.qa.diffsweep import forms, run_form

_FORMS = forms()


def test_sweep_covers_the_supported_instruction_families():
    kinds = {form.kind for form in _FORMS}
    assert {"alu", "shift", "unary", "muldiv", "mov", "stack", "extend",
            "setcc", "cmovcc", "jcc", "string", "nullary"} <= kinds
    # One form per mnemonic/operand shape — names must be unique.
    names = [form.name for form in _FORMS]
    assert len(names) == len(set(names))
    assert len(names) > 100


@pytest.mark.parametrize("engine", ["tau", "uop"])
@pytest.mark.parametrize("form", _FORMS, ids=lambda form: form.name)
def test_tau_simulates_emulator(form, engine):
    # τ-vs-concrete and uop-vs-concrete: both engines must satisfy the
    # same simulation relation on every form, so a uop divergence from τ
    # shows up as a concrete mismatch naming the instruction.
    failure = run_form(form, seed=2022, engine=engine)
    assert failure is None, failure


@pytest.mark.parametrize("seed", [1, 7, 99])
def test_sweep_battery_clean_across_seeds(seed):
    from repro.qa.diffsweep import run_battery

    assert run_battery(seed) == []


def test_sweep_battery_clean_under_uop_engine():
    from repro.qa.diffsweep import run_battery

    assert run_battery(2022, engine="uop") == []
