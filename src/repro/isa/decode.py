"""Byte-level x86-64 decoder for the supported instruction subset.

``decode(code, offset, addr)`` decodes exactly one instruction.  It is the
implementation behind the paper's ``fetch : W64 -> I`` function
(Definition 3.1).  Decoding arbitrary byte positions is deliberate: the
lifter may be led into the middle of an encoded instruction by a "weird"
control-flow edge and must see whatever those bytes mean.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import (
    ALU_OPS,
    CONDITION_CODES,
    Instruction,
    SHIFT_OPS,
)
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import reg_name


class DecodeError(ValueError):
    """The bytes at the given offset are not a supported instruction."""


_ALU_BY_DIGIT = {digit: name for name, digit in ALU_OPS.items()}
_SHIFT_BY_DIGIT = {digit: name for name, digit in SHIFT_OPS.items()}
_UNARY_BY_DIGIT = {2: "not", 3: "neg", 4: "mul", 5: "imul", 6: "div", 7: "idiv"}


@dataclass
class _Cursor:
    code: bytes
    pos: int

    def u8(self) -> int:
        if self.pos >= len(self.code):
            raise DecodeError("truncated instruction")
        byte = self.code[self.pos]
        self.pos += 1
        return byte

    def peek(self) -> int:
        if self.pos >= len(self.code):
            raise DecodeError("truncated instruction")
        return self.code[self.pos]

    def uint(self, bits: int) -> int:
        nbytes = bits // 8
        if self.pos + nbytes > len(self.code):
            raise DecodeError("truncated immediate")
        value = int.from_bytes(self.code[self.pos:self.pos + nbytes], "little")
        self.pos += nbytes
        return value

    def sint(self, bits: int) -> int:
        value = self.uint(bits)
        sign = 1 << (bits - 1)
        return value - (1 << bits) if value & sign else value


class _Decoder:
    def __init__(self, code: bytes, pos: int):
        self.cur = _Cursor(code, pos)
        self.rex = 0
        self.has_rex = False
        self.prefix66 = False

    # -- width helpers ----------------------------------------------------
    @property
    def op_width(self) -> int:
        """Width selected by prefixes for a non-8-bit operand row."""
        if self.rex & 8:
            return 64
        if self.prefix66:
            return 16
        return 32

    def _reg(self, number: int, width: int, high_bit: int) -> Reg:
        number |= high_bit << 3
        if width == 8 and not self.has_rex and number in (4, 5, 6, 7):
            # Without REX these encode ah/ch/dh/bh, which we do not model.
            raise DecodeError("legacy high-byte register")
        return Reg(reg_name(number, width))

    # -- ModRM/SIB --------------------------------------------------------
    def modrm(self, rm_width: int, reg_width: int | None = None):
        """Parse a ModRM byte; returns (reg_field_number, rm_operand, reg_operand)."""
        byte = self.cur.u8()
        mod, reg_field, rm_field = byte >> 6, (byte >> 3) & 7, byte & 7
        reg_op = None
        if reg_width is not None:
            reg_op = self._reg(reg_field, reg_width, (self.rex >> 2) & 1)
        if mod == 3:
            rm_op: Reg | Mem = self._reg(rm_field, rm_width, self.rex & 1)
            return reg_field, rm_op, reg_op

        base: str | None = None
        index: str | None = None
        scale = 1
        disp = 0
        if rm_field == 4:
            sib = self.cur.u8()
            scale = 1 << (sib >> 6)
            index_field = (sib >> 3) & 7
            base_field = sib & 7
            index_num = index_field | (((self.rex >> 1) & 1) << 3)
            if index_num != 4:  # index=100 with no REX.X means "no index"
                index = reg_name(index_num, 64)
            base_num = base_field | ((self.rex & 1) << 3)
            if base_field == 5 and mod == 0:
                base = None
                disp = self.cur.sint(32)
            else:
                base = reg_name(base_num, 64)
        elif rm_field == 5 and mod == 0:
            base = "rip"
            disp = self.cur.sint(32)
        else:
            base = reg_name(rm_field | ((self.rex & 1) << 3), 64)

        if mod == 1:
            disp = self.cur.sint(8)
        elif mod == 2:
            disp = self.cur.sint(32)
        if index is None:
            scale = 1  # scale bits are meaningless without an index
        if index is not None and index == "rsp":
            raise DecodeError("rsp used as index")
        rm_mem = Mem(rm_width, base=base, index=index, scale=scale, disp=disp)
        return reg_field, rm_mem, reg_op

    # -- main dispatch ----------------------------------------------------
    def decode(self) -> Instruction:
        cur = self.cur
        byte = cur.u8()
        rep = False
        if byte == 0xF3:
            rep = True
            byte = cur.u8()
        if byte == 0x66:
            self.prefix66 = True
            byte = cur.u8()
        if 0x40 <= byte <= 0x4F:
            self.rex = byte & 0xF
            self.has_rex = True
            byte = cur.u8()

        string_ops = {0xA4: "movsb", 0xA5: "movsq" if self.rex & 8 else None,
                      0xAA: "stosb", 0xAB: "stosq" if self.rex & 8 else None,
                      0xAC: "lodsb", 0xAD: "lodsq" if self.rex & 8 else None}
        if byte in string_ops:
            name = string_ops[byte]
            if name is None:
                raise DecodeError("32/16-bit string operations unsupported")
            if rep:
                if name.startswith("lods"):
                    raise DecodeError("rep lods is not meaningful")
                name = f"rep_{name}"
            return Instruction(name)
        if rep:
            raise DecodeError("rep prefix on a non-string instruction")

        width = self.op_width

        # ALU rows: 8 families x 6 opcode slots.
        if byte < 0x40 and (byte & 7) < 6 and not (byte & 7) in (4, 5):
            family = _ALU_BY_DIGIT[byte >> 3]
            slot = byte & 7
            if slot == 0:
                _, rm_op, reg_op = self.modrm(8, 8)
                return Instruction(family, (rm_op, reg_op))
            if slot == 1:
                _, rm_op, reg_op = self.modrm(width, width)
                return Instruction(family, (rm_op, reg_op))
            if slot == 2:
                _, rm_op, reg_op = self.modrm(8, 8)
                return Instruction(family, (reg_op, rm_op))
            if slot == 3:
                _, rm_op, reg_op = self.modrm(width, width)
                return Instruction(family, (reg_op, rm_op))
        if byte < 0x40 and (byte & 7) in (4, 5):
            family = _ALU_BY_DIGIT[byte >> 3]
            if byte & 7 == 4:
                return Instruction(family, (Reg("al"), Imm(cur.uint(8), 8)))
            imm_bits = min(width, 32)
            return Instruction(
                family,
                (Reg(reg_name(0, width)), Imm(cur.sint(imm_bits), width)),
            )

        if byte in (0x80, 0x81, 0x83):
            op_w = 8 if byte == 0x80 else width
            digit, rm_op, _ = self.modrm(op_w)
            family = _ALU_BY_DIGIT[digit]
            if byte == 0x83:
                return Instruction(family, (rm_op, Imm(cur.sint(8), op_w)))
            imm_bits = min(op_w, 32)
            return Instruction(family, (rm_op, Imm(cur.sint(imm_bits), op_w)))

        if byte in (0x88, 0x89):
            op_w = 8 if byte == 0x88 else width
            _, rm_op, reg_op = self.modrm(op_w, op_w)
            return Instruction("mov", (rm_op, reg_op))
        if byte in (0x8A, 0x8B):
            op_w = 8 if byte == 0x8A else width
            _, rm_op, reg_op = self.modrm(op_w, op_w)
            return Instruction("mov", (reg_op, rm_op))
        if byte == 0x8D:
            _, rm_op, reg_op = self.modrm(width, width)
            if not isinstance(rm_op, Mem):
                raise DecodeError("lea with register source")
            return Instruction("lea", (reg_op, rm_op))
        if byte == 0x8F:
            digit, rm_op, _ = self.modrm(64)
            if digit != 0:
                raise DecodeError("bad 8F /digit")
            return Instruction("pop", (rm_op,))
        if 0xB8 <= byte <= 0xBF:
            number = (byte - 0xB8) | ((self.rex & 1) << 3)
            if width == 64:
                return Instruction("movabs", (Reg(reg_name(number, 64)), Imm(cur.uint(64), 64)))
            return Instruction("mov", (Reg(reg_name(number, width)), Imm(cur.uint(width), width)))
        if 0xB0 <= byte <= 0xB7:
            number = (byte - 0xB0) | ((self.rex & 1) << 3)
            reg = self._reg(number & 7, 8, (number >> 3) & 1)
            return Instruction("mov", (reg, Imm(cur.uint(8), 8)))
        if byte in (0xC6, 0xC7):
            op_w = 8 if byte == 0xC6 else width
            digit, rm_op, _ = self.modrm(op_w)
            if digit != 0:
                raise DecodeError("bad C6/C7 /digit")
            imm_bits = min(op_w, 32)
            return Instruction("mov", (rm_op, Imm(cur.sint(imm_bits), op_w)))

        if 0x50 <= byte <= 0x57:
            number = (byte - 0x50) | ((self.rex & 1) << 3)
            return Instruction("push", (Reg(reg_name(number, 64)),))
        if 0x58 <= byte <= 0x5F:
            number = (byte - 0x58) | ((self.rex & 1) << 3)
            return Instruction("pop", (Reg(reg_name(number, 64)),))
        if byte == 0x68:
            return Instruction("push", (Imm(cur.sint(32), 32),))
        if byte == 0x6A:
            return Instruction("push", (Imm(cur.sint(8), 8),))
        if byte == 0x69:
            _, rm_op, reg_op = self.modrm(width, width)
            return Instruction("imul", (reg_op, rm_op, Imm(cur.sint(min(width, 32)), width)))
        if byte == 0x6B:
            _, rm_op, reg_op = self.modrm(width, width)
            return Instruction("imul", (reg_op, rm_op, Imm(cur.sint(8), width)))

        if byte in (0x84, 0x85):
            op_w = 8 if byte == 0x84 else width
            _, rm_op, reg_op = self.modrm(op_w, op_w)
            return Instruction("test", (rm_op, reg_op))
        if byte in (0x86, 0x87):
            op_w = 8 if byte == 0x86 else width
            _, rm_op, reg_op = self.modrm(op_w, op_w)
            return Instruction("xchg", (rm_op, reg_op))

        if byte == 0x63:
            _, rm_op, reg_op = self.modrm(32, width)
            return Instruction("movsxd", (reg_op, rm_op))

        if 0x70 <= byte <= 0x7F:
            cc = CONDITION_CODES[byte - 0x70]
            return Instruction(f"j{cc}", (Imm(cur.sint(8), 8),))
        if byte == 0xEB:
            return Instruction("jmp", (Imm(cur.sint(8), 8),))
        if byte == 0xE9:
            return Instruction("jmp", (Imm(cur.sint(32), 32),))
        if byte == 0xE8:
            return Instruction("call", (Imm(cur.sint(32), 32),))
        if byte == 0xC3:
            return Instruction("ret")
        if byte == 0xC2:
            return Instruction("ret", (Imm(cur.uint(16), 16),))
        if byte == 0xC9:
            return Instruction("leave")
        if byte == 0x90:
            return Instruction("nop")
        if byte == 0xF4:
            return Instruction("hlt")
        if byte == 0xCC:
            return Instruction("int3")
        if byte == 0x99:
            return Instruction("cqo" if self.rex & 8 else "cdq")
        if byte == 0x98 and self.rex & 8:
            return Instruction("cdqe")

        if byte in (0xC0, 0xC1, 0xD0, 0xD1, 0xD2, 0xD3):
            op_w = 8 if byte in (0xC0, 0xD0, 0xD2) else width
            digit, rm_op, _ = self.modrm(op_w)
            if digit not in _SHIFT_BY_DIGIT:
                raise DecodeError(f"bad shift /digit {digit}")
            family = _SHIFT_BY_DIGIT[digit]
            if byte in (0xC0, 0xC1):
                return Instruction(family, (rm_op, Imm(cur.uint(8), 8)))
            if byte in (0xD0, 0xD1):
                return Instruction(family, (rm_op, Imm(1, 8)))
            return Instruction(family, (rm_op, Reg("cl")))

        if byte in (0xF6, 0xF7):
            op_w = 8 if byte == 0xF6 else width
            digit, rm_op, _ = self.modrm(op_w)
            if digit == 0:
                imm_bits = min(op_w, 32)
                return Instruction("test", (rm_op, Imm(cur.sint(imm_bits), op_w)))
            if digit in _UNARY_BY_DIGIT:
                return Instruction(_UNARY_BY_DIGIT[digit], (rm_op,))
            raise DecodeError(f"bad F6/F7 /digit {digit}")

        if byte == 0xFE:
            digit, rm_op, _ = self.modrm(8)
            if digit == 0:
                return Instruction("inc", (rm_op,))
            if digit == 1:
                return Instruction("dec", (rm_op,))
            raise DecodeError(f"bad FE /digit {digit}")
        if byte == 0xFF:
            # The jmp/call/push slots default to 64-bit operands.
            digit, rm_op, _ = self.modrm(width)
            if digit in (0, 1):
                return Instruction("inc" if digit == 0 else "dec", (rm_op,))
            rm64 = rm_op
            if isinstance(rm_op, Mem) and rm_op.width != 64:
                rm64 = Mem(64, rm_op.base, rm_op.index, rm_op.scale, rm_op.disp)
            elif isinstance(rm_op, Reg) and rm_op.width != 64:
                rm64 = Reg(reg_name(rm_op.number, 64))
            if digit == 2:
                return Instruction("call", (rm64,))
            if digit == 4:
                return Instruction("jmp", (rm64,))
            if digit == 6:
                return Instruction("push", (rm64,))
            raise DecodeError(f"bad FF /digit {digit}")

        if byte == 0x0F:
            return self._decode_0f()

        raise DecodeError(f"unsupported opcode {byte:#04x}")

    def _decode_0f(self) -> Instruction:
        cur = self.cur
        byte = cur.u8()
        width = self.op_width
        if byte == 0x05:
            return Instruction("syscall")
        if byte == 0x0B:
            return Instruction("ud2")
        if byte == 0xAF:
            _, rm_op, reg_op = self.modrm(width, width)
            return Instruction("imul", (reg_op, rm_op))
        if 0x80 <= byte <= 0x8F:
            cc = CONDITION_CODES[byte - 0x80]
            return Instruction(f"j{cc}", (Imm(cur.sint(32), 32),))
        if 0x90 <= byte <= 0x9F:
            cc = CONDITION_CODES[byte - 0x90]
            digit, rm_op, _ = self.modrm(8)
            if digit != 0:
                raise DecodeError("bad setcc /digit")
            return Instruction(f"set{cc}", (rm_op,))
        if 0x40 <= byte <= 0x4F:
            cc = CONDITION_CODES[byte - 0x40]
            _, rm_op, reg_op = self.modrm(width, width)
            return Instruction(f"cmov{cc}", (reg_op, rm_op))
        if byte in (0xB6, 0xB7, 0xBE, 0xBF):
            src_w = 8 if byte in (0xB6, 0xBE) else 16
            mnemonic = "movzx" if byte in (0xB6, 0xB7) else "movsx"
            _, rm_op, reg_op = self.modrm(src_w, width)
            return Instruction(mnemonic, (reg_op, rm_op))
        raise DecodeError(f"unsupported opcode 0f {byte:#04x}")


def decode(code: bytes, offset: int = 0, addr: int | None = None) -> Instruction:
    """Decode one instruction from *code* at *offset*.

    If *addr* is given, the returned instruction carries ``addr`` and its
    encoded ``size`` so that branch targets can be computed.
    """
    decoder = _Decoder(code, offset)
    instr = decoder.decode()
    size = decoder.cur.pos - offset
    return instr.at(addr if addr is not None else offset, size)
