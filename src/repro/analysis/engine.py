"""The generic worklist dataflow engine.

A :class:`Dataflow` problem supplies the lattice (bottom, join, optional
widening) and a per-instruction transfer function; :func:`solve` iterates a
worklist over one :class:`FunctionView` to the least fixpoint, applying the
widening operator once a block has been re-joined more than ``widen_after``
times (the same guard the lifter uses for its own interval hulls), and
bailing out — flagged, never silently — if a pathological lattice still
refuses to converge.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.cfgview import FunctionView
from repro.isa import Instruction

Value = Any
Transfer = Callable[[Instruction, Value], Value]


@dataclass
class Dataflow:
    """A dataflow problem: direction, lattice, transfer.

    ``transfer(instr, value)`` maps the fact *before* an instruction to the
    fact *after* it — in program order for forward problems, in reverse
    program order for backward ones (i.e. backward transfer maps the fact
    after the instruction to the fact before it).
    """

    direction: str                      # "forward" | "backward"
    boundary: Value                     # fact at entry (fwd) / at exits (bwd)
    bottom: Value
    join: Callable[[Value, Value], Value]
    transfer: Transfer
    widen: Callable[[Value, Value], Value] | None = None
    widen_after: int = 64

    def __post_init__(self) -> None:
        if self.direction not in ("forward", "backward"):
            raise ValueError(f"bad direction: {self.direction!r}")


@dataclass
class Solution:
    """Fixpoint facts per block.

    ``entry``/``exit`` are always in *program order*: ``entry[b]`` is the
    fact holding before the block's first instruction regardless of the
    problem's direction."""

    entry: dict[int, Value] = field(default_factory=dict)
    exit: dict[int, Value] = field(default_factory=dict)
    converged: bool = True
    iterations: int = 0

    def before_each(
        self, view: FunctionView, problem: Dataflow, leader: int
    ) -> list[tuple[Instruction, Value]]:
        """Per-instruction facts inside one block: ``(instr, fact)`` pairs
        where the fact holds *before* the instruction (program order)."""
        instrs = view.instrs.get(leader, [])
        if problem.direction == "forward":
            value = self.entry.get(leader, problem.bottom)
            out = []
            for instr in instrs:
                out.append((instr, value))
                value = problem.transfer(instr, value)
            return out
        value = self.exit.get(leader, problem.bottom)
        out = []
        for instr in reversed(instrs):
            value = problem.transfer(instr, value)
            out.append((instr, value))
        out.reverse()
        return out

    def after_each(
        self, view: FunctionView, problem: Dataflow, leader: int
    ) -> list[tuple[Instruction, Value]]:
        """Per-instruction facts holding *after* each instruction."""
        instrs = view.instrs.get(leader, [])
        if problem.direction == "forward":
            value = self.entry.get(leader, problem.bottom)
            out = []
            for instr in instrs:
                value = problem.transfer(instr, value)
                out.append((instr, value))
            return out
        value = self.exit.get(leader, problem.bottom)
        out = []
        for instr in reversed(instrs):
            out.append((instr, value))
            value = problem.transfer(instr, value)
        out.reverse()
        return out


def _block_transfer(
    view: FunctionView, problem: Dataflow, leader: int, value: Value
) -> Value:
    instrs = view.instrs.get(leader, [])
    ordered = instrs if problem.direction == "forward" else reversed(instrs)
    for instr in ordered:
        value = problem.transfer(instr, value)
    return value


def solve(view: FunctionView, problem: Dataflow) -> Solution:
    """Iterate *problem* over *view* to a fixpoint."""
    forward = problem.direction == "forward"
    if forward:
        sources = (view.entry,)
        edges_in = view.preds        # facts flow from these into a block
        edges_out = view.succs
    else:
        sources = view.exit_blocks()
        edges_in = view.succs
        edges_out = view.preds

    #: fact at the block's dataflow *input* (entry if forward, exit if not).
    inputs: dict[int, Value] = {b: problem.bottom for b in view.blocks}
    outputs: dict[int, Value] = {b: problem.bottom for b in view.blocks}
    for block in sources:
        if block in inputs:
            inputs[block] = problem.boundary

    worklist: deque[int] = deque(view.blocks)
    queued = set(worklist)
    visits: dict[int, int] = {}
    iterations = 0
    converged = True
    hard_cap = max(1, len(view.blocks)) * max(problem.widen_after, 1) * 8

    while worklist:
        iterations += 1
        if iterations > hard_cap:
            converged = False
            break
        leader = worklist.popleft()
        queued.discard(leader)

        value = inputs[leader]
        for pred in edges_in.get(leader, ()):
            value = problem.join(value, outputs[pred])
        if leader in (sources if not forward else ()):
            value = problem.join(value, problem.boundary)
        visits[leader] = visits.get(leader, 0) + 1
        if visits[leader] > problem.widen_after and problem.widen is not None:
            value = problem.widen(inputs[leader], value)
        inputs[leader] = value

        new_output = _block_transfer(view, problem, leader, value)
        if new_output == outputs[leader] and visits[leader] > 1:
            continue
        outputs[leader] = new_output
        for nxt in edges_out.get(leader, ()):
            if nxt not in queued:
                worklist.append(nxt)
                queued.add(nxt)

    solution = Solution(converged=converged, iterations=iterations)
    if forward:
        solution.entry = inputs
        solution.exit = outputs
    else:
        solution.entry = outputs
        solution.exit = inputs
    return solution
