"""Generated Isabelle step-equation tests (structure + spot semantics)."""

from __future__ import annotations

import pytest

from repro.export.equations import instruction_equations, step_term
from repro.isa import Imm, Mem, insn


def at(instruction, addr=0x401000, size=None):
    from repro.isa import encode

    return instruction.at(addr, size or len(encode(instruction)))


def test_mov_reg_equation():
    term = step_term(at(insn("mov", "rbp", "rsp")))
    assert "''rbp'' := (reg σ ''rsp'')" in term
    assert "rip := (0x401003)" in term


def test_push_updates_rsp_and_memory():
    term = step_term(at(insn("push", "rbp")))
    assert "''rsp'' := (reg σ ''rsp'') - 8" in term
    assert "write_mem (mem σ) ((reg σ ''rsp'') - 8) 8" in term


def test_cmp_sets_flags_without_writeback():
    term = step_term(at(insn("cmp", "rax", "rcx")))
    assert "''zf''" in term and "''cf''" in term
    assert "''rax'' :=" not in term  # no destination write


def test_conditional_jump_uses_flag_condition():
    term = step_term(at(insn("ja", Imm(0x10, 32))))
    assert "flag σ ''cf'' = 0 ∧ flag σ ''zf'' = 0" in term
    assert "rip := (if" in term


def test_ret_reads_return_address():
    term = step_term(at(insn("ret")))
    assert "read_mem (mem σ) (reg σ ''rsp'') 8" in term
    assert "''rsp'' := (reg σ ''rsp'') + 8" in term


def test_memory_store_uses_write_mem():
    term = step_term(at(insn("mov", Mem(64, base="rbp", disp=-8), "rdi")))
    assert "write_mem (mem σ)" in term
    assert "0xfffffffffffffff8" in term  # the -8 displacement


def test_32bit_write_masks():
    term = step_term(at(insn("mov", "eax", Imm(7, 32))))
    assert "AND mask 32" in term


def test_terminal_sets_halted():
    term = step_term(at(insn("hlt")))
    assert "halted := True" in term


def test_shift_has_honest_undefined_flags():
    term = step_term(at(insn("shl", "rax", Imm(4, 8))))
    assert "<<" in term
    assert "undefined" in term  # CF/OF underspecified, not wrong


def test_equation_block_structure():
    instructions = {
        0x401000: at(insn("push", "rbp"), 0x401000),
        0x401001: at(insn("ret"), 0x401001),
    }
    text = instruction_equations(instructions)
    assert text.count("definition \"step_") == 2
    assert text.count("lemma step_at_") == 2
    # Every record update is brace-balanced.
    assert text.count("σ⦇") == text.count("⦈")


def test_all_supported_mnemonics_have_terms():
    """step_term must not raise for any instruction the lifter emits."""
    from repro.isa.instruction import ALU_OPS, SHIFT_OPS

    cases = [insn(m, "rax", "rcx") for m in sorted(ALU_OPS)]
    cases += [insn(m, "rax", Imm(3, 8)) for m in sorted(SHIFT_OPS)]
    cases += [
        insn("mov", "rax", Mem(64, base="rsp", index="rcx", scale=8)),
        insn("lea", "rdx", Mem(64, base="rip", disp=0x40)),
        insn("movzx", "eax", "al"), insn("movsx", "rax", "cl"),
        insn("imul", "rax", "rbx"), insn("imul", "rax", "rbx", Imm(3, 32)),
        insn("div", "rcx"), insn("idiv", "rcx"), insn("mul", "rcx"),
        insn("cqo"), insn("cdq"), insn("cdqe"),
        insn("push", Imm(5, 32)), insn("pop", "r12"), insn("leave"),
        insn("jmp", Imm(4, 32)), insn("jmp", "rax"),
        insn("call", Imm(4, 32)), insn("call", Mem(64, base="rbx")),
        insn("ret"), insn("sete", "al"), insn("cmovg", "rax", "rbx"),
        insn("xchg", "rax", "rbx"), insn("inc", "rax"), insn("neg", "rcx"),
        insn("not", "rdx"), insn("nop"), insn("ud2"),
        insn("rep_stosq"), insn("movsb"),
    ]
    for case in cases:
        term = step_term(at(case))
        assert term.startswith("σ⦇") and term.endswith("⦈"), case
