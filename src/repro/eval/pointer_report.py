"""The pointer-precision table: ``python -m repro.eval pointer``.

One row per corpus binary: access sites classified, how many are precise
(MAY-set free of ``Unknown``), the region mix, escapes, and how many
call-site summaries degraded to TOP.  The totals row is the headline
precision number quoted in the PR notes; the differential soundness gate
(:mod:`repro.analysis.pointer.soundness`) guards the other direction —
that the precise sets are not *wrongly* precise.
"""

from __future__ import annotations

from repro.analysis.context import AnalysisContext
from repro.analysis.pointer.report import PrecisionStats, precision_stats
from repro.corpus import build_corpus
from repro.hoare import lift


def corpus_precision(scale: int = 1,
                     timeout_seconds: float = 10.0) -> dict[str, PrecisionStats]:
    """name -> precision stats, over every corpus binary (sorted)."""
    corpus = build_corpus(scale)
    out: dict[str, PrecisionStats] = {}
    for corpus_binary in sorted(corpus.binaries, key=lambda b: b.name):
        result = lift(corpus_binary.binary, timeout_seconds=timeout_seconds,
                      cache=False)
        out[corpus_binary.name] = precision_stats(
            AnalysisContext(result).pointer)
    return out


def _totals(stats: dict[str, PrecisionStats]) -> PrecisionStats:
    fields = ("functions", "accesses", "precise", "stack", "global_",
              "heap", "escapes", "top_summaries", "converged")
    summed = {f: sum(getattr(s, f) for s in stats.values()) for f in fields}
    return PrecisionStats(**summed)


def generate_pointer_report(scale: int = 1,
                            timeout_seconds: float = 10.0) -> tuple[dict, str]:
    """Returns ``(payload, text)`` like the other eval generators."""
    stats = corpus_precision(scale=scale, timeout_seconds=timeout_seconds)
    total = _totals(stats)
    header = (f"{'binary':<16} {'fns':>4} {'sites':>6} {'precise':>8} "
              f"{'prec%':>7} {'stack':>6} {'glob':>5} {'heap':>5} "
              f"{'esc':>4} {'top':>4}")
    lines = [f"Pointer precision (scale-{scale} corpus)", header,
             "-" * len(header)]
    for name, s in stats.items():
        lines.append(
            f"{name:<16} {s.functions:>4} {s.accesses:>6} {s.precise:>8} "
            f"{s.precision:>7.1%} {s.stack:>6} {s.global_:>5} {s.heap:>5} "
            f"{s.escapes:>4} {s.top_summaries:>4}")
    lines.append("-" * len(header))
    s = total
    lines.append(
        f"{'Total':<16} {s.functions:>4} {s.accesses:>6} {s.precise:>8} "
        f"{s.precision:>7.1%} {s.stack:>6} {s.global_:>5} {s.heap:>5} "
        f"{s.escapes:>4} {s.top_summaries:>4}")
    payload = {
        "scale": scale,
        "binaries": {name: s.as_dict() for name, s in stats.items()},
        "total": total.as_dict(),
    }
    return payload, "\n".join(lines)
