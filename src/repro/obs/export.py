"""Trace serialization: JSONL event streams and Chrome ``trace_event`` JSON.

Two consumers, two formats:

* **JSONL** — one JSON object per line, schema-checked by
  :func:`validate_event_obj` (CI lifts a binary with tracing on and
  validates every emitted line against it);
* **Chrome trace_event** — the ``{"traceEvents": [...]}`` envelope that
  ``chrome://tracing`` and Perfetto load directly: spans become complete
  (``"ph": "X"``) slices, everything else becomes thread-scoped instant
  events, so a lift renders as a flamegraph with annotations/SMT verdicts
  as markers.

Event ``detail`` values are arbitrary objects on the hot path; they are
made JSON-safe here (``str()`` fallback), never at emit time.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.obs.tracer import Event

#: The JSONL schema, field -> required type(s).  ``addr`` may be null.
EVENT_FIELDS = {
    "ts": (int, float),
    "kind": (str,),
    "addr": (int, type(None)),
    "detail": (dict,),
}


def json_safe(value: Any):
    """Coerce a detail value to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    return str(value)


def event_to_obj(event: Event) -> dict[str, Any]:
    """One event as a JSONL-ready dict."""
    return {
        "ts": event.ts,
        "kind": event.kind,
        "addr": event.addr,
        "detail": {key: json_safe(value)
                   for key, value in event.detail.items()},
    }


def events_jsonl(events: Iterable[Event]) -> str:
    """The whole event stream as JSON Lines (one object per line)."""
    return "\n".join(json.dumps(event_to_obj(event), sort_keys=True)
                     for event in events)


def validate_event_obj(obj: Any) -> list[str]:
    """Schema-check one decoded JSONL object; returns the violations."""
    errors: list[str] = []
    if not isinstance(obj, dict):
        return [f"event is {type(obj).__name__}, expected object"]
    for name, types in EVENT_FIELDS.items():
        if name not in obj:
            errors.append(f"missing field {name!r}")
        elif not isinstance(obj[name], types):
            expected = "/".join(t.__name__ for t in types)
            errors.append(
                f"field {name!r} is {type(obj[name]).__name__}, "
                f"expected {expected}"
            )
    # booleans are ints in Python; ts/addr must not be bools.
    for name in ("ts", "addr"):
        if isinstance(obj.get(name), bool):
            errors.append(f"field {name!r} is bool, expected number")
    extra = set(obj) - set(EVENT_FIELDS)
    if extra:
        errors.append(f"unknown fields {sorted(extra)}")
    if isinstance(obj.get("kind"), str) and not obj["kind"]:
        errors.append("field 'kind' is empty")
    return errors


def validate_jsonl(text: str) -> list[str]:
    """Schema-check a JSONL document; returns per-line violations."""
    errors: list[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: invalid JSON ({exc.msg})")
            continue
        errors.extend(f"line {lineno}: {problem}"
                      for problem in validate_event_obj(obj))
    return errors


# -- Chrome trace_event ----------------------------------------------------

_US = 1_000_000  # trace_event timestamps are microseconds


def to_chrome_trace(events: Iterable[Event], pid: int = 1,
                    process_name: str = "repro") -> dict[str, Any]:
    """The event stream in Chrome ``trace_event`` JSON (object format).

    Load the serialized dict in ``chrome://tracing`` or Perfetto.  Spans
    map to complete slices (begin timestamp + duration); instantaneous
    events map to thread-scoped instants with their detail in ``args``.
    """
    trace: list[dict[str, Any]] = [{
        "ph": "M", "pid": pid, "tid": 1, "name": "process_name",
        "args": {"name": process_name},
    }]
    for event in events:
        args = {key: json_safe(value) for key, value in event.detail.items()}
        if event.addr is not None:
            args.setdefault("addr", hex(event.addr))
        if event.kind == "span":
            name = args.pop("name", "span")
            dur = args.pop("dur", 0.0)
            args.pop("depth", None)
            trace.append({
                "ph": "X", "pid": pid, "tid": 1, "cat": "span",
                "name": name, "ts": round(event.ts * _US, 3),
                "dur": round(float(dur) * _US, 3), "args": args,
            })
        else:
            trace.append({
                "ph": "i", "s": "t", "pid": pid, "tid": 1,
                "cat": event.kind.split(".")[0], "name": event.kind,
                "ts": round(event.ts * _US, 3), "args": args,
            })
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def chrome_trace_json(events: Iterable[Event], pid: int = 1,
                      process_name: str = "repro") -> str:
    return json.dumps(to_chrome_trace(events, pid=pid,
                                      process_name=process_name),
                      sort_keys=True)
