"""Soundness of the SMT verdict cache.

The cache key is ``(addr0, size0, addr1, size1, bounds fingerprint)``; the
fingerprint captures every interval the decision procedure can consult.
The property under test: a verdict served from the cache is *always* the
verdict a fresh run of the decision procedure would produce — across
randomized queries, randomized bounds, and the adversarial case where an
earlier query saw no bounds (TOP) and a later one does.
"""

from __future__ import annotations

import random

import pytest

from repro.expr.ast import Const, Expr, Var
from repro.expr.simplify import add, mul, zext
from repro.perf import reset_caches
from repro.smt.intervals import Interval
from repro.smt.solver import (
    NO_BOUNDS,
    Fork,
    Region,
    _decide_relation_uncached,
    _possible_relations_uncached,
    decide_relation,
    possible_relations,
    solver_cache_stats,
)


class MapBounds:
    """A BoundsProvider backed by a plain dict."""

    def __init__(self, mapping: dict[Expr, Interval]):
        self.mapping = mapping

    def interval_of(self, term: Expr) -> Interval | None:
        return self.mapping.get(term)


@pytest.fixture(autouse=True)
def _fresh_caches():
    reset_caches()
    yield
    reset_caches()


def random_address(rng: random.Random) -> Expr:
    """A random pointer expression of the shapes the lifter produces."""
    base = rng.choice([
        Var("rsp0"), Var("rdi0"), Var("heap"), Const(rng.randrange(0x1000)),
    ])
    expr = base
    if rng.random() < 0.6:
        expr = add(expr, Const(rng.randrange(-64, 64)))
    if rng.random() < 0.4:
        index = zext(Var("idx", width=32), 64)
        expr = add(expr, mul(index, Const(rng.choice([1, 2, 4, 8]))))
    return expr


def random_bounds(rng: random.Random, *addrs: Expr) -> MapBounds:
    """Random intervals for a random subset of the addresses' variables."""
    from repro.smt.linear import linearize

    mapping: dict[Expr, Interval] = {}
    for addr in addrs:
        for term, _ in linearize(addr).terms:
            if rng.random() < 0.5:
                lo = rng.randrange(0, 1 << 12)
                mapping[term] = Interval(lo, lo + rng.randrange(0, 1 << 12))
    return MapBounds(mapping)


def test_randomized_cached_verdict_equals_fresh_verdict():
    rng = random.Random(0x5EED)
    queries = []
    for _ in range(300):
        r0 = Region(random_address(rng), rng.choice([1, 2, 4, 8, 16]))
        r1 = Region(random_address(rng), rng.choice([1, 2, 4, 8, 16]))
        bounds = random_bounds(rng, r0.addr, r1.addr)
        queries.append((r0, r1, bounds))

    # First pass populates the caches; the second pass re-issues every
    # query (now mostly cache hits) and checks each answer against a
    # fresh, uncached run of the decision procedure.
    for r0, r1, bounds in queries:
        decide_relation(r0, r1, bounds)
        possible_relations(r0, r1, bounds)
    for r0, r1, bounds in queries:
        cached = decide_relation(r0, r1, bounds)
        fresh = _decide_relation_uncached(r0, r1, bounds)
        assert cached == fresh, f"stale verdict for {r0} vs {r1}"

        fork_cached = possible_relations(r0, r1, bounds)
        fork_fresh = _possible_relations_uncached(r0, r1, bounds)
        assert fork_cached == fork_fresh

    stats = solver_cache_stats()
    assert stats["decide"]["hits"] > 0
    assert stats["decide"]["misses"] > 0
    assert stats["fork"]["hits"] > 0


def test_repeat_query_hits_cache_with_identical_verdict():
    r0 = Region(Var("p"), 8)
    r1 = Region(add(Var("p"), Const(32)), 8)
    first = decide_relation(r0, r1)
    before = solver_cache_stats()["decide"]["hits"]
    second = decide_relation(r0, r1)
    assert second == first
    assert solver_cache_stats()["decide"]["hits"] == before + 1


def test_verdict_survives_cache_clear():
    rng = random.Random(7)
    queries = []
    for _ in range(40):
        r0 = Region(random_address(rng), rng.choice([1, 2, 4, 8]))
        r1 = Region(random_address(rng), rng.choice([1, 2, 4, 8]))
        bounds = random_bounds(rng, r0.addr, r1.addr)
        queries.append((r0, r1, bounds, decide_relation(r0, r1, bounds)))
    reset_caches()
    for r0, r1, bounds, verdict in queries:
        assert decide_relation(r0, r1, bounds) == verdict


def test_top_verdict_not_served_once_bounds_appear():
    """A verdict computed with *no* bound on a term must not shadow a later
    query where the term is bounded — the exact staleness the fingerprint
    key exists to prevent."""
    gap = Var("k")
    r0 = Region(Var("p"), 8)
    r1 = Region(add(Var("p"), gap), 8)

    unbounded = decide_relation(r0, r1, NO_BOUNDS)
    assert unbounded.relation is None  # nothing provable without bounds

    bounded = decide_relation(r0, r1, MapBounds({gap: Interval(8, 100)}))
    assert bounded.relation is not None  # k in [8, 100] separates them
    # And the reverse direction: the bounded verdict must not leak back.
    assert decide_relation(r0, r1, NO_BOUNDS).relation is None


def test_fork_cache_respects_bounds():
    idx = zext(Var("i", width=32), 64)
    r0 = Region(Var("t"), 8)
    r1 = Region(add(Var("t"), mul(idx, Const(8))), 8)

    free = possible_relations(r0, r1, NO_BOUNDS)
    assert isinstance(free, Fork)

    pinned = possible_relations(
        r0, r1, MapBounds({idx: Interval(1, 3), Var("i", width=32): Interval(1, 3)})
    )
    # With 8*i in [8, 24] the alias case is refuted; without bounds it isn't.
    assert pinned.relations != free.relations
    assert possible_relations(r0, r1, NO_BOUNDS) == free
