"""Control-flow-graph views over a Hoare graph.

The paper positions the verified HG as "a reliable base for decompilation"
(Section 7): this module derives the classic downstream artifacts — basic
blocks, a function partition, a networkx digraph, and DOT output — from
the lifted representation, so consumers get a CFG whose every edge is
backed by a proven Hoare triple.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hoare.lifter import LiftResult


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence.

    A block always contains at least its leader address; an empty
    ``addresses`` list is a construction error and :attr:`end` refuses to
    paper over it."""

    start: int
    addresses: list[int] = field(default_factory=list)

    @property
    def end(self) -> int:
        if not self.addresses:
            raise ValueError(
                f"empty basic block at {self.start:#x} has no end address"
            )
        return self.addresses[-1]

    def __str__(self) -> str:
        if not self.addresses:
            return f"block {self.start:#x} <empty>"
        return f"block {self.start:#x}..{self.end:#x} ({len(self.addresses)})"


@dataclass
class CFG:
    """Basic blocks + edges (+ the function each block belongs to)."""

    blocks: dict[int, BasicBlock] = field(default_factory=dict)
    edges: set[tuple[int, int]] = field(default_factory=set)
    functions: dict[int, set[int]] = field(default_factory=dict)
    returns: set[int] = field(default_factory=set)   # block -> function exit
    exits: set[int] = field(default_factory=set)     # block -> program exit

    def block_of(self, addr: int) -> BasicBlock | None:
        for block in self.blocks.values():
            if addr in block.addresses:
                return block
        return None

    # -- metadata accessors (the analysis layer's view) ---------------------

    def successor_map(self) -> dict[int, tuple[int, ...]]:
        """Block leader -> sorted successor leaders."""
        out: dict[int, set[int]] = {leader: set() for leader in self.blocks}
        for src, dst in self.edges:
            if src in out:
                out[src].add(dst)
        return {leader: tuple(sorted(dsts)) for leader, dsts in out.items()}

    def predecessor_map(self) -> dict[int, tuple[int, ...]]:
        """Block leader -> sorted predecessor leaders."""
        out: dict[int, set[int]] = {leader: set() for leader in self.blocks}
        for src, dst in self.edges:
            if dst in out:
                out[dst].add(src)
        return {leader: tuple(sorted(srcs)) for leader, srcs in out.items()}

    def leader_of(self, addr: int) -> int | None:
        """The leader of the block containing instruction *addr*."""
        block = self.block_of(addr)
        return block.start if block is not None else None

    def function_of(self, leader: int) -> int | None:
        """The entry of the function that block *leader* belongs to."""
        for entry, members in sorted(self.functions.items()):
            if leader in members:
                return entry
        return None

    def instructions_of(self, leader: int, result: LiftResult) -> list:
        """The decoded instructions of one block, in address order."""
        block = self.blocks[leader]
        return [
            result.instructions[addr]
            for addr in block.addresses
            if addr in result.instructions
        ]


def _instruction_flow(result: LiftResult) -> dict[int, set[int]]:
    """instruction address -> set of successor instruction addresses."""
    flow: dict[int, set[int]] = {addr: set() for addr in result.instructions}
    for edge in result.graph.edges:
        src_addr = edge.instr_addr
        if src_addr not in flow:
            continue
        if edge.dst[0] == "code":
            flow[src_addr].add(edge.dst[1])
    return flow


def build_cfg(result: LiftResult) -> CFG:
    """Derive basic blocks and block edges from the lifted graph."""
    flow = _instruction_flow(result)
    predecessors: dict[int, set[int]] = {addr: set() for addr in flow}
    for src, dsts in flow.items():
        for dst in dsts:
            predecessors.setdefault(dst, set()).add(src)

    # Leaders: entry, call targets/function entries, any join point, any
    # target of a multi-way transfer.
    leaders: set[int] = set()
    for addr in flow:
        preds = predecessors.get(addr, set())
        if len(preds) != 1:
            leaders.add(addr)
            continue
        (pred,) = preds
        if len(flow.get(pred, ())) != 1:
            leaders.add(addr)
        instr = result.instructions.get(pred)
        if instr is not None and instr.mnemonic in ("call", "ret"):
            leaders.add(addr)
    leaders.add(result.entry)

    cfg = CFG()
    for leader in sorted(leaders):
        if leader not in result.instructions:
            continue
        block = BasicBlock(start=leader)
        addr = leader
        while True:
            block.addresses.append(addr)
            successors = flow.get(addr, set())
            if len(successors) != 1:
                break
            (next_addr,) = successors
            if next_addr in leaders or next_addr not in result.instructions:
                break
            addr = next_addr
        cfg.blocks[leader] = block

    for leader, block in cfg.blocks.items():
        last = block.addresses[-1]
        for successor in flow.get(last, ()):
            if successor in cfg.blocks:
                cfg.edges.add((leader, successor))
        instr = result.instructions.get(last)
        for edge in result.graph.edges:
            if edge.instr_addr != last:
                continue
            if edge.dst[0] == "ret":
                cfg.returns.add(leader)
            elif edge.dst[0] == "exit":
                cfg.exits.add(leader)

    # Function partition: flood fill from each context-free entry point.
    # Block discovery order is deterministic — a depth-first walk that
    # visits each block's successors in ascending leader order (the edge
    # *set* has no stable iteration order, so the walk goes through the
    # sorted successor_map instead of iterating cfg.edges directly).
    entries = {result.entry}
    for edge in result.graph.edges:
        if edge.dst[0] == "ret":
            entries.add(edge.dst[1])
    successors = cfg.successor_map()
    for entry in sorted(entries):
        if entry not in cfg.blocks:
            continue
        seen: set[int] = set()
        worklist = [entry]
        while worklist:
            block = worklist.pop()
            if block in seen:
                continue
            seen.add(block)
            # Reversed push so the lowest-address successor pops first.
            for dst in reversed(successors.get(block, ())):
                if dst in seen:
                    continue
                # Do not cross into another function's entry.
                if dst in entries and dst != entry:
                    continue
                worklist.append(dst)
        cfg.functions[entry] = seen
    return cfg


def to_networkx(cfg: CFG):
    """The CFG as a ``networkx.DiGraph`` (blocks as nodes)."""
    import networkx

    graph = networkx.DiGraph()
    for leader, block in cfg.blocks.items():
        graph.add_node(leader, size=len(block.addresses),
                       is_return=leader in cfg.returns)
    graph.add_edges_from(cfg.edges)
    return graph


def to_dot(cfg: CFG, result: LiftResult) -> str:
    """Graphviz DOT text with disassembly inside each block."""
    lines = ["digraph hoare_cfg {", '  node [shape=box, fontname="monospace"];']
    for leader, block in sorted(cfg.blocks.items()):
        body = "\\l".join(
            str(result.instructions[addr]) for addr in block.addresses
            if addr in result.instructions
        )
        attrs = ""
        if leader in cfg.returns:
            attrs = ', color="darkgreen"'
        elif leader in cfg.exits:
            attrs = ', color="red"'
        lines.append(f'  b{leader:x} [label="{body}\\l"{attrs}];')
    for src, dst in sorted(cfg.edges):
        lines.append(f"  b{src:x} -> b{dst:x};")
    lines.append("}")
    return "\n".join(lines)
