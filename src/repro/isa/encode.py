"""Byte-level x86-64 encoder for the supported instruction subset.

The encoder produces standard machine code (REX prefixes, ModRM/SIB bytes,
little-endian displacements/immediates) so that binaries we assemble are
honest x86-64: jumping into the *middle* of an encoded instruction yields
whatever the trailing bytes decode to, exactly as on hardware.  This is what
makes the paper's "weird edge" phenomenon reproducible.

Branch immediates (`jmp`/`jcc`/`call` with an ``Imm`` operand) are encoded as
displacements relative to the *end* of the instruction, matching hardware.
"""

from __future__ import annotations

from repro.isa.instruction import (
    ALU_OPS,
    CONDITION_CODES,
    Instruction,
    SHIFT_OPS,
    UNARY_OPS,
    condition_of,
)
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import reg_number, reg_width


class EncodeError(ValueError):
    """The instruction has no encoding in the supported subset."""


def _fits_signed(value: int, bits: int) -> bool:
    return -(1 << (bits - 1)) <= value < (1 << (bits - 1))


def _imm_bytes(value: int, bits: int) -> bytes:
    value &= (1 << bits) - 1
    return value.to_bytes(bits // 8, "little")


_NEEDS_REX_LOW8 = {"spl", "bpl", "sil", "dil"}


class _Enc:
    """Accumulates prefix/opcode/modrm/immediate pieces for one instruction."""

    def __init__(self) -> None:
        self.prefix66 = False
        self.rex_w = False
        self.rex_r = False
        self.rex_x = False
        self.rex_b = False
        self.force_rex = False
        self.opcode = b""
        self.modrm: list[int] = []
        self.disp = b""
        self.imm = b""

    def set_width(self, width: int) -> None:
        if width == 16:
            self.prefix66 = True
        elif width == 64:
            self.rex_w = True

    def reg_field(self, reg: Reg) -> int:
        number = reg.number
        if number >= 8:
            self.rex_r = True
        if reg.name in _NEEDS_REX_LOW8:
            self.force_rex = True
        return number & 7

    def rm_reg(self, reg: Reg, reg_field: int) -> None:
        number = reg.number
        if number >= 8:
            self.rex_b = True
        if reg.name in _NEEDS_REX_LOW8:
            self.force_rex = True
        self.modrm = [0xC0 | (reg_field << 3) | (number & 7)]

    def rm_mem(self, mem: Mem, reg_field: int) -> None:
        if mem.base == "rip":
            # mod=00, rm=101: RIP-relative with disp32.
            self.modrm = [(reg_field << 3) | 0x05]
            self.disp = _imm_bytes(mem.disp, 32)
            return

        base_num = reg_number(mem.base) if mem.base else None
        index_num = reg_number(mem.index) if mem.index else None
        scale_bits = {1: 0, 2: 1, 4: 2, 8: 3}[mem.scale]

        if index_num is not None and index_num >= 8:
            self.rex_x = True
        if base_num is not None and base_num >= 8:
            self.rex_b = True

        need_sib = (
            index_num is not None
            or base_num is None
            or (base_num & 7) == 4  # rsp/r12 as base always need SIB
        )

        if base_num is None:
            # No base: SIB with base=101, mod=00, disp32 (with or without index).
            sib_index = (index_num & 7) if index_num is not None else 4
            self.modrm = [(reg_field << 3) | 0x04,
                          (scale_bits << 6) | (sib_index << 3) | 0x05]
            self.disp = _imm_bytes(mem.disp, 32)
            return

        # Pick the shortest displacement encoding.  rbp/r13 as base cannot use
        # mod=00 (that slot means rip-relative / no-base), so force disp8.
        if mem.disp == 0 and (base_num & 7) != 5:
            mod, disp_bits = 0x00, 0
        elif _fits_signed(mem.disp, 8):
            mod, disp_bits = 0x40, 8
        else:
            mod, disp_bits = 0x80, 32

        if need_sib:
            sib_index = (index_num & 7) if index_num is not None else 4
            self.modrm = [mod | (reg_field << 3) | 0x04,
                          (scale_bits << 6) | (sib_index << 3) | (base_num & 7)]
        else:
            self.modrm = [mod | (reg_field << 3) | (base_num & 7)]
        if disp_bits:
            self.disp = _imm_bytes(mem.disp, disp_bits)

    def rm(self, operand: Reg | Mem, reg_field: int) -> None:
        if isinstance(operand, Reg):
            self.rm_reg(operand, reg_field)
        else:
            self.rm_mem(operand, reg_field)

    def emit(self) -> bytes:
        out = bytearray()
        if self.prefix66:
            out.append(0x66)
        rex = 0x40
        if self.rex_w:
            rex |= 8
        if self.rex_r:
            rex |= 4
        if self.rex_x:
            rex |= 2
        if self.rex_b:
            rex |= 1
        if rex != 0x40 or self.force_rex:
            out.append(rex)
        out += self.opcode
        out += bytes(self.modrm)
        out += self.disp
        out += self.imm
        return bytes(out)


def _op_width(op: Reg | Mem) -> int:
    return op.width


def _encode_rm_reg(enc: _Enc, opcode8: int, opcode: int, rm: Reg | Mem, reg: Reg) -> None:
    width = reg.width
    enc.set_width(width)
    enc.opcode = bytes([opcode8 if width == 8 else opcode])
    field = enc.reg_field(reg)
    enc.rm(rm, field)


def _encode_alu(enc: _Enc, digit: int, instr: Instruction) -> None:
    dst, src = instr.operands
    base = digit * 8
    if isinstance(src, Reg):
        _encode_rm_reg(enc, base, base + 1, dst, src)
    elif isinstance(dst, Reg) and isinstance(src, Mem):
        _encode_rm_reg(enc, base + 2, base + 3, src, dst)
    elif isinstance(src, Imm):
        width = _op_width(dst)
        enc.set_width(width)
        use_accumulator_form = (
            isinstance(dst, Reg)
            and dst.number == 0
            and dst.name not in _NEEDS_REX_LOW8
            and (width == 8 or not _fits_signed(src.signed, 8))
        )
        if use_accumulator_form:
            # Short AL/AX/EAX/RAX row: 04+8*digit ib / 05+8*digit i(w).
            if width == 8:
                enc.opcode = bytes([digit * 8 + 4])
                enc.imm = _imm_bytes(src.value, 8)
            else:
                enc.opcode = bytes([digit * 8 + 5])
                enc.imm = _imm_bytes(src.signed, min(width, 32))
            return
        if width == 8:
            enc.opcode, imm_bits = b"\x80", 8
        elif _fits_signed(src.signed, 8):
            enc.opcode, imm_bits = b"\x83", 8
        else:
            enc.opcode, imm_bits = b"\x81", min(width, 32)
        enc.rm(dst, digit)
        enc.imm = _imm_bytes(src.signed, imm_bits)
    else:
        raise EncodeError(f"bad ALU operands: {instr}")


def _encode_mov(enc: _Enc, instr: Instruction) -> None:
    dst, src = instr.operands
    if isinstance(src, Reg) and isinstance(dst, (Reg, Mem)):
        _encode_rm_reg(enc, 0x88, 0x89, dst, src)
    elif isinstance(dst, Reg) and isinstance(src, Mem):
        _encode_rm_reg(enc, 0x8A, 0x8B, src, dst)
    elif isinstance(dst, Reg) and isinstance(src, Imm):
        width = dst.width
        enc.set_width(width)
        if width == 64:
            if instr.mnemonic == "movabs" or not _fits_signed(src.signed, 32):
                # B8+r io: full 64-bit immediate.
                number = dst.number
                if number >= 8:
                    enc.rex_b = True
                enc.opcode = bytes([0xB8 + (number & 7)])
                enc.imm = _imm_bytes(src.value, 64)
            else:
                enc.opcode = b"\xC7"
                enc.rm(dst, 0)
                enc.imm = _imm_bytes(src.signed, 32)
        elif width == 8:
            number = dst.number
            if number >= 8:
                enc.rex_b = True
            if dst.name in _NEEDS_REX_LOW8:
                enc.force_rex = True
            enc.opcode = bytes([0xB0 + (number & 7)])
            enc.imm = _imm_bytes(src.value, 8)
        else:
            number = dst.number
            if number >= 8:
                enc.rex_b = True
            enc.opcode = bytes([0xB8 + (number & 7)])
            enc.imm = _imm_bytes(src.value, width)
    elif isinstance(dst, Mem) and isinstance(src, Imm):
        width = dst.width
        enc.set_width(width)
        enc.opcode = b"\xC6" if width == 8 else b"\xC7"
        enc.rm(dst, 0)
        enc.imm = _imm_bytes(src.signed, min(width, 32))
    else:
        raise EncodeError(f"bad mov operands: {instr}")


def _encode_shift(enc: _Enc, digit: int, instr: Instruction) -> None:
    dst, amount = instr.operands
    width = _op_width(dst)
    enc.set_width(width)
    if isinstance(amount, Imm):
        if amount.value == 1:
            enc.opcode = b"\xD0" if width == 8 else b"\xD1"
            enc.rm(dst, digit)
        else:
            enc.opcode = b"\xC0" if width == 8 else b"\xC1"
            enc.rm(dst, digit)
            enc.imm = _imm_bytes(amount.value, 8)
    elif isinstance(amount, Reg) and amount.name == "cl":
        enc.opcode = b"\xD2" if width == 8 else b"\xD3"
        enc.rm(dst, digit)
    else:
        raise EncodeError(f"bad shift operands: {instr}")


def _encode_branch(enc: _Enc, instr: Instruction) -> None:
    mnemonic = instr.mnemonic
    (target,) = instr.operands
    cc = condition_of(mnemonic)
    if isinstance(target, Imm):
        disp = target.signed
        if mnemonic == "jmp":
            if target.width == 8:
                enc.opcode, enc.imm = b"\xEB", _imm_bytes(disp, 8)
            else:
                enc.opcode, enc.imm = b"\xE9", _imm_bytes(disp, 32)
        elif mnemonic == "call":
            enc.opcode, enc.imm = b"\xE8", _imm_bytes(disp, 32)
        elif cc is not None:
            index = CONDITION_CODES.index(cc)
            if target.width == 8:
                enc.opcode, enc.imm = bytes([0x70 + index]), _imm_bytes(disp, 8)
            else:
                enc.opcode, enc.imm = bytes([0x0F, 0x80 + index]), _imm_bytes(disp, 32)
        else:
            raise EncodeError(f"bad branch: {instr}")
    elif mnemonic in ("jmp", "call") and isinstance(target, (Reg, Mem)):
        # FF /4 (jmp) and FF /2 (call) default to 64-bit; no REX.W needed.
        enc.opcode = b"\xFF"
        enc.rm(target, 4 if mnemonic == "jmp" else 2)
    else:
        raise EncodeError(f"bad branch operands: {instr}")


_NULLARY_BYTES = {
    "ret": b"\xC3", "leave": b"\xC9", "nop": b"\x90", "hlt": b"\xF4",
    "ud2": b"\x0F\x0B", "int3": b"\xCC", "cdq": b"\x99", "syscall": b"\x0F\x05",
    # String operations (implicit rsi/rdi/rcx operands).
    "movsb": b"\xA4", "movsq": b"\x48\xA5",
    "stosb": b"\xAA", "stosq": b"\x48\xAB",
    "lodsb": b"\xAC", "lodsq": b"\x48\xAD",
    "rep_movsb": b"\xF3\xA4", "rep_movsq": b"\xF3\x48\xA5",
    "rep_stosb": b"\xF3\xAA", "rep_stosq": b"\xF3\x48\xAB",
}


def encode(instr: Instruction) -> bytes:
    """Encode *instr* to machine code bytes.

    Raises :class:`EncodeError` for operand shapes outside the subset.
    """
    enc = _Enc()
    mnemonic = instr.mnemonic
    ops = instr.operands

    if mnemonic in _NULLARY_BYTES and not ops:
        return _NULLARY_BYTES[mnemonic]
    if mnemonic == "cqo":
        return b"\x48\x99"
    if mnemonic == "cdqe":
        return b"\x48\x98"

    if mnemonic in ALU_OPS:
        _encode_alu(enc, ALU_OPS[mnemonic], instr)
    elif mnemonic in ("mov", "movabs"):
        _encode_mov(enc, instr)
    elif mnemonic == "lea":
        dst, src = ops
        if not isinstance(dst, Reg) or not isinstance(src, Mem):
            raise EncodeError(f"bad lea operands: {instr}")
        enc.set_width(dst.width)
        enc.opcode = b"\x8D"
        enc.rm(src, enc.reg_field(dst))
    elif mnemonic == "push":
        (src,) = ops
        if isinstance(src, Reg) and src.width == 64:
            number = src.number
            if number >= 8:
                enc.rex_b = True
            enc.opcode = bytes([0x50 + (number & 7)])
        elif isinstance(src, Imm):
            if _fits_signed(src.signed, 8):
                enc.opcode, enc.imm = b"\x6A", _imm_bytes(src.signed, 8)
            else:
                enc.opcode, enc.imm = b"\x68", _imm_bytes(src.signed, 32)
        elif isinstance(src, Mem) and src.width == 64:
            enc.opcode = b"\xFF"
            enc.rm(src, 6)
        else:
            raise EncodeError(f"bad push operand: {instr}")
    elif mnemonic == "pop":
        (dst,) = ops
        if isinstance(dst, Reg) and dst.width == 64:
            number = dst.number
            if number >= 8:
                enc.rex_b = True
            enc.opcode = bytes([0x58 + (number & 7)])
        elif isinstance(dst, Mem) and dst.width == 64:
            enc.opcode = b"\x8F"
            enc.rm(dst, 0)
        else:
            raise EncodeError(f"bad pop operand: {instr}")
    elif mnemonic == "test":
        dst, src = ops
        if isinstance(src, Reg):
            _encode_rm_reg(enc, 0x84, 0x85, dst, src)
        elif isinstance(src, Imm):
            width = _op_width(dst)
            enc.set_width(width)
            enc.opcode = b"\xF6" if width == 8 else b"\xF7"
            enc.rm(dst, 0)
            enc.imm = _imm_bytes(src.signed, min(width, 32))
        else:
            raise EncodeError(f"bad test operands: {instr}")
    elif mnemonic == "xchg":
        dst, src = ops
        if isinstance(src, Reg):
            _encode_rm_reg(enc, 0x86, 0x87, dst, src)
        else:
            raise EncodeError(f"bad xchg operands: {instr}")
    elif mnemonic in ("inc", "dec"):
        (dst,) = ops
        width = _op_width(dst)
        enc.set_width(width)
        enc.opcode = b"\xFE" if width == 8 else b"\xFF"
        enc.rm(dst, 0 if mnemonic == "inc" else 1)
    elif mnemonic in ("not", "neg", "mul", "div", "idiv") or (
        mnemonic == "imul" and len(ops) == 1
    ):
        (dst,) = ops
        digit = UNARY_OPS["imul1" if mnemonic == "imul" else mnemonic]
        width = _op_width(dst)
        enc.set_width(width)
        enc.opcode = b"\xF6" if width == 8 else b"\xF7"
        enc.rm(dst, digit)
    elif mnemonic == "imul":
        if len(ops) == 2:
            dst, src = ops
            enc.set_width(dst.width)
            enc.opcode = b"\x0F\xAF"
            enc.rm(src, enc.reg_field(dst))
        else:
            dst, src, imm = ops
            enc.set_width(dst.width)
            if _fits_signed(imm.signed, 8):
                enc.opcode = b"\x6B"
                enc.rm(src, enc.reg_field(dst))
                enc.imm = _imm_bytes(imm.signed, 8)
            else:
                enc.opcode = b"\x69"
                enc.rm(src, enc.reg_field(dst))
                enc.imm = _imm_bytes(imm.signed, min(dst.width, 32))
    elif mnemonic in SHIFT_OPS:
        _encode_shift(enc, SHIFT_OPS[mnemonic], instr)
    elif mnemonic in ("movzx", "movsx"):
        dst, src = ops
        src_width = _op_width(src)
        if src_width not in (8, 16):
            raise EncodeError(f"bad {mnemonic} source width: {instr}")
        enc.set_width(dst.width)
        table = {("movzx", 8): 0xB6, ("movzx", 16): 0xB7,
                 ("movsx", 8): 0xBE, ("movsx", 16): 0xBF}
        enc.opcode = bytes([0x0F, table[mnemonic, src_width]])
        enc.rm(src, enc.reg_field(dst))
    elif mnemonic == "movsxd":
        dst, src = ops
        enc.set_width(dst.width)
        enc.opcode = b"\x63"
        enc.rm(src, enc.reg_field(dst))
    elif mnemonic in ("jmp", "call") or condition_of(mnemonic) is not None:
        cc = condition_of(mnemonic)
        if mnemonic.startswith("set") and cc is not None:
            (dst,) = ops
            if _op_width(dst) != 8:
                raise EncodeError(f"setcc needs an 8-bit operand: {instr}")
            enc.opcode = bytes([0x0F, 0x90 + CONDITION_CODES.index(cc)])
            enc.rm(dst, 0)
        elif mnemonic.startswith("cmov") and cc is not None:
            dst, src = ops
            enc.set_width(dst.width)
            enc.opcode = bytes([0x0F, 0x40 + CONDITION_CODES.index(cc)])
            enc.rm(src, enc.reg_field(dst))
        else:
            _encode_branch(enc, instr)
    elif mnemonic == "ret" and len(ops) == 1:
        (imm,) = ops
        return b"\xC2" + _imm_bytes(imm.value, 16)
    else:
        raise EncodeError(f"unsupported instruction: {instr}")

    return enc.emit()


def encoded_size(instr: Instruction) -> int:
    """Byte length of *instr*'s encoding."""
    return len(encode(instr))
