"""x86-64 register model.

Registers are identified by a *family* (the 64-bit architectural register,
e.g. ``rax``) plus an access *width* in bits.  The encoder/decoder work with
the 4-bit hardware register number; the symbolic layers work with the family
name, so sub-register aliasing (``eax`` is the low half of ``rax``) is
resolved uniformly through :func:`family_of`.
"""

from __future__ import annotations

# Hardware encoding order.  Index in this tuple == 4-bit register number.
GPR64 = (
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)

GPR32 = (
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
    "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
)

GPR16 = (
    "ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
    "r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w",
)

# 8-bit registers as addressable with a REX prefix present (spl/bpl/sil/dil
# instead of ah/ch/dh/bh).  We do not model the legacy high-byte registers.
GPR8 = (
    "al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
    "r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b",
)

_BY_WIDTH = {64: GPR64, 32: GPR32, 16: GPR16, 8: GPR8}

#: Map register name -> (hardware number, width in bits).
REG_INFO: dict[str, tuple[int, int]] = {}
for _width, _names in _BY_WIDTH.items():
    for _num, _name in enumerate(_names):
        REG_INFO[_name] = (_num, _width)

#: Registers the 64-bit System V ABI requires callees to preserve.
CALLEE_SAVED = ("rbx", "rbp", "r12", "r13", "r14", "r15")

#: Caller-saved (volatile) registers under the System V ABI.
CALLER_SAVED = ("rax", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "r10", "r11")

#: Integer argument registers, in order, under the System V ABI.
ARG_REGISTERS = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")

#: Status flags we model.
FLAGS = ("cf", "zf", "sf", "of", "pf")


def is_register(name: str) -> bool:
    """Return True if *name* names a general-purpose register we model."""
    return name in REG_INFO


def reg_number(name: str) -> int:
    """Hardware (4-bit) register number of *name*."""
    return REG_INFO[name][0]


def reg_width(name: str) -> int:
    """Access width of *name* in bits (8/16/32/64)."""
    return REG_INFO[name][1]


def reg_name(number: int, width: int) -> str:
    """Register name for a hardware *number* at the given *width*."""
    return _BY_WIDTH[width][number]


def family_of(name: str) -> str:
    """The 64-bit architectural register that *name* aliases (``eax``→``rax``)."""
    number, _ = REG_INFO[name]
    return GPR64[number]


def with_width(name: str, width: int) -> str:
    """The alias of *name*'s family at the given *width* (``rax``,32 → ``eax``)."""
    number, _ = REG_INFO[name]
    return _BY_WIDTH[width][number]
