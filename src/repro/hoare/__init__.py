"""Hoare-graph extraction: the paper's core contribution (Sections 3-4)."""

from repro.hoare.annotations import Annotation, Obligation, VerificationError
from repro.hoare.calls import (
    TERMINATING_EXTERNALS,
    after_call_state,
    call_obligation,
    callee_initial_state,
)
from repro.hoare.graph import Edge, HoareGraph, code_key, exit_key, ret_key
from repro.hoare.lifter import LiftResult, LiftStats, lift, lift_function
from repro.hoare.resolve import Resolution, resolve_rip, return_symbol

__all__ = [
    "Annotation", "Obligation", "VerificationError",
    "TERMINATING_EXTERNALS", "after_call_state", "call_obligation",
    "callee_initial_state",
    "Edge", "HoareGraph", "code_key", "exit_key", "ret_key",
    "LiftResult", "LiftStats", "lift", "lift_function",
    "Resolution", "resolve_rip", "return_symbol",
]
