"""Observability: structured tracing, metrics, and lift provenance.

The pipeline (lifter → solver → predicate join → export → eval runner) is
instrumented with one process-global :data:`tracer` and one
:data:`metrics` registry.  Both are **off by default** and every
instrumented site is guarded by a single ``tracer.enabled`` branch, so the
disabled overhead matches the ``counters.enabled`` discipline of
:mod:`repro.perf` — one attribute load and a jump.

Typical uses::

    from repro import obs

    obs.enable()                  # default sampling (bench-verified <=5%)
    result = lift(binary)
    print(obs.tracer.events())    # the raw event stream
    obs.disable()

    # Full-fidelity single-binary forensics (what `python -m repro trace`
    # does): record everything, then reconstruct causal chains.
    obs.enable(sampling=1)
    result = lift(binary)
    report = obs.build_provenance(result, obs.tracer.events())
    print(report.render())

The package is zero-dependency (stdlib only) and imports nothing from the
rest of :mod:`repro`, so every layer may import it without cycles.
"""

from __future__ import annotations

from repro.obs.export import (
    chrome_trace_json,
    event_to_obj,
    events_jsonl,
    to_chrome_trace,
    validate_event_obj,
    validate_jsonl,
)
from repro.obs.metrics import (
    Histogram,
    Metrics,
    canonical_snapshot,
    merge_snapshots,
    metrics,
    percentile,
    percentiles,
)
from repro.obs.profile import (
    PhaseTimer,
    Profile,
    build_profile,
    canonical_profile,
    collapsed_stacks,
    phase,
    phases,
    render_profile,
)
from repro.obs.progress import (
    PROGRESS_EVENT_KINDS,
    ProgressEmitter,
    validate_progress_jsonl,
    validate_progress_obj,
)
from repro.obs.provenance import (
    Cause,
    CauseChain,
    ProvenanceReport,
    TruncatedTraceError,
    build_provenance,
)
from repro.obs.report import (
    canonical_obs,
    merge_rollup,
    render_obs_rollup,
    render_trace_summary,
    task_obs_data,
)
from repro.obs.tracer import (
    DEFAULT_CAPACITY,
    DEFAULT_SAMPLING,
    Event,
    Tracer,
    tracer,
)


def enable(sampling: int = DEFAULT_SAMPLING,
           capacity: int | None = None) -> None:
    """Switch the whole obs layer on (tracer + metrics, one switch)."""
    tracer.configure(enabled=True, sampling=sampling, capacity=capacity)


def disable() -> None:
    """Switch the obs layer off (buffered events are kept until reset)."""
    tracer.configure(enabled=False)


def is_enabled() -> bool:
    return tracer.enabled


def reset() -> None:
    """Clear buffered events, counts, metrics, and phase totals (keeps
    enabled state)."""
    tracer.reset()
    metrics.reset()
    phases.reset()


def save_state() -> tuple:
    """Capture (enabled, sampling) so a scoped user can restore it."""
    return (tracer.enabled, tracer.sampling)


def restore_state(state: tuple) -> None:
    enabled, sampling = state
    tracer.configure(enabled=enabled, sampling=sampling)


__all__ = [
    "DEFAULT_CAPACITY", "DEFAULT_SAMPLING", "Event", "Tracer", "tracer",
    "Histogram", "Metrics", "metrics", "percentile", "percentiles",
    "canonical_snapshot", "merge_snapshots",
    "PhaseTimer", "Profile", "build_profile", "canonical_profile",
    "collapsed_stacks", "phase", "phases", "render_profile",
    "PROGRESS_EVENT_KINDS", "ProgressEmitter",
    "validate_progress_jsonl", "validate_progress_obj",
    "chrome_trace_json", "event_to_obj", "events_jsonl",
    "to_chrome_trace", "validate_event_obj", "validate_jsonl",
    "Cause", "CauseChain", "ProvenanceReport", "TruncatedTraceError",
    "build_provenance",
    "canonical_obs", "merge_rollup", "render_obs_rollup",
    "render_trace_summary", "task_obs_data",
    "enable", "disable", "is_enabled", "reset",
    "save_state", "restore_state",
]
