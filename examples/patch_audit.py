#!/usr/bin/env python3
"""Trustworthy patch auditing by Hoare-graph comparison (Section 7).

The paper proposes lifting both an original binary and its patched version
and comparing the HGs *and the assumptions required to lift them*: new
proof obligations are exactly the "unexpected effects" a reviewer should
see.  We audit two patches of the same program — a benign bound tightening
and a backdoor that slips in an external call.

Run:  python examples/patch_audit.py
"""

from repro import lift
from repro.hoare.diff import diff_lifts
from repro.minicc import compile_source

ORIGINAL = """
long main(long n) {
    if (n < 0) n = 0;
    if (n > 100) n = 100;
    return n * 3;
}
"""

BENIGN_PATCH = """
long main(long n) {
    if (n < 0) n = 0;
    if (n > 50) n = 50;
    return n * 3;
}
"""

BACKDOOR_PATCH = """
extern long system();
long main(long n) {
    if (n == 31337) system(n);
    if (n < 0) n = 0;
    if (n > 100) n = 100;
    return n * 3;
}
"""


def audit(title: str, original_src: str, patched_src: str) -> None:
    print(f"=== {title} ===")
    original = lift(compile_source(original_src, name="original"))
    patched = lift(compile_source(patched_src, name="patched"))
    diff = diff_lifts(original, patched)
    print(f"  {diff.summary()}")
    for addr, (old, new) in sorted(diff.changed_instructions.items())[:4]:
        print(f"    ~ {old}")
        print(f"      {new}")
    for text in diff.added_obligations:
        print(f"    + NEW OBLIGATION: {text}")
    if diff.added_obligations:
        print("    ^ the patch introduced a new external-call assumption —")
        print("      review it before trusting the patched binary.")
    elif diff.is_clean:
        print("    (no observable change)")
    else:
        print("    no new assumptions: the patch stays within the original's")
        print("      trust envelope.")
    print()


def main() -> None:
    audit("benign patch (tightened bound)", ORIGINAL, BENIGN_PATCH)
    audit("suspicious patch (backdoor external call)", ORIGINAL, BACKDOOR_PATCH)


if __name__ == "__main__":
    main()
