"""Linear normal form for pointer expressions.

Thanks to the canonicalizing constructors in :mod:`repro.expr.simplify`,
every pointer expression the lifter produces is already a sum of
coefficient-scaled terms plus a constant.  :func:`linearize` exposes that
structure as a mapping ``{term: coeff}`` + constant, which is what the
difference-logic core of the solver works over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.expr.ast import App, Const, Expr, expr_key
from repro.perf import register_lru


@dataclass(frozen=True)
class Linear:
    """``sum(coeff * term) + const`` with signed coefficients."""

    terms: tuple[tuple[Expr, int], ...]  # sorted by str(term)
    const: int

    @property
    def is_const(self) -> bool:
        return not self.terms

    def term_dict(self) -> dict[Expr, int]:
        return dict(self.terms)


@lru_cache(maxsize=65536)
def linearize(expr: Expr, width: int = 64) -> Linear:
    """Decompose *expr* into linear normal form at the given width.

    Expressions are immutable value objects, so the decomposition is
    memoized (this sits on the lifter's hottest path)."""
    terms: dict[Expr, int] = {}
    const = 0

    def absorb(node: Expr, coeff: int) -> None:
        nonlocal const
        if isinstance(node, Const):
            const += coeff * node.value
            return
        if isinstance(node, App) and node.op == "add" and node.width == width:
            for arg in node.args:
                absorb(arg, coeff)
            return
        if (
            isinstance(node, App)
            and node.op == "mul"
            and node.width == width
            and len(node.args) == 2
            and isinstance(node.args[1], Const)
        ):
            absorb(node.args[0], coeff * node.args[1].signed)
            return
        terms[node] = terms.get(node, 0) + coeff

    absorb(expr, 1)
    cleaned = tuple(
        sorted(
            ((term, coeff) for term, coeff in terms.items() if coeff),
            key=lambda pair: expr_key(pair[0]),
        )
    )
    return Linear(cleaned, const & ((1 << width) - 1))


register_lru("smt.linearize", linearize)


def base_and_offset(expr: Expr, width: int = 64) -> tuple[Expr, int] | None:
    """Decompose ``base + c`` (one unit-coefficient term plus a constant)
    into ``(base, signed c)``; None when *expr* is not of that shape.

    This is the shape every region-relative pointer takes (a register or
    probe marker plus a displacement); the pointer analysis classifies
    addresses by resolving the base and shifting by the offset."""
    linear = linearize(expr, width)
    if len(linear.terms) != 1:
        return None
    term, coeff = linear.terms[0]
    if coeff != 1:
        return None
    const = linear.const
    if const >= 1 << (width - 1):
        const -= 1 << width
    return (term, const)


def difference(a: Expr, b: Expr) -> Linear:
    """Linear form of ``a - b`` (useful: constant result decides relations)."""
    left = linearize(a)
    right = linearize(b)
    terms = left.term_dict()
    for term, coeff in right.terms:
        terms[term] = terms.get(term, 0) - coeff
    cleaned = tuple(
        sorted(
            ((term, coeff) for term, coeff in terms.items() if coeff),
            key=lambda pair: expr_key(pair[0]),
        )
    )
    return Linear(cleaned, (left.const - right.const) & ((1 << 64) - 1))
