"""Synthetic corpus: the Xen / CoreUtils case-study substitutes."""

from repro.corpus.coreutils import COREUTILS_SHAPES, build_coreutils
from repro.corpus.failures import (
    ALL_FAILURES,
    buffer_overflow,
    concurrency,
    nonstandard_rsp,
    ret2win,
    stack_probe,
)
from repro.corpus.lintbugs import (
    ALL_LINTBUGS,
    callee_saved_clobber,
    dead_store,
    red_zone_write,
    uninit_read,
)
from repro.corpus.xenlike import (
    Corpus,
    CorpusBinary,
    CorpusLibrary,
    build_corpus,
    build_library,
    function_binary,
)

__all__ = [
    "COREUTILS_SHAPES", "build_coreutils",
    "ALL_FAILURES", "buffer_overflow", "concurrency", "nonstandard_rsp",
    "ret2win", "stack_probe",
    "ALL_LINTBUGS", "callee_saved_clobber", "dead_store", "red_zone_write",
    "uninit_read",
    "Corpus", "CorpusBinary", "CorpusLibrary", "build_corpus",
    "build_library", "function_binary",
]
