"""Named semantic faults, injectable into the pipeline's trusted layers.

The paper's trust argument (Section 5.2) is *independence*: τ and the
concrete emulator are separate implementations, so a bug in one is caught
by replaying Hoare triples against the other — unless the two conspire.
This module turns that argument into something measurable.  Each
:class:`Fault` is a named, deliberate bug in one of the four trusted
layers:

* ``tau``      — the symbolic step function (:mod:`repro.semantics.tau`);
* ``emulator`` — the concrete CPU (:mod:`repro.machine.cpu`);
* ``solver``   — the SMT decision procedure (:mod:`repro.smt.solver`);
* ``join``     — the predicate join (:func:`repro.pred.join_predicates`
  as resolved by :mod:`repro.semantics.state`).

Faults are installed by **context-managed monkeypatching** of the module
globals / class attributes the pipeline resolves at call time, so nothing
in the production code paths changes when no fault is active.  Install
and uninstall both call :func:`repro.perf.reset_caches`: the solver's
verdict caches (and every other registered memo) would otherwise serve
pre-fault answers and silently mask the injected bug — or leak faulted
verdicts into later fault-free runs.

Process safety: worker processes receive fault *names* (plain strings)
and look them up in :data:`FAULTS`, which is populated at import time in
every process.  Nothing closure-like ever crosses a pickle boundary.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, replace
from typing import Callable, Iterator

from repro.isa import Imm
from repro.perf import reset_caches

#: The trusted layers a fault can live in.
LAYERS = ("tau", "emulator", "solver", "join")


@dataclass(frozen=True)
class Fault:
    """One named bug: where it lives, what it breaks, how to install it.

    ``install`` patches the live modules and returns an uninstaller; use
    :func:`inject` rather than calling it directly so cache hygiene and
    restore-on-error are guaranteed.
    """

    name: str
    layer: str
    description: str
    install: Callable[[], Callable[[], None]]

    def __post_init__(self) -> None:
        if self.layer not in LAYERS:
            raise ValueError(f"bad fault layer {self.layer!r}")


#: name -> Fault; populated by the ``@_fault`` definitions below.
FAULTS: dict[str, Fault] = {}


def _fault(name: str, layer: str, description: str):
    def register(installer: Callable[[], Callable[[], None]]) -> Fault:
        if name in FAULTS:
            raise ValueError(f"duplicate fault {name!r}")
        fault = Fault(name, layer, description, installer)
        FAULTS[name] = fault
        return fault

    return register


class _Patch:
    """Reversible attribute patching (restores in reverse order)."""

    def __init__(self) -> None:
        self._saved: list[tuple[object, str, object]] = []

    def set(self, obj: object, attr: str, value: object) -> None:
        self._saved.append((obj, attr, getattr(obj, attr)))
        setattr(obj, attr, value)

    def restore(self) -> None:
        while self._saved:
            obj, attr, value = self._saved.pop()
            setattr(obj, attr, value)


@contextlib.contextmanager
def inject(name: str) -> Iterator[Fault]:
    """Install fault *name* for the duration of the ``with`` block.

    Clears every registered cache on entry (so the fault is actually
    exercised, not papered over by memoized fault-free verdicts) and on
    exit (so faulted verdicts never leak out of the block).

    A ``tau``-layer fault additionally deoptimizes the micro-op engine:
    its compiled blocks *re-derive* τ's semantics rather than call into
    it, so they would keep executing the unpatched semantics — stale
    code, exactly like a JIT running machine code after the interpreter
    was hot-patched.  While such a fault is installed, ``uop_step``
    falls back to ``tau.step`` wholesale, so both engines exercise (and
    both detect) the injected bug.
    """
    fault = FAULTS[name]
    reset_caches()
    uninstall = fault.install()
    deopted = False
    if fault.layer == "tau":
        from repro.uop import interp as _uop_interp

        _uop_interp.DEOPT_TO_TAU = True
        deopted = True
    try:
        yield fault
    finally:
        if deopted:
            _uop_interp.DEOPT_TO_TAU = False
        uninstall()
        reset_caches()


# -- τ faults -----------------------------------------------------------------


@_fault("tau-add-imm-off-by-one", "tau",
        "τ evaluates `add dst, imm` as if the immediate were imm+1")
def _tau_add_imm_off_by_one() -> Callable[[], None]:
    import repro.semantics.tau as tau

    original = tau._alu
    patch = _Patch()

    def bad_alu(state, instr, ctx):
        dst, src = instr.operands
        if instr.mnemonic == "add" and isinstance(src, Imm):
            skewed = Imm((src.value + 1) & ((1 << src.width) - 1), src.width)
            instr = replace(instr, operands=(dst, skewed))
        return original(state, instr, ctx)

    patch.set(tau, "_alu", bad_alu)
    return patch.restore


@_fault("tau-jcc-cond-swap", "tau",
        "τ attaches the fall-through clause to the taken edge and vice versa")
def _tau_jcc_cond_swap() -> Callable[[], None]:
    import repro.semantics.tau as tau

    original = tau.condition_clause
    patch = _Patch()

    def bad_condition_clause(flags, cc, taken):
        return original(flags, cc, not taken)

    patch.set(tau, "condition_clause", bad_condition_clause)
    return patch.restore


@_fault("tau-mem-disp-off-by-one", "tau",
        "τ computes every non-rip-relative memory address one byte high")
def _tau_mem_disp_off_by_one() -> Callable[[], None]:
    import repro.semantics.tau as tau
    from repro.expr import Const, simplify as s

    original = tau.mem_addr_expr
    patch = _Patch()

    def bad_mem_addr_expr(mem, instr):
        expr = original(mem, instr)
        if mem.base == "rip":
            return expr
        return s.add(expr, Const(1))

    patch.set(tau, "mem_addr_expr", bad_mem_addr_expr)
    return patch.restore


# -- emulator faults ----------------------------------------------------------


@_fault("cpu-carry-invert", "emulator",
        "the emulator records the carry flag inverted after arithmetic")
def _cpu_carry_invert() -> Callable[[], None]:
    from repro.machine.cpu import CPU

    original = CPU.set_flags_arith
    patch = _Patch()

    def bad_set_flags_arith(self, result, width, carry, overflow):
        original(self, result, width, carry, overflow)
        self.flags["cf"] ^= 1

    patch.set(CPU, "set_flags_arith", bad_set_flags_arith)
    return patch.restore


@_fault("cpu-cond-invert", "emulator",
        "the emulator evaluates every condition code inverted")
def _cpu_cond_invert() -> Callable[[], None]:
    from repro.machine.cpu import CPU

    original = CPU.condition
    patch = _Patch()

    def bad_condition(self, cc):
        return not original(self, cc)

    patch.set(CPU, "condition", bad_condition)
    return patch.restore


@_fault("cpu-mem-addr-off-by-one", "emulator",
        "the emulator resolves non-rip-relative memory operands one byte high")
def _cpu_mem_addr_off_by_one() -> Callable[[], None]:
    from repro.machine.cpu import CPU

    original = CPU.mem_address
    patch = _Patch()

    def bad_mem_address(self, mem, instr):
        addr = original(self, mem, instr)
        if mem.base == "rip":
            return addr
        return (addr + 1) & ((1 << 64) - 1)

    patch.set(CPU, "mem_address", bad_mem_address)
    return patch.restore


# -- solver faults ------------------------------------------------------------


@_fault("smt-unknown-is-separate", "solver",
        "undecided region pairs are reported as proven SEPARATE")
def _smt_unknown_is_separate() -> Callable[[], None]:
    import repro.smt.solver as solver

    original = solver._decide_relation_uncached
    patch = _Patch()

    def bad_decide(r0, r1, bounds=solver.NO_BOUNDS):
        decision = original(r0, r1, bounds)
        if decision.relation is None:
            return solver.Decision(solver.Relation.SEPARATE,
                                   decision.assumptions)
        return decision

    patch.set(solver, "_decide_relation_uncached", bad_decide)
    return patch.restore


@_fault("smt-fork-drops-alias", "solver",
        "possible-relation forks silently drop the ALIAS case")
def _smt_fork_drops_alias() -> Callable[[], None]:
    import repro.smt.solver as solver

    original = solver._possible_relations_uncached
    patch = _Patch()

    def bad_fork(r0, r1, bounds=solver.NO_BOUNDS):
        fork = original(r0, r1, bounds)
        cases = tuple(r for r in fork.relations
                      if r is not solver.Relation.ALIAS)
        if not cases:
            cases = (solver.Relation.SEPARATE,)
        return solver.Fork(cases, fork.may_partial, fork.assumptions)

    patch.set(solver, "_possible_relations_uncached", bad_fork)
    return patch.restore


# -- join faults --------------------------------------------------------------


@_fault("join-keeps-left", "join",
        "the predicate join returns its left argument (unsound: drops the "
        "right contributor's states)")
def _join_keeps_left() -> Callable[[], None]:
    import repro.semantics.state as state_mod

    patch = _Patch()

    def bad_join_predicates(p0, p1, rip):
        return p0

    patch.set(state_mod, "join_predicates", bad_join_predicates)
    return patch.restore
