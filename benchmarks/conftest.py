"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one artifact of the paper's evaluation
(Table 1, Table 2, Figure 3, the Section 5.3 failure set) on the synthetic
corpus and asserts the paper's *shape* claims — who wins, what ratios
hold, where the qualitative behavior lands — rather than absolute numbers.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def corpus_report():
    """Lift the scale-1 xenlike corpus once per session."""
    from repro.eval import run_corpus

    return run_corpus(scale=1, timeout_seconds=10.0, max_states=10_000)


@pytest.fixture(scope="session")
def coreutils_results():
    """Lift the six coreutils-like binaries once per session."""
    from repro.corpus import build_coreutils
    from repro.hoare import lift

    return {name: lift(binary) for name, binary in build_coreutils().items()}
