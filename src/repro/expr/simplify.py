"""Smart constructors with aggressive-but-sound simplification.

All pointer arithmetic the lifter produces flows through :func:`add` /
:func:`sub` / :func:`mul`, which maintain a canonical *linear sum* form::

    App("add", (t1, mul(t2, c2), ..., Const(k)))

— non-constant terms sorted deterministically, constant folded last.  This
makes expressions like ``rsp0 - 8 + 8`` collapse to ``rsp0`` syntactically
and gives the SMT layer its linear normal form for free.

Every constructor is *sound*: the returned expression denotes the same
function of the variables as the naive application.
"""

from __future__ import annotations

from functools import lru_cache

from repro.expr.ast import (
    App,
    Const,
    Deref,
    Expr,
    MASK64,
    mask,
    to_signed,
)
from repro.perf import register_lru


def _term_key(expr: Expr) -> str:
    from repro.expr.ast import expr_key

    return expr_key(expr)


def _sum_terms(pairs: list[tuple[Expr, int]], width: int) -> Expr:
    """Build the canonical linear sum of coeff*expr pairs."""
    terms: dict[Expr, int] = {}
    constant = 0

    def absorb(expr: Expr, coeff: int) -> None:
        nonlocal constant
        if coeff == 0:
            return
        if isinstance(expr, Const):
            constant += coeff * expr.value
            return
        if isinstance(expr, App) and expr.op == "add" and expr.width == width:
            for arg in expr.args:
                absorb(arg, coeff)
            return
        if (
            isinstance(expr, App)
            and expr.op == "mul"
            and expr.width == width
            and len(expr.args) == 2
            and isinstance(expr.args[1], Const)
        ):
            absorb(expr.args[0], coeff * expr.args[1].signed)
            return
        if isinstance(expr, App) and expr.op == "neg" and expr.width == width:
            absorb(expr.args[0], -coeff)
            return
        terms[expr] = terms.get(expr, 0) + coeff

    for expr, coeff in pairs:
        absorb(expr, coeff)

    parts: list[Expr] = []
    for term in sorted(terms, key=_term_key):
        coeff = terms[term] % (1 << width)
        if coeff == 0:
            continue
        signed_coeff = to_signed(coeff, width)
        if signed_coeff == 1:
            parts.append(term)
        else:
            parts.append(App("mul", (term, Const(signed_coeff, width)), width))
    constant &= mask(width)
    if not parts:
        return Const(constant, width)
    if constant:
        parts.append(Const(constant, width))
    if len(parts) == 1:
        return parts[0]
    return App("add", tuple(parts), width)


# Hash-consed nodes make (a, b, width) an O(1)-hashable key, so the
# canonical-linear-sum construction — the single hottest rewrite in the
# lifter — is memoized.  The cache is sound because expressions are
# immutable value objects and _sum_terms is a pure function of its inputs.
@lru_cache(maxsize=1 << 17)
def _sum2(a: Expr, ca: int, b: Expr | None, cb: int, width: int) -> Expr:
    if b is None:
        return _sum_terms([(a, ca)], width)
    return _sum_terms([(a, ca), (b, cb)], width)


register_lru("simplify.sum", _sum2)


def add(a: Expr, b: Expr, width: int = 64) -> Expr:
    return _sum2(a, 1, b, 1, width)


def sub(a: Expr, b: Expr, width: int = 64) -> Expr:
    return _sum2(a, 1, b, -1, width)


def neg(a: Expr, width: int = 64) -> Expr:
    return _sum2(a, -1, None, 0, width)


def mul(a: Expr, b: Expr, width: int = 64) -> Expr:
    if isinstance(a, Const) and isinstance(b, Const):
        return Const(a.value * b.value, width)
    if isinstance(a, Const):
        a, b = b, a
    if isinstance(b, Const):
        if b.value == 0:
            return Const(0, width)
        coeff = b.signed
        return _sum2(a, coeff, None, 0, width)
    args = tuple(sorted((a, b), key=_term_key))
    return App("mul", args, width)


def _bitop(op: str, a: Expr, b: Expr, width: int) -> Expr:
    if isinstance(a, Const) and isinstance(b, Const):
        table = {"and": a.value & b.value, "or": a.value | b.value,
                 "xor": a.value ^ b.value}
        return Const(table[op], width)
    if isinstance(a, Const):
        a, b = b, a
    if isinstance(b, Const):
        if op == "and":
            if b.value == 0:
                return Const(0, width)
            if b.value == mask(width):
                return low(a, width)
        if op in ("or", "xor") and b.value == 0:
            return low(a, width)
    if a == b:
        if op == "xor":
            return Const(0, width)
        return a  # and/or idempotent
    args = tuple(sorted((a, b), key=_term_key))
    return App(op, args, width)


def and_(a: Expr, b: Expr, width: int = 64) -> Expr:
    return _bitop("and", a, b, width)


def or_(a: Expr, b: Expr, width: int = 64) -> Expr:
    return _bitop("or", a, b, width)


def xor(a: Expr, b: Expr, width: int = 64) -> Expr:
    return _bitop("xor", a, b, width)


def not_(a: Expr, width: int = 64) -> Expr:
    if isinstance(a, Const):
        return Const(~a.value, width)
    return App("not", (a,), width)


def shl(a: Expr, amount: Expr, width: int = 64) -> Expr:
    if isinstance(amount, Const):
        shift = amount.value & (width - 1)
        if shift == 0:
            return low(a, width)
        return mul(a, Const(1 << shift, width), width)
    return App("shl", (a, amount), width)


def shr(a: Expr, amount: Expr, width: int = 64) -> Expr:
    if isinstance(amount, Const):
        shift = amount.value & (width - 1)
        if shift == 0:
            return low(a, width)
        if isinstance(a, Const):
            return Const((a.value & mask(width)) >> shift, width)
    return App("shr", (a, amount), width)


def sar(a: Expr, amount: Expr, width: int = 64) -> Expr:
    if isinstance(amount, Const):
        shift = amount.value & (width - 1)
        if shift == 0:
            return low(a, width)
        if isinstance(a, Const):
            return Const(to_signed(a.value, width) >> shift, width)
    return App("sar", (a, amount), width)


def udiv(a: Expr, b: Expr, width: int = 64) -> Expr:
    if isinstance(a, Const) and isinstance(b, Const) and b.value:
        return Const(a.value // b.value, width)
    return App("udiv", (a, b), width)


def sdiv(a: Expr, b: Expr, width: int = 64) -> Expr:
    if isinstance(a, Const) and isinstance(b, Const) and b.value:
        quotient = abs(a.signed) // abs(b.signed)
        if (a.signed < 0) != (b.signed < 0):
            quotient = -quotient
        return Const(quotient, width)
    return App("sdiv", (a, b), width)


def urem(a: Expr, b: Expr, width: int = 64) -> Expr:
    if isinstance(a, Const) and isinstance(b, Const) and b.value:
        return Const(a.value % b.value, width)
    return App("urem", (a, b), width)


def srem(a: Expr, b: Expr, width: int = 64) -> Expr:
    if isinstance(a, Const) and isinstance(b, Const) and b.value:
        remainder = abs(a.signed) % abs(b.signed)
        if a.signed < 0:
            remainder = -remainder
        return Const(remainder, width)
    return App("srem", (a, b), width)


def low(a: Expr, width: int) -> Expr:
    """Truncate *a* to its low *width* bits."""
    if a.width == width:
        return a
    if isinstance(a, Const):
        return Const(a.value, width)
    if isinstance(a, App) and a.op in ("zext", "low"):
        inner = a.args[0]
        if inner.width <= width:
            return zext(inner, width) if inner.width < width else inner
        return low(inner, width)
    if a.width < width:
        raise ValueError(f"low({width}) of narrower expr (width {a.width})")
    return App("low", (a,), width)


def zext(a: Expr, width: int) -> Expr:
    """Zero-extend *a* (of its own width) to *width* bits."""
    if a.width == width:
        return a
    if a.width > width:
        return low(a, width)
    if isinstance(a, Const):
        return Const(a.value, width)
    if isinstance(a, App) and a.op == "zext":
        return zext(a.args[0], width)
    return App("zext", (a,), width)


def sext(a: Expr, width: int) -> Expr:
    """Sign-extend *a* (of its own width) to *width* bits."""
    if a.width == width:
        return a
    if a.width > width:
        return low(a, width)
    if isinstance(a, Const):
        return Const(a.signed, width)
    return App("sext", (a,), width)


# -- boolean / comparison constructors (width 1) -------------------------------

def eq(a: Expr, b: Expr, width: int = 64) -> Expr:
    if isinstance(a, Const) and isinstance(b, Const):
        return Const(int((a.value & mask(width)) == (b.value & mask(width))), 1)
    if a == b:
        return Const(1, 1)
    args = tuple(sorted((a, b), key=_term_key))
    return App("eq", args, 1)


def _cmp(op: str, a: Expr, b: Expr, width: int, signed: bool) -> Expr:
    if isinstance(a, Const) and isinstance(b, Const):
        left = to_signed(a.value, width) if signed else a.value & mask(width)
        right = to_signed(b.value, width) if signed else b.value & mask(width)
        if op in ("ltu", "lts"):
            return Const(int(left < right), 1)
        return Const(int(left <= right), 1)
    return App(op, (a, b), 1)


def ltu(a: Expr, b: Expr, width: int = 64) -> Expr:
    return _cmp("ltu", a, b, width, signed=False)


def leu(a: Expr, b: Expr, width: int = 64) -> Expr:
    return _cmp("leu", a, b, width, signed=False)


def lts(a: Expr, b: Expr, width: int = 64) -> Expr:
    return _cmp("lts", a, b, width, signed=True)


def les(a: Expr, b: Expr, width: int = 64) -> Expr:
    return _cmp("les", a, b, width, signed=True)


def bool_not(a: Expr) -> Expr:
    if isinstance(a, Const):
        return Const(1 - (a.value & 1), 1)
    if isinstance(a, App) and a.op == "bool_not":
        return a.args[0]
    return App("bool_not", (a,), 1)


def bool_and(a: Expr, b: Expr) -> Expr:
    if isinstance(a, Const):
        return b if a.value else Const(0, 1)
    if isinstance(b, Const):
        return a if b.value else Const(0, 1)
    return App("bool_and", (a, b), 1)


def bool_or(a: Expr, b: Expr) -> Expr:
    if isinstance(a, Const):
        return Const(1, 1) if a.value else b
    if isinstance(b, Const):
        return Const(1, 1) if b.value else a
    return App("bool_or", (a, b), 1)


def ite(cond: Expr, then: Expr, other: Expr, width: int = 64) -> Expr:
    if isinstance(cond, Const):
        return then if cond.value & 1 else other
    if then == other:
        return then
    return App("ite", (cond, then, other), width)


def deref(addr: Expr, size: int) -> Deref:
    return Deref(addr, size)
