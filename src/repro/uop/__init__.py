"""The micro-op engine: τ compiled to a flat IR, executed by arrays.

``lift(engine="uop")`` routes the lifter's transfer function through this
package instead of walking :mod:`repro.semantics.tau` per visit:

* :mod:`repro.uop.ir`        — the flat micro-op grammar + hash-consed
  temp emitter;
* :mod:`repro.uop.compile`   — ``compile_insn``: one block per
  opcode+operand shape, content-addressed on ``SEMANTICS_VERSION``;
* :mod:`repro.uop.interp`    — ``uop_step``: the array interpreter plus
  the content-addressed transfer/ins memos;
* :mod:`repro.uop.intervals` — vectorized interval lattice over the same
  IR (batched bounds, per-block range analysis).

``tau`` stays the reference engine; equivalence bar and invariants are
documented in INTERNALS §18.
"""

from repro.uop import ir
from repro.uop.compile import compile_insn, opcode_stats, shape_key
from repro.uop.interp import uop_step
from repro.uop.intervals import batch_interval_of, block_intervals
from repro.uop.ir import BlockEmitter, UopBlock

__all__ = [
    "ir", "compile_insn", "opcode_stats", "shape_key", "uop_step",
    "batch_interval_of", "block_intervals", "BlockEmitter", "UopBlock",
]
