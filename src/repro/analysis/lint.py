"""The lint engine: diagnostics, the rule registry, and the driver.

Rules are plain callables ``(AnalysisContext) -> Iterable[Diagnostic]``
registered under a stable rule id; :func:`run_lint` runs a selection of
them over one lift result and folds in the lifter's own channels
(verification errors and unsoundness annotations) so a *rejected* binary
still produces a useful, machine-readable report.

Exit-code semantics (used by ``python -m repro lint``): findings are
diagnostics of ``error`` or ``warning`` severity — ``info`` notes never
fail a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.hoare.lifter import LiftResult
from repro.analysis.context import AnalysisContext

#: Severity names, most severe first (order is the sort/rank order).
SEVERITIES = ("error", "warning", "info")

_RANK = {name: index for index, name in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: rule id + severity + site + human-readable message."""

    rule: str
    severity: str
    addr: int | None
    message: str
    function: int | None = None

    def __post_init__(self) -> None:
        if self.severity not in _RANK:
            raise ValueError(f"bad severity: {self.severity!r}")

    @property
    def site(self) -> str:
        return "<binary>" if self.addr is None else f"{self.addr:#x}"

    def __str__(self) -> str:
        return f"{self.site}: {self.severity}: {self.message} [{self.rule}]"


def _sort_key(diag: Diagnostic):
    return (
        diag.addr if diag.addr is not None else -1,
        _RANK[diag.severity],
        diag.rule,
        diag.message,
    )


@dataclass
class LintReport:
    """All diagnostics for one binary, in deterministic order."""

    name: str
    diagnostics: list[Diagnostic]

    @property
    def findings(self) -> list[Diagnostic]:
        """Diagnostics that fail a lint run (error or warning)."""
        return [d for d in self.diagnostics if d.severity != "info"]

    def counts(self) -> dict[str, int]:
        out = {severity: 0 for severity in SEVERITIES}
        for diag in self.diagnostics:
            out[diag.severity] += 1
        return out

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def by_rule(self, rule: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]


Rule = Callable[[AnalysisContext], Iterable[Diagnostic]]

_REGISTRY: dict[str, Rule] = {}
_DESCRIPTIONS: dict[str, str] = {}


def register_rule(rule_id: str,
                  description: str | None = None) -> Callable[[Rule], Rule]:
    """Decorator: register a lint rule under a stable id.

    *description* is the one-line SARIF ``shortDescription``; when omitted
    it is derived from the first line of the rule's docstring, so every
    builtin rule ships metadata for free."""

    def install(fn: Rule) -> Rule:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = fn
        doc = (fn.__doc__ or "").strip().splitlines()
        _DESCRIPTIONS[rule_id] = description or (doc[0].strip() if doc else "")
        return fn

    return install


def all_rules() -> dict[str, Rule]:
    """The registered rules (importing the builtin set on first use)."""
    import repro.analysis.rules  # noqa: F401  (registers builtin rules)

    return dict(_REGISTRY)


def rule_description(rule_id: str) -> str:
    """The one-line description of a rule id (for SARIF metadata).

    Synthesizes descriptions for the lifter's own channels
    (``verify-*`` / ``lift-*``), which are not registry rules."""
    if rule_id in _DESCRIPTIONS:
        return _DESCRIPTIONS[rule_id]
    if rule_id.startswith("verify-"):
        return "A lifter sanity property failed over the Hoare graph."
    if rule_id.startswith("lift-"):
        return "An explicitly-marked lifter unsoundness annotation."
    return ""


# -- the lifter's own channels, as diagnostics ---------------------------------

#: Annotation kind -> severity.  Unresolved control flow is the paper's
#: explicitly-marked unsoundness; decode failures end exploration.
_ANNOTATION_SEVERITY = {
    "unresolved-jump": "warning",
    "unresolved-call": "warning",
    "undecodable": "warning",
    "unsupported": "warning",
}


def lift_diagnostics(result: LiftResult) -> list[Diagnostic]:
    """Verification errors and annotations rendered as diagnostics."""
    out: list[Diagnostic] = []
    for error in result.errors:
        out.append(Diagnostic(
            rule=f"verify-{error.kind}",
            severity="error",
            addr=error.addr,
            message=f"sanity property failed: {error.detail or error.kind}",
        ))
    for anno in result.annotations:
        out.append(Diagnostic(
            rule=f"lift-{anno.kind}",
            severity=_ANNOTATION_SEVERITY.get(anno.kind, "warning"),
            addr=anno.addr,
            message=f"{anno.kind}: {anno.detail}" if anno.detail else anno.kind,
        ))
    return out


def run_lint(
    result: LiftResult,
    rules: Iterable[str] | None = None,
    include_lift: bool = True,
) -> LintReport:
    """Run lint rules over one lift result.

    *rules* selects rule ids (default: all registered); unknown ids raise
    ``KeyError`` so typos in ``--rule`` fail loudly rather than silently
    passing."""
    registry = all_rules()
    selected = sorted(registry) if rules is None else list(rules)
    ctx = AnalysisContext(result)
    diagnostics: list[Diagnostic] = []
    if include_lift:
        diagnostics.extend(lift_diagnostics(result))
    for rule_id in selected:
        diagnostics.extend(registry[rule_id](ctx))
    diagnostics.sort(key=_sort_key)
    return LintReport(name=result.binary.name, diagnostics=diagnostics)
