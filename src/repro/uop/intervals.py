"""Vectorized interval arithmetic over micro-op blocks.

The array interpreter in :mod:`repro.uop.interp` carries *expressions*
through the temp file; this module carries *unsigned intervals* through
the same flat block in struct-of-arrays form — two dense int lists
``lo[t]``/``hi[t]`` indexed by temp slot, with the BINOP lattice kernels
(`add`/`sub`/scale, bitwise widening, extension clipping) applied
positionally over whole vectors instead of one boxed
:class:`~repro.smt.intervals.Interval` at a time.

Two entry points:

* :func:`batch_interval_of` — bound many expressions against one
  predicate in a single pass (one bounds-provider setup, shared
  linearization cache), the batched counterpart of
  ``Predicate.interval_of``;
* :func:`block_intervals` — abstract-interpret a compiled ``OPS`` block
  over the interval lattice: the value-range analogue of ``_run_ops``,
  usable without touching the symbolic state at all.  This is the
  ROADMAP item-5 bridge: a second abstract domain running over the same
  IR, demonstrating that analyses can target the micro-op layer instead
  of τ.

Everything here is *conservative* (results always contain the concrete
value set; ``TOP`` on any doubt) and purely advisory — the symbolic
engine never consults it, so it cannot perturb verdicts.
"""

from __future__ import annotations

from repro.expr import Const, Expr
from repro.pred import Predicate
from repro.smt.intervals import TOP, Interval, from_width, singleton
from repro.smt.solver import expr_interval
from repro.uop import ir
from repro.uop.ir import UopBlock

MASK64 = (1 << 64) - 1


# -- vector kernels ------------------------------------------------------------
#
# All kernels take parallel lo/hi lists and mutate dst positions in place:
# a[i] + b[i] -> out[i].  Wraparound discipline matches Interval.add — a
# result whose endpoints straddle a 2^width window collapses to the full
# width range (the lattice top at that width).


def add_vec(lo_a: list[int], hi_a: list[int], lo_b: list[int],
            hi_b: list[int], width: int) -> tuple[list[int], list[int]]:
    """Element-wise interval addition at *width* bits."""
    top = (1 << width) - 1
    out_lo, out_hi = [], []
    for la, ha, lb, hb in zip(lo_a, hi_a, lo_b, hi_b):
        lo, hi = la + lb, ha + hb
        if (lo >> width) != (hi >> width):
            out_lo.append(0)
            out_hi.append(top)
        else:
            out_lo.append(lo & top)
            out_hi.append(hi & top)
    return out_lo, out_hi


def sub_vec(lo_a: list[int], hi_a: list[int], lo_b: list[int],
            hi_b: list[int], width: int) -> tuple[list[int], list[int]]:
    """Element-wise interval subtraction at *width* bits."""
    top = (1 << width) - 1
    out_lo, out_hi = [], []
    for la, ha, lb, hb in zip(lo_a, hi_a, lo_b, hi_b):
        lo, hi = la - hb, ha - lb
        if (lo >> width) != (hi >> width):
            out_lo.append(0)
            out_hi.append(top)
        else:
            out_lo.append(lo & top)
            out_hi.append(hi & top)
    return out_lo, out_hi


def scale_vec(lo_a: list[int], hi_a: list[int], factor: int,
              width: int) -> tuple[list[int], list[int]]:
    """Element-wise scaling by a non-negative constant at *width* bits."""
    top = (1 << width) - 1
    if factor < 0:
        n = len(lo_a)
        return [0] * n, [top] * n
    out_lo, out_hi = [], []
    for la, ha in zip(lo_a, hi_a):
        lo, hi = la * factor, ha * factor
        if (lo >> width) != (hi >> width):
            out_lo.append(0)
            out_hi.append(top)
        else:
            out_lo.append(lo & top)
            out_hi.append(hi & top)
    return out_lo, out_hi


# -- batched predicate bounds --------------------------------------------------


def batch_interval_of(pred: Predicate,
                      exprs: list[Expr]) -> list[Interval | None]:
    """Bound every expression in *exprs* under *pred* in one pass.

    Semantically ``[pred.interval_of? via expr_interval]`` per element;
    batching shares the predicate's (memoized) clause bounds across the
    whole list and skips the per-call provider setup.  ``None`` marks an
    unbounded (top) result, mirroring ``Predicate.interval_of``."""
    results: list[Interval | None] = []
    for expr in exprs:
        interval = expr_interval(expr, pred)
        results.append(None if interval.is_top else interval)
    return results


# -- the interval interpreter --------------------------------------------------

#: Kernels whose result interval we model precisely.  Everything else
#: (bitwise ops, shifts, division...) widens to the full output range.
def _kernel_name(fn) -> str:
    return getattr(fn, "__name__", str(fn))


def block_intervals(block: UopBlock, pred: Predicate,
                    instr=None) -> dict[int, Interval]:
    """Abstract-interpret an ``OPS`` block over the interval lattice.

    Returns temp slot → interval for every value temp the block defines.
    LOADs and unknown registers widen to their width range; the BINOP
    kernels `add`/`sub` transfer precisely (vectorized over the accumulated
    temp file), `mul` by a singleton scales.  RUN/CCALL blocks define no
    temps and map to ``{}``.
    """
    if block.kind != ir.OPS:
        return {}
    n = block.n_temps
    lo = [0] * n
    hi = [MASK64] * n
    width_of = [64] * n

    def set_iv(t: int, interval: Interval, width: int) -> None:
        clipped = interval.intersect(from_width(width))
        if clipped is None:
            clipped = from_width(width)
        lo[t], hi[t] = clipped.lo, clipped.hi
        width_of[t] = width

    for op in block.ops:
        code = op[0]
        if code == ir.GET:
            value = pred.get_reg(op[2])
            width = op[3] or 64
            if value is None:
                set_iv(op[1], from_width(width), width)
            else:
                set_iv(op[1], expr_interval(value, pred), width)
        elif code == ir.CONST:
            expr = op[2]
            width = expr.width if isinstance(expr, Const) else 64
            iv = singleton(expr.value) if isinstance(expr, Const) else TOP
            set_iv(op[1], iv, width)
        elif code == ir.BIN:
            dst, fn, a, b, width = op[1], op[2], op[3], op[4], op[5]
            name = _kernel_name(fn)
            (la,), (ha,) = [lo[a]], [hi[a]]
            if name == "add":
                vlo, vhi = add_vec([lo[a]], [hi[a]], [lo[b]], [hi[b]], width)
                set_iv(dst, Interval(vlo[0], vhi[0]), width)
            elif name == "sub":
                vlo, vhi = sub_vec([lo[a]], [hi[a]], [lo[b]], [hi[b]], width)
                set_iv(dst, Interval(vlo[0], vhi[0]), width)
            elif name == "mul" and lo[b] == hi[b]:
                vlo, vhi = scale_vec([la], [ha], lo[b], width)
                set_iv(dst, Interval(vlo[0], vhi[0]), width)
            else:
                set_iv(dst, from_width(width), width)
        elif code == ir.UN:
            dst, fn, a, width = op[1], op[2], op[3], op[4]
            name = _kernel_name(fn)
            if name == "zext":
                # Zero extension preserves the value set exactly.
                set_iv(dst, Interval(lo[a], hi[a]), width)
            elif name == "low" and hi[a] < (1 << width):
                set_iv(dst, Interval(lo[a], hi[a]), width)
            else:
                set_iv(dst, from_width(width), width)
        elif code == ir.ITE:
            dst, _, a, b, width = op[1], op[2], op[3], op[4], op[5]
            set_iv(dst, Interval(min(lo[a], lo[b]), max(hi[a], hi[b])), width)
        elif code == ir.COND:
            set_iv(op[1], Interval(0, 1), 1)
        elif code in (ir.LOAD, ir.SHIFT):
            width = op[3] * 8 if code == ir.LOAD else op[5]
            set_iv(op[1], from_width(width), width)
        elif code == ir.ADDR:
            set_iv(op[1], TOP, 64)
        # PUT/STORE/FLAG_*/IMARK define no temps.

    return {t: Interval(lo[t], hi[t]) for t in range(n)}
