"""A mini-C compiler targeting the repro x86-64 subset.

The corpus substrate: C-like sources compile to honest machine code in ELF
binaries, which the lifter then analyses.  ``compile_source`` is the whole
pipeline (lex → parse → codegen → Binary).
"""

from repro.minicc.codegen import CodegenError, Compiler, compile_source
from repro.minicc.lexer import LexError, tokenize
from repro.minicc.parser import ParseError, parse

__all__ = [
    "CodegenError", "Compiler", "compile_source",
    "LexError", "tokenize", "ParseError", "parse",
]
