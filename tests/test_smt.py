"""Solver tests: linearization, intervals, and region-relation decisions.

The key soundness property (hypothesis): whenever the solver *proves* a
relation between regions with concrete addresses, the relation really holds
of the concrete address ranges.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import const, simplify as s, var
from repro.smt import (
    Interval,
    NO_BOUNDS,
    Region,
    Relation,
    decide_relation,
    difference,
    expr_interval,
    from_width,
    is_global_pointer,
    is_stack_pointer,
    linearize,
    possible_relations,
    singleton,
)

RSP0 = var("rsp0")
RDI0 = var("rdi0")
RSI0 = var("rsi0")


# -- linear normal form --------------------------------------------------------

def test_linearize_constant():
    assert linearize(const(42)).const == 42
    assert linearize(const(42)).is_const


def test_linearize_sum():
    expr = s.add(s.mul(RDI0, const(4)), s.add(RSP0, const(-16)))
    linear = linearize(expr)
    assert linear.term_dict() == {RDI0: 4, RSP0: 1}
    assert linear.const == (-16) & ((1 << 64) - 1)


def test_difference_cancels_common_base():
    left = s.add(RSP0, const(-8))
    right = s.add(RSP0, const(-16))
    diff = difference(left, right)
    assert diff.is_const and diff.const == 8


# -- intervals -----------------------------------------------------------------

def test_interval_basics():
    iv = Interval(4, 10)
    assert iv.contains(4) and iv.contains(10) and not iv.contains(11)
    assert iv.intersect(Interval(8, 20)) == Interval(8, 10)
    assert iv.intersect(Interval(11, 20)) is None
    assert iv.union(Interval(0, 2)) == Interval(0, 10)


def test_interval_scale_overflow_goes_top():
    assert Interval(0, 1 << 62).scale(8).is_top


def test_expr_interval_const_and_width():
    assert expr_interval(const(7), NO_BOUNDS) == singleton(7)
    byte_var = var("b", 8)
    assert expr_interval(s.zext(byte_var, 64), NO_BOUNDS) == from_width(8)


class _Bounds:
    def __init__(self, table):
        self.table = table

    def interval_of(self, term):
        return self.table.get(term)


def test_expr_interval_uses_bounds_provider():
    bounds = _Bounds({RDI0: Interval(0, 0xC3)})
    scaled = s.mul(RDI0, const(4))
    assert expr_interval(scaled, bounds) == Interval(0, 0xC3 * 4)
    offset = s.add(scaled, const(0x1000))
    assert expr_interval(offset, bounds) == Interval(0x1000, 0x1000 + 0xC3 * 4)


# -- pointer classification ------------------------------------------------------

def test_stack_and_global_classification():
    assert is_stack_pointer(s.sub(RSP0, const(0x20)))
    assert not is_stack_pointer(RDI0)
    assert not is_stack_pointer(s.mul(RSP0, const(2)))
    assert is_global_pointer(const(0x404000))
    assert not is_global_pointer(RDI0)


# -- necessary relations: constant differences ------------------------------------

def region(base, offset, size):
    return Region(s.add(base, const(offset)), size)


def test_same_base_alias():
    r0 = region(RSP0, -8, 8)
    r1 = region(RSP0, -8, 8)
    assert decide_relation(r0, r1).relation is Relation.ALIAS


def test_same_base_separate():
    r0 = region(RSP0, -8, 8)
    r1 = region(RSP0, -16, 8)
    assert decide_relation(r0, r1).relation is Relation.SEPARATE


def test_same_base_enclosure():
    outer = region(RSI0, 0, 8)
    inner = region(RSI0, 4, 4)
    assert decide_relation(inner, outer).relation is Relation.ENCLOSED
    assert decide_relation(outer, inner).relation is Relation.ENCLOSES


def test_same_base_partial_overlap_is_unknown_relation():
    r0 = region(RSI0, 0, 8)
    r1 = region(RSI0, 4, 8)  # genuinely partial
    assert decide_relation(r0, r1).relation is None


def test_global_regions_decide_numerically():
    r0 = Region(const(0x404000), 8)
    r1 = Region(const(0x404008), 8)
    r2 = Region(const(0x404000), 4)
    assert decide_relation(r0, r1).relation is Relation.SEPARATE
    assert decide_relation(r2, r0).relation is Relation.ENCLOSED


def test_stack_vs_global_assumed_separate():
    stack = region(RSP0, -24, 8)
    glob = Region(const(0x404000), 8)
    decision = decide_relation(stack, glob)
    assert decision.relation is Relation.SEPARATE
    assert decision.assumptions
    assert decision.assumptions[0].kind == "stack-global-separation"


def test_unrelated_bases_are_unknown():
    decision = decide_relation(region(RDI0, 0, 8), region(RSI0, 0, 8))
    assert decision.relation is None
    assert not decision.assumptions


def test_bounded_index_proves_separation():
    """[rsp0-0x100 + i*4, 4] with i <= 0x20 is separate from [rsp0+8, 8]."""
    bounds = _Bounds({RDI0: Interval(0, 0x20)})
    indexed = Region(
        s.add(s.add(RSP0, const(-0x100)), s.mul(RDI0, const(4))), 4
    )
    ret_slot = region(RSP0, 0, 8)
    # diff = ret_slot - indexed = 0x100 - 4i in [0x80, 0x100]: separate.
    assert decide_relation(indexed, ret_slot, bounds).relation is Relation.SEPARATE


def test_unbounded_index_is_unknown():
    indexed = Region(
        s.add(s.add(RSP0, const(-0x100)), s.mul(RDI0, const(4))), 4
    )
    ret_slot = region(RSP0, 0, 8)
    assert decide_relation(indexed, ret_slot).relation is None


# -- possible relations (forking) -------------------------------------------------

def test_fork_same_size_alias_or_separate():
    fork = possible_relations(region(RDI0, 0, 4), region(RSI0, 0, 4))
    assert set(fork.relations) == {Relation.ALIAS, Relation.SEPARATE}
    assert not fork.may_partial
    assert any(a.kind == "alignment" for a in fork.assumptions)


def test_fork_smaller_region_encloses_or_separate():
    fork = possible_relations(region(RDI0, 0, 4), region(RSI0, 0, 8))
    assert set(fork.relations) == {Relation.ENCLOSED, Relation.SEPARATE}


def test_fork_odd_size_may_partially_overlap():
    fork = possible_relations(Region(RDI0, 3), Region(RSI0, 8))
    assert fork.may_partial


def test_fork_alias_refuted_by_bounds():
    """If the diff interval excludes 0, the alias case is dropped."""
    bounds = _Bounds({RDI0: Interval(8, 16)})
    r0 = Region(RSI0, 4)
    r1 = Region(s.add(RSI0, RDI0), 4)
    fork = possible_relations(r0, r1, bounds)
    assert Relation.ALIAS not in fork.relations


# -- hypothesis: decisions on concrete addresses are correct ----------------------

@settings(max_examples=500)
@given(
    a0=st.integers(min_value=0, max_value=1 << 20),
    a1=st.integers(min_value=0, max_value=1 << 20),
    n0=st.sampled_from([1, 2, 4, 8, 16]),
    n1=st.sampled_from([1, 2, 4, 8, 16]),
)
def test_prop_constant_decisions_sound(a0, a1, n0, n1):
    r0 = Region(const(a0), n0)
    r1 = Region(const(a1), n1)
    relation = decide_relation(r0, r1).relation
    s0 = set(range(a0, a0 + n0))
    s1 = set(range(a1, a1 + n1))
    if relation is Relation.ALIAS:
        assert a0 == a1 and n0 == n1
    elif relation is Relation.SEPARATE:
        assert not (s0 & s1)
    elif relation is Relation.ENCLOSED:
        assert s0 <= s1
    elif relation is Relation.ENCLOSES:
        assert s1 <= s0
    else:
        # Unknown must mean genuine partial overlap for concrete regions.
        assert (s0 & s1) and not (s0 <= s1) and not (s1 <= s0) and s0 != s1


@settings(max_examples=300)
@given(
    off0=st.integers(min_value=-256, max_value=256),
    off1=st.integers(min_value=-256, max_value=256),
    n0=st.sampled_from([1, 2, 4, 8]),
    n1=st.sampled_from([1, 2, 4, 8]),
)
def test_prop_same_base_decisions_sound(off0, off1, n0, n1):
    """Same-symbolic-base regions: decision must match the concrete ranges."""
    r0 = region(RSP0, off0, n0)
    r1 = region(RSP0, off1, n1)
    relation = decide_relation(r0, r1).relation
    base = 1 << 32
    s0 = set(range(base + off0, base + off0 + n0))
    s1 = set(range(base + off1, base + off1 + n1))
    if relation is Relation.ALIAS:
        assert s0 == s1 and n0 == n1
    elif relation is Relation.SEPARATE:
        assert not (s0 & s1)
    elif relation is Relation.ENCLOSED:
        assert s0 <= s1
    elif relation is Relation.ENCLOSES:
        assert s1 <= s0
    else:
        assert (s0 & s1) and not (s0 <= s1) and not (s1 <= s0)
