"""Per-instruction Isabelle step-function definitions.

The paper's Step 2 rests on formal semantics for ~120 instructions; each
exported binary theory carries one generated ``definition step_<addr>``
per lifted instruction, a total function over the machine-state record of
``X86_Semantics.thy``.  The Hoare lemmas then instantiate the abstract
``step_at`` relation with these definitions.

The generator is deliberately a *third*, purely syntactic translation of
instruction semantics (independent from both τ and the emulator): it maps
operands to ``reg σ``/``read_mem``/``write_mem`` terms and emits record
updates.  Behaviors outside the fragment (CF/OF of shifts, division
corner cases) are rendered as HOL ``undefined`` — honest underspecification
rather than a wrong equation.
"""

from __future__ import annotations

import io

from repro.isa import Imm, Instruction, Mem, Reg, condition_of
from repro.isa.instruction import ALU_OPS, SHIFT_OPS
from repro.isa.registers import family_of, reg_width


def _reg_read(name: str) -> str:
    """Isabelle term for reading a (possibly sub-) register."""
    family = family_of(name)
    width = reg_width(name)
    base = f"reg σ ''{family}''"
    if width == 64:
        return f"({base})"
    return f"(({base}) AND mask {width})"


def _addr_term(mem: Mem, instr: Instruction) -> str:
    if mem.base == "rip":
        return f"({(instr.end + mem.disp) & ((1 << 64) - 1):#x})"
    parts = []
    if mem.base:
        parts.append(f"reg σ ''{mem.base}''")
    if mem.index:
        term = f"reg σ ''{mem.index}''"
        if mem.scale != 1:
            term = f"({term}) * {mem.scale}"
        parts.append(term)
    if mem.disp or not parts:
        parts.append(f"({mem.disp & ((1 << 64) - 1):#x})")
    return "(" + " + ".join(parts) + ")"


def _operand_read(op, instr: Instruction) -> str:
    if isinstance(op, Reg):
        return _reg_read(op.name)
    if isinstance(op, Imm):
        return f"({op.value:#x})"
    if isinstance(op, Mem):
        return f"(read_mem (mem σ) {_addr_term(op, instr)} {op.width // 8})"
    raise TypeError(op)


def _reg_update(name: str, value: str) -> str:
    """A ``reg :=`` record-update entry writing a (sub-)register."""
    family = family_of(name)
    width = reg_width(name)
    if width in (64, 32):
        # 32-bit writes zero-extend.
        new = value if width == 64 else f"(({value}) AND mask 32)"
        return f"''{family}'' := {new}"
    keep = f"(reg σ ''{family}'') AND (NOT (mask {width}))"
    return f"''{family}'' := ({keep}) OR (({value}) AND mask {width})"


class _Updates:
    """Collects the record-update entries for one instruction."""

    def __init__(self, instr: Instruction):
        self.instr = instr
        self.regs: list[str] = []
        self.mem: str | None = None
        self.flags: list[str] = []
        self.rip: str = f"({instr.end:#x})"
        self.extra: list[str] = []

    def write_operand(self, op, value: str) -> None:
        if isinstance(op, Reg):
            self.regs.append(_reg_update(op.name, value))
        elif isinstance(op, Mem):
            base = self.mem or "(mem σ)"
            self.mem = (f"(write_mem {base} {_addr_term(op, self.instr)} "
                        f"{op.width // 8} ({value}))")
        else:
            raise TypeError(op)

    def set_flags_for(self, result: str, width: int,
                      cf: str = "undefined", of: str = "undefined") -> None:
        self.flags = [
            f"''zf'' := (if ({result}) AND mask {width} = 0 then 1 else 0)",
            f"''sf'' := (if bit ({result}) {width - 1} then 1 else 0)",
            f"''pf'' := parity8 ({result})",
            f"''cf'' := {cf}",
            f"''of'' := {of}",
        ]

    def render(self) -> str:
        entries = []
        if self.regs:
            entries.append("reg := (reg σ)(" + ", ".join(self.regs) + ")")
        if self.mem is not None:
            entries.append(f"mem := {self.mem}")
        if self.flags:
            entries.append("flag := (flag σ)(" + ", ".join(self.flags) + ")")
        entries.append(f"rip := {self.rip}")
        entries += self.extra
        return "σ⦇ " + ", ".join(entries) + " ⦈"


_COND_TERMS = {
    "e": "flag σ ''zf'' = 1",
    "ne": "flag σ ''zf'' = 0",
    "b": "flag σ ''cf'' = 1",
    "ae": "flag σ ''cf'' = 0",
    "be": "flag σ ''cf'' = 1 ∨ flag σ ''zf'' = 1",
    "a": "flag σ ''cf'' = 0 ∧ flag σ ''zf'' = 0",
    "s": "flag σ ''sf'' = 1",
    "ns": "flag σ ''sf'' = 0",
    "p": "flag σ ''pf'' = 1",
    "np": "flag σ ''pf'' = 0",
    "l": "flag σ ''sf'' ≠ flag σ ''of''",
    "ge": "flag σ ''sf'' = flag σ ''of''",
    "le": "flag σ ''zf'' = 1 ∨ flag σ ''sf'' ≠ flag σ ''of''",
    "g": "flag σ ''zf'' = 0 ∧ flag σ ''sf'' = flag σ ''of''",
    "o": "flag σ ''of'' = 1",
    "no": "flag σ ''of'' = 0",
}

_ALU_TERM = {
    "add": "+", "sub": "-", "and": "AND", "or": "OR", "xor": "XOR",
}


def step_term(instr: Instruction) -> str:
    """The right-hand side of ``step_<addr> σ ≡ ...``."""
    mnemonic = instr.mnemonic
    ops = instr.operands
    u = _Updates(instr)

    if mnemonic == "nop":
        return u.render()
    if mnemonic in ("hlt", "ud2", "int3", "syscall"):
        u.extra.append("halted := True")
        return u.render()

    if mnemonic in ("mov", "movabs"):
        dst, src = ops
        u.write_operand(dst, _operand_read(src, instr))
        return u.render()
    if mnemonic == "lea":
        dst, src = ops
        u.write_operand(dst, _addr_term(src, instr))
        return u.render()
    if mnemonic in ("movzx", "movsx", "movsxd"):
        dst, src = ops
        value = _operand_read(src, instr)
        if mnemonic != "movzx":
            value = f"(scast_from {src.width} ({value}))"
        u.write_operand(dst, value)
        return u.render()

    if mnemonic in ALU_OPS or mnemonic == "test":
        dst, src = ops
        width = dst.width
        a, b = _operand_read(dst, instr), _operand_read(src, instr)
        if mnemonic in ("cmp", "sub"):
            result = f"({a}) - ({b})"
            cf = f"(if ({a}) < ({b}) then 1 else 0)"
        elif mnemonic == "add":
            result = f"({a}) + ({b})"
            cf = "undefined"
        elif mnemonic in ("and", "test"):
            result = f"({a}) AND ({b})"
            cf = "0"
        elif mnemonic == "or":
            result = f"({a}) OR ({b})"
            cf = "0"
        elif mnemonic == "xor":
            result = f"({a}) XOR ({b})"
            cf = "0"
        else:  # adc/sbb: carry-dependent
            result = "undefined"
            cf = "undefined"
        u.set_flags_for(result, width, cf=cf)
        if mnemonic not in ("cmp", "test"):
            u.write_operand(dst, result)
        return u.render()

    if mnemonic in ("inc", "dec", "neg", "not"):
        (dst,) = ops
        a = _operand_read(dst, instr)
        result = {"inc": f"({a}) + 1", "dec": f"({a}) - 1",
                  "neg": f"- ({a})", "not": f"NOT ({a})"}[mnemonic]
        u.write_operand(dst, result)
        if mnemonic != "not":
            u.set_flags_for(result, dst.width)
        return u.render()

    if mnemonic in SHIFT_OPS:
        dst, amount = ops
        a = _operand_read(dst, instr)
        n = _operand_read(amount, instr)
        op_term = {"shl": "<<", "shr": ">>"}.get(mnemonic)
        if op_term:
            result = f"({a}) {op_term} (unat (({n}) AND mask 6))"
        elif mnemonic == "sar":
            result = f"(sshiftr ({a}) (unat (({n}) AND mask 6)))"
        else:
            result = "undefined"  # rol/ror
        u.write_operand(dst, result)
        u.set_flags_for(result, dst.width)
        return u.render()

    if mnemonic == "imul" and len(ops) >= 2:
        dst = ops[0]
        a = _operand_read(ops[1] if len(ops) > 1 else dst, instr)
        b = _operand_read(ops[2], instr) if len(ops) == 3 \
            else _operand_read(dst, instr)
        u.write_operand(dst, f"({b}) * ({a})")
        u.set_flags_for("undefined", dst.width)
        return u.render()
    if mnemonic in ("mul", "imul", "div", "idiv"):
        (src,) = ops
        a = _reg_read("rax")
        b = _operand_read(src, instr)
        if mnemonic == "div":
            u.regs.append(_reg_update("rax", f"udiv64 ({a}) ({b})"))
            u.regs.append(_reg_update("rdx", f"urem64 ({a}) ({b})"))
        elif mnemonic == "idiv":
            u.regs.append(_reg_update("rax", f"sdiv64 ({a}) ({b})"))
            u.regs.append(_reg_update("rdx", f"srem64 ({a}) ({b})"))
        else:
            u.regs.append(_reg_update("rax", f"({a}) * ({b})"))
            u.regs.append(_reg_update("rdx", "undefined"))
        u.set_flags_for("undefined", 64)
        return u.render()
    if mnemonic == "cqo":
        u.regs.append(_reg_update(
            "rdx", f"(if bit ({_reg_read('rax')}) 63 then -1 else 0)"))
        return u.render()
    if mnemonic == "cdq":
        u.regs.append(_reg_update(
            "edx", f"(if bit ({_reg_read('eax')}) 31 then mask 32 else 0)"))
        return u.render()
    if mnemonic == "cdqe":
        u.regs.append(_reg_update("rax", f"scast_from 32 ({_reg_read('eax')})"))
        return u.render()

    if mnemonic == "push":
        (src,) = ops
        value = _operand_read(src, instr)
        rsp = "reg σ ''rsp''"
        u.regs.append(f"''rsp'' := ({rsp}) - 8")
        u.mem = f"(write_mem (mem σ) (({rsp}) - 8) 8 ({value}))"
        return u.render()
    if mnemonic == "pop":
        (dst,) = ops
        rsp = "reg σ ''rsp''"
        u.write_operand(dst, f"read_mem (mem σ) ({rsp}) 8")
        u.regs.append(f"''rsp'' := ({rsp}) + 8")
        return u.render()
    if mnemonic == "leave":
        rbp = "reg σ ''rbp''"
        u.regs.append(f"''rsp'' := ({rbp}) + 8")
        u.regs.append(f"''rbp'' := read_mem (mem σ) ({rbp}) 8")
        return u.render()

    if mnemonic == "jmp":
        (target,) = ops
        if isinstance(target, Imm):
            u.rip = f"({(instr.end + target.signed) & ((1 << 64) - 1):#x})"
        else:
            u.rip = _operand_read(target, instr)
        return u.render()
    if mnemonic == "call":
        (target,) = ops
        rsp = "reg σ ''rsp''"
        u.regs.append(f"''rsp'' := ({rsp}) - 8")
        u.mem = f"(write_mem (mem σ) (({rsp}) - 8) 8 ({instr.end:#x}))"
        if isinstance(target, Imm):
            u.rip = f"({(instr.end + target.signed) & ((1 << 64) - 1):#x})"
        else:
            u.rip = _operand_read(target, instr)
        return u.render()
    if mnemonic == "ret":
        rsp = "reg σ ''rsp''"
        pop = 8 + (ops[0].value if ops else 0)
        u.rip = f"(read_mem (mem σ) ({rsp}) 8)"
        u.regs.append(f"''rsp'' := ({rsp}) + {pop}")
        return u.render()

    cc = condition_of(mnemonic)
    if cc is not None:
        cond = _COND_TERMS.get(cc, "undefined")
        if mnemonic.startswith("j"):
            (target,) = ops
            taken = (instr.end + target.signed) & ((1 << 64) - 1)
            u.rip = (f"(if {cond} then ({taken:#x}) "
                     f"else ({instr.end:#x}))")
            return u.render()
        if mnemonic.startswith("set"):
            (dst,) = ops
            u.write_operand(dst, f"(if {cond} then 1 else 0)")
            return u.render()
        if mnemonic.startswith("cmov"):
            dst, src = ops
            u.write_operand(
                dst,
                f"(if {cond} then {_operand_read(src, instr)} "
                f"else {_operand_read(dst, instr)})",
            )
            return u.render()

    if mnemonic == "xchg":
        dst, src = ops
        a = _operand_read(dst, instr)
        b = _operand_read(src, instr)
        u.write_operand(dst, b)
        u.write_operand(src, a)
        return u.render()

    # String operations and anything else outside the equation fragment.
    u.extra.append("mem := undefined")
    return u.render()


def instruction_equations(instructions: dict[int, Instruction]) -> str:
    """All ``definition step_<addr>`` blocks plus the ``step_at`` spec."""
    out = io.StringIO()
    out.write("subsection ‹Instruction semantics (generated)›\n\n")
    for addr in sorted(instructions):
        instr = instructions[addr]
        out.write(f"text ‹{instr}›\n")
        out.write(f'definition "step_{addr:x} σ ≡ {step_term(instr)}"\n\n')
    out.write("text ‹The step relation, instantiated for this binary.›\n")
    for addr in sorted(instructions):
        out.write(
            f'lemma step_at_{addr:x}: "step_at ({addr:#x}) σ σ\''
            f' ⟷ σ\' = step_{addr:x} σ"\n'
            f"  sorry (* by the fetch/decode correctness of the model *)\n\n"
        )
    return out.getvalue()
