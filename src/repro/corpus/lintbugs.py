"""Seeded-bug binaries for the lint rules.

Unlike :mod:`repro.corpus.failures` (whose binaries exercise the *lifter's*
rejection channels), these binaries all carry a semantic defect the sanity
properties do not — and should not — catch: they verify cleanly (except
the clobber case, which is rejected *and* lintable) yet each triggers
exactly one deterministic lint finding.  They are the ground truth for
``tests/test_lint.py`` and the corpus lint report.
"""

from __future__ import annotations

from repro.elf import Binary, BinaryBuilder
from repro.isa import Imm, Mem, abs64


def uninit_read() -> Binary:
    """Reads ``rax`` before writing it: garbage at function entry."""
    builder = BinaryBuilder("uninit_read")
    t = builder.text
    t.label("main")
    # rax has no defined value under the SysV ABI here.
    t.emit("add", "rax", "rdi")
    t.emit("ret")
    return builder.build(entry="main")


def red_zone_write() -> Binary:
    """Spills into the red zone, then calls: the callee may clobber it."""
    builder = BinaryBuilder("red_zone_write")
    t = builder.text
    t.label("main")
    t.emit("mov", Mem(64, base="rsp", disp=-16), "rdi")
    t.emit("call", "helper")
    t.emit("mov", "rax", Mem(64, base="rsp", disp=-16))
    t.emit("ret")
    t.label("helper")
    t.emit("mov", "rax", Imm(7, 32))
    t.emit("ret")
    return builder.build(entry="main")


def callee_saved_clobber() -> Binary:
    """Overwrites ``rbx`` and returns without restoring it.

    The lifter rejects this (calling-convention sanity property); the lint
    rule localizes the clobbering definition inside the partial graph."""
    builder = BinaryBuilder("clobber")
    t = builder.text
    t.label("main")
    t.emit("mov", "rbx", "rdi")
    t.emit("xor", "rax", "rax")
    t.emit("ret")
    return builder.build(entry="main")


def dead_store() -> Binary:
    """Writes ``rax`` twice; the first value is unobservable."""
    builder = BinaryBuilder("dead_store")
    t = builder.text
    t.label("main")
    t.emit("mov", "rax", Imm(1, 32))
    t.emit("mov", "rax", Imm(2, 32))
    t.emit("ret")
    return builder.build(entry="main")


def escaping_stack_pointer() -> Binary:
    """Stores the address of a red-zone local into a global: the pointer
    analysis sees ``&frame`` leave the frame, and the saved address
    dangles the moment ``main`` returns."""
    builder = BinaryBuilder("escape")
    t = builder.text
    t.label("main")
    t.emit("lea", "rax", Mem(64, base="rsp", disp=-8))
    t.emit("movabs", "rcx", abs64("slot"))
    t.emit("mov", Mem(64, base="rcx"), "rax")
    t.emit("xor", "rax", "rax")
    t.emit("ret")
    d = builder.data
    d.label("slot")
    d.quad(0)
    return builder.build(entry="main")


#: name -> (builder, the rule id the binary must trigger).
ALL_LINTBUGS = {
    "uninit_read": (uninit_read, "uninit-read"),
    "red_zone_write": (red_zone_write, "write-below-rsp"),
    "callee_saved_clobber": (callee_saved_clobber, "callee-saved-clobber"),
    "dead_store": (dead_store, "dead-store"),
    "escaping_stack_pointer": (escaping_stack_pointer, "escaping-stack-pointer"),
}
