#!/usr/bin/env python3
"""Security analysis via proof obligations: the ret2win scenario (§5.3).

Lifting a binary that passes a stack-frame pointer to external ``memset``
succeeds — but emits a MUST-PRESERVE proof obligation over the caller's
return-address slot.  The *negation* of that obligation is an exploit
candidate: if memset writes more than the frame allows, the saved return
address is overwritten.  We demonstrate both sides concretely.

Run:  python examples/rop_gadgets.py
"""

from repro import lift
from repro.elf import BinaryBuilder
from repro.isa import Imm, Mem
from repro.machine import CPU


def build_ret2win():
    builder = BinaryBuilder("ret2win")
    builder.extern("memset")
    t = builder.text
    t.label("main")
    t.emit("sub", "rsp", Imm(32, 32))
    t.emit("lea", "rdi", Mem(64, base="rsp"))   # rdi := frame buffer
    t.emit("mov", "esi", Imm(0, 32))
    t.emit("mov", "edx", Imm(48, 32))           # 48 bytes > 32-byte frame!
    t.emit("call", "memset")
    t.emit("mov", "eax", Imm(0, 32))
    t.emit("add", "rsp", Imm(32, 32))
    t.emit("ret")
    t.label("win")                               # never called legitimately
    t.emit("mov", "eax", Imm(0x77, 32))
    t.emit("ret")
    binary = builder.build(entry="main")
    return binary, builder.text.labels["win"]


def memset_model(length: int, fill):
    def handler(cpu: CPU) -> None:
        dst = cpu.regs["rdi"]
        for offset in range(length):
            cpu.memory.write(dst + offset, fill(cpu, offset), 1)
        cpu.regs["rax"] = dst

    return handler


def main() -> None:
    binary, win_addr = build_ret2win()
    result = lift(binary)
    print(f"lift: {result.summary()}\n")
    print("generated proof obligations:")
    for obligation in result.obligations:
        print(f"  {obligation}")
    # Note: win() is dead code — the lifter proves it unreachable under the
    # obligation; it only becomes reachable when the obligation is violated.
    print(f"\nwin() at {win_addr:#x} is NOT in the lifted instructions: "
          f"{win_addr not in result.instructions}")

    print("\n1. A memset honoring the obligation (writes 32 bytes):")
    cpu = CPU(binary, extern_handlers={
        "memset": memset_model(32, lambda c, o: c.regs["rsi"] & 0xFF)
    })
    cpu.run(max_steps=100)
    print(f"   program returns normally, exit code {cpu.exit_code}")

    print("\n2. A memset VIOLATING the obligation (writes 48 bytes, the "
          "last 8 of which\n   are attacker-controlled and overwrite the "
          "return address):")
    payload = win_addr.to_bytes(8, "little")

    def attacker_fill(cpu, offset):
        if 32 <= offset < 40:            # bytes 32..39 hit [rsp0, 8]
            return payload[offset - 32]
        return 0x41

    cpu = CPU(binary, extern_handlers={"memset": memset_model(48, attacker_fill)})
    try:
        cpu.run(max_steps=100)
    except Exception:
        pass  # the exploited process crashes after win() returns — expected
    hijacked = win_addr in cpu.trace
    print(f"   control flow hijacked into win() at {win_addr:#x}: {hijacked}")
    print(f"   rax after win() ran: {cpu.regs['rax']:#x} (0x77 = win)")

    print("\nThe lifted representation is sound UNDER the obligation; its "
          "negation\nis precisely the exploit — the paper's proposed use of "
          "obligations for\nexploit generation (Section 7).")


if __name__ == "__main__":
    main()
