"""Unsigned interval arithmetic over 64-bit values.

The solver bounds symbolic pointer differences and jump-table indices with
intervals ``[lo, hi]`` (inclusive, unsigned).  All operations are
*conservative*: the result interval contains every value the operation can
produce for inputs in the argument intervals, and ``TOP`` is returned
whenever wraparound makes a tight bound unsound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.expr.ast import MASK64


@dataclass(frozen=True)
class Interval:
    """An inclusive unsigned interval ``[lo, hi]`` with ``lo <= hi``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi <= MASK64:
            raise ValueError(f"bad interval [{self.lo:#x}, {self.hi:#x}]")

    @property
    def is_top(self) -> bool:
        return self.lo == 0 and self.hi == MASK64

    @property
    def is_singleton(self) -> bool:
        return self.lo == self.hi

    def size(self) -> int:
        return self.hi - self.lo + 1

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def intersect(self, other: "Interval") -> "Interval | None":
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    def union(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def add(self, other: "Interval") -> "Interval":
        lo, hi = self.lo + other.lo, self.hi + other.hi
        # Wraparound is fine as long as both endpoints land in the same
        # 2^64 window (the value set stays a contiguous unsigned range).
        if (lo >> 64) != (hi >> 64):
            return TOP
        return Interval(lo & MASK64, hi & MASK64)

    def add_const(self, value: int) -> "Interval":
        return self.add(Interval(value & MASK64, value & MASK64))

    def scale(self, factor: int) -> "Interval":
        if factor == 0:
            return Interval(0, 0)
        if factor < 0:
            return TOP  # negative coefficients flip the range; keep it simple
        lo, hi = self.lo * factor, self.hi * factor
        if (lo >> 64) != (hi >> 64):
            return TOP
        return Interval(lo & MASK64, hi & MASK64)


TOP = Interval(0, MASK64)


def singleton(value: int) -> Interval:
    value &= MASK64
    return Interval(value, value)


def from_width(width: int) -> Interval:
    """The full range of a *width*-bit unsigned value."""
    return Interval(0, (1 << width) - 1)
