"""String instructions (movs/stos/lods, rep variants): encode/decode,
concrete semantics, symbolic semantics, and lifting."""

from __future__ import annotations

import pytest

from repro import lift
from repro.elf import BinaryBuilder
from repro.expr import Const, Var, const, simplify as s, var
from repro.isa import Imm, Mem, decode, encode, insn
from repro.machine import CPU
from repro.semantics import LiftContext, initial_state, step
from repro.smt.solver import Region


# -- encode/decode ---------------------------------------------------------------

@pytest.mark.parametrize("mnemonic,encoding", [
    ("movsb", "a4"), ("movsq", "48a5"),
    ("stosb", "aa"), ("stosq", "48ab"),
    ("lodsb", "ac"), ("lodsq", "48ad"),
    ("rep_movsb", "f3a4"), ("rep_movsq", "f348a5"),
    ("rep_stosb", "f3aa"), ("rep_stosq", "f348ab"),
])
def test_string_op_roundtrip(mnemonic, encoding):
    code = encode(insn(mnemonic))
    assert code.hex() == encoding
    decoded = decode(code)
    assert decoded.mnemonic == mnemonic
    assert decoded.size == len(code)


# -- concrete machine ---------------------------------------------------------------

def build(fill_text):
    builder = BinaryBuilder("strops")
    builder.text.label("main")
    fill_text(builder.text)
    builder.text.emit("ret")
    return builder.build(entry="main")


def test_rep_stosb_fills_memory():
    binary = build(lambda t: t.emit("rep_stosb"))
    cpu = CPU(binary)
    cpu.regs["rdi"] = 0x500000
    cpu.regs["rax"] = 0xAB
    cpu.regs["rcx"] = 16
    cpu.run(max_steps=10)
    assert cpu.memory.read(0x500000, 8) == 0xABABABABABABABAB
    assert cpu.regs["rcx"] == 0
    assert cpu.regs["rdi"] == 0x500010


def test_rep_movsq_copies_memory():
    binary = build(lambda t: t.emit("rep_movsq"))
    cpu = CPU(binary)
    for i in range(4):
        cpu.memory.write(0x500000 + 8 * i, 0x1000 + i, 8)
    cpu.regs["rsi"] = 0x500000
    cpu.regs["rdi"] = 0x600000
    cpu.regs["rcx"] = 4
    cpu.run(max_steps=10)
    for i in range(4):
        assert cpu.memory.read(0x600000 + 8 * i, 8) == 0x1000 + i
    assert cpu.regs["rsi"] == 0x500020


def test_lodsq_loads_rax():
    binary = build(lambda t: t.emit("lodsq"))
    cpu = CPU(binary)
    cpu.memory.write(0x500000, 0xDEAD, 8)
    cpu.regs["rsi"] = 0x500000
    cpu.run(max_steps=10)
    assert cpu.regs["rax"] == 0xDEAD
    assert cpu.regs["rsi"] == 0x500008


# -- symbolic semantics ----------------------------------------------------------------

def sym_step(mnemonic, prepare=None):
    binary = build(lambda t: t.emit(mnemonic))
    ctx = LiftContext(binary)
    state = initial_state(binary.entry, Var("ret0"))
    if prepare:
        state = prepare(state)
    return step(state, binary.fetch(binary.entry), ctx), ctx


def test_symbolic_stosq_tracks_write():
    successors, _ = sym_step("stosq")
    values = set()
    for succ in successors:
        mem = succ.state.pred.mem_dict()
        assert mem.get(Region(var("rdi0"), 8)) == var("rax0")
        assert succ.state.pred.get_reg("rdi") == s.add(var("rdi0"), const(8))
    assert successors


def test_symbolic_movsq_copies_value():
    successors, _ = sym_step("movsq")
    for succ in successors:
        mem = succ.state.pred.mem_dict()
        written = mem.get(Region(var("rdi0"), 8))
        assert written is not None
        assert succ.state.pred.get_reg("rsi") == s.add(var("rsi0"), const(8))


def test_symbolic_rep_stosq_const_count_unrolls():
    def prepare(state):
        regs = state.pred.reg_dict()
        regs["rcx"] = Const(3)
        return state.with_pred(state.pred.with_regs(regs))

    successors, _ = sym_step("rep_stosq", prepare)
    for succ in successors:
        mem = succ.state.pred.mem_dict()
        for k in range(3):
            key = Region(s.add(var("rdi0"), const(8 * k)), 8)
            assert mem.get(key) == var("rax0"), f"missing element {k}"
        assert succ.state.pred.get_reg("rcx") == Const(0)
        assert succ.state.pred.get_reg("rdi") == s.add(var("rdi0"), const(24))


def test_symbolic_rep_unbounded_keeps_return_address():
    """An unbounded rep stosq through an external pointer must not clobber
    the tracked return address (frame privacy), but must drop everything
    it may touch."""
    successors, _ = sym_step("rep_stosq")
    for succ in successors:
        mem = succ.state.pred.mem_dict()
        assert mem.get(Region(var("rsp0"), 8)) == Var("ret0")
        assert succ.state.pred.get_reg("rcx") == Const(0)


# -- lifting ------------------------------------------------------------------------------

def test_lift_inlined_memset():
    """The compiler-inlined fixed-size memset shape lifts cleanly."""
    builder = BinaryBuilder("memset_inline")
    t = builder.text
    t.label("main")
    t.emit("push", "rbp")
    t.emit("mov", "rbp", "rsp")
    t.emit("mov", "rdi", "rsi")        # destination from caller
    t.emit("mov", "eax", Imm(0, 32))
    t.emit("mov", "ecx", Imm(8, 32))
    t.emit("rep_stosq")                # memset(dst, 0, 64)
    t.emit("pop", "rbp")
    t.emit("ret")
    result = lift(builder.build(entry="main"))
    assert result.verified, [str(e) for e in result.errors]


def test_lift_unbounded_memset_into_own_frame_rejects():
    """rep stosb into the function's own frame with symbolic count can
    smash the return address: the lift must reject."""
    builder = BinaryBuilder("framesmash")
    t = builder.text
    t.label("main")
    t.emit("sub", "rsp", Imm(32, 32))
    t.emit("lea", "rdi", Mem(64, base="rsp"))
    t.emit("mov", "rcx", "rdx")        # attacker-controlled count
    t.emit("mov", "eax", Imm(0x41, 32))
    t.emit("rep_stosb")
    t.emit("add", "rsp", Imm(32, 32))
    t.emit("ret")
    result = lift(builder.build(entry="main"))
    assert not result.verified


def test_lift_bounded_memset_into_own_frame_ok():
    """A count clamped below the frame size is provably safe."""
    builder = BinaryBuilder("framesafe")
    t = builder.text
    t.label("main")
    t.emit("sub", "rsp", Imm(32, 32))
    t.emit("lea", "rdi", Mem(64, base="rsp"))
    t.emit("mov", "ecx", Imm(4, 32))   # 4 qwords = exactly the buffer
    t.emit("xor", "eax", "eax")
    t.emit("rep_stosq")
    t.emit("add", "rsp", Imm(32, 32))
    t.emit("ret")
    result = lift(builder.build(entry="main"))
    assert result.verified, [str(e) for e in result.errors]


def test_concrete_and_symbolic_agree_on_inlined_copy():
    """Differential: rep_movsq binary behaves per the lifted overapprox."""
    builder = BinaryBuilder("copy")
    t = builder.text
    t.label("main")
    t.emit("mov", "ecx", Imm(2, 32))
    t.emit("rep_movsq")
    t.emit("ret")
    binary = builder.build(entry="main")
    result = lift(binary)
    assert result.verified
    cpu = CPU(binary)
    cpu.memory.write(0x500000, 0x1234, 8)
    cpu.memory.write(0x500008, 0x5678, 8)
    cpu.regs["rsi"], cpu.regs["rdi"] = 0x500000, 0x600000
    cpu.run(max_steps=20)
    assert cpu.memory.read(0x600008, 8) == 0x5678
    assert set(cpu.trace) <= set(result.instructions)
