"""Hoare-graph comparison for trustworthy binary patching (Section 7).

The paper argues that lifting both an original binary and its patched
version and comparing the HGs — *including the assumptions each lift
required* — exposes unexpected effects of a patch.  ``diff_lifts`` aligns
two lift results by instruction address and reports:

* instructions added / removed / changed;
* control-flow edges added / removed (per instruction address);
* proof obligations added / removed (new or vanished external-call
  assumptions are exactly the "unexpected effects" to review);
* annotations (unsoundness warnings) added / removed;
* verification-verdict changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hoare.lifter import LiftResult


@dataclass
class LiftDiff:
    added_instructions: dict[int, str] = field(default_factory=dict)
    removed_instructions: dict[int, str] = field(default_factory=dict)
    changed_instructions: dict[int, tuple[str, str]] = field(default_factory=dict)
    added_edges: set[tuple[int, int]] = field(default_factory=set)
    removed_edges: set[tuple[int, int]] = field(default_factory=set)
    added_obligations: list[str] = field(default_factory=list)
    removed_obligations: list[str] = field(default_factory=list)
    added_annotations: list[str] = field(default_factory=list)
    removed_annotations: list[str] = field(default_factory=list)
    verdict_change: tuple[bool, bool] | None = None

    @property
    def is_clean(self) -> bool:
        """True when the patch changed nothing observable."""
        return not any((
            self.added_instructions, self.removed_instructions,
            self.changed_instructions, self.added_edges, self.removed_edges,
            self.added_obligations, self.removed_obligations,
            self.added_annotations, self.removed_annotations,
            self.verdict_change,
        ))

    def summary(self) -> str:
        parts = []
        if self.verdict_change:
            before, after = self.verdict_change
            parts.append(f"VERDICT: {'OK' if before else 'REJECTED'} -> "
                         f"{'OK' if after else 'REJECTED'}")
        parts.append(
            f"instructions: +{len(self.added_instructions)} "
            f"-{len(self.removed_instructions)} "
            f"~{len(self.changed_instructions)}"
        )
        parts.append(f"edges: +{len(self.added_edges)} -{len(self.removed_edges)}")
        parts.append(
            f"obligations: +{len(self.added_obligations)} "
            f"-{len(self.removed_obligations)}"
        )
        parts.append(
            f"annotations: +{len(self.added_annotations)} "
            f"-{len(self.removed_annotations)}"
        )
        return "; ".join(parts)


def _cf_edges(result: LiftResult) -> set[tuple[int, int]]:
    return {
        (edge.instr_addr, edge.dst[1])
        for edge in result.graph.edges
        if edge.dst[0] == "code"
    }


def diff_lifts(original: LiftResult, patched: LiftResult) -> LiftDiff:
    """Compare two lift results (typically: original vs patched binary)."""
    diff = LiftDiff()
    old_instrs = {a: str(i) for a, i in original.instructions.items()}
    new_instrs = {a: str(i) for a, i in patched.instructions.items()}
    for addr in sorted(set(new_instrs) - set(old_instrs)):
        diff.added_instructions[addr] = new_instrs[addr]
    for addr in sorted(set(old_instrs) - set(new_instrs)):
        diff.removed_instructions[addr] = old_instrs[addr]
    for addr in sorted(set(old_instrs) & set(new_instrs)):
        if old_instrs[addr] != new_instrs[addr]:
            diff.changed_instructions[addr] = (old_instrs[addr], new_instrs[addr])

    old_edges, new_edges = _cf_edges(original), _cf_edges(patched)
    diff.added_edges = new_edges - old_edges
    diff.removed_edges = old_edges - new_edges

    old_obligations = {str(ob) for ob in original.obligations}
    new_obligations = {str(ob) for ob in patched.obligations}
    diff.added_obligations = sorted(new_obligations - old_obligations)
    diff.removed_obligations = sorted(old_obligations - new_obligations)

    old_annotations = {str(a) for a in original.annotations}
    new_annotations = {str(a) for a in patched.annotations}
    diff.added_annotations = sorted(new_annotations - old_annotations)
    diff.removed_annotations = sorted(old_annotations - new_annotations)

    if original.verified != patched.verified:
        diff.verdict_change = (original.verified, patched.verified)
    return diff
