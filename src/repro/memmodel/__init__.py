"""Memory models (Section 3.2): trees, insertion, join, satisfaction."""

from repro.memmodel.model import (
    EMPTY,
    InsResult,
    MemModel,
    MemTree,
    ins,
    join_models,
    model_holds,
    relation_in_model,
    tree_holds,
)

__all__ = [
    "EMPTY", "InsResult", "MemModel", "MemTree", "ins", "join_models",
    "model_holds", "relation_in_model", "tree_holds",
]
