"""mini-C compiler tests: concrete execution agrees with C semantics, and
the compiled binaries lift cleanly."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import lift
from repro.machine import run_binary
from repro.minicc import ParseError, compile_source


def run_c(source: str, args=(), **kwargs):
    binary = compile_source(source, name="t")
    cpu = run_binary(binary, args=list(args), **kwargs)
    return cpu.regs["rax"] - (1 << 64) if cpu.regs["rax"] >> 63 else cpu.regs["rax"]


# -- expressions ------------------------------------------------------------------

def test_return_constant():
    assert run_c("long main() { return 42; }") == 42


def test_arithmetic():
    assert run_c("long main() { return 2 + 3 * 4 - 6 / 2; }") == 11


def test_precedence_and_parens():
    assert run_c("long main() { return (2 + 3) * 4; }") == 20


def test_negative_and_bitops():
    assert run_c("long main() { return -5 + (7 & 3) + (1 << 4) | 0; }") == 14


def test_modulo_and_division_signed():
    assert run_c("long main() { return 17 % 5 + 17 / 5; }") == 5
    assert run_c("long main() { return -17 / 5; }") == -3  # C truncates


def test_comparisons_yield_01():
    assert run_c("long main() { return (3 < 5) + (5 < 3) + (4 == 4); }") == 2


def test_logical_short_circuit():
    source = """
    long g;
    long touch() { g = 1; return 1; }
    long main() { g = 0; long r = 0 && touch(); return r * 10 + g; }
    """
    assert run_c(source) == 0  # touch never ran


def test_shift_operators():
    assert run_c("long main() { return (1 << 6) >> 2; }") == 16


# -- variables, params, control flow -------------------------------------------------

def test_params_and_locals():
    source = """
    long add3(long a, long b, long c) { long t = a + b; return t + c; }
    long main(long x, long y) { return add3(x, y, 10); }
    """
    assert run_c(source, args=[3, 4]) == 17


def test_if_else():
    source = """
    long main(long x) {
        if (x > 10) return 1;
        else if (x > 5) return 2;
        return 3;
    }
    """
    assert run_c(source, args=[20]) == 1
    assert run_c(source, args=[7]) == 2
    assert run_c(source, args=[1]) == 3


def test_while_loop_sum():
    source = """
    long main(long n) {
        long sum = 0;
        while (n > 0) { sum = sum + n; n = n - 1; }
        return sum;
    }
    """
    assert run_c(source, args=[10]) == 55


def test_for_loop_with_break_continue():
    source = """
    long main() {
        long sum = 0;
        for (long i = 0; i < 10; i = i + 1) {
            if (i == 3) continue;
            if (i == 7) break;
            sum = sum + i;
        }
        return sum;
    }
    """
    assert run_c(source) == 0 + 1 + 2 + 4 + 5 + 6


def test_recursion_factorial():
    source = """
    long fact(long n) { if (n <= 1) return 1; return n * fact(n - 1); }
    long main(long n) { return fact(n); }
    """
    assert run_c(source, args=[6]) == 720


# -- memory: arrays, pointers, globals --------------------------------------------------

def test_local_array():
    source = """
    long main() {
        long a[4];
        a[0] = 10; a[1] = 20; a[2] = 30; a[3] = 40;
        return a[0] + a[3];
    }
    """
    assert run_c(source) == 50


def test_int_array_truncation():
    source = """
    long main() {
        int a[2];
        a[0] = 0x100000001;     /* truncates to 1 */
        return a[0];
    }
    """
    assert run_c(source) == 1


def test_char_array():
    source = """
    long main() {
        char buf[8];
        buf[0] = 65; buf[1] = 66;
        return buf[0] + buf[1];
    }
    """
    assert run_c(source) == 131


def test_pointers_and_addrof():
    source = """
    long main() {
        long x = 5;
        long* p = &x;
        *p = *p + 37;
        return x;
    }
    """
    assert run_c(source) == 42


def test_pointer_arithmetic_scaling():
    source = """
    long main() {
        long a[3];
        a[0] = 1; a[1] = 2; a[2] = 3;
        long* p = a;
        return *(p + 2);
    }
    """
    assert run_c(source) == 3


def test_globals_and_global_arrays():
    source = """
    long counter = 7;
    long table[4] = {10, 20, 30, 40};
    long main(long i) {
        counter = counter + 1;
        return table[i] + counter;
    }
    """
    assert run_c(source, args=[2]) == 38


def test_function_pointer_call():
    source = """
    long twice(long x) { return x * 2; }
    long thrice(long x) { return x * 3; }
    long apply(long f, long x) { return (*f)(x); }
    long main(long which, long x) {
        long f = twice;
        if (which) f = thrice;
        return apply(f, x);
    }
    """
    assert run_c(source, args=[0, 10]) == 20
    assert run_c(source, args=[1, 10]) == 30


def test_switch_dense_jump_table():
    source = """
    long main(long x) {
        switch (x) {
            case 0: return 100;
            case 1: return 101;
            case 2: return 102;
            case 3: return 103;
            default: return 99;
        }
    }
    """
    binary = compile_source(source)
    # Dense switch must emit a real jump table (an indirect jmp).
    data = binary.section_at(binary.entry).data
    assert b"\xff\xe0" in data  # jmp rax
    for value, expected in [(0, 100), (1, 101), (2, 102), (3, 103), (9, 99)]:
        assert run_c(source, args=[value]) == expected


def test_switch_sparse_compare_chain():
    source = """
    long main(long x) {
        switch (x) {
            case 1: return 10;
            case 1000: return 20;
            default: return 0;
        }
    }
    """
    binary = compile_source(source)
    assert b"\xff\xe0" not in binary.section_at(binary.entry).data
    assert run_c(source, args=[1]) == 10
    assert run_c(source, args=[1000]) == 20
    assert run_c(source, args=[5]) == 0


def test_extern_call():
    source = """
    extern long magic();
    long main() { return magic() + 1; }
    """
    binary = compile_source(source)

    def magic(cpu):
        cpu.regs["rax"] = 41

    cpu = run_binary(binary, extern_handlers={"magic": magic})
    assert cpu.regs["rax"] == 42


def test_parse_error_reported():
    with pytest.raises(ParseError):
        compile_source("long main( { return 0; }")


# -- the compiled binaries lift cleanly ----------------------------------------------------

LIFT_SOURCES = {
    "arith": "long main(long x) { return x * 3 + 7; }",
    "loop": """
        long main(long n) {
            long sum = 0;
            for (long i = 0; i < n; i = i + 1) sum = sum + i;
            return sum;
        }
    """,
    "calls": """
        long helper(long x) { return x + 1; }
        long main(long x) { return helper(helper(x)); }
    """,
    "switch": """
        long main(long x) {
            long r = 0;
            switch (x) {
                case 0: r = 5; break;
                case 1: r = 6; break;
                case 2: r = 7; break;
                case 3: r = 8; break;
                default: r = 9;
            }
            return r;
        }
    """,
    "array": """
        long main(long n) {
            long a[8];
            for (long i = 0; i < 8; i = i + 1) a[i] = i * i;
            if (n < 0) n = 0;
            if (n > 7) n = 7;
            return a[n];
        }
    """,
}


@pytest.mark.parametrize("name", sorted(LIFT_SOURCES))
def test_compiled_binary_lifts(name):
    binary = compile_source(LIFT_SOURCES[name], name=name)
    result = lift(binary)
    assert result.verified, [str(e) for e in result.errors]
    assert result.stats.instructions > 0
    assert result.stats.unresolved_jumps == 0


def test_lift_covers_concrete_trace():
    """Overapproximation: a concrete run's trace ⊆ lifted instructions."""
    source = LIFT_SOURCES["switch"]
    binary = compile_source(source)
    result = lift(binary)
    for arg in (0, 1, 2, 3, 50):
        cpu = run_binary(binary, args=[arg])
        assert set(cpu.trace) <= set(result.instructions)


@settings(max_examples=30, deadline=None)
@given(
    x=st.integers(min_value=-(1 << 30), max_value=1 << 30),
    y=st.integers(min_value=-(1 << 30), max_value=1 << 30),
)
def test_prop_compiled_arith_matches_python(x, y):
    source = """
    long main(long x, long y) {
        return (x + y) * 2 - (x & y) + (x ^ 5);
    }
    """
    expected = (x + y) * 2 - (x & y) + (x ^ 5)
    assert run_c(source, args=[x & ((1 << 64) - 1), y & ((1 << 64) - 1)]) == expected


# -- stack-passed arguments (System V 7th+) ------------------------------------------

def test_eight_arguments_direct_call():
    source = """
    long sum8(long a, long b, long c, long d, long e, long f, long g, long h) {
        return a + b * 2 + c + d + e + f + g * 10 + h * 100;
    }
    long main(long x) {
        return sum8(1, 2, 3, 4, 5, 6, 7, x);
    }
    """
    assert run_c(source, args=[9]) == 1 + 4 + 3 + 4 + 5 + 6 + 70 + 900


def test_eight_arguments_indirect_call():
    source = """
    long sum8(long a, long b, long c, long d, long e, long f, long g, long h) {
        return a + b + c + d + e + f + g + h;
    }
    long main(long x) {
        long fp = sum8;
        return (*fp)(1, 2, 3, 4, 5, 6, 7, x);
    }
    """
    assert run_c(source, args=[8]) == 36


def test_eight_argument_function_lifts():
    source = """
    long sum8(long a, long b, long c, long d, long e, long f, long g, long h) {
        return a + b + c + d + e + f + g + h;
    }
    long main(long x) {
        return sum8(1, 2, 3, 4, 5, 6, 7, x);
    }
    """
    binary = compile_source(source, name="args8")
    result = lift(binary)
    assert result.verified, [str(e) for e in result.errors]


# -- the peephole optimizer (-O1) -----------------------------------------------------

OPT_PROGRAMS = [
    ("long main(long n) { long s = 0; s = s + n; return s; }", [0, 7, -3]),
    ("""
     long main(long n) {
         long s = 0;
         for (long i = 0; i < n; i = i + 1) { if (i > 3) s = s + i; }
         return s;
     }""", [0, 5, 12]),
    ("""
     long f(long x) { return x * 3; }
     long main(long n) { return f(n) + f(n + 1); }""", [4, 10]),
]


@pytest.mark.parametrize("index", range(len(OPT_PROGRAMS)))
def test_optimized_binary_behaves_identically(index):
    source, inputs = OPT_PROGRAMS[index]
    plain = compile_source(source, name="o0")
    optimized = compile_source(source, name="o1", optimize=1)
    for value in inputs:
        a = run_binary(plain, args=[value & ((1 << 64) - 1)]).regs["rax"]
        b = run_binary(optimized, args=[value & ((1 << 64) - 1)]).regs["rax"]
        assert a == b, (source, value)


def test_optimizer_shrinks_code():
    source = OPT_PROGRAMS[1][0]
    plain = compile_source(source, name="o0")
    optimized = compile_source(source, name="o1", optimize=1)
    size = lambda binary: len(binary.section_at(binary.entry).data)
    assert size(optimized) < size(plain)


def test_optimized_binary_lifts():
    source = OPT_PROGRAMS[1][0]
    optimized = compile_source(source, name="o1", optimize=1)
    result = lift(optimized)
    assert result.verified, [str(e) for e in result.errors]
