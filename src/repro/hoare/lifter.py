"""Hoare-graph extraction: Algorithm 1 plus the Section 4.2 extensions.

The exploration keeps a bag of symbolic states.  A popped state is joined
with the compatible vertex already in the graph (if any); if the join adds
nothing (``σ ⊑ σc``), exploration of that state stops — this is the
fixed-point/termination argument of the paper.  Otherwise the joined state
is stepped through τ, new edges are added, and successors go back in the
bag.

Sanity properties are checked on the fly:

* **return address integrity** — a ``ret`` must resolve to the function's
  context-free return symbol (or a concrete "weird" target); an unprovable
  return target rejects the lift;
* **bounded control flow** — unresolved indirect jumps/calls produce
  annotations (Algorithm 1 line 13) and stop exploration of that path;
* **calling-convention adherence** — at ``ret``, ``rsp == rsp0 + 8`` and
  the callee-saved registers hold their initial values, else reject.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import Counter
from dataclasses import dataclass, field

from repro.elf import Binary
from repro.obs.metrics import metrics as _M
from repro.obs.profile import phase as _phase
from repro.obs.tracer import tracer as _T
from repro.expr import Const, Var, simplify as s
from repro.isa import DecodeError, Instruction
from repro.isa.registers import CALLEE_SAVED
from repro.elf.image import FetchError
from repro.pred import Predicate
from repro.semantics import (
    CallEvent,
    LiftContext,
    RetEvent,
    SymState,
    TerminalEvent,
    UnknownWriteEvent,
    UnsupportedInstruction,
    join_states,
    step,
)
from repro.semantics.state import states_equal
from repro.smt.solver import Assumption, Region
from repro.hoare.annotations import Annotation, Obligation, VerificationError
from repro.hoare.calls import (
    after_call_state,
    call_obligation,
    callee_initial_state,
    is_concurrency_external,
    is_terminating_external,
)
from repro.hoare.graph import Edge, HoareGraph, VertexKey, code_key, exit_key, ret_key
from repro.hoare.schedule import (
    SCC_ORDER,
    SCHEDULE_MODES,
    Schedule,
    build_schedule,
)
from repro.perf.counters import gated as _gated
from repro.hoare.resolve import (
    Resolution,
    is_return_symbol,
    resolve_rip,
    return_symbol,
    symbol_entry,
)


@dataclass
class LiftStats:
    """The Table 1 measurement columns."""

    instructions: int = 0
    states: int = 0
    resolved_indirections: int = 0    # column A
    unresolved_jumps: int = 0         # column B
    unresolved_calls: int = 0         # column C
    seconds: float = 0.0
    #: Annotation counts by kind (e.g. {"unresolved-jump": 2}); columns B/C
    #: count *addresses*, this counts every annotation instance.
    annotations_by_kind: dict[str, int] = field(default_factory=dict)


@dataclass
class LiftResult:
    """Everything the lifter produces for one binary / library function."""

    binary: Binary
    entry: int
    graph: HoareGraph
    annotations: list[Annotation] = field(default_factory=list)
    obligations: list[Obligation] = field(default_factory=list)
    assumptions: set[Assumption] = field(default_factory=set)
    errors: list[VerificationError] = field(default_factory=list)
    stats: LiftStats = field(default_factory=LiftStats)

    @property
    def verified(self) -> bool:
        """True iff the sanity properties were proven (an HG was produced)."""
        return not self.errors

    @property
    def instructions(self) -> dict[int, Instruction]:
        return self.graph.instructions

    def summary(self) -> str:
        flag = "OK" if self.verified else "REJECTED"
        text = (
            f"{self.binary.name}@{self.entry:#x}: {flag}, "
            f"{self.stats.instructions} instructions, {self.stats.states} states, "
            f"A={self.stats.resolved_indirections} B={self.stats.unresolved_jumps} "
            f"C={self.stats.unresolved_calls}"
        )
        by_kind = self.stats.annotations_by_kind
        if by_kind:
            counts = " ".join(f"{kind}={by_kind[kind]}"
                              for kind in sorted(by_kind))
            text += f", annotations: {counts}"
        return text


#: Transfer-function engines: τ walked per visit (the reference) vs the
#: compiled micro-op engine (same semantics, see repro.uop).
ENGINES = ("tau", "uop")


def _step_fn(engine: str):
    if engine == "tau":
        return step
    from repro.uop.interp import uop_step

    return uop_step


class _Lifter:
    def __init__(self, binary: Binary, entry: int, trust_data: bool,
                 max_states: int, max_targets: int,
                 timeout_seconds: float | None = None,
                 schedule: Schedule | None = None,
                 summaries=None, engine: str = "tau"):
        self.binary = binary
        self.entry = entry
        self.step = _step_fn(engine)
        #: Optional pointer-summary oracle (duck-typed ``for_internal``/
        #: ``for_external``) refining the call-cleaning havoc.
        self.summaries = summaries
        self.ctx = LiftContext(binary, trust_data=trust_data)
        self.graph = HoareGraph()
        self.text_range = binary.text_range()
        self.max_states = max_states
        self.max_targets = max_targets
        self.timeout_seconds = timeout_seconds
        # The budget is *CPU* seconds, not wall-clock: process_time is
        # unaffected by scheduler time-slicing, so a function hits (or
        # clears) its budget identically whether it is lifted serially or
        # in one of several workers sharing the machine.
        self.deadline = (
            time.process_time() + timeout_seconds if timeout_seconds else None
        )

        # Priority queue ordered by (scc_rank, head?, address) when a
        # precomputed schedule is given (the default), else by plain
        # instruction address: either way loops reach their local fixpoint
        # before their exit continuations run, so transient early-iteration
        # abstractions never leak downstream.  The SCC order additionally
        # survives layouts where the loop body sits *after* its exit in
        # the address space (see repro.hoare.schedule).
        self.schedule = schedule
        self.bag: list[tuple[int, int, int, int, SymState]] = []
        self._tiebreak = itertools.count()
        self.join_counts: dict[VertexKey, int] = {}
        self.widen_after = 64
        self.pending_returns: dict[int, list[SymState]] = {}
        self.returned: set[int] = set()
        self.queued_functions: set[int] = set()
        self.annotated: set[VertexKey] = set()

        self.annotations: list[Annotation] = []
        self.obligations: list[Obligation] = []
        self.assumptions: set[Assumption] = set()
        self.errors: list[VerificationError] = []
        self.resolved: set[int] = set()
        self.unresolved_jump_addrs: set[int] = set()
        self.unresolved_call_addrs: set[int] = set()
        self.explored = 0

    # -- helpers ------------------------------------------------------------------

    def reject(self, kind: str, addr: int, detail: str) -> None:
        error = VerificationError(kind, addr, detail)
        if error not in self.errors:
            self.errors.append(error)
            if _T.enabled:
                _T.emit("reject", addr, kind=kind, detail=detail)

    def annotate(self, kind: str, addr: int, detail: str) -> None:
        self.annotations.append(Annotation(kind, addr, detail))
        if _T.enabled:
            _T.emit("annotation", addr, kind=kind, detail=detail)

    def enqueue(self, state: SymState) -> None:
        if state.rip is not None:
            if self.schedule is not None:
                rank, head = self.schedule.priority(state.rip)[:2]
                # Newest-first within one (rank, head?, addr) key: after a
                # loop drains, the most recent escape state carries the
                # widest hull, so the stale earlier escapes join as no-ops
                # and the downstream region is explored once instead of
                # once per iteration.  (The address schedule keeps its
                # historical oldest-first order.)
                tiebreak = -next(self._tiebreak)
            else:
                rank, head = 0, 0
                tiebreak = next(self._tiebreak)
            heapq.heappush(
                self.bag,
                (rank, head, state.rip, tiebreak, state),
            )
            if _T.enabled:
                _T.emit_sampled("state.enqueue", state.rip,
                                queue=len(self.bag))
                _M.observe("queue.length", len(self.bag))

    def queue_function(self, entry: int) -> None:
        if entry not in self.queued_functions:
            self.queued_functions.add(entry)
            self.enqueue(callee_initial_state(entry))

    def park_continuation(self, callee: int, continuation: SymState) -> None:
        if callee in self.returned:
            self.enqueue(continuation.mark_reachable(True))
        else:
            self.pending_returns.setdefault(callee, []).append(continuation)

    def release_returns(self, callee: int) -> None:
        if callee in self.returned:
            return
        self.returned.add(callee)
        for continuation in self.pending_returns.pop(callee, []):
            self.enqueue(continuation.mark_reachable(True))

    def add_edge(self, src: VertexKey, instr_addr: int, dst: VertexKey) -> None:
        self.graph.edges.add(Edge(src, instr_addr, dst))

    # -- main loop ------------------------------------------------------------------

    def run(self) -> None:
        self.queued_functions.add(self.entry)
        self.enqueue(callee_initial_state(self.entry))
        while self.bag and not self.errors:
            state = heapq.heappop(self.bag)[-1]
            self.explore(state)
        if self.bag and self.errors:
            self.bag.clear()

    def explore(self, state: SymState) -> None:
        rip = state.rip
        if rip is None:
            return
        if _T.enabled:
            # All events fired while stepping this instruction (SMT
            # queries, joins, annotations) inherit this address.
            _T.addr = rip
            _T.emit_sampled("state.explore", rip, explored=self.explored)
        key = code_key(state, self.text_range)
        current = self.graph.vertices.get(key)
        if current is not None:
            with _phase("join"):
                joined = join_states(state, current, rip)
                if states_equal(joined, current):
                    return
                self.join_counts[key] = self.join_counts.get(key, 0) + 1
                _gated("lift_joins")
                if _T.enabled:
                    _T.emit_sampled("join", rip, count=self.join_counts[key])
                    _M.observe("join.depth", self.join_counts[key])
                if self.join_counts[key] > self.widen_after:
                    # Interval hulls may ascend forever (unbounded
                    # counters); jump to the top of the range-abstraction
                    # ladder.
                    from repro.pred.predicate import widen_predicate

                    joined = joined.with_pred(widen_predicate(joined.pred))
                    if _T.enabled:
                        _T.emit("join.widen", rip, count=self.join_counts[key])
                self.graph.vertices[key] = joined
                state = joined
        else:
            self.graph.vertices[key] = state

        self.explored += 1
        if self.explored > self.max_states:
            self.reject("timeout", rip, "state exploration budget exhausted")
            return
        if self.deadline is not None and time.process_time() > self.deadline:
            self.reject("timeout", rip,
                        f"CPU budget ({self.timeout_seconds}s) exhausted")
            return

        extern = self.binary.external_name(rip)
        if extern is not None:
            # Control jumped straight into an external stub (tail call).
            self.handle_external_tail(state, key, rip, extern)
            return

        with _phase("decode"):
            try:
                instr = self.binary.fetch(rip)
            except (FetchError, DecodeError) as exc:
                self.annotate("undecodable", rip, str(exc))
                return
            self.graph.instructions[rip] = instr

        with _phase("transfer"):
            try:
                successors = self.step(state, instr, self.ctx)
            except UnsupportedInstruction as exc:
                self.annotate("unsupported", rip, str(exc))
                return

        with _phase("resolve"):
            for successor in successors:
                self.assumptions.update(successor.assumptions)
                self.handle_successor(state, key, instr, successor)

    # -- successor dispatch -------------------------------------------------------------

    def handle_successor(self, src_state, src_key, instr, successor) -> None:
        rip = instr.addr
        events = successor.events
        succ_state = successor.state

        for event in events:
            if isinstance(event, UnknownWriteEvent):
                self.reject("return-address", rip, event.detail)
                return
        for event in events:
            if isinstance(event, TerminalEvent):
                self.add_edge(src_key, rip, exit_key(event.reason))
                return
            if isinstance(event, CallEvent):
                self.handle_call(succ_state, src_key, rip, event)
                return
            if isinstance(event, RetEvent):
                self.handle_ret(succ_state, src_key, rip, event)
                return

        # Plain successor: follow rip.
        rip_value = succ_state.pred.rip
        if isinstance(rip_value, Const):
            self.edge_to_target(succ_state, src_key, rip, rip_value.value)
            return
        resolution = resolve_rip(
            rip_value, succ_state.pred, self.binary, self.max_targets
        )
        if resolution.kind == "targets":
            self.resolved.add(rip)
            for target in resolution.targets:
                specialized = succ_state.with_pred(
                    succ_state.pred.with_regs(
                        {**succ_state.pred.reg_dict(), "rip": Const(target)}
                    )
                )
                self.edge_to_target(specialized, src_key, rip, target)
        elif resolution.kind == "return":
            self.handle_return_to_symbol(
                succ_state, src_key, rip, resolution.symbol,
                succ_state.pred.get_reg("rsp"),
            )
        else:
            self.unresolved_jump_addrs.add(rip)
            self.annotate("unresolved-jump", rip, resolution.detail)

    def edge_to_target(self, state: SymState, src_key, instr_addr: int,
                       target: int) -> None:
        extern = self.binary.external_name(target)
        if extern is not None:
            self.handle_external_tail(state, src_key, instr_addr, extern)
            return
        dst_state = state.with_pred(
            state.pred.with_regs({**state.pred.reg_dict(), "rip": Const(target)})
        )
        dst_key = code_key(dst_state, self.text_range)
        self.add_edge(src_key, instr_addr, dst_key)
        self.enqueue(dst_state)

    # -- calls ------------------------------------------------------------------------------

    def handle_call(self, state: SymState, src_key, rip: int,
                    event: CallEvent) -> None:
        target = event.target
        if isinstance(target, Const):
            self.dispatch_call(state, src_key, rip, target.value, event.return_addr)
            return
        resolution = resolve_rip(target, state.pred, self.binary, self.max_targets)
        if resolution.kind == "targets":
            self.resolved.add(rip)
            for addr in resolution.targets:
                self.dispatch_call(state, src_key, rip, addr, event.return_addr)
            return
        # Unresolved indirect call: annotate, then treat as an unknown
        # external function (Section 5.1).
        self.unresolved_call_addrs.add(rip)
        self.annotate("unresolved-call", rip, f"target = {target}")
        self.obligations.append(call_obligation(state, rip, "<indirect>"))
        continuation = after_call_state(state, event.return_addr, self.ctx)
        continuation = continuation.mark_reachable(True)
        self.add_edge(src_key, rip, code_key(continuation, self.text_range))
        self.enqueue(continuation)

    def call_summary(self, rip: int, callee: str, lookup) -> "object | None":
        """Resolve a pointer summary for one call site (None = no oracle or
        no refinement) and record the assumption the refinement rests on."""
        if self.summaries is None:
            return None
        summary = lookup()
        if summary is None:
            return None
        _gated("pointer_summary_hits")
        self.assumptions.add(Assumption(
            "pointer-summary",
            f"call to {callee} at {rip:#x} cleaned per {summary}",
        ))
        return summary

    def dispatch_call(self, state: SymState, src_key, rip: int,
                      target: int, return_addr: int) -> None:
        extern = self.binary.external_name(target)
        if extern is not None:
            if is_concurrency_external(extern):
                self.reject("concurrency", rip, f"call to {extern}")
                return
            if is_terminating_external(extern):
                self.add_edge(src_key, rip, exit_key(extern))
                return
            summary = self.call_summary(
                rip, extern, lambda: self.summaries.for_external(extern))
            self.obligations.append(call_obligation(state, rip, extern))
            continuation = after_call_state(state, return_addr, self.ctx,
                                            summary=summary)
            continuation = continuation.mark_reachable(True)
            self.add_edge(src_key, rip, code_key(continuation, self.text_range))
            self.enqueue(continuation)
            return
        if not self.binary.is_executable(target):
            self.annotate("unresolved-call", rip,
                          f"call target {target:#x} not executable")
            self.unresolved_call_addrs.add(rip)
            return
        # Internal, context-free call (Section 4.2.2).
        self.queue_function(target)
        callee_entry_state = callee_initial_state(target)
        self.add_edge(src_key, rip, code_key(callee_entry_state, self.text_range))
        obligation = call_obligation(state, rip, f"sub_{target:x}")
        if obligation.pointer_args:
            self.obligations.append(obligation)
        summary = self.call_summary(
            rip, f"sub_{target:x}",
            lambda: self.summaries.for_internal(target))
        continuation = after_call_state(state, return_addr, self.ctx,
                                        summary=summary)
        self.add_edge(src_key, rip, code_key(continuation, self.text_range))
        self.park_continuation(target, continuation)

    def handle_external_tail(self, state: SymState, src_key, rip: int,
                             extern: str) -> None:
        """A jmp (or fallthrough) into an external stub: the external runs
        and returns to *our* caller."""
        if is_concurrency_external(extern):
            self.reject("concurrency", rip, f"tail call to {extern}")
            return
        if is_terminating_external(extern):
            self.add_edge(src_key, rip, exit_key(extern))
            return
        self.obligations.append(call_obligation(state, rip, extern))
        rsp = state.pred.get_reg("rsp")
        if rsp is None:
            self.reject("return-address", rip, "rsp unknown at external tail call")
            return
        from repro.semantics import read_region

        ret_target = read_region(state, Region(rsp, 8), self.ctx)
        if is_return_symbol(ret_target):
            # The external pops our return address: net effect is a return.
            self.check_convention_and_return(
                state, src_key, rip, ret_target, expect_rsp=rsp,
                expected_offset=0,
            )
        else:
            self.reject(
                "return-address", rip,
                f"external tail call with unprovable return address {ret_target}",
            )

    # -- returns ---------------------------------------------------------------------------------

    def handle_ret(self, state: SymState, src_key, rip: int,
                   event: RetEvent) -> None:
        target = event.target
        if target is None:
            self.reject("return-address", rip, "return target is ⊥")
            return
        if is_return_symbol(target):
            self.handle_return_to_symbol(state, src_key, rip, target,
                                         event.rsp_after)
            return
        if isinstance(target, Const):
            # A concrete return address: a "weird" edge (e.g. a ROP gadget
            # returning into pushed data).  Sound — follow it.
            self.edge_to_target(state, src_key, rip, target.value)
            return
        resolution = resolve_rip(target, state.pred, self.binary, self.max_targets)
        if resolution.kind == "targets":
            self.resolved.add(rip)
            for addr in resolution.targets:
                self.edge_to_target(state, src_key, rip, addr)
            return
        self.reject(
            "return-address", rip,
            f"cannot prove integrity of return address: rip = {target}",
        )

    def handle_return_to_symbol(self, state: SymState, src_key, rip: int,
                                symbol: Var, rsp_after) -> None:
        self.check_convention_and_return(
            state, src_key, rip, symbol, expect_rsp=rsp_after, expected_offset=8
        )

    def check_convention_and_return(self, state: SymState, src_key, rip: int,
                                    symbol: Var, expect_rsp,
                                    expected_offset: int) -> None:
        """Verify stack-pointer restoration and callee-saved registers, then
        record the return edge and release parked continuations."""
        expected = s.add(Var("rsp0"), Const(expected_offset)) \
            if expected_offset else Var("rsp0")
        if expect_rsp is None or expect_rsp != expected:
            self.reject(
                "calling-convention", rip,
                f"stack pointer not restored: rsp = {expect_rsp}",
            )
            return
        for reg in CALLEE_SAVED:
            value = state.pred.get_reg(reg)
            if value != Var(f"{reg}0"):
                self.reject(
                    "calling-convention", rip,
                    f"callee-saved register {reg} not restored: {value}",
                )
                return
        function = symbol_entry(symbol)
        self.add_edge(src_key, rip, ret_key(function))
        self.release_returns(function)

    # -- result ----------------------------------------------------------------------------------

    def result(self, seconds: float) -> LiftResult:
        if _T.enabled:
            _M.observe("function.instructions", len(self.graph.instructions))
            _M.observe("function.states", self.graph.state_count())
        stats = LiftStats(
            instructions=len(self.graph.instructions),
            states=self.graph.state_count(),
            resolved_indirections=len(self.resolved),
            unresolved_jumps=len(self.unresolved_jump_addrs),
            unresolved_calls=len(self.unresolved_call_addrs),
            seconds=seconds,
            annotations_by_kind=dict(sorted(Counter(
                annotation.kind for annotation in self.annotations
            ).items())),
        )
        return LiftResult(
            binary=self.binary,
            entry=self.entry,
            graph=self.graph,
            annotations=self.annotations,
            obligations=self.obligations,
            assumptions=self.assumptions,
            errors=self.errors,
            stats=stats,
        )


def lift(
    binary: Binary,
    entry: int | None = None,
    trust_data: bool = True,
    max_states: int = 50_000,
    max_targets: int = 1024,
    timeout_seconds: float | None = None,
    schedule: str = SCC_ORDER,
    cache: "bool | object | None" = None,
    cache_dir: str | None = None,
    pointer_summaries: bool = False,
    engine: str = "tau",
) -> LiftResult:
    """Lift *binary* starting at *entry* (default: the ELF entry point).

    Returns a :class:`LiftResult`; ``result.verified`` reports whether the
    sanity properties were proven (if False, ``result.errors`` explains the
    rejection and the graph is partial).  *timeout_seconds* is the paper's
    per-binary time budget (4 hours of wall time there; CPU
    seconds here, so worker-pool time-slicing cannot change outcomes).

    *schedule* selects the bag order: ``"scc"`` (default, loop-aware SCC
    ranks precomputed by :mod:`repro.hoare.schedule`) or ``"address"``
    (the flat pre-PR5 order, kept for A/B comparison).  Both reach the
    same fixpoint; the SCC order reaches it in fewer joins.

    *cache* controls the persistent lift store (:mod:`repro.perf.store`):
    ``None`` (default) consults the ``REPRO_CACHE`` environment variable,
    ``True`` enables it (directory from *cache_dir*, ``REPRO_CACHE_DIR``
    or the default), ``False`` disables it, and a
    :class:`~repro.perf.store.LiftStore` instance is used directly.  A
    cache hit returns the exact pickled :class:`LiftResult` the cold path
    produced — same graph, annotations, verdicts and stats.

    *pointer_summaries* enables the two-phase feedback lift
    (:mod:`repro.analysis.pointer.feedback`): a context-free phase-1 lift
    is summarized by the interprocedural pointer analysis, then the binary
    is re-lifted with call-site summaries refining the cleaning havoc.

    *engine* selects the transfer function: ``"tau"`` (default, the
    reference predicate transformer walked per visit) or ``"uop"`` (the
    compiled micro-op engine of :mod:`repro.uop`).  Both produce
    verdict-identical results; ``uop`` is the fast cold path.
    """
    if schedule not in SCHEDULE_MODES:
        raise ValueError(f"unknown schedule mode {schedule!r}")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}")
    from repro.perf import store as _store

    lift_store = _store.resolve_store(cache, cache_dir)
    if lift_store is not None:
        return _store.cached_lift(
            binary, entry=entry, store=lift_store, trust_data=trust_data,
            max_states=max_states, max_targets=max_targets,
            timeout_seconds=timeout_seconds, schedule=schedule,
            pointer_summaries=pointer_summaries, engine=engine,
        )
    return lift_uncached(
        binary, entry=entry, trust_data=trust_data, max_states=max_states,
        max_targets=max_targets, timeout_seconds=timeout_seconds,
        schedule=schedule, pointer_summaries=pointer_summaries,
        engine=engine,
    )


def lift_uncached(
    binary: Binary,
    entry: int | None = None,
    trust_data: bool = True,
    max_states: int = 50_000,
    max_targets: int = 1024,
    timeout_seconds: float | None = None,
    schedule: str = SCC_ORDER,
    pointer_summaries: bool = False,
    summaries=None,
    engine: str = "tau",
) -> LiftResult:
    """The cold path of :func:`lift`: always runs the fixpoint engine.

    :func:`repro.perf.store.cached_lift` calls this on a miss; everything
    else should go through :func:`lift`.  *summaries* is the resolved
    pointer-summary oracle of an ongoing two-phase lift;
    *pointer_summaries* asks for the full two-phase protocol (the two are
    mutually exclusive — the feedback module passes *summaries*).
    """
    if pointer_summaries:
        from repro.analysis.pointer.feedback import lift_with_summaries

        return lift_with_summaries(
            binary, entry=entry, trust_data=trust_data,
            max_states=max_states, max_targets=max_targets,
            timeout_seconds=timeout_seconds, schedule=schedule,
            engine=engine,
        )
    start = time.perf_counter()
    resolved_entry = entry if entry is not None else binary.entry
    with _T.span("lift", binary=binary.name, entry=resolved_entry):
        with _phase("schedule"):
            sched = (build_schedule(binary, resolved_entry)
                     if schedule == SCC_ORDER else None)
        lifter = _Lifter(
            binary,
            resolved_entry,
            trust_data=trust_data,
            max_states=max_states,
            max_targets=max_targets,
            timeout_seconds=timeout_seconds,
            schedule=sched,
            summaries=summaries,
            engine=engine,
        )
        lifter.run()
        with _phase("finish"):
            result = lifter.result(time.perf_counter() - start)
    if _T.enabled:
        _T.addr = None
        _T.emit("lift.done", lifter.entry, binary=binary.name,
                verified=result.verified,
                instructions=result.stats.instructions,
                states=result.stats.states)
    return result


def lift_function(binary: Binary, name: str, **kwargs) -> LiftResult:
    """Lift one exported function of a shared object (Section 5.1's library
    mode): starts at the function's symbol, does not trust .data contents."""
    if name not in binary.symbols:
        raise KeyError(f"no such function symbol: {name}")
    kwargs.setdefault("trust_data", False)
    return lift(binary, entry=binary.symbols[name], **kwargs)
