"""ELF writer/reader round-trips and the Binary/fetch abstraction."""

from __future__ import annotations

import pytest

from repro.elf import (
    Binary,
    BinaryBuilder,
    ElfError,
    FetchError,
    Section,
    read_elf,
    write_elf,
)
from repro.isa import Imm, Mem, abs64


def simple_binary() -> Binary:
    builder = BinaryBuilder("simple")
    text = builder.text
    text.label("main")
    text.emit("push", "rbp")
    text.emit("mov", "rbp", "rsp")
    text.emit("mov", "eax", Imm(42, 32))
    text.emit("pop", "rbp")
    text.emit("ret")
    return builder.build(entry="main")


def test_fetch_decodes_instructions_in_order():
    binary = simple_binary()
    addr = binary.entry
    seen = []
    for _ in range(5):
        instr = binary.fetch(addr)
        seen.append(instr.mnemonic)
        addr = instr.end
    assert seen == ["push", "mov", "mov", "pop", "ret"]


def test_fetch_outside_text_raises():
    binary = simple_binary()
    with pytest.raises(FetchError):
        binary.fetch(0x1)


def test_read_beyond_section_raises():
    binary = simple_binary()
    with pytest.raises(FetchError):
        binary.read(binary.entry, 10_000)


def test_elf_roundtrip_sections_and_entry(tmp_path):
    binary = simple_binary()
    data = write_elf(binary)
    assert data[:4] == b"\x7fELF"
    loaded = read_elf(data)
    assert loaded.entry == binary.entry
    text = loaded.section_at(binary.entry)
    assert text is not None and text.executable
    assert loaded.read(binary.entry, 1) == binary.read(binary.entry, 1)


def test_elf_roundtrip_externals_and_symbols():
    builder = BinaryBuilder("ext")
    malloc = builder.extern("malloc")
    free = builder.extern("free")
    text = builder.text
    text.label("main")
    text.emit("call", "malloc")
    text.emit("ret")
    text.label("helper")
    text.emit("ret")
    binary = builder.build(entry="main", export_labels=True)
    loaded = read_elf(write_elf(binary))
    assert loaded.externals[malloc] == "malloc"
    assert loaded.externals[free] == "free"
    assert loaded.symbols["helper"] == binary.symbols["helper"]
    assert loaded.symbols["main"] == binary.entry


def test_extern_stubs_are_stable():
    builder = BinaryBuilder("ext2")
    first = builder.extern("memset")
    again = builder.extern("memset")
    other = builder.extern("memcpy")
    assert first == again
    assert other != first


def test_cross_section_references():
    """A .rodata jump table holding .text label addresses."""
    builder = BinaryBuilder("tables")
    text = builder.text
    text.label("main")
    text.emit("lea", "rax", Mem(64, base="rip", disp=0))
    text.emit("ret")
    text.label("case0")
    text.emit("ret")
    text.label("case1")
    text.emit("ret")
    rodata = builder.rodata
    rodata.label("jump_table")
    rodata.quad(abs64("case0"))
    rodata.quad(abs64("case1"))
    binary = builder.build(entry="main")
    table = binary.text.labels["jump_table"] if hasattr(binary, "text") else None
    addr = builder.rodata.labels["jump_table"]
    assert binary.read_u64(addr) == builder.text.labels["case0"]
    assert binary.read_u64(addr + 8) == builder.text.labels["case1"]


def test_data_section_is_writable_rodata_not():
    builder = BinaryBuilder("perm")
    builder.text.label("main")
    builder.text.emit("ret")
    builder.rodata.raw(b"abcd")
    builder.data.raw(b"\x00" * 8)
    binary = builder.build(entry="main")
    rodata = binary.section_at(builder.rodata.base)
    data = binary.section_at(builder.data.base)
    assert rodata is not None and not rodata.writable and not rodata.executable
    assert data is not None and data.writable


def test_text_range_and_is_text_address():
    binary = simple_binary()
    low, high = binary.text_range()
    assert low <= binary.entry < high
    assert binary.is_text_address(binary.entry)
    assert not binary.is_text_address(0)


def test_read_elf_rejects_garbage():
    with pytest.raises(ElfError):
        read_elf(b"not an elf at all")
    with pytest.raises(ElfError):
        read_elf(b"\x7fELF" + bytes([1, 1]) + b"\x00" * 58)  # 32-bit class


def test_save_and_load_binary(tmp_path):
    from repro.elf import load_binary, save_binary

    binary = simple_binary()
    path = tmp_path / "simple.elf"
    save_binary(binary, str(path))
    loaded = load_binary(str(path))
    assert loaded.entry == binary.entry
    assert loaded.fetch(loaded.entry).mnemonic == "push"
