"""Corpus runner: lifts everything and aggregates the Table 1 statistics.

Ordering contract
-----------------
``CorpusReport.records`` is sorted by ``(kind, directory, name)`` and
``CorpusReport.rows`` by ``(kind, directory)``, regardless of corpus
iteration order or the number of worker processes.  Consumers (Table 1,
Figure 3, the bench harness, golden files) may rely on this.

Parallelism
-----------
``run_corpus(jobs=N)`` fans the per-binary / per-library-function lift
tasks over a :class:`~concurrent.futures.ProcessPoolExecutor`.  Each task
is independent (the lifter shares no mutable state across functions
except soundness-preserving memo caches), so the merged report is the
same as the serial one apart from wall-clock ``seconds`` — and those are
excluded from :meth:`CorpusReport.canonical`, which is the comparison
form.  Both lifter budgets are
robust to parallelism: ``max_states`` counts states and
``timeout_seconds`` counts *CPU* seconds, so scheduler time-slicing does
not change which functions hit them.  (A function very close to the CPU
budget can still land on either side of it across runs; the corpus
settings leave ample headroom.)
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field

from repro.corpus import Corpus, build_corpus, function_binary
from repro.elf import Binary
from repro.hoare import LiftResult, lift, lift_function
from repro.obs.metrics import metrics as _obs_metrics
from repro.obs.profile import phases as _obs_phases
from repro.obs.progress import as_emitter
from repro.obs.report import canonical_obs, merge_rollup, task_obs_data
from repro.obs.tracer import DEFAULT_SAMPLING, tracer as _obs_tracer
from repro.perf.counters import counters


@dataclass
class FunctionRecord:
    """One lifted binary entry point or library function (Figure 3 data)."""

    name: str
    directory: str
    kind: str        # "binary" | "function"
    outcome: str     # "lifted" | "unprovable" | "concurrency" | "timeout"
    instructions: int
    states: int
    resolved: int
    unresolved_jumps: int
    unresolved_calls: int
    seconds: float
    #: Annotation counts by kind (``LiftStats.annotations_by_kind``).
    annotations: dict[str, int] = field(default_factory=dict)


@dataclass
class DirectoryRow:
    """One row of Table 1."""

    directory: str
    kind: str
    total: int = 0
    lifted: int = 0
    unprovable: int = 0
    concurrency: int = 0
    timeout: int = 0
    instructions: int = 0
    states: int = 0
    resolved: int = 0           # column A
    unresolved_jumps: int = 0   # column B
    unresolved_calls: int = 0   # column C
    seconds: float = 0.0
    #: Annotation counts by kind, over *all* records of the row (annotations
    #: accompany every outcome, not just lifted ones).
    annotations: dict[str, int] = field(default_factory=dict)

    def counts_cell(self) -> str:
        return (f"{self.total} = {self.lifted} + {self.unprovable} "
                f"+ {self.concurrency} + {self.timeout}")


@dataclass
class CorpusReport:
    #: Sorted by (kind, directory) — see the module ordering contract.
    rows: list[DirectoryRow] = field(default_factory=list)
    #: Sorted by (kind, directory, name) — see the module ordering contract.
    records: list[FunctionRecord] = field(default_factory=list)
    #: Perf-counter totals over all lift tasks (sum of per-task deltas, so
    #: parallel runs still report interning/solver hit counts).
    counters: dict[str, int] = field(default_factory=dict)
    #: Observability rollup (``repro.obs.report.merge_rollup`` form) when
    #: the run was made with ``obs=True``; None otherwise.
    obs: dict | None = None

    def totals(self, kind: str) -> DirectoryRow:
        total = DirectoryRow(directory="Total", kind=kind)
        for row in self.rows:
            if row.kind != kind:
                continue
            for attr in ("total", "lifted", "unprovable", "concurrency",
                         "timeout", "instructions", "states", "resolved",
                         "unresolved_jumps", "unresolved_calls", "seconds"):
                setattr(total, attr, getattr(total, attr) + getattr(row, attr))
            for ann_kind, count in row.annotations.items():
                total.annotations[ann_kind] = (
                    total.annotations.get(ann_kind, 0) + count
                )
        return total

    def canonical(self) -> dict:
        """The timing-free view of the report.

        Wall-clock ``seconds`` (and the cache-state-dependent ``counters``)
        are excluded: they are the only fields that legitimately differ
        between repeated or serial-vs-parallel runs of the same corpus.
        The obs rollup enters in its canonical form (timers, timestamps,
        and cache-dependent content stripped) for the same reason.
        """
        def strip(obj) -> dict:
            data = asdict(obj)
            data.pop("seconds")
            return data

        data = {
            "rows": [strip(row) for row in self.rows],
            "records": [strip(record) for record in self.records],
        }
        if self.obs is not None:
            data["obs"] = canonical_obs(self.obs)
        return data

    def canonical_json(self) -> str:
        return json.dumps(self.canonical(), sort_keys=True, indent=1)


def _outcome(result: LiftResult) -> str:
    if result.verified:
        return "lifted"
    kinds = {error.kind for error in result.errors}
    if "concurrency" in kinds:
        return "concurrency"
    if "timeout" in kinds:
        return "timeout"
    return "unprovable"


@dataclass(frozen=True)
class _LiftTask:
    """One unit of work, fully resolved in the parent process.

    ``binary`` is a plain picklable dataclass; ``function_binary`` is
    called *before* task submission so workers never consult the parent's
    corpus registries.
    """

    name: str
    directory: str
    kind: str           # "binary" | "function"
    binary: Binary
    function: str | None
    timeout_seconds: float
    max_states: int
    #: Capture an obs snapshot for this task (tracer reset per task so the
    #: sampled event stream is a pure function of the task — identical in
    #: serial and worker-pool runs).
    obs: bool = False
    obs_sampling: int = DEFAULT_SAMPLING
    #: Persistent lift store (resolved to an explicit bool in the parent so
    #: workers do not re-consult the environment).  Obs tasks force this
    #: off: tracing measures real lifting, and a cache hit would make the
    #: warm obs rollup differ from the cold one.
    cache: bool = False
    cache_dir: str | None = None
    schedule: str = "scc"
    #: Two-phase lift: feed pointer call-site summaries back into the
    #: call cleaning (the feedback A/B bench sets this on one side).
    pointer_summaries: bool = False
    #: Transfer engine: ``"tau"`` (the reference tree-walker) or ``"uop"``
    #: (the compiled micro-op interpreter, :mod:`repro.uop`).
    engine: str = "tau"


def _run_task(
    task: _LiftTask,
) -> tuple[FunctionRecord, dict[str, int], dict | None]:
    """Lift one task; also report the perf-counter delta it produced and,
    when ``task.obs`` is set, the task's obs snapshot.

    Module-level so it pickles for ProcessPoolExecutor; also used verbatim
    on the serial path so both paths build records identically.
    """
    if task.obs:
        _obs_tracer.reset()
        _obs_metrics.reset()
        _obs_phases.reset()
        _obs_tracer.configure(enabled=True, sampling=task.obs_sampling)
    before = counters.snapshot()
    use_cache = task.cache and not task.obs
    if task.function is None:
        result = lift(task.binary, max_states=task.max_states,
                      timeout_seconds=task.timeout_seconds,
                      schedule=task.schedule,
                      cache=use_cache, cache_dir=task.cache_dir,
                      pointer_summaries=task.pointer_summaries,
                      engine=task.engine)
    else:
        result = lift_function(task.binary, task.function,
                               max_states=task.max_states,
                               timeout_seconds=task.timeout_seconds,
                               schedule=task.schedule,
                               cache=use_cache, cache_dir=task.cache_dir,
                               pointer_summaries=task.pointer_summaries,
                               engine=task.engine)
    delta = counters.delta(before, counters.snapshot())
    obs_data = None
    if task.obs:
        obs_data = task_obs_data(_obs_tracer, _obs_metrics,
                                 phases=_obs_phases)
        _obs_tracer.configure(enabled=False)
    record = record_from_result(task.name, task.directory, task.kind, result)
    return record, delta, obs_data


def record_from_result(name: str, directory: str, kind: str,
                       result: LiftResult) -> FunctionRecord:
    """The :class:`FunctionRecord` view of one lift — shared by the
    runner's task path and the serve daemon's store-hit fast path, so a
    cached answer is summarized exactly like a fresh one."""
    outcome = _outcome(result)
    stats = result.stats
    return FunctionRecord(
        name=name, directory=directory, kind=kind,
        outcome=outcome,
        instructions=stats.instructions, states=stats.states,
        resolved=stats.resolved_indirections,
        unresolved_jumps=stats.unresolved_jumps,
        unresolved_calls=stats.unresolved_calls,
        seconds=stats.seconds,
        annotations=dict(stats.annotations_by_kind),
    )


#: Public aliases for the serve daemon (:mod:`repro.serve`), whose worker
#: pool executes the exact same task units as the in-process pool here.
run_task = _run_task
LiftTask = _LiftTask


def _corpus_tasks(corpus: Corpus, timeout_seconds: float,
                  max_states: int, obs: bool,
                  obs_sampling: int, cache: bool,
                  cache_dir: str | None, schedule: str,
                  pointer_summaries: bool = False,
                  engine: str = "tau") -> list[_LiftTask]:
    tasks = [
        _LiftTask(name=corpus_binary.name, directory=corpus_binary.directory,
                  kind="binary", binary=corpus_binary.binary, function=None,
                  timeout_seconds=timeout_seconds, max_states=max_states,
                  obs=obs, obs_sampling=obs_sampling,
                  cache=cache, cache_dir=cache_dir, schedule=schedule,
                  pointer_summaries=pointer_summaries, engine=engine)
        for corpus_binary in corpus.binaries
    ]
    for library in corpus.libraries:
        for function in library.functions:
            tasks.append(_LiftTask(
                name=f"{library.name}:{function}",
                directory=library.directory, kind="function",
                binary=function_binary(library, function), function=function,
                timeout_seconds=timeout_seconds, max_states=max_states,
                obs=obs, obs_sampling=obs_sampling,
                cache=cache, cache_dir=cache_dir, schedule=schedule,
                pointer_summaries=pointer_summaries, engine=engine,
            ))
    return tasks


corpus_tasks = _corpus_tasks


def _task_key(record: FunctionRecord) -> str:
    """The rollup key for one task — unique and sort-stable."""
    return f"{record.kind}/{record.directory}/{record.name}"


def assemble_report(outcomes, obs: bool = False,
                    obs_sampling: int = DEFAULT_SAMPLING) -> CorpusReport:
    """Fold ``run_task`` outcomes into a :class:`CorpusReport`.

    This is the single merge point behind both execution paths — the
    serial/pool runner here and the ``repro serve`` daemon's worker pool
    (:mod:`repro.serve`), whose corpus jobs must produce byte-identical
    canonical reports to a direct :func:`run_corpus` — so sorting and row
    aggregation can never drift between them.  *outcomes* is any iterable
    of ``(record, counter_delta, obs_data)`` tuples, in any order.
    """
    outcomes = list(outcomes)
    report = CorpusReport()
    for _, delta, _ in outcomes:
        counters.merge(report.counters, delta)
    report.records = sorted(
        (record for record, _, _ in outcomes),
        key=lambda r: (r.kind, r.directory, r.name),
    )
    if obs:
        report.obs = merge_rollup(
            {_task_key(record): obs_data
             for record, _, obs_data in outcomes if obs_data is not None},
            sampling=obs_sampling,
        )

    rows: dict[tuple[str, str], DirectoryRow] = {}
    for record in report.records:
        key = (record.kind, record.directory)
        row = rows.get(key)
        if row is None:
            row = rows[key] = DirectoryRow(directory=record.directory,
                                           kind=record.kind)
        row.total += 1
        setattr(row, record.outcome, getattr(row, record.outcome) + 1)
        if record.outcome == "lifted":
            row.instructions += record.instructions
            row.states += record.states
            row.resolved += record.resolved
            row.unresolved_jumps += record.unresolved_jumps
            row.unresolved_calls += record.unresolved_calls
        row.seconds += record.seconds
        for ann_kind, count in record.annotations.items():
            row.annotations[ann_kind] = row.annotations.get(ann_kind, 0) + count
    report.rows = [rows[key] for key in sorted(rows)]
    return report


def run_corpus(
    corpus: Corpus | None = None,
    scale: int = 1,
    timeout_seconds: float = 10.0,
    max_states: int = 10_000,
    jobs: int = 1,
    obs: bool = False,
    obs_sampling: int = DEFAULT_SAMPLING,
    cache: "bool | None" = None,
    cache_dir: str | None = None,
    schedule: str = "scc",
    pointer_summaries: bool = False,
    engine: str = "tau",
    progress=None,
) -> CorpusReport:
    """Lift every binary and library function; aggregate per directory.

    ``jobs > 1`` lifts in that many worker processes; results are merged
    by name, so the report is deterministic (see the module docstring).
    ``obs=True`` additionally captures a per-task observability snapshot
    (tracer + metrics + phase totals, reset per task) and attaches the
    merged rollup as ``CorpusReport.obs``; the caller's tracer
    configuration is restored afterwards.

    ``progress`` streams live heartbeats (:mod:`repro.obs.progress`): a
    :class:`~repro.obs.progress.ProgressEmitter`, a callable receiving
    each event dict, or a text stream receiving schema-validated JSONL
    lines.  Heartbeats never change results — on the worker-pool path
    tasks are consumed in submission order either way.

    ``cache`` enables the persistent lift store (:mod:`repro.perf.store`):
    ``None`` consults ``REPRO_CACHE``, booleans force it.  The decision is
    resolved here, once, and shipped to workers as an explicit flag, so a
    worker pool never re-reads the parent's environment.

    ``engine`` selects the transfer engine per task (``"tau"`` or
    ``"uop"``); the two produce byte-identical canonical reports (the
    engine A/B bench asserts this), so everything downstream of the
    records is engine-agnostic.  A warm cached
    run produces a byte-identical :meth:`CorpusReport.canonical_json` to
    the cold run that populated the store (``seconds`` and ``counters``
    are already excluded from the canonical form).  Obs tasks bypass the
    cache (see :class:`_LiftTask`).
    """
    if corpus is None:
        corpus = build_corpus(scale)
    from repro.perf.store import ambient_enabled

    use_cache = bool(cache) if cache is not None else ambient_enabled()
    tasks = _corpus_tasks(corpus, timeout_seconds, max_states,
                          obs, obs_sampling, use_cache, cache_dir, schedule,
                          pointer_summaries, engine)

    emitter = as_emitter(progress)
    prior = (_obs_tracer.enabled, _obs_tracer.sampling)
    try:
        if emitter is not None:
            emitter.corpus_started(len(tasks), scale, jobs)
        if jobs > 1 and len(tasks) > 1:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                if emitter is None:
                    outcomes = list(pool.map(_run_task, tasks))
                else:
                    futures = []
                    for task in tasks:
                        futures.append(pool.submit(_run_task, task))
                        emitter.task_started(task.name,
                                             queue_depth=len(futures))
                    outcomes = []
                    for task, future in zip(tasks, futures):
                        outcome = future.result()
                        outcomes.append(outcome)
                        record = outcome[0]
                        emitter.task_finished(
                            task.name, record.outcome, record.instructions,
                            record.seconds,
                            queue_depth=len(futures) - len(outcomes))
        else:
            outcomes = []
            for task in tasks:
                if emitter is not None:
                    emitter.task_started(
                        task.name, queue_depth=len(tasks) - len(outcomes))
                outcome = _run_task(task)
                outcomes.append(outcome)
                if emitter is not None:
                    record = outcome[0]
                    emitter.task_finished(
                        task.name, record.outcome, record.instructions,
                        record.seconds,
                        queue_depth=len(tasks) - len(outcomes))
        if emitter is not None:
            emitter.corpus_finished()
    finally:
        if obs:
            _obs_tracer.configure(enabled=prior[0], sampling=prior[1])

    return assemble_report(outcomes, obs=obs, obs_sampling=obs_sampling)
