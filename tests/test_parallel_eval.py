"""Parallel corpus lifting: ordering contract, determinism, bench plumbing.

``run_corpus`` promises that its report is *identical in canonical form*
whether the corpus is lifted serially or by a worker pool, and that rows
and records come back in a documented sort order regardless of corpus
iteration order.  These tests exercise both promises on a corpus small
enough for CI, plus the build/lift timing split in the scaling experiment
and the bench harness's baseline comparison.
"""

from __future__ import annotations

import json

import pytest

from repro.corpus import Corpus, CorpusBinary, CorpusLibrary
from repro.eval.runner import CorpusReport, DirectoryRow, run_corpus
from repro.minicc import compile_source


@pytest.fixture(scope="module")
def tiny_corpus() -> Corpus:
    """Two binaries and a two-function library, deliberately unsorted."""
    corpus = Corpus()
    # Names and directories in reverse order: the report must sort them.
    corpus.binaries.append(CorpusBinary(
        name="zeta", directory="usr-bin",
        binary=compile_source("long main(long n) { return n * 3; }",
                              name="zeta"),
        expected="lifted",
    ))
    corpus.binaries.append(CorpusBinary(
        name="alpha", directory="bin",
        binary=compile_source(
            "long main(long n) { long s = 0;"
            " for (long i = 0; i < n; i = i + 1) { s = s + i; }"
            " return s; }",
            name="alpha"),
        expected="lifted",
    ))
    library = compile_source(
        "long inc(long n) { return n + 1; }\n"
        "long twice(long n) { return n + n; }\n",
        name="tinylib.so", entry="inc", export_labels=True,
    )
    corpus.libraries.append(CorpusLibrary(
        name="tinylib.so", directory="lib", binary=library,
        functions=["twice", "inc"],  # unsorted on purpose
    ))
    return corpus


def test_records_and_rows_follow_the_ordering_contract(tiny_corpus):
    report = run_corpus(corpus=tiny_corpus)
    record_keys = [(r.kind, r.directory, r.name) for r in report.records]
    assert record_keys == sorted(record_keys)
    row_keys = [(r.kind, r.directory) for r in report.rows]
    assert row_keys == sorted(row_keys)
    # All four tasks made it through, every one lifted.
    assert len(report.records) == 4
    assert all(r.outcome == "lifted" for r in report.records)


def test_serial_and_parallel_reports_are_canonically_identical(tiny_corpus):
    serial = run_corpus(corpus=tiny_corpus, jobs=1)
    parallel = run_corpus(corpus=tiny_corpus, jobs=2)
    assert serial.canonical_json() == parallel.canonical_json()


def test_serial_and_parallel_obs_rollups_are_canonically_identical(tiny_corpus):
    from repro.obs.report import canonical_obs
    from repro.obs.tracer import tracer

    serial = run_corpus(corpus=tiny_corpus, jobs=1, obs=True)
    parallel = run_corpus(corpus=tiny_corpus, jobs=2, obs=True)
    assert serial.obs is not None and parallel.obs is not None
    # The canonical rollup (no timers/timestamps, no cache-dependent
    # content) is a pure function of the corpus — worker count invisible.
    assert canonical_obs(serial.obs) == canonical_obs(parallel.obs)
    # The rollup rides inside the canonical report comparison too.
    assert serial.canonical_json() == parallel.canonical_json()
    # ... and matches a run without obs apart from the obs key itself.
    plain = run_corpus(corpus=tiny_corpus, jobs=1)
    stripped = serial.canonical()
    stripped.pop("obs")
    assert stripped == plain.canonical()
    # The caller's tracer configuration was restored (off by default).
    assert not tracer.enabled


def test_obs_rollup_counts_real_events(tiny_corpus):
    report = run_corpus(corpus=tiny_corpus, obs=True, obs_sampling=1)
    totals = report.obs["totals"]
    assert totals["events"]["lift.done"] == len(report.records)
    assert totals["events"]["state.explore"] > 0
    assert totals["metrics"]["counters"]["smt.queries"] > 0
    histogram = totals["metrics"]["histograms"]["function.instructions"]
    assert histogram["count"] == len(report.records)


def test_records_carry_annotation_counts(tiny_corpus):
    report = run_corpus(corpus=tiny_corpus)
    # The tiny corpus lifts cleanly: every record exists and is empty.
    assert all(record.annotations == {} for record in report.records)
    canonical = report.canonical()
    assert all("annotations" in record for record in canonical["records"])


def test_parallel_run_still_reports_counters(tiny_corpus):
    report = run_corpus(corpus=tiny_corpus, jobs=2)
    # Worker deltas are merged back into the report.
    assert report.counters.get("expr_new", 0) > 0
    assert report.counters.get("intern_hits", 0) > 0


def test_canonical_excludes_timing_but_keeps_outcomes(tiny_corpus):
    report = run_corpus(corpus=tiny_corpus)
    canonical = report.canonical()
    for row in canonical["rows"] + canonical["records"]:
        assert "seconds" not in row
    assert canonical["records"][0]["outcome"] == "lifted"
    # canonical_json round-trips and is stable under re-serialization.
    assert json.loads(report.canonical_json()) == canonical


def _stub_report() -> CorpusReport:
    report = CorpusReport()
    report.rows.append(DirectoryRow(directory="bin", kind="binary", total=2,
                                    lifted=2, instructions=100, states=120,
                                    seconds=4.0))
    report.rows.append(DirectoryRow(directory="lib", kind="function", total=3,
                                    lifted=3, instructions=400, states=410,
                                    seconds=6.0))
    report.counters = {"expr_new": 10, "intern_hits": 90,
                       "solver_hits": 5, "solver_misses": 5}
    return report


def test_run_scaling_separates_build_time_from_lift_time(monkeypatch):
    import repro.eval.scaling as scaling

    built = []
    monkeypatch.setattr(scaling, "build_corpus",
                        lambda scale: built.append(scale) or f"corpus-{scale}")
    monkeypatch.setattr(
        scaling, "run_corpus",
        lambda corpus=None, timeout_seconds=0, max_states=0, jobs=1,
        cache=None, cache_dir=None, schedule="scc": _stub_report(),
    )
    points = scaling.run_scaling(scales=(1, 2), jobs=1)
    assert built == [1, 2]
    for point in points:
        assert point.build_seconds >= 0.0
        assert point.seconds >= 0.0
        assert point.instructions == 500   # binary + function totals
        assert point.functions == 5
    text = scaling.format_scaling(points)
    assert "build(s)" in text and "lift(s)" in text
    assert "more lift time" in text


def test_bench_report_compares_against_baseline(monkeypatch, tmp_path):
    import repro.perf.bench as bench

    baseline_path = tmp_path / "baseline.json"
    monkeypatch.setitem(bench.BASELINES, "pr2", baseline_path)
    baseline_path.write_text(json.dumps(
        {"scale_2": {"instrs_per_second": 100.0, "lift_seconds": 5.0}}
    ))

    import repro.corpus
    import repro.eval.runner
    monkeypatch.setattr(repro.corpus, "build_corpus", lambda scale: "corpus")
    monkeypatch.setattr(
        repro.eval.runner, "run_corpus",
        lambda corpus=None, timeout_seconds=0, max_states=0, jobs=1,
        cache=None, cache_dir=None, schedule="scc": _stub_report(),
    )

    out = tmp_path / "BENCH_test.json"
    payload, text = bench.bench_report(scale=2, out_path=out)
    assert payload["baseline"]["instrs_per_second"] == 100.0
    assert payload["current"]["instructions"] == 500
    assert payload["current"]["hit_rates"]["interning"] == 0.9
    assert payload["current"]["hit_rates"]["solver"] == 0.5
    assert "speedup" in payload
    assert "instrs/s" in text and "baseline" in text
    assert json.loads(out.read_text()) == payload
