"""Byte-level binary mutants: decode → perturb → re-encode → patch.

The second arm of the mutation campaign: instead of breaking the
*pipeline* (faults), break the *binary* and check the detectors notice.
A mutant is produced by decoding one instruction of a target, applying a
mutation operator to the decoded form, re-encoding, and patching the
section bytes — only same-length re-encodings are accepted, so every
mutant is a valid binary with an unchanged layout (labels, branch
displacements and the entry point all stay put).

Operators (the classes of the ISSUE):

* ``opcode-swap``        — substitute a same-group mnemonic (add → sub);
* ``imm-perturb``        — skew an immediate (e.g. unbalance a frame);
* ``disp-perturb``       — skew a memory displacement (e.g. point a store
  at the return-address slot);
* ``reg-swap``           — replace a register operand with a same-width
  sibling;
* ``callee-save-clobber``— retarget a destination register to a
  callee-saved one the function never saves.

Not every mutant is a bug: a legal ``add → sub`` swap changes behaviour
but verifies fine.  Curated mutants therefore carry an expectation —
``killed`` mutants must change some detector verdict, ``survives``
mutants must not (they are the campaign's false-positive probes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.elf import Binary, Section
from repro.isa import Imm, Instruction, Mem, Reg
from repro.isa.encode import EncodeError, encode


@dataclass(frozen=True)
class MutationSpec:
    """One curated mutant: where, what, and the expected campaign verdict."""

    name: str
    target: str          # qa target name (see repro.qa.targets)
    index: int           # instruction index from the text section start
    operator: str
    #: operator parameter: new mnemonic, immediate/displacement delta, or
    #: replacement register name.
    param: str | int
    expect: str          # "killed" | "survives"


def text_instructions(binary: Binary) -> list[Instruction]:
    """Decode the executable section front-to-back (flat code, no data)."""
    section = binary.section_at(binary.entry)
    out: list[Instruction] = []
    addr = section.addr
    while addr < section.end:
        instr = binary.fetch(addr)
        out.append(instr)
        addr = instr.end
    return out


def _mutate_instruction(instr: Instruction, operator: str,
                        param: str | int) -> Instruction:
    ops = instr.operands
    if operator == "opcode-swap":
        return replace(instr, mnemonic=str(param))
    if operator == "imm-perturb":
        new_ops = []
        done = False
        for op in ops:
            if isinstance(op, Imm) and not done:
                value = (op.value + int(param)) & ((1 << op.width) - 1)
                op = Imm(value, op.width)
                done = True
            new_ops.append(op)
        if not done:
            raise ValueError(f"no immediate operand in {instr}")
        return replace(instr, operands=tuple(new_ops))
    if operator == "disp-perturb":
        new_ops = []
        done = False
        for op in ops:
            if isinstance(op, Mem) and not done:
                op = replace(op, disp=op.disp + int(param))
                done = True
            new_ops.append(op)
        if not done:
            raise ValueError(f"no memory operand in {instr}")
        return replace(instr, operands=tuple(new_ops))
    if operator in ("reg-swap", "callee-save-clobber"):
        # reg-swap substitutes a *source* (the last register operand);
        # callee-save-clobber retargets the *destination* (the first).
        indices = [i for i, op in enumerate(ops) if isinstance(op, Reg)]
        if not indices:
            raise ValueError(f"no register operand in {instr}")
        where = indices[-1] if operator == "reg-swap" else indices[0]
        new_ops = list(ops)
        new_ops[where] = Reg(str(param))
        return replace(instr, operands=tuple(new_ops))
    raise ValueError(f"unknown mutation operator {operator!r}")


def apply_mutation(binary: Binary, spec: MutationSpec) -> Binary | None:
    """The mutant binary, or None when the re-encoding changes length."""
    instructions = text_instructions(binary)
    instr = instructions[spec.index]
    mutated = _mutate_instruction(instr, spec.operator, spec.param)
    try:
        raw = encode(mutated)
    except EncodeError:
        return None
    if len(raw) != instr.size:
        return None

    section = binary.section_at(instr.addr)
    offset = instr.addr - section.addr
    data = section.data[:offset] + raw + section.data[offset + instr.size:]
    sections = [
        Section(s.name, s.addr, data if s is section else s.data,
                s.executable, s.writable)
        for s in binary.sections
    ]
    return Binary(
        entry=binary.entry, sections=sections,
        externals=dict(binary.externals), symbols=dict(binary.symbols),
        name=f"{binary.name}+{spec.name}",
    )


#: The curated mutants of the quick campaign.  One per operator class;
#: the two ``survives`` entries are behaviour-changing but perfectly legal
#: programs — the campaign's check that detectors do not cry wolf.
CURATED_MUTANTS = (
    MutationSpec(
        name="frame-imbalance", target="frame", index=3,
        operator="imm-perturb", param=8, expect="killed",
    ),
    MutationSpec(
        name="store-hits-ret-slot", target="frame", index=1,
        operator="disp-perturb", param=0x18, expect="killed",
    ),
    MutationSpec(
        name="clobber-callee-saved", target="scratch", index=0,
        operator="callee-save-clobber", param="rbx", expect="killed",
    ),
    MutationSpec(
        name="benign-opcode-swap", target="scratch", index=1,
        operator="opcode-swap", param="sub", expect="survives",
    ),
    MutationSpec(
        name="benign-reg-swap", target="scratch", index=0,
        operator="reg-swap", param="rsi", expect="survives",
    ),
)


#: Operators eligible for seeded random sampling in the full campaign.
_RANDOM_OPERATORS = ("opcode-swap", "imm-perturb", "disp-perturb", "reg-swap")

_ALU_SWAPS = {"add": "sub", "sub": "add", "and": "or", "or": "xor",
              "xor": "and", "cmp": "test", "test": "cmp"}
_REG_CYCLE = {"rax": "rcx", "rcx": "rdx", "rdx": "rax", "rdi": "rsi",
              "rsi": "rdi", "r8": "r9", "r9": "r8"}


def random_mutants(binary: Binary, target: str, rng, count: int
                   ) -> list[tuple[MutationSpec, Binary]]:
    """Sample *count* applicable random mutants of *binary* (full campaign).

    Deterministic for a given rng state; mutants whose re-encoding changes
    length are skipped, so fewer than *count* may come back.
    """
    instructions = text_instructions(binary)
    out: list[tuple[MutationSpec, Binary]] = []
    attempts = 0
    while len(out) < count and attempts < count * 16:
        attempts += 1
        index = rng.randrange(len(instructions))
        instr = instructions[index]
        operator = rng.choice(_RANDOM_OPERATORS)
        param: str | int | None = None
        if operator == "opcode-swap":
            param = _ALU_SWAPS.get(instr.mnemonic)
        elif operator == "imm-perturb":
            if any(isinstance(op, Imm) for op in instr.operands):
                param = rng.choice((1, -1, 8, -8))
        elif operator == "disp-perturb":
            if any(isinstance(op, Mem) for op in instr.operands):
                param = rng.choice((1, -1, 8, -8))
        elif operator == "reg-swap":
            regs = [op for op in instr.operands if isinstance(op, Reg)]
            if regs:
                param = _REG_CYCLE.get(regs[0].name)
        if param is None:
            continue
        spec = MutationSpec(
            name=f"rand-{target}-{index}-{operator}-{attempts}",
            target=target, index=index, operator=operator, param=param,
            expect="unknown",
        )
        try:
            mutant = apply_mutation(binary, spec)
        except ValueError:
            continue
        if mutant is not None:
            out.append((spec, mutant))
    return out
