"""Figure 3: verification time vs. instruction count for library functions.

The paper's observation: "there is very little correlation between
verification times and instruction count."  We reproduce the scatter data
and compute the Pearson correlation coefficient over the lifted library
functions.
"""

from __future__ import annotations

import io
import math
from dataclasses import dataclass

from repro.eval.runner import CorpusReport, run_corpus


@dataclass
class Figure3Data:
    points: list[tuple[int, float]]  # (instructions, seconds)
    pearson_r: float


def pearson(points: list[tuple[int, float]]) -> float:
    if len(points) < 2:
        return 0.0
    xs = [float(p[0]) for p in points]
    ys = [p[1] for p in points]
    n = len(points)
    mean_x, mean_y = sum(xs) / n, sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def figure3_data(report: CorpusReport) -> Figure3Data:
    points = [
        (record.instructions, record.seconds)
        for record in report.records
        if record.kind == "function" and record.outcome == "lifted"
    ]
    return Figure3Data(points=points, pearson_r=pearson(points))


def format_figure3(data: Figure3Data, width: int = 60, height: int = 16) -> str:
    """An ASCII scatter plot plus the correlation statistic."""
    out = io.StringIO()
    out.write("Figure 3: verification time vs instruction count "
              "(library functions)\n\n")
    if not data.points:
        return out.getvalue() + "(no data)\n"
    max_x = max(p[0] for p in data.points) or 1
    max_y = max(p[1] for p in data.points) or 1e-9
    grid = [[" "] * width for _ in range(height)]
    for instructions, seconds in data.points:
        col = min(width - 1, int(instructions / max_x * (width - 1)))
        row = min(height - 1, int(seconds / max_y * (height - 1)))
        grid[height - 1 - row][col] = "*"
    out.write(f"time (max {max_y:.2f}s)\n")
    for line in grid:
        out.write("|" + "".join(line) + "\n")
    out.write("+" + "-" * width + f"> instructions (max {max_x})\n\n")
    out.write(f"n = {len(data.points)} lifted functions\n")
    out.write(f"Pearson r(instructions, seconds) = {data.pearson_r:.3f}\n")
    return out.getvalue()


def generate_figure3(scale: int = 1, **kwargs) -> tuple[Figure3Data, str]:
    report = run_corpus(scale=scale, **kwargs)
    data = figure3_data(report)
    return data, format_figure3(data)
