"""Symbolic flag state.

Rather than tracking the five status flags as independent bits, the
predicate records the *operation that last set them* — the standard trick
for binary lifting.  A conditional branch then refines the predicate with
the exact relational clause its condition encodes (e.g. ``ja`` after
``cmp a, b`` asserts ``a >u b`` on the taken edge).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.expr import Expr
from repro.pred.clause import Clause


@dataclass(frozen=True)
class FlagState:
    """Flags as set by the last flag-writing instruction.

    ``kind`` is ``cmp`` (flags of ``a - b``), ``test`` (flags of ``a & b``)
    or ``arith`` (flags of a result value ``a``; only ZF/SF are modelled
    precisely, so only equality/sign conditions resolve).
    """

    kind: str  # "cmp" | "test" | "arith"
    a: Expr
    b: Expr | None
    width: int

    def __str__(self) -> str:
        if self.b is None:
            return f"flags({self.kind} {self.a})"
        return f"flags({self.kind} {self.a}, {self.b})"


#: condition code -> (clause op for cmp-taken, needs_signed)
_CMP_TAKEN = {
    "e": "eq", "ne": "ne",
    "b": "ltu", "ae": "geu", "be": "leu", "a": "gtu",
    "l": "lts", "ge": "ges", "le": "les", "g": "gts",
    # s/ns map to sign of a - b: expressible as signed comparison with 0 is
    # wrong in general (overflow); we only use SF for arith kind.
}


def condition_clause(flags: FlagState, cc: str, taken: bool) -> Clause | None:
    """The clause that holds on the (not-)taken edge of ``j<cc>``.

    Returns None when the modelled flag state cannot express the condition
    (the caller then simply learns nothing — sound, less precise).
    """
    if flags.kind == "cmp" and flags.b is not None:
        op = _CMP_TAKEN.get(cc)
        if op is None:
            return None
        clause = Clause(flags.a, op, flags.b, flags.width)
        return clause if taken else clause.negated()
    if flags.kind == "test" and flags.b is not None and flags.a == flags.b:
        # test x, x: ZF <=> x == 0; SF <=> x <s 0.
        if cc == "e":
            clause = Clause(flags.a, "eq", _zero(flags.width), flags.width)
        elif cc == "ne":
            clause = Clause(flags.a, "ne", _zero(flags.width), flags.width)
        elif cc == "s":
            clause = Clause(flags.a, "lts", _zero(flags.width), flags.width)
        elif cc == "ns":
            clause = Clause(flags.a, "ges", _zero(flags.width), flags.width)
        elif cc in ("le", "be"):  # x <=s 0 / x <=u 0 under test x,x semantics
            clause = Clause(flags.a, "les" if cc == "le" else "eq",
                            _zero(flags.width), flags.width)
        elif cc == "g":
            clause = Clause(flags.a, "gts", _zero(flags.width), flags.width)
        elif cc == "a":
            clause = Clause(flags.a, "ne", _zero(flags.width), flags.width)
        else:
            return None
        return clause if taken else clause.negated()
    if flags.kind == "arith":
        # Result value in a; ZF <=> a == 0, SF <=> a <s 0.
        if cc == "e":
            clause = Clause(flags.a, "eq", _zero(flags.width), flags.width)
        elif cc == "ne":
            clause = Clause(flags.a, "ne", _zero(flags.width), flags.width)
        elif cc == "s":
            clause = Clause(flags.a, "lts", _zero(flags.width), flags.width)
        elif cc == "ns":
            clause = Clause(flags.a, "ges", _zero(flags.width), flags.width)
        else:
            return None
        return clause if taken else clause.negated()
    return None


def condition_expr(flags: FlagState, cc: str):
    """A width-1 expression for condition *cc* under *flags*, or None.

    Used by ``setcc``/``cmovcc`` to compute data values from conditions.
    """
    from repro.expr import simplify as s

    if flags.kind == "cmp" and flags.b is not None:
        a, b, width = flags.a, flags.b, flags.width
        table = {
            "e": lambda: s.eq(a, b, width),
            "ne": lambda: s.bool_not(s.eq(a, b, width)),
            "b": lambda: s.ltu(a, b, width),
            "ae": lambda: s.bool_not(s.ltu(a, b, width)),
            "be": lambda: s.leu(a, b, width),
            "a": lambda: s.bool_not(s.leu(a, b, width)),
            "l": lambda: s.lts(a, b, width),
            "ge": lambda: s.bool_not(s.lts(a, b, width)),
            "le": lambda: s.les(a, b, width),
            "g": lambda: s.bool_not(s.les(a, b, width)),
        }
        builder = table.get(cc)
        return builder() if builder else None
    clause = condition_clause(flags, cc, taken=True)
    if clause is None:
        return None
    from repro.expr import simplify as s

    op_map = {
        "eq": s.eq, "ltu": s.ltu, "leu": s.leu, "lts": s.lts, "les": s.les,
    }
    negated = {
        "ne": s.eq, "geu": s.ltu, "gtu": s.leu, "ges": s.lts, "gts": s.les,
    }
    if clause.op in op_map:
        return op_map[clause.op](clause.lhs, clause.rhs, clause.width)
    if clause.op in negated:
        return s.bool_not(negated[clause.op](clause.lhs, clause.rhs, clause.width))
    return None


def _zero(width: int):
    from repro.expr import const

    return const(0, width)
