"""Benchmark: the Section 5.1/5.3 qualitative failure artifacts.

* ret2win lifts WITH a memset MUST-PRESERVE obligation over the caller's
  return-address slot (the obligation whose negation is the exploit);
* stack probing and non-standard rsp restoration are verification errors;
* the buffer-overflow binary yields no HG;
* the Section 2 weird-edge binary lifts and its ROP edge is present.
"""

from __future__ import annotations

import pytest

from repro.corpus import (
    buffer_overflow,
    concurrency,
    nonstandard_rsp,
    ret2win,
    stack_probe,
)
from repro.eval import generate_failures_report
from repro.hoare import lift


def test_failures_benchmark(benchmark):
    text = benchmark.pedantic(generate_failures_report, rounds=1, iterations=1)
    print()
    print(text)
    assert "MUST PRESERVE" in text


def test_ret2win_obligation_shape():
    result = lift(ret2win())
    assert result.verified
    obligation = next(ob for ob in result.obligations if ob.callee == "memset")
    # The paper's annotation: memset(RDI := RSP0 - 40) MUST PRESERVE
    # [RSP0 - 8 TO RSP0 + 8].
    assert any(reg == "rdi" and "RSP0" in value
               for reg, value in obligation.pointer_args)
    assert any("RSP0 - 8 TO RSP0 + 8" in span for span in obligation.preserve)


def test_stack_probe_rejected():
    result = lift(stack_probe())
    assert not result.verified
    assert any(e.kind in ("return-address", "calling-convention")
               for e in result.errors)


def test_nonstandard_rsp_rejected():
    result = lift(nonstandard_rsp())
    assert not result.verified


def test_buffer_overflow_no_hg():
    result = lift(buffer_overflow())
    assert not result.verified
    assert any(e.kind == "return-address" for e in result.errors)


def test_concurrency_out_of_scope():
    result = lift(concurrency())
    assert not result.verified
    assert result.errors[0].kind == "concurrency"
