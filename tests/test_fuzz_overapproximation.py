"""Fuzzing the central theorem: lifted output overapproximates execution.

Hypothesis generates random mini-C programs; each is compiled, lifted, and
executed concretely on random inputs.  Whenever the lift succeeds, every
concretely executed instruction address must appear in the lifted
disassembly, and the concrete control-flow steps must follow lifted edges
(Theorem 4.7 / Definition 4.6, observed at the address level).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro import lift
from repro.expr import EvalEnv, evaluate
from repro.machine import CPU, MachineError
from repro.machine.cpu import _SENTINEL_RETURN
from repro.minicc import compile_source
from repro.qa.diffsweep import _bind_unknowns

# -- a compact random-program generator -------------------------------------------

VARS = ("a", "b", "c")


def exprs(depth: int):
    leaf = st.one_of(
        st.integers(min_value=-50, max_value=50).map(str),
        st.sampled_from(VARS),
    )
    if depth == 0:
        return leaf
    sub = exprs(depth - 1)
    binop = st.tuples(sub, st.sampled_from(["+", "-", "*", "&", "|", "^"]), sub) \
        .map(lambda t: f"({t[0]} {t[1]} {t[2]})")
    shift = st.tuples(sub, st.sampled_from(["<<", ">>"]),
                      st.integers(min_value=0, max_value=5)) \
        .map(lambda t: f"({t[0]} {t[1]} {t[2]})")
    return st.one_of(leaf, binop, shift)


def conditions():
    return st.tuples(
        exprs(1), st.sampled_from(["<", "<=", ">", ">=", "==", "!="]), exprs(1)
    ).map(lambda t: f"{t[0]} {t[1]} {t[2]}")


def statements(depth: int):
    assign = st.tuples(st.sampled_from(VARS), exprs(depth)) \
        .map(lambda t: f"{t[0]} = {t[1]};")
    if depth == 0:
        return assign
    sub = st.lists(statements(depth - 1), min_size=1, max_size=3) \
        .map(lambda body: " ".join(body))
    if_stmt = st.tuples(conditions(), sub).map(
        lambda t: f"if ({t[0]}) {{ {t[1]} }}"
    )
    if_else = st.tuples(conditions(), sub, sub).map(
        lambda t: f"if ({t[0]}) {{ {t[1]} }} else {{ {t[2]} }}"
    )
    # Bounded loops only: the concrete run must terminate.
    loop = st.tuples(st.integers(min_value=1, max_value=5), sub).map(
        lambda t: f"for (long i = 0; i < {t[0]}; i = i + 1) {{ {t[1]} }}"
    )
    return st.one_of(assign, if_stmt, if_else, loop)


programs = st.lists(statements(2), min_size=1, max_size=5).map(
    lambda body: (
        "long main(long a, long b) {\n"
        "    long c = 0;\n    "
        + "\n    ".join(body)
        + "\n    return a + b + c;\n}"
    )
)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    source=programs,
    arg_a=st.integers(min_value=-1000, max_value=1000),
    arg_b=st.integers(min_value=-1000, max_value=1000),
)
def test_fuzz_lift_overapproximates_execution(source, arg_a, arg_b):
    binary = compile_source(source, name="fuzz")
    result = lift(binary, max_states=20_000, timeout_seconds=20)
    if not result.verified:
        return  # rejection is a permitted outcome; mis-lifting is not

    cpu = CPU(binary)
    cpu.regs["rdi"] = arg_a & ((1 << 64) - 1)
    cpu.regs["rsi"] = arg_b & ((1 << 64) - 1)
    try:
        cpu.run(max_steps=50_000)
    except MachineError:
        return  # e.g. step budget; nothing to check

    executed = set(cpu.trace)
    lifted = set(result.instructions)
    missing = executed - lifted
    assert not missing, (
        f"executed but not lifted: {[hex(a) for a in sorted(missing)]}\n"
        f"program:\n{source}"
    )

    # Address-level edge coverage: each consecutive concrete step must be a
    # lifted control-flow successor.
    allowed: dict[int, set[int]] = {}
    for edge in result.graph.edges:
        if edge.dst[0] == "code":
            allowed.setdefault(edge.instr_addr, set()).add(edge.dst[1])
    for src, dst in zip(cpu.trace, cpu.trace[1:]):
        instr = result.instructions[src]
        if instr.mnemonic == "call":
            continue  # context-free: the callee entry edge is by symbol
        assert dst in allowed.get(src, ()), (
            f"untracked edge {src:#x} -> {dst:#x} ({instr})\n{source}"
        )


def _flags_agree(flags, env: EvalEnv, cpu: CPU) -> bool:
    """The lifted flag postcondition must agree with the machine flags.

    Evaluable claims only: an unbound symbolic operand means the predicate
    claims nothing concrete about the flags, which is sound.
    """
    if flags is None:
        return True
    mask = (1 << flags.width) - 1
    sign = 1 << (flags.width - 1)

    def signed(v: int) -> int:
        v &= mask
        return v - (1 << flags.width) if v & sign else v

    try:
        a = evaluate(flags.a, env)
    except Exception:
        return True
    if flags.kind == "cmp" and flags.b is not None:
        try:
            b = evaluate(flags.b, env)
        except Exception:
            return True
        expected = {"e": (a & mask) == (b & mask),
                    "b": (a & mask) < (b & mask),
                    "l": signed(a) < signed(b)}
    else:
        if flags.kind == "test":
            if flags.b is None:
                return True
            try:
                value = a & evaluate(flags.b, env)
            except Exception:
                return True
        else:  # "arith": flags of a result value; ZF/SF are modelled
            value = a
        expected = {"e": (value & mask) == 0,
                    "s": bool(value & sign)}
    return all(cpu.condition(cc) == want for cc, want in expected.items())


# derandomize: witness synthesis for join variables is heuristic (the
# relation is existential; `_bind_unknowns` proposes, `holds` validates),
# so an unlucky fresh program shape can fail to *relate* without any
# lifter bug.  A fixed example stream keeps tier-1 deterministic; the
# campaign battery and the sweep carry the exploratory load.
@settings(max_examples=25, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    source=programs,
    arg_a=st.integers(min_value=-1000, max_value=1000),
    arg_b=st.integers(min_value=-1000, max_value=1000),
)
# Shrunk falsifying programs that once defeated witness synthesis — each
# exercises a distinct join shape (flag-operand join vars under one- and
# two-sided merges, n-ary adds, clause-pinned operands, loop-head arith
# flags).  Pinned here because derandomize skips the failure database.
@example(source="long main(long a, long b) {\n    long c = 0;\n"
                "    if (-2 < a) { if (0 < 0) { a = 0; } }\n"
                "    return a + b + c;\n}", arg_a=0, arg_b=0)
@example(source="long main(long a, long b) {\n    long c = 0;\n"
                "    if (0 < a) { c = 1; }\n"
                "    return a + b + c;\n}", arg_a=0, arg_b=0)
@example(source="long main(long a, long b) {\n    long c = 0;\n"
                "    if (0 > a) { if (1 < 0) { a = 0; } }\n"
                "    return a + b + c;\n}", arg_a=0, arg_b=0)
@example(source="long main(long a, long b) {\n    long c = 0;\n"
                "    a = -2;\n"
                "    if (-2 != b) { if (0 < a) { a = 0; } }\n"
                "    return a + b + c;\n}", arg_a=0, arg_b=0)
@example(source="long main(long a, long b) {\n    long c = 0;\n"
                "    a = -1;\n"
                "    for (long i = 0; i < 1; i = i + 1) { a = 0; }\n"
                "    return a + b + c;\n}", arg_a=0, arg_b=0)
# A nested loop feeding an if-merge: under SCC scheduling the merge once
# kept a one-sided bound on a foreign join variable that the other path's
# joined *flags* contradicted (the `references` fix in join_predicates).
@example(source="long main(long a, long b) {\n    long c = 0;\n"
                "    for (long i = 0; i < 1; i = i + 1) { "
                "for (long i = 0; i < 1; i = i + 1) { a = 0; } "
                "if (a < 0) { a = 0; } }\n"
                "    return a + b + c;\n}", arg_a=0, arg_b=0)
def test_fuzz_values_match_lifted_postconditions(source, arg_a, arg_b):
    """Beyond address coverage: on straight-line code, some lifted state at
    each executed address must agree with the machine's *register, memory
    and flag values* (the predicate `holds` on the concrete state)."""
    binary = compile_source(source, name="fuzzv")
    result = lift(binary, max_states=20_000, timeout_seconds=20)
    if not result.verified:
        return

    cpu = CPU(binary)
    cpu.regs["rdi"] = arg_a & ((1 << 64) - 1)
    cpu.regs["rsi"] = arg_b & ((1 << 64) - 1)
    pristine = dict(cpu.memory.bytes)

    def read_initial(addr: int, size: int) -> int:
        value = 0
        for i in range(size):
            a = (addr + i) & ((1 << 64) - 1)
            byte = pristine.get(a)
            if byte is None:
                section = binary.section_at(a)
                byte = section.data[a - section.addr] if section else 0
            value |= byte << (8 * i)
        return value

    variables = {f"{reg}0": value for reg, value in cpu.regs.items()}
    variables["ret0"] = read_initial(cpu.regs["rsp"], 8)

    for _ in range(2000):
        if cpu.halted or cpu.rip == _SENTINEL_RETURN:
            break
        instr = binary.fetch(cpu.rip)
        if instr.mnemonic == "call":
            return  # context-free lifting: callee predicates use fresh vars
        try:
            cpu.execute(instr)
        except MachineError:
            return
        if cpu.halted or cpu.rip == _SENTINEL_RETURN:
            break
        states = result.graph.states_at(cpu.rip)
        if not states:
            continue  # address coverage is the other test's job
        registers = {**cpu.regs, "rip": cpu.rip}
        related = False
        for state in states:
            bindings = dict(variables)
            _bind_unknowns(state, cpu, bindings)
            probe = EvalEnv(variables=bindings, read_mem=read_initial,
                            registers=registers)
            try:
                if state.pred.holds(probe, read_current=cpu.memory.read) \
                        and _flags_agree(state.pred.flags, probe, cpu):
                    related = True
                    break
            except Exception:
                continue
        assert related, (
            f"no lifted state at {cpu.rip:#x} matches the concrete "
            f"registers/flags after {instr}\nprogram:\n{source}"
        )


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    source=programs,
    arg_a=st.integers(min_value=-100, max_value=100),
)
def test_fuzz_compiled_semantics_stable(source, arg_a):
    """Compiling twice and running both gives identical results (the
    compiler and emulator are deterministic)."""
    first = compile_source(source, name="one")
    second = compile_source(source, name="two")
    results = []
    for binary in (first, second):
        cpu = CPU(binary)
        cpu.regs["rdi"] = arg_a & ((1 << 64) - 1)
        cpu.regs["rsi"] = 7
        try:
            cpu.run(max_steps=50_000)
        except MachineError:
            return
        results.append(cpu.regs["rax"])
    assert results[0] == results[1]
