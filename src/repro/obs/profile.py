"""Span-derived self-time profiling: where does lifting effort go?

The paper's evaluation is organized around *cost attribution* —
instructions lifted, SMT queries issued, joins performed — but the PR-3
tracer only records flat event streams.  This module adds the missing
fold: a process-global :class:`PhaseTimer` accumulates **self time** (own
wall time minus time spent in nested phases) for the pipeline's named
phases — ``schedule``, ``decode``, ``transfer``, ``resolve``, ``join``,
``smt``, ``finish``, ``export`` — and :func:`build_profile` combines the
phase totals with the tracer's per-address event stream into a
:class:`Profile`: per-phase and per-address cost tables, a collapsed-stack
flamegraph, and a wall-time attribution (coverage) figure.

Cost discipline (same as the tracer): every phase region is guarded by
``tracer.enabled`` via :func:`phase`, so a disabled run pays one function
call, one attribute load, and a branch per region.  Enabled, a region
costs two ``perf_counter`` reads and a handful of float ops — no
allocation, no ring pressure (phases are *not* events; the collapsed-stack
fold runs only in ``profile_mode``, which ``python -m repro profile``
switches on for one lift).

Determinism: per-phase **counts** are a pure function of the lifted task
(one ``decode`` per fetched instruction, one ``join`` per changed vertex,
…) for every phase except ``smt``, whose count is the solver-cache *miss*
count and therefore depends on cache warmth — exactly the split
:func:`repro.obs.report.canonical_obs` already makes for the hit/miss
counters.  :func:`canonical_profile` keeps the deterministic counts and
strips wall time, so serial and worker-pool corpus profiles roll up
byte-identically.

Stdlib-only, imports nothing from :mod:`repro` outside :mod:`repro.obs`.
"""

from __future__ import annotations

import io
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.tracer import Event, tracer

#: The named pipeline phases, in pipeline order (rendering order).
#: ``uop.compile``/``uop.exec`` are the micro-op engine's split of the
#: ``transfer`` phase (they nest inside it, so self-time attribution
#: stays double-count-free); both count once per symbolic step, so their
#: counts are deterministic like ``transfer``'s.
PHASES = ("schedule", "decode", "transfer", "uop.compile", "uop.exec",
          "resolve", "join", "smt", "finish", "export", "pointer")

#: Phases whose *count* depends on cache warmth (solver-cache misses) and
#: is therefore excluded from the canonical (deterministic) profile form.
NONDETERMINISTIC_PHASE_COUNTS = frozenset({"smt"})

#: Event kinds folded into the per-address cost table, with the column
#: they land in and whether the kind is sampled (recorded 1-in-N but
#: counted exactly — per-address figures scale back up by the sampling
#: level and are estimates unless sampling == 1).
_ADDRESS_KINDS = {
    "state.explore": ("explores", True),
    "state.enqueue": ("enqueues", True),
    "join": ("joins", True),
    "join.widen": ("widens", False),
    "smt.query": ("smt_queries", True),
    "annotation": ("annotations", False),
    "reject": ("rejects", False),
}


class _PhaseRegion:
    """Reusable context manager for one named phase (no per-use allocation).

    ``__enter__``/``__exit__`` duplicate :meth:`PhaseTimer.start`/``stop``
    inline: regions run several hundred thousand times per corpus and the
    saved call frames are a measurable slice of the <=1.05x enabled-
    overhead budget.  Keep the two in sync."""

    __slots__ = ("timer", "name")

    def __init__(self, timer: "PhaseTimer", name: str) -> None:
        self.timer = timer
        self.name = name

    def __enter__(self) -> "_PhaseRegion":
        self.timer._stack.append([self.name, time.perf_counter(), 0.0])
        return self

    def __exit__(self, *exc) -> None:
        timer = self.timer
        name, t0, child = timer._stack.pop()
        wall = time.perf_counter() - t0
        slot = timer.totals.get(name)
        if slot is None:
            slot = timer.totals[name] = [0.0, 0.0, 0]
        self_seconds = wall - child
        slot[0] += self_seconds
        slot[1] += wall
        slot[2] += 1
        if timer._stack:
            timer._stack[-1][2] += wall
        if timer.profile_mode:
            path = ";".join([frame[0] for frame in timer._stack] + [name])
            timer.stacks[path] = timer.stacks.get(path, 0.0) + self_seconds


class _NullRegion:
    """The no-op region returned when the obs layer is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullRegion":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_REGION = _NullRegion()


class PhaseTimer:
    """Self-time accumulation over a stack of named phases.

    ``totals`` maps phase name to ``[self_seconds, wall_seconds, count]``.
    Self time is wall time minus the wall time of nested regions, so the
    per-phase figures sum to the instrumented wall time with no double
    counting — the property the ≥95% attribution gate is stated over.

    ``profile_mode`` additionally folds every region exit into
    ``stacks``: collapsed-stack path (``"transfer;smt"``) → self seconds,
    the standard flamegraph input.  Off by default (string joins on the
    hot path are profile-run-only).
    """

    __slots__ = ("_stack", "totals", "profile_mode", "stacks")

    def __init__(self) -> None:
        # Stack frames are [name, start, child_wall_seconds].
        self._stack: list[list] = []
        self.totals: dict[str, list] = {}
        self.profile_mode = False
        self.stacks: dict[str, float] = {}

    def start(self, name: str) -> None:
        self._stack.append([name, time.perf_counter(), 0.0])

    def stop(self) -> float:
        """Close the innermost region; returns its wall seconds."""
        name, t0, child = self._stack.pop()
        wall = time.perf_counter() - t0
        slot = self.totals.get(name)
        if slot is None:
            slot = self.totals[name] = [0.0, 0.0, 0]
        self_seconds = wall - child
        slot[0] += self_seconds
        slot[1] += wall
        slot[2] += 1
        if self._stack:
            self._stack[-1][2] += wall
        if self.profile_mode:
            path = ";".join([frame[0] for frame in self._stack] + [name])
            self.stacks[path] = self.stacks.get(path, 0.0) + self_seconds
        return wall

    def reset(self) -> None:
        """Drop accumulated totals, stacks, and any open regions."""
        self._stack.clear()
        self.totals = {}
        self.stacks = {}

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready, mergeable copy of the phase totals."""
        return {
            name: {"self_seconds": slot[0], "wall_seconds": slot[1],
                   "count": slot[2]}
            for name, slot in self.totals.items()
        }

    @staticmethod
    def merge(into: dict[str, Any], other: dict[str, Any]) -> dict[str, Any]:
        """Accumulate one :meth:`snapshot` dict into another (returns *into*)."""
        for name, slot in other.items():
            target = into.setdefault(
                name, {"self_seconds": 0.0, "wall_seconds": 0.0, "count": 0})
            target["self_seconds"] += slot.get("self_seconds", 0.0)
            target["wall_seconds"] += slot.get("wall_seconds", 0.0)
            target["count"] += slot.get("count", 0)
        return into


#: The process-global phase timer, reset together with the tracer/metrics
#: (see :func:`repro.obs.reset`) and per corpus task by the runner.
phases = PhaseTimer()


def phase(name: str):
    """A phase region context manager — the shared no-op when disabled.

    Hot-path idiom, mirroring ``tracer.span``::

        with phase("decode"):
            instr = binary.fetch(rip)
    """
    if not tracer.enabled:
        return _NULL_REGION
    region = _REGIONS.get(name)
    if region is None:
        region = _REGIONS[name] = _PhaseRegion(phases, name)
    return region


_REGIONS: dict[str, _PhaseRegion] = {}


# -- the profile -----------------------------------------------------------

@dataclass
class Profile:
    """One folded cost profile (single lift or corpus rollup)."""

    #: Phase name -> {self_seconds, wall_seconds, count}.
    phases: dict[str, dict] = field(default_factory=dict)
    #: Address -> column -> (scaled) event count.
    addresses: dict[int, dict[str, int]] = field(default_factory=dict)
    #: Collapsed-stack path -> self seconds (profile-mode runs only).
    stacks: dict[str, float] = field(default_factory=dict)
    #: Exact event-kind totals (from ``tracer.counts``).
    events: dict[str, int] = field(default_factory=dict)
    #: The wall time being attributed (lift seconds), when known.
    wall_seconds: float | None = None
    #: Sampling level the per-address figures were scaled by.
    sampling: int = 1
    #: Events lost to ring wrap-around during capture.
    events_dropped: int = 0

    @property
    def attributed_seconds(self) -> float:
        return sum(slot.get("self_seconds", 0.0)
                   for slot in self.phases.values())

    @property
    def coverage(self) -> float | None:
        """Fraction of ``wall_seconds`` attributed to named phases."""
        if not self.wall_seconds:
            return None
        return self.attributed_seconds / self.wall_seconds


def address_costs(events: Iterable[Event],
                  sampling: int = 1) -> dict[int, dict[str, int]]:
    """Fold the event stream into a per-address cost table.

    Sampled kinds are scaled back up by *sampling*; with the profile
    CLI's default ``sampling=1`` the figures are exact counts.
    """
    table: dict[int, dict[str, int]] = {}
    for event in events:
        spec = _ADDRESS_KINDS.get(event.kind)
        if spec is None or event.addr is None:
            continue
        column, sampled = spec
        row = table.setdefault(event.addr, {})
        row[column] = row.get(column, 0) + (sampling if sampled else 1)
    return table


def build_profile(events: Iterable[Event],
                  counts: dict[str, int],
                  phases_snapshot: dict[str, Any] | None = None,
                  wall_seconds: float | None = None,
                  sampling: int = 1,
                  stacks: dict[str, float] | None = None,
                  events_dropped: int = 0) -> Profile:
    """Fold one capture (events + phase totals) into a :class:`Profile`."""
    return Profile(
        phases=dict(phases_snapshot or {}),
        addresses=address_costs(events, sampling=sampling),
        stacks=dict(stacks or {}),
        events=dict(counts),
        wall_seconds=wall_seconds,
        sampling=sampling,
        events_dropped=events_dropped,
    )


def canonical_profile(profile_data: dict[str, Any]) -> dict[str, Any]:
    """The deterministic view of a profile rollup dict.

    Keeps per-phase *counts* (minus the cache-warmth-dependent ``smt``)
    and exact event totals; strips every wall-clock quantity.  Serial and
    worker-pool corpus profiles agree byte-for-byte on this form.
    """
    phase_counts = {
        name: slot.get("count", 0)
        for name, slot in sorted(profile_data.get("phases", {}).items())
        if name not in NONDETERMINISTIC_PHASE_COUNTS
    }
    return {
        "phases": phase_counts,
        "events": dict(profile_data.get("events", {})),
    }


def profile_rollup(obs: dict[str, Any],
                   wall_seconds: float | None = None) -> dict[str, Any]:
    """Aggregate a corpus obs rollup (``CorpusReport.obs``) into one
    profile dict: merged phase totals, exact event totals, coverage."""
    totals = obs.get("totals", {})
    phases_total: dict[str, Any] = dict(totals.get("phases", {}))
    events_total = dict(totals.get("events", {}))
    attributed = sum(slot.get("self_seconds", 0.0)
                     for slot in phases_total.values())
    data: dict[str, Any] = {
        "phases": phases_total,
        "events": events_total,
        "attributed_seconds": round(attributed, 6),
    }
    if wall_seconds:
        data["wall_seconds"] = round(wall_seconds, 6)
        data["coverage"] = round(attributed / wall_seconds, 4)
    return data


# -- renderers -------------------------------------------------------------

def collapsed_stacks(stacks: dict[str, float]) -> str:
    """The collapsed-stack flamegraph form: ``path self_microseconds``.

    One line per stack path, sorted by path; weights are integer
    microseconds — the exact input format of flamegraph.pl / speedscope /
    inferno.
    """
    return "\n".join(f"{path} {max(0, round(seconds * 1_000_000))}"
                     for path, seconds in sorted(stacks.items()))


def _phase_order(name: str) -> tuple[int, str]:
    try:
        return (PHASES.index(name), name)
    except ValueError:
        return (len(PHASES), name)


def render_profile(profile: Profile, top: int = 20,
                   title: str = "Profile",
                   opcode_stats: dict[str, dict] | None = None) -> str:
    """The ``python -m repro profile`` text report: phase self-time table
    plus the top-*top* per-address cost table.

    *opcode_stats* (``repro.uop.compile.opcode_stats()`` form: mnemonic →
    ``{"hits", "misses"}``) adds the micro-op engine's per-opcode
    compile-table hit-rate table, ranked by visit count."""
    out = io.StringIO()
    wall = profile.wall_seconds
    head = title
    if wall:
        head += f": {wall:.3f} s wall"
        coverage = profile.coverage
        if coverage is not None:
            head += f", {coverage:.1%} attributed to named phases"
    out.write(head + "\n")
    if profile.events_dropped:
        out.write(f"WARNING: {profile.events_dropped} events dropped from "
                  "the trace ring (per-address figures are truncated)\n")
    out.write("\nPhase          self(s)    wall(s)      count\n")
    for name in sorted(profile.phases, key=_phase_order):
        slot = profile.phases[name]
        out.write(f"  {name:<12} {slot.get('self_seconds', 0.0):>8.3f} "
                  f"{slot.get('wall_seconds', 0.0):>10.3f} "
                  f"{slot.get('count', 0):>10}\n")
    if wall:
        other = wall - profile.attributed_seconds
        out.write(f"  {'(other)':<12} {other:>8.3f}\n")
    if profile.addresses:
        estimate = "" if profile.sampling == 1 else \
            f" (scaled x{profile.sampling} from sampled events)"
        out.write(f"\nTop {min(top, len(profile.addresses))} addresses by "
                  f"attributed events{estimate}:\n")
        out.write("  address      explores    joins   widens  smt.q  "
                  "annot  reject\n")

        def weight(item) -> tuple:
            row = item[1]
            return (row.get("smt_queries", 0) + row.get("joins", 0)
                    + row.get("explores", 0), item[0])

        ranked = sorted(profile.addresses.items(), key=weight, reverse=True)
        for addr, row in ranked[:top]:
            out.write(
                f"  {addr:#10x} {row.get('explores', 0):>9} "
                f"{row.get('joins', 0):>8} {row.get('widens', 0):>8} "
                f"{row.get('smt_queries', 0):>6} "
                f"{row.get('annotations', 0):>6} {row.get('rejects', 0):>7}\n"
            )
    if opcode_stats:
        visited = [(name, slot) for name, slot in opcode_stats.items()
                   if slot.get("hits", 0) + slot.get("misses", 0)]
        visited.sort(key=lambda item: -(item[1].get("hits", 0)
                                        + item[1].get("misses", 0)))
        out.write(f"\nTop {min(top, len(visited))} opcodes by uop "
                  "compile-table traffic:\n")
        out.write("  opcode         visits   compiles  hit rate\n")
        for name, slot in visited[:top]:
            hits = slot.get("hits", 0)
            misses = slot.get("misses", 0)
            total = hits + misses
            out.write(f"  {name:<12} {total:>8} {misses:>10} "
                      f"{hits / total:>8.1%}\n")
    smt_wall = profile.phases.get("smt", {}).get("self_seconds")
    queries = profile.events.get("smt.query")
    if queries and smt_wall is not None:
        out.write(f"\nSMT: {queries} queries, {smt_wall:.3f} s solver "
                  f"self-time ({smt_wall / queries * 1e6:.1f} us/query)\n")
    return out.getvalue()
