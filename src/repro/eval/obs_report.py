"""``python -m repro.eval obs``: corpus-wide observability rollup.

Runs the corpus with per-task obs capture (``run_corpus(obs=True)``) and
renders the merged rollup: exact event totals, histograms aggregated over
all tasks, the tasks whose canonical tails carry diagnostics, and the
annotation counts by directory.  The rollup content (canonical form) is a
pure function of the corpus — identical for serial and parallel runs.
"""

from __future__ import annotations

from repro.obs.report import render_obs_rollup
from repro.obs.tracer import DEFAULT_SAMPLING


def generate_obs_report(scale: int = 1, timeout_seconds: float = 10.0,
                        jobs: int = 1,
                        sampling: int = DEFAULT_SAMPLING):
    """Return ``(report, text)`` for the obs rollup of one corpus run."""
    from repro.eval.runner import run_corpus

    report = run_corpus(scale=scale, timeout_seconds=timeout_seconds,
                        jobs=jobs, obs=True, obs_sampling=sampling)
    text = render_obs_rollup(report.obs, report.records)
    return report, text
