"""The flow-sensitive per-function pointer transfer pass.

The abstract state (:class:`Env`) maps register families to region sets
and tracked 8-byte stack slots (``RSP0``-relative offsets) to the region
sets of their *contents*.  ``rsp`` itself is just another tracked value —
``StackFrame(fn, 0, 0)`` at entry — so stack-height tracking falls out of
the domain instead of needing a separate lattice.

Instruction effects come from the τ-probed def/use summaries
(:mod:`repro.semantics.defuse`): result expressions over probe markers are
evaluated by :func:`repro.smt.linear.linearize` — a single unit-coefficient
marker term plus a constant shifts the marker's region set, a constant
classifies against the binary's sections, anything else is Unknown.  The
one instruction τ defers entirely to the lifter is ``call``; its ABI
effects (caller-saved havoc, the return-address push, the callee summary)
are modelled here explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.elf import Binary
from repro.expr import Const, Deref, Expr, Var
from repro.isa import Imm, Instruction
from repro.isa.registers import ARG_REGISTERS, CALLER_SAVED
from repro.semantics import DefUse
from repro.semantics.defuse import marker_family
from repro.smt.linear import linearize
from repro.analysis.cfgview import FunctionView
from repro.analysis.context import AnalysisContext
from repro.analysis.engine import Dataflow, Solution, solve
from repro.analysis.pointer.domain import (
    Heap,
    PtrVal,
    StackFrame,
    UNKNOWN_VAL,
    Unknown,
    classify_const,
    covers_val,
    exact_const,
    is_unknown_val,
    join_vals,
    shift_val,
    Summary,
    TOP_SUMMARY,
    widen_vals,
)

_MASK64 = (1 << 64) - 1
_DU_TOP = DefUse.unknown()

#: Externals that return a fresh heap block (the ``Heap`` site is the
#: call-site address, giving allocation-site sensitivity for free).
ALLOCATORS = frozenset({"malloc", "calloc", "realloc", "aligned_alloc"})


def _signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >> 63 else value


@dataclass(frozen=True)
class Env:
    """Abstract state at one program point (immutable, ``==``-comparable).

    Register families absent from ``regs`` hold :data:`UNKNOWN_VAL`;
    ``slots`` only tracks 8-byte frame slots whose contents are known
    better than Unknown."""

    regs: tuple = ()
    slots: tuple = ()
    reached: bool = True

    def reg(self, family: str) -> PtrVal:
        for name, val in self.regs:
            if name == family:
                return val
        return UNKNOWN_VAL

    def slot(self, offset: int) -> PtrVal:
        for off, val in self.slots:
            if off == offset:
                return val
        return UNKNOWN_VAL

    def reg_dict(self) -> dict:
        return dict(self.regs)

    def slot_dict(self) -> dict:
        return dict(self.slots)

    @staticmethod
    def make(regs: dict, slots: dict, reached: bool = True) -> "Env":
        return Env(
            regs=tuple(sorted(
                (name, val) for name, val in regs.items()
                if not is_unknown_val(val)
            )),
            slots=tuple(sorted(
                (off, val) for off, val in slots.items()
                if not is_unknown_val(val)
            )),
            reached=reached,
        )

    def __str__(self) -> str:
        if not self.reached:
            return "⊥"
        parts = [f"{name}={{{','.join(sorted(str(r) for r in val))}}}"
                 for name, val in self.regs]
        parts += [f"[RSP0{off:+#x}]={{{','.join(sorted(str(r) for r in val))}}}"
                  for off, val in self.slots]
        return "{" + ", ".join(parts) + "}"


BOTTOM = Env(reached=False)


def entry_env(fn: int) -> Env:
    """The boundary fact: rsp points at the frame base, all else unknown."""
    return Env.make({"rsp": frozenset({StackFrame(fn, 0, 0)})}, {})


def join_envs(a: Env, b: Env) -> Env:
    if not a.reached:
        return b
    if not b.reached:
        return a
    if a == b:
        return a
    a_regs, b_regs = a.reg_dict(), b.reg_dict()
    regs = {
        name: join_vals(a_regs[name], b_regs[name])
        for name in a_regs.keys() & b_regs.keys()
    }
    a_slots, b_slots = a.slot_dict(), b.slot_dict()
    slots = {
        off: join_vals(a_slots[off], b_slots[off])
        for off in a_slots.keys() & b_slots.keys()
    }
    return Env.make(regs, slots)


def widen_envs(old: Env, new: Env) -> Env:
    if not old.reached or not new.reached:
        return new
    old_regs, new_regs = old.reg_dict(), new.reg_dict()
    regs = {
        name: widen_vals(old_regs[name], new_regs[name])
        for name in old_regs.keys() & new_regs.keys()
    }
    old_slots, new_slots = old.slot_dict(), new.slot_dict()
    slots = {
        off: widen_vals(old_slots[off], new_slots[off])
        for off in old_slots.keys() & new_slots.keys()
    }
    return Env.make(regs, slots)


# -- expression evaluation --------------------------------------------------------------


def eval_value(expr: Expr, env: Env, fn: int, binary: Binary) -> PtrVal:
    """The region set of a probe-marker expression under *env*.

    The linear form is evaluated term by term: scaled terms whose base
    resolves to an exact absolute constant (``index*8`` with a known
    index) fold into the offset, leaving at most one unit-coefficient
    region-valued base to shift.  Anything else — two symbolic terms, a
    scaled symbolic index — is Unknown."""
    linear = linearize(expr)
    if linear.is_const:
        return classify_const(binary, linear.const)
    offset = _signed(linear.const)
    base = None
    for term, coeff in linear.terms:
        val = _eval_term(term, env, fn, binary)
        const = exact_const(val)
        if const is not None:
            offset += coeff * _signed(const)
            continue
        if coeff != 1 or base is not None:
            return UNKNOWN_VAL
        base = val
    if base is None:
        return classify_const(binary, offset & _MASK64)
    return shift_val(base, offset & _MASK64)


def _eval_term(term: Expr, env: Env, fn: int, binary: Binary) -> PtrVal:
    if isinstance(term, Var):
        family = marker_family(term)
        if family is not None:
            return env.reg(family)
        return UNKNOWN_VAL
    if isinstance(term, Deref):
        addr_val = eval_value(term.addr, env, fn, binary)
        offset = _exact_stack_offset(addr_val, fn)
        if offset is not None and term.size == 8:
            return env.slot(offset)
        addr = exact_const(addr_val)
        if addr is not None:
            section = binary.section_at(addr)
            if (section is not None and not section.writable
                    and addr + term.size <= section.end):
                value = int.from_bytes(binary.read(addr, term.size), "little")
                return classify_const(binary, value)
        return UNKNOWN_VAL
    return UNKNOWN_VAL


def _exact_stack_offset(val: PtrVal, fn: int) -> int | None:
    """The singleton ``RSP0 + o`` offset of *val*, if that is all it is."""
    if len(val) != 1:
        return None
    (region,) = val
    if isinstance(region, StackFrame) and region.fn == fn \
            and region.lo == region.hi:
        return region.lo
    return None


def rsp_height(env: Env, fn: int) -> int | None:
    """The exact ``rsp = RSP0 + h`` offset, when the analysis knows it."""
    return _exact_stack_offset(env.reg("rsp"), fn)


# -- call-site classification -----------------------------------------------------------


def call_target(binary: Binary, instr: Instruction):
    """``("internal", entry)`` / ``("external", name)`` / ``("indirect", None)``."""
    (operand,) = instr.operands
    if isinstance(operand, Imm):
        callee = (instr.end + operand.signed) & _MASK64
        extern = binary.external_name(callee)
        if extern is not None:
            return ("external", extern)
        return ("internal", callee)
    return ("indirect", None)


#: Resolves the summary governing one ``call`` instruction.
SummaryForCall = Callable[[Instruction], Summary]


# -- the transfer function --------------------------------------------------------------


def _stack_span_clobbers(span, height: int, fn: int):
    """The caller-coordinate byte footprint of a callee StackFrame span
    (callee ``RSP0`` = caller ``RSP0 + height - 8``), or None for spans
    that cannot be translated."""
    region = span.region
    if not isinstance(region, StackFrame):
        return None
    base = height - 8
    return (base + region.lo, base + region.hi + span.size)


def _drop_slots(slots: dict, lo: int, hi: int) -> None:
    """Remove tracked slots overlapping the byte range ``[lo, hi)``."""
    for off in [off for off in slots if off < hi and off + 8 > lo]:
        del slots[off]


def _transfer_call(instr: Instruction, env: Env, fn: int, binary: Binary,
                   summary_for_call: SummaryForCall) -> Env:
    kind, target = call_target(binary, instr)
    summary = summary_for_call(instr)
    height = rsp_height(env, fn)

    regs = env.reg_dict()
    for family in CALLER_SAVED:
        regs.pop(family, None)
    if kind == "external" and target in ALLOCATORS and instr.addr is not None:
        regs["rax"] = frozenset({Heap(instr.addr)})

    slots = env.slot_dict()
    if height is None or summary.writes_unknown:
        # Unknown frame base, or an escaped pointer the callee may write
        # through: nothing below *or* above rsp is reliably preserved.
        slots = {}
    else:
        # The callee owns everything below the caller's rsp (its frame and
        # the red zone die at the call); translated non-local stack writes
        # clobber tracked slots above it.
        for off in [off for off in slots if off < height]:
            del slots[off]
        for span in summary.writes:
            clobber = _stack_span_clobbers(span, height, fn)
            if clobber is not None:
                _drop_slots(slots, *clobber)
    return Env.make(regs, slots)


def pointer_problem(
    ctx: AnalysisContext, view: FunctionView,
    summary_for_call: SummaryForCall,
) -> Dataflow:
    """The dataflow problem for one function view."""
    fn = view.entry
    binary = ctx.result.binary

    def transfer(instr: Instruction, env: Env) -> Env:
        if not env.reached:
            return env
        if instr.mnemonic == "call":
            return _transfer_call(instr, env, fn, binary, summary_for_call)
        du = ctx.def_use(instr)
        if du == _DU_TOP:
            # τ cannot probe it: everything it might have touched is gone.
            return Env.make({}, {})

        regs = env.reg_dict()
        slots = env.slot_dict()
        # Evaluate every effect against the *pre* state, then apply.
        updates = {}
        for family in du.defs:
            result = du.result_of(family)
            updates[family] = (
                eval_value(result, env, fn, binary)
                if result is not None else UNKNOWN_VAL
            )
        # Precise slot writes first, clobbers last: the order of multiple
        # stores within one instruction is unknown, so an imprecise store
        # must win over any slot it may overlap.
        clobbers = []
        for store in du.stores:
            addr_val = eval_value(store.addr, env, fn, binary)
            offset = _exact_stack_offset(addr_val, fn)
            if offset is not None and store.size == 8:
                if store.value is not None:
                    slots[offset] = eval_value(store.value, env, fn, binary)
                else:
                    slots.pop(offset, None)
                continue
            clobbers.append((addr_val, store.size))
        for addr_val, size in clobbers:
            if is_unknown_val(addr_val):
                slots = {}
                break
            for region in addr_val:
                if isinstance(region, StackFrame) and region.fn == fn:
                    _drop_slots(slots, region.lo, region.hi + size)
                elif isinstance(region, StackFrame):
                    slots = {}
                    break
        for family, val in updates.items():
            if is_unknown_val(val):
                regs.pop(family, None)
            else:
                regs[family] = val
        return Env.make(regs, slots)

    return Dataflow(
        direction="forward",
        boundary=entry_env(fn),
        bottom=BOTTOM,
        join=join_envs,
        transfer=transfer,
        widen=widen_envs,
    )


# -- fact extraction (post-fixpoint replay) ---------------------------------------------


@dataclass(frozen=True)
class Access:
    """One classified memory access site."""

    addr: int
    kind: str                  # "load" | "store"
    regions: PtrVal
    size: int

    @property
    def precise(self) -> bool:
        return not is_unknown_val(self.regions)


@dataclass(frozen=True)
class Escape:
    """A stack-frame address observed leaving the function's control."""

    addr: int
    region: StackFrame
    how: str


@dataclass
class FunctionFacts:
    """Everything the pointer pass derives for one function."""

    entry: int
    accesses: dict         # (addr, kind) -> Access
    escapes: list          # [Escape]
    call_heights: dict     # call addr -> rsp offset (None when unknown)
    tail_calls: dict       # jmp addr -> (target | extern name, rsp offset)
    converged: bool
    solution: Solution


def _record(accesses: dict, addr: int, kind: str, regions: PtrVal,
            size: int) -> None:
    key = (addr, kind)
    prior = accesses.get(key)
    if prior is not None:
        regions = join_vals(prior.regions, regions)
        size = max(size, prior.size)
    accesses[key] = Access(addr, kind, regions, size)


def _stack_regions(val: PtrVal, fn: int):
    return [r for r in val if isinstance(r, StackFrame) and r.fn == fn]


def collect_facts(
    ctx: AnalysisContext, view: FunctionView,
    summary_for_call: SummaryForCall,
) -> FunctionFacts:
    """Solve one view and replay the fixpoint to classify every access."""
    fn = view.entry
    binary = ctx.result.binary
    problem = pointer_problem(ctx, view, summary_for_call)
    solution = solve(view, problem)
    accesses: dict = {}
    escapes: list = []
    call_heights: dict = {}
    tail_calls: dict = {}
    blocks = set(view.blocks)

    for leader in view.blocks:
        for instr, env in solution.before_each(view, problem, leader):
            if instr.addr is None or not env.reached:
                continue
            if (instr.mnemonic == "jmp"
                    and len(instr.operands) == 1
                    and isinstance(instr.operands[0], Imm)):
                target = (instr.end + instr.operands[0].signed) & _MASK64
                if target not in blocks:
                    # A direct jump out of the function: a tail call whose
                    # effects belong to this function's summary.
                    extern = binary.external_name(target)
                    tail_calls[instr.addr] = (
                        extern if extern is not None else target,
                        rsp_height(env, fn),
                    )
                continue
            if instr.mnemonic == "call":
                height = rsp_height(env, fn)
                call_heights[instr.addr] = height
                push_to = (
                    frozenset({StackFrame(fn, height - 8, height - 8)})
                    if height is not None else UNKNOWN_VAL
                )
                _record(accesses, instr.addr, "store", push_to, 8)
                kind, target = call_target(binary, instr)
                if kind != "internal":
                    callee = target if kind == "external" else "<indirect>"
                    for reg in ARG_REGISTERS:
                        for region in _stack_regions(env.reg(reg), fn):
                            escapes.append(Escape(
                                instr.addr, region,
                                f"&frame in {reg} passed to {callee}",
                            ))
                continue
            du = ctx.def_use(instr)
            if du == _DU_TOP:
                continue
            for load in du.loads:
                _record(accesses, instr.addr, "load",
                        eval_value(load.addr, env, fn, binary), load.size)
            for store in du.stores:
                addr_val = eval_value(store.addr, env, fn, binary)
                _record(accesses, instr.addr, "store", addr_val, store.size)
                if store.value is None:
                    continue
                # A frame address written somewhere that is not this frame
                # escapes the function's control.
                value_val = eval_value(store.value, env, fn, binary)
                stack_parts = _stack_regions(value_val, fn)
                if stack_parts and not _stack_regions(addr_val, fn):
                    for region in stack_parts:
                        escapes.append(Escape(
                            instr.addr, region,
                            "&frame stored outside the frame",
                        ))
    return FunctionFacts(
        entry=fn,
        accesses=accesses,
        escapes=escapes,
        call_heights=call_heights,
        tail_calls=tail_calls,
        converged=solution.converged,
        solution=solution,
    )
