"""Memory models: forests of memory trees (Section 3.2).

Structure (Definition in the paper)::

    MemTree ::= {C x N} x Mem        Mem ::= {MemTree}

* regions in the same node **alias**;
* children are **enclosed** in their parents;
* siblings are **separate**.

:func:`ins` (Definition 3.7) inserts a region, following proven relations
where the solver can establish them and *forking* one model per possible
relation where it cannot (the paper's nondeterministic try-out).  When a
partial overlap cannot be excluded, the possibly-overlapping trees are
**destroyed** (Section 1): their regions are recorded in ``destroyed`` so
that subsequent reads produce unconstrained fresh values.

Models are immutable; every operation returns new models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.expr import EvalEnv, EvalError, Expr, evaluate
from repro.smt.solver import (
    Assumption,
    BoundsProvider,
    NO_BOUNDS,
    Region,
    Relation,
    decide_relation,
    possible_relations,
)


@dataclass(frozen=True)
class MemTree:
    """A node of aliasing regions plus a sub-forest of enclosed children."""

    regions: frozenset[Region]
    children: frozenset["MemTree"] = frozenset()

    @staticmethod
    def leaf(region: Region) -> "MemTree":
        return MemTree(frozenset({region}))

    def all_regions(self) -> frozenset[Region]:
        out = set(self.regions)
        for child in self.children:
            out |= child.all_regions()
        return frozenset(out)

    def representative(self) -> Region:
        return min(self.regions, key=str)

    def __str__(self) -> str:
        node = "{" + ", ".join(sorted(map(str, self.regions))) + "}"
        if not self.children:
            return node
        inner = ", ".join(sorted(str(c) for c in self.children))
        return f"{node}⟨{inner}⟩"


@dataclass(frozen=True)
class MemModel:
    """A forest of memory trees plus the set of destroyed regions."""

    trees: frozenset[MemTree] = frozenset()
    destroyed: frozenset[Region] = frozenset()

    def all_regions(self) -> frozenset[Region]:
        out = set()
        for tree in self.trees:
            out |= tree.all_regions()
        return frozenset(out)

    def __str__(self) -> str:
        body = ", ".join(sorted(str(t) for t in self.trees))
        if self.destroyed:
            body += " ☠{" + ", ".join(sorted(map(str, self.destroyed))) + "}"
        return "⟦" + body + "⟧"


EMPTY = MemModel()


@dataclass(frozen=True)
class InsResult:
    """One forked outcome of an insertion."""

    model: MemModel
    assumptions: tuple[Assumption, ...] = ()


# -- relation between a region and a tree ---------------------------------------

def _tree_relation(
    region: Region, tree: MemTree, bounds: BoundsProvider
) -> Relation | None:
    """Necessary relation between *region* and *tree* (paper's lifted notation).

    ≡ / ⪯ / ⪰ hold when some top-node region is necessarily so related;
    ⋈ holds when *all* regions of the tree are necessarily separate.
    """
    top_decisions = [
        decide_relation(region, other, bounds).relation for other in tree.regions
    ]
    for relation in (Relation.ALIAS, Relation.ENCLOSED):
        if any(d is relation for d in top_decisions):
            return relation
    if any(d is Relation.ENCLOSES for d in top_decisions):
        return Relation.ENCLOSES
    all_regions = tree.all_regions()
    if all(
        decide_relation(region, other, bounds).relation is Relation.SEPARATE
        for other in all_regions
    ):
        return Relation.SEPARATE
    return None


# -- insertion (Definition 3.7) ----------------------------------------------------

def ins(
    region: Region,
    model: MemModel,
    bounds: BoundsProvider = NO_BOUNDS,
    max_forks: int = 8,
) -> list[InsResult]:
    """Insert *region* into *model*; returns the forked set of models.

    Completeness (Lemma 3.11): for every possibly-true mapping of relations
    between *region* and the regions already in the model, some returned
    model realizes it — either structurally or via the destroyed set.
    """
    if any(
        decide_relation(region, destroyed, bounds).relation is not Relation.SEPARATE
        for destroyed in model.destroyed
    ):
        # Touching destroyed memory: the region itself is unconstrained.
        return [InsResult(MemModel(model.trees, model.destroyed | {region}))]
    results = _ins_tree(MemTree.leaf(region), list(_sorted(model.trees)), bounds)
    if len(results) > max_forks:
        # Too many case splits to track.  Truncating would silently drop
        # state-space coverage (unsound); destroying the undecided regions
        # covers *every* configuration at the cost of precision — exactly
        # the paper's escape hatch (Section 1).
        destroyed = model.destroyed | model.all_regions() | {region}
        return [InsResult(MemModel(frozenset(), destroyed))]
    out = []
    for trees, destroyed, assumptions in results:
        candidate = MemModel(frozenset(trees), model.destroyed | destroyed)
        if not _model_consistent(candidate, bounds):
            continue  # holds in no concrete state; pruning is sound
        out.append(InsResult(candidate, tuple(assumptions)))
    if not out:
        # Every structured fork was inconsistent (pathological bounds):
        # fall back to destroying the affected regions, which is always sound.
        destroyed = model.destroyed | model.all_regions() | {region}
        out.append(InsResult(MemModel(frozenset(), destroyed)))
    return out


def _model_consistent(model: MemModel, bounds: BoundsProvider) -> bool:
    """Reject models whose structural claims are refuted by the solver."""

    def tree_ok(tree: MemTree, parent: Region | None) -> bool:
        regions = list(tree.regions)
        for i, left in enumerate(regions):
            for right in regions[i + 1:]:
                if decide_relation(left, right, bounds).relation in (
                    Relation.SEPARATE, Relation.ENCLOSED, Relation.ENCLOSES,
                ):
                    return False
        rep = tree.representative()
        if parent is not None and decide_relation(
            rep, parent, bounds
        ).relation is Relation.SEPARATE:
            return False
        return forest_ok(tree.children, rep)

    def forest_ok(trees, parent: Region | None) -> bool:
        reps = [t.representative() for t in trees]
        for i, left in enumerate(reps):
            for right in reps[i + 1:]:
                if decide_relation(left, right, bounds).relation in (
                    Relation.ALIAS, Relation.ENCLOSED, Relation.ENCLOSES,
                ):
                    return False
        return all(tree_ok(t, parent) for t in trees)

    return forest_ok(model.trees, None)


def _sorted(trees) -> list[MemTree]:
    return sorted(trees, key=str)


def _ins_tree(
    t0: MemTree, trees: list[MemTree], bounds: BoundsProvider
) -> list[tuple[list[MemTree], frozenset[Region], list[Assumption]]]:
    """Recursive core of Definition 3.7 over an ordered forest."""
    if not trees:
        return [([t0], frozenset(), [])]
    t1, rest = trees[0], trees[1:]
    rep = t0.representative()
    relation = _tree_relation(rep, t1, bounds)
    if relation is not None:
        return _ins_with_relation(t0, t1, rest, relation, [], bounds)

    # Unknown relation: fork over the possible cases (paper Section 1).
    fork = possible_relations(rep, t1.representative(), bounds)
    outcomes: list[tuple[list[MemTree], frozenset[Region], list[Assumption]]] = []
    for case in fork.relations:
        if not _case_consistent(case, rep, t1, bounds):
            continue
        outcomes += _ins_with_relation(
            t0, t1, rest, case, list(fork.assumptions), bounds
        )
    if fork.may_partial:
        # Destroy: drop every tree we cannot separate from t0.
        destroyed = set(t0.all_regions()) | set(t1.all_regions())
        survivors = []
        for other in rest:
            if _tree_relation(rep, other, bounds) is Relation.SEPARATE:
                survivors.append(other)
            else:
                destroyed |= other.all_regions()
        outcomes.append((survivors, frozenset(destroyed), list(fork.assumptions)))
    return outcomes


def _case_consistent(
    case: Relation, region: Region, tree: MemTree, bounds: BoundsProvider
) -> bool:
    """Can *case* between *region* and *tree*'s top node coexist with the
    proven relations to the rest of the tree?  Refutes forks that would
    build models holding in no state (e.g. a SEPARATE sibling that provably
    encloses one of the tree's children)."""
    if case is Relation.SEPARATE:
        return all(
            decide_relation(region, other, bounds).relation
            in (Relation.SEPARATE, None)
            for other in tree.all_regions()
        )
    if case is Relation.ENCLOSES:
        return all(
            decide_relation(region, other, bounds).relation
            is not Relation.SEPARATE
            for other in tree.regions
        )
    return True


def _ins_with_relation(
    t0: MemTree,
    t1: MemTree,
    rest: list[MemTree],
    relation: Relation,
    assumptions: list[Assumption],
    bounds: BoundsProvider,
) -> list[tuple[list[MemTree], frozenset[Region], list[Assumption]]]:
    if relation is Relation.ALIAS:
        # insAL: merge nodes, re-insert the union of the children forests.
        merged_children = _fold_forest(
            list(t0.children) + list(t1.children), bounds
        )
        out = []
        for children, destroyed, child_assumptions in merged_children:
            merged = MemTree(t0.regions | t1.regions, frozenset(children))
            out.append(([merged] + rest, destroyed,
                        assumptions + child_assumptions))
        return out
    if relation is Relation.SEPARATE:
        # insSEP: keep t1, recurse into the remainder.
        out = []
        for trees, destroyed, more in _ins_tree(t0, rest, bounds):
            out.append(([t1] + trees, destroyed, assumptions + more))
        return out
    if relation is Relation.ENCLOSED:
        # insENC: push t0 down into t1's children.
        out = []
        for children, destroyed, more in _ins_tree(
            t0, _sorted(t1.children), bounds
        ):
            out.append(
                ([MemTree(t1.regions, frozenset(children))] + rest,
                 destroyed, assumptions + more)
            )
        return out
    # insCON: t1 goes inside t0, then the grown t0 is inserted into the rest.
    out = []
    for children, destroyed, more in _ins_tree(t1, _sorted(t0.children), bounds):
        grown = MemTree(t0.regions, frozenset(children))
        for trees, destroyed2, more2 in _ins_tree(grown, rest, bounds):
            out.append((trees, destroyed | destroyed2,
                        assumptions + more + more2))
    return out


def _fold_forest(
    trees: list[MemTree], bounds: BoundsProvider
) -> list[tuple[list[MemTree], frozenset[Region], list[Assumption]]]:
    """Insert every tree into an initially empty forest (fold of ins)."""
    states: list[tuple[list[MemTree], frozenset[Region], list[Assumption]]] = [
        ([], frozenset(), [])
    ]
    for tree in _sorted(trees):
        next_states = []
        for forest, destroyed, assumptions in states:
            for forest2, destroyed2, more in _ins_tree(tree, forest, bounds):
                next_states.append(
                    (forest2, destroyed | destroyed2, assumptions + more)
                )
        states = next_states
    return states


# -- relation lookup within a model ------------------------------------------------

def relation_in_model(model: MemModel, r0: Region, r1: Region) -> Relation | None:
    """The relation the model's *structure* records between two regions."""
    if r0 == r1:
        return Relation.ALIAS
    if r0 in model.destroyed or r1 in model.destroyed:
        return None

    def locate(tree: MemTree, region: Region, path: tuple[MemTree, ...]):
        if region in tree.regions:
            return path + (tree,)
        for child in tree.children:
            found = locate(child, region, path + (tree,))
            if found:
                return found
        return None

    paths = {}
    for region in (r0, r1):
        for tree in model.trees:
            found = locate(tree, region, ())
            if found:
                paths[region] = found
                break
    if r0 not in paths or r1 not in paths:
        return None
    path0, path1 = paths[r0], paths[r1]
    if path0[-1] is path1[-1]:
        return Relation.ALIAS
    if len(path0) < len(path1) and path1[: len(path0)] == path0:
        return Relation.ENCLOSES  # r1 is below r0's node
    if len(path1) < len(path0) and path0[: len(path1)] == path1:
        return Relation.ENCLOSED
    return Relation.SEPARATE


# -- concrete satisfaction (Definition 3.9) ------------------------------------------

def _region_bytes(region: Region, env: EvalEnv) -> set[int]:
    addr = evaluate(region.addr, env)
    return set(range(addr, addr + region.size))


def tree_holds(tree: MemTree, env: EvalEnv) -> bool:
    try:
        spans = [_region_bytes(region, env) for region in tree.regions]
    except EvalError:
        return False
    first = spans[0]
    if any(span != first for span in spans[1:]):
        return False
    for child in tree.children:
        try:
            child_span = _region_bytes(
                min(child.regions, key=str), env
            )
        except EvalError:
            return False
        if not child_span <= first:
            return False
        if not tree_holds(child, env):
            return False
    # Sibling children must be pairwise separate.
    return forest_separate(tree.children, env)


def forest_separate(trees, env: EvalEnv) -> bool:
    spans = []
    for tree in trees:
        try:
            spans.append(_region_bytes(tree.representative(), env))
        except EvalError:
            return False
    for i, left in enumerate(spans):
        for right in spans[i + 1:]:
            if left & right:
                return False
    return True


def model_holds(model: MemModel, env: EvalEnv) -> bool:
    """``s ⊢ M`` (Definition 3.9); destroyed regions impose nothing."""
    if not forest_separate(model.trees, env):
        return False
    return all(tree_holds(tree, env) for tree in model.trees)


# -- join (Definition 3.12) -----------------------------------------------------------

def join_models(m0: MemModel, m1: MemModel,
                parent: Region | None = None) -> MemModel:
    """Partition trees by shared top-level regions (the paper's ``C⁺``
    equivalence); per class, intersect the region sets and join the child
    forests.  A class represented on only one side is dropped: the join is
    a *disjunction*, and the other side's states support no claim about
    those regions.  *parent* is set when joining a node's child forests:
    one-sided children survive only with provable enclosure in it."""
    distinct = list(m0.trees | m1.trees)
    classes: list[list[MemTree]] = []
    for tree in sorted(distinct, key=str):
        touching = [
            members for members in classes
            if any(member.regions & tree.regions for member in members)
        ]
        merged = [tree]
        for members in touching:
            merged += members
            classes.remove(members)
        classes.append(merged)

    joined = set()
    one_sided: list[MemTree] = []
    for members in classes:
        in0 = [t for t in members if t in m0.trees]
        in1 = [t for t in members if t in m1.trees]
        if not in0 or not in1:
            one_sided += members
            continue
        common = frozenset.intersection(*(t.regions for t in members))
        if not common:
            continue
        # Within one side, grouped trees all hold conjunctively, so their
        # children pool; across sides, children forests are joined.
        children0 = frozenset().union(*(t.children for t in in0))
        children1 = frozenset().union(*(t.children for t in in1))
        child_join = join_models(
            MemModel(children0), MemModel(children1),
            parent=min(common, key=str),
        )
        joined.add(MemTree(common, child_join.trees))

    # A tree known on one side only survives the (disjunctive) join exactly
    # when its relations are *necessary* — provable in every state, hence in
    # the other side's states too (this is what makes Example 3.13 work).
    # "Necessary" shows up as a deterministic, destruction-free insertion.
    forest = _sorted(joined)
    for tree in _sorted(one_sided):
        if not _tree_necessary(tree):
            continue
        if parent is not None and decide_relation(
            tree.representative(), parent
        ).relation is not Relation.ENCLOSED:
            # The enclosure in the (new) parent must itself be provable.
            continue
        outcomes = _ins_tree(tree, forest, NO_BOUNDS)
        if len(outcomes) == 1 and not outcomes[0][1]:
            forest = outcomes[0][0]
    return MemModel(frozenset(forest), m0.destroyed | m1.destroyed)


def _tree_necessary(tree: MemTree) -> bool:
    """All of the tree's internal claims are provable in every state."""
    regions = list(tree.regions)
    for i, left in enumerate(regions):
        for right in regions[i + 1:]:
            if decide_relation(left, right).relation is not Relation.ALIAS:
                return False
    reps = [child.representative() for child in tree.children]
    rep = tree.representative()
    for child_rep in reps:
        if decide_relation(child_rep, rep).relation is not Relation.ENCLOSED:
            return False
    for i, left in enumerate(reps):
        for right in reps[i + 1:]:
            if decide_relation(left, right).relation is not Relation.SEPARATE:
                return False
    return all(_tree_necessary(child) for child in tree.children)
