"""x86-64 instruction subset: registers, operands, encoder, decoder, assembler."""

from repro.isa.assembler import Assembler, AssemblyError, LabelRef, abs32, abs64
from repro.isa.decode import DecodeError, decode
from repro.isa.encode import EncodeError, encode, encoded_size
from repro.isa.instruction import (
    CONDITION_CODES,
    Instruction,
    condition_of,
    insn,
    normalize_mnemonic,
)
from repro.isa.operands import Imm, Mem, Operand, Reg
from repro.isa import registers

__all__ = [
    "Assembler", "AssemblyError", "LabelRef", "abs32", "abs64",
    "DecodeError", "decode", "EncodeError", "encode", "encoded_size",
    "CONDITION_CODES", "Instruction", "condition_of", "insn",
    "normalize_mnemonic", "Imm", "Mem", "Operand", "Reg", "registers",
]
