"""Loop-aware scheduling: SCC ranks, loop heads, and the join A/B.

The schedule must (a) rank SCCs topologically with every loop exit
strictly after its loop, (b) change *nothing* about lift outcomes —
address order and SCC order reach the same fixpoint — and (c) actually
save work on layouts where address order is pessimal: a jump-over loop
(body placed after the exit block) re-joins the exit region once per
iteration under address order, and drains the loop first under SCC order.
"""

from __future__ import annotations

import pytest

from repro.elf import BinaryBuilder
from repro.hoare.cfg import build_cfg
from repro.hoare.lifter import lift
from repro.hoare.schedule import build_schedule
from repro.isa import Imm
from repro.perf.counters import counters
from repro.qa.targets import build_target, target_names


def jump_over_loop_nest() -> "Binary":
    """A two-level counted loop whose exit block sits *below* the bodies.

    Address order pops the low-address ``done`` block eagerly on every
    iteration; SCC order holds it back until both loops reach fixpoint.
    """
    builder = BinaryBuilder("jump_over_nest")
    t = builder.text
    t.label("main")
    t.emit("mov", "rax", Imm(0, 32))
    t.emit("mov", "rcx", Imm(3, 32))
    t.emit("jmp", "outer_head")
    t.label("done")                    # exit continuation, lowest address
    t.emit("ret")
    t.label("outer_head")
    t.emit("cmp", "rcx", Imm(0, 32))
    t.emit("je", "done")
    t.emit("mov", "rdx", Imm(3, 32))
    t.emit("jmp", "inner_head")
    t.label("outer_next")
    t.emit("sub", "rcx", Imm(1, 32))
    t.emit("jmp", "outer_head")
    t.label("inner_head")
    t.emit("cmp", "rdx", Imm(0, 32))
    t.emit("je", "outer_next")
    t.emit("add", "rax", "rdx")
    t.emit("sub", "rdx", Imm(1, 32))
    t.emit("jmp", "inner_head")
    return builder.build(entry="main")


# -- rank structure ---------------------------------------------------------

def test_acyclic_targets_have_no_loops_and_topological_ranks():
    for name in ("branch", "guard"):
        binary = build_target(name)
        schedule = build_schedule(binary, binary.entry)
        assert schedule.loops == 0, name
        assert not schedule.loop_heads, name
        # Every static edge that leaves an SCC must increase the rank.
        for src, dsts in schedule.successors.items():
            for dst in dsts:
                assert schedule.ranks[dst] >= schedule.ranks[src], name


def test_loop_target_ranks_the_exit_after_the_loop():
    binary = build_target("loop")
    schedule = build_schedule(binary, binary.entry)
    assert schedule.loops == 1
    assert schedule.loop_heads
    head = min(schedule.loop_heads)
    loop_rank = schedule.ranks[head]
    assert schedule.is_loop_member(head)
    # Edges leaving the loop SCC land on strictly higher ranks.
    exits = [
        dst
        for src, dsts in schedule.successors.items()
        if schedule.ranks.get(src) == loop_rank
        for dst in dsts
        if schedule.ranks.get(dst) != loop_rank
    ]
    assert exits
    assert all(schedule.ranks[dst] > loop_rank for dst in exits)
    # Loop heads pop before same-rank non-heads; unknown addresses last.
    assert schedule.priority(head) < schedule.priority(head + 1)
    assert schedule.priority(0xDEAD_0000) == (schedule.default_rank, 1,
                                              0xDEAD_0000)


def test_jump_over_nest_ranks_exit_after_both_loops():
    binary = jump_over_loop_nest()
    schedule = build_schedule(binary, binary.entry)
    assert schedule.loops >= 1
    ret_addr = max(schedule.ranks)  # highest address is the inner jmp...
    # Find the ret: the one statically-terminal address below outer_head.
    terminals = [a for a, succs in schedule.successors.items() if not succs]
    assert len(terminals) == 1
    (done,) = terminals
    loop_ranks = {schedule.ranks[a] for a in schedule.ranks
                  if schedule.is_loop_member(a)}
    assert loop_ranks
    assert all(schedule.ranks[done] > rank for rank in loop_ranks)
    assert ret_addr is not None  # silence the unused hint


def test_build_schedule_is_deterministic():
    binary = build_target("loop")
    first = build_schedule(binary, binary.entry)
    second = build_schedule(binary, binary.entry)
    assert first.ranks == second.ranks
    assert first.loop_heads == second.loop_heads
    assert first.successors == second.successors


# -- outcome identity and join savings --------------------------------------

def _lift_fingerprint(result) -> tuple:
    return (
        result.verified,
        sorted(error.kind for error in result.errors),
        len(result.graph.vertices),
        len(result.graph.edges),
        sorted(result.instructions),
        result.stats.instructions,
    )


@pytest.mark.parametrize("name", target_names())
def test_schedules_agree_on_every_qa_target(name):
    binary = build_target(name)
    by_address = lift(binary, cache=False, schedule="address")
    by_scc = lift(binary, cache=False, schedule="scc")
    # Verdict and error kinds must always agree.  Full graph content is
    # only comparable for accepted lifts: a rejection aborts exploration,
    # so the partial remainder depends on the bag order.
    assert by_address.verified == by_scc.verified
    assert (sorted(e.kind for e in by_address.errors)
            == sorted(e.kind for e in by_scc.errors))
    if by_scc.verified:
        assert _lift_fingerprint(by_address) == _lift_fingerprint(by_scc)


def symbolic_jump_over_loop() -> "Binary":
    """A count-up loop with a symbolic bound and its exit laid out *below*.

    ``rcx`` counts 0,1,2,… against unconstrained ``rdi``, so the head's
    interval hull grows for many join rounds and a fresh state escapes to
    the low-address ``done`` block on every round.  Under address order
    each stale escape re-joins (and re-explores) the exit region; under
    SCC order the loop drains first and the newest escape — carrying the
    fixpoint hull — reaches ``done`` before its stale siblings, which
    then join as no-ops.  (A concrete trip count would hide the effect:
    the exit branch stays provably infeasible until the last iteration.)
    """
    builder = BinaryBuilder("jump_over_symbolic")
    t = builder.text
    t.label("main")
    t.emit("mov", "rax", Imm(0, 32))
    t.emit("mov", "rcx", Imm(0, 32))
    t.emit("jmp", "head")
    t.label("done")                    # exit region, lowest addresses
    t.emit("add", "rax", Imm(1, 32))
    t.emit("add", "rax", "rcx")
    t.emit("ret")
    t.label("head")
    t.emit("cmp", "rcx", "rdi")
    t.emit("jge", "done")
    t.emit("add", "rax", "rcx")
    t.emit("add", "rcx", Imm(1, 32))
    t.emit("jmp", "head")
    return builder.build(entry="main")


def test_scc_order_saves_joins_on_the_jump_over_loop():
    binary = symbolic_jump_over_loop()
    joins = {}
    results = {}
    for mode in ("address", "scc"):
        counters.reset()
        results[mode] = lift(binary, cache=False, schedule=mode)
        joins[mode] = counters.lift_joins
    assert results["scc"].verified
    assert results["address"].verified
    assert (_lift_fingerprint(results["address"])
            == _lift_fingerprint(results["scc"]))
    assert joins["scc"] < joins["address"], joins


# -- satellite: deterministic CFG flood fill --------------------------------

def test_cfg_function_partition_is_deterministic():
    binary = build_target("branch")
    result = lift(binary, cache=False)
    first = build_cfg(result)
    second = build_cfg(result)
    assert first.functions == second.functions
    assert set(first.functions) == {result.entry}
    # Every block is reachable from the entry in the partition.
    assert set(first.blocks) == first.functions[result.entry]
