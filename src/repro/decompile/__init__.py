"""Decompilation to pseudo-C from the verified Hoare graph (Section 7)."""

from repro.decompile.lifted_c import decompile

__all__ = ["decompile"]
