"""Forward reaching definitions over register families.

A fact is a set of ``(family, site)`` pairs; ``site`` is the defining
instruction's address, or :data:`ENTRY` for the value the function was
entered with.  Calls define the caller-saved set (their sites point at the
call), so values produced by callees are never confused with entry values.
"""

from __future__ import annotations

from repro.isa import Instruction
from repro.isa.registers import CALLER_SAVED, GPR64
from repro.analysis.cfgview import FunctionView
from repro.analysis.context import AnalysisContext
from repro.analysis.engine import Dataflow, Solution, solve

#: Definition site of values live-in at function entry.
ENTRY = "entry"

Def = tuple[str, object]            # (family, site: int | ENTRY)

ENTRY_DEFS = frozenset((family, ENTRY) for family in GPR64)


def instr_reg_defs(ctx: AnalysisContext, instr: Instruction) -> frozenset[str]:
    """Register families *instr* defines, with the ABI overlay for calls."""
    defs = set(ctx.def_use(instr).defs)
    if instr.mnemonic == "call":
        defs |= set(CALLER_SAVED)
    return frozenset(defs)


def reaching_problem(ctx: AnalysisContext) -> Dataflow:
    def transfer(instr: Instruction, reach: frozenset[Def]) -> frozenset[Def]:
        defs = instr_reg_defs(ctx, instr)
        if not defs:
            return reach
        site = instr.addr
        kept = frozenset(d for d in reach if d[0] not in defs)
        return kept | frozenset((family, site) for family in defs)

    return Dataflow(
        direction="forward",
        boundary=ENTRY_DEFS,
        bottom=frozenset(),
        join=lambda a, b: a | b,
        transfer=transfer,
    )


def solve_reaching(ctx: AnalysisContext, view: FunctionView) -> Solution:
    return solve(view, reaching_problem(ctx))


def reaching_before(
    ctx: AnalysisContext, view: FunctionView, solution: Solution | None = None
) -> dict[int, frozenset[Def]]:
    """Instruction address -> definitions reaching it."""
    if solution is None:
        solution = solve_reaching(ctx, view)
    problem = reaching_problem(ctx)
    out: dict[int, frozenset[Def]] = {}
    for leader in view.blocks:
        for instr, value in solution.before_each(view, problem, leader):
            if instr.addr is not None:
                out[instr.addr] = value
    return out
