"""Symbolic memory access: reads and writes routed through the memory model.

Writes record ``*[a, n] == value`` valuation clauses in the predicate and
drop every clause the write may invalidate, as directed by the memory
model's (possibly forked) relations.  Reads consult, in order: the
valuation clauses, the destroyed set, and finally *initial* memory — binary
sections for constant addresses, ``Deref`` terms for epoch-0 symbolic
addresses, epoch-tagged unknowns after an external call has havocked
memory.

Every imprecision degrades to a fresh havoc variable, never to a wrong
value: that is the overapproximation contract.
"""

from __future__ import annotations

from repro.elf import Binary
from repro.expr import Const, Deref, Expr, Var, simplify as s
from repro.memmodel import MemModel, relation_in_model
from repro.pred import Predicate
from repro.smt.linear import difference, linearize
from repro.smt.solver import (
    Region,
    Relation,
    decide_relation,
    is_stack_pointer,
)
from repro.semantics.state import LiftContext, SymState


def _relation(
    state: SymState, r0: Region, r1: Region
) -> Relation | None:
    """Relation per the model's structure, falling back to the solver."""
    relation = relation_in_model(state.model, r0, r1)
    if relation is not None:
        return relation
    return decide_relation(r0, r1, state.pred).relation


def _overlaps_destroyed(state: SymState, region: Region) -> bool:
    return any(
        decide_relation(region, other, state.pred).relation
        is not Relation.SEPARATE
        for other in state.model.destroyed
    )


def read_region(state: SymState, region: Region, ctx: LiftContext) -> Expr:
    """The symbolic value of ``*[region]`` in *state* (always succeeds;
    unknown contents become fresh variables)."""
    width = region.size * 8
    if _overlaps_destroyed(state, region):
        return ctx.names.fresh("havoc", width)

    for key, value in state.pred.mem:
        relation = _relation(state, region, key)
        if relation is Relation.SEPARATE:
            continue
        if relation is Relation.ALIAS:
            return s.low(value, width) if value.width > width else value
        if relation is Relation.ENCLOSED:
            offset = difference(region.addr, key.addr)
            if offset.is_const and offset.const + region.size <= key.size:
                shifted = s.shr(value, Const(8 * offset.const), key.size * 8)
                return s.low(shifted, width)
            return ctx.names.fresh("havoc", width)
        # ENCLOSES or unknown: the tracked value only partially covers us.
        return ctx.names.fresh("havoc", width)

    return _initial_read(state, region, ctx)


def _initial_read(state: SymState, region: Region, ctx: LiftContext) -> Expr:
    """Read memory never (visibly) written by the lifted code."""
    width = region.size * 8
    linear = linearize(region.addr)
    if linear.is_const:
        addr = linear.const
        binary = ctx.binary
        section = binary.section_at(addr)
        in_section = section is not None and addr + region.size <= section.end
        if in_section and not section.writable:
            return Const(
                int.from_bytes(binary.read(addr, region.size), "little"), width
            )
        if (
            in_section
            and section.writable
            and ctx.trust_data
            and state.epoch == 0
        ):
            return Const(
                int.from_bytes(binary.read(addr, region.size), "little"), width
            )
        if state.epoch > 0:
            # Globals were havocked by an opaque call: unknown value.
            return ctx.names.fresh("mem", width)
        return Deref(region.addr, region.size)
    if is_stack_pointer(region.addr) or state.epoch == 0:
        # The local frame survives external calls (calling convention);
        # any epoch-0 address still denotes initial memory.
        return Deref(region.addr, region.size)
    return ctx.names.fresh("mem", width)


def write_region(
    state: SymState, region: Region, value: Expr, ctx: LiftContext
) -> Predicate:
    """Predicate after storing *value* at *region*.

    Valuation clauses the write may touch are dropped; an aliasing clause is
    replaced.  The memory model is expected to already contain *region*
    (step Σ inserts operand regions before calling τ)."""
    new_mem: dict[Region, Expr] = {}
    for key, old in state.pred.mem:
        relation = _relation(state, region, key)
        if relation is Relation.SEPARATE:
            new_mem[key] = old
        # ALIAS is replaced below; ENCLOSED/ENCLOSES/unknown clobber the
        # clause (a precise byte-merge would also be sound, but clobbering
        # is simpler and only loses precision).
    width = region.size * 8
    if value.width > width:
        value = s.low(value, width)
    new_mem[region] = value
    return state.pred.with_mem(new_mem)


def havoc_non_stack(state: SymState, ctx: LiftContext, keep=None,
                    epoch: int = 1) -> SymState:
    """External-call cleaning (Section 4.2.1): keep only local-stack-frame
    clauses and model trees; everything else (heap, globals) is destroyed.

    *keep* optionally admits additional non-stack regions (``keep(region)
    -> bool``): the pointer-summary feedback passes the callee's
    disjointness test here so clauses a callee provably cannot write
    survive the cleaning.  *epoch* is the post-call taint value — 1 by
    default; a caller may pass ``state.epoch`` when the callee provably
    writes no non-local memory at all."""
    kept_mem = {
        key: value
        for key, value in state.pred.mem
        if is_stack_pointer(key.addr) or (keep is not None and keep(key))
    }
    kept_trees = frozenset(
        tree for tree in state.model.trees
        if all(
            is_stack_pointer(r.addr) or (keep is not None and keep(r))
            for r in tree.all_regions()
        )
    )
    pred = state.pred.with_mem(kept_mem)
    model = MemModel(kept_trees, state.model.destroyed)
    # epoch is a taint bit ("globals are no longer initial"), not a counter:
    # a counter would ascend at every call inside a loop and block the
    # join fixpoint.  It must never decrease.
    return SymState(
        pred=pred, model=model, epoch=max(epoch, state.epoch),
        reachable=state.reachable,
    )
