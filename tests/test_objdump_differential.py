"""Differential test: our encoder against the system binutils disassembler.

If ``objdump`` is available, assemble a representative instruction set into
an ELF, disassemble it with objdump, and compare mnemonic + operand shape
instruction by instruction.  This pins our encoder to the real toolchain's
reading of the bytes.
"""

from __future__ import annotations

import re
import shutil
import subprocess

import pytest

from repro.elf import BinaryBuilder, save_binary
from repro.isa import Imm, Mem, insn

objdump = shutil.which("objdump")
pytestmark = pytest.mark.skipif(objdump is None, reason="objdump not found")

#: (our instruction, objdump mnemonic, operand substrings expected in order)
CASES = [
    (insn("push", "rbp"), "push", ["rbp"]),
    (insn("mov", "rbp", "rsp"), "mov", ["rbp", "rsp"]),
    (insn("sub", "rsp", Imm(0x20, 32)), "sub", ["rsp", "0x20"]),
    (insn("mov", "eax", Imm(42, 32)), "mov", ["eax", "0x2a"]),
    (insn("movabs", "rax", Imm(0x1122334455667788, 64)), "movabs",
     ["rax", "0x1122334455667788"]),
    (insn("mov", Mem(64, base="rbp", disp=-8), "rdi"), "mov",
     ["rbp", "0x8", "rdi"]),
    (insn("mov", "rax", Mem(64, base="rsp", index="rcx", scale=8, disp=16)),
     "mov", ["rax", "rsp", "rcx", "8"]),
    (insn("lea", "rax", Mem(64, base="rip", disp=0x100)), "lea", ["rax", "rip"]),
    (insn("cmp", "eax", Imm(0xC3, 32)), "cmp", ["eax", "0xc3"]),
    (insn("imul", "rax", "rdi"), "imul", ["rax", "rdi"]),
    (insn("imul", "rax", "rbx", Imm(24, 32)), "imul", ["rax", "rbx", "0x18"]),
    (insn("shl", "rax", Imm(4, 8)), "shl", ["rax", "0x4"]),
    (insn("sar", "rcx", Imm(1, 8)), "sar", ["rcx"]),
    (insn("shr", "rdx", "cl"), "shr", ["rdx", "cl"]),
    (insn("test", "rdi", "rdi"), "test", ["rdi", "rdi"]),
    (insn("movzx", "eax", "al"), "movzx", ["eax", "al"]),
    (insn("movsx", "rax", "cl"), "movsx", ["rax", "cl"]),
    (insn("movsxd", "rax", "edi"), "movsxd", ["rax", "edi"]),
    (insn("cqo"), "cqo", []),
    (insn("idiv", "rsi"), "idiv", ["rsi"]),
    (insn("neg", "rax"), "neg", ["rax"]),
    (insn("not", "rcx"), "not", ["rcx"]),
    (insn("inc", "r10"), "inc", ["r10"]),
    (insn("dec", Mem(64, base="rax")), "dec", ["rax"]),
    (insn("xchg", "rbx", "rcx"), "xchg", ["rbx", "rcx"]),
    (insn("sete", "al"), "sete", ["al"]),
    (insn("cmovne", "rax", "rbx"), "cmovne", ["rax", "rbx"]),
    (insn("call", "r10"), "call", ["r10"]),
    (insn("jmp", Mem(64, base="rdi")), "jmp", ["rdi"]),
    (insn("push", Imm(0x1000, 32)), "push", ["0x1000"]),
    (insn("pop", "r12"), "pop", ["r12"]),
    (insn("leave"), "leave", []),
    (insn("ret"), "ret", []),
    (insn("nop"), "nop", []),
    (insn("ud2"), "ud2", []),
    (insn("syscall"), "syscall", []),
]


@pytest.fixture(scope="module")
def objdump_lines(tmp_path_factory):
    builder = BinaryBuilder("differential")
    builder.text.label("main")
    for instruction, _, _ in CASES:
        builder.text.emit(instruction.mnemonic, *instruction.operands)
    binary = builder.build(entry="main")
    path = tmp_path_factory.mktemp("objdump") / "differential.elf"
    save_binary(binary, str(path))
    output = subprocess.run(
        [objdump, "-d", "-M", "intel", str(path)],
        capture_output=True, text=True, check=True,
    ).stdout
    lines = []
    for line in output.splitlines():
        # Skip byte-only continuation lines (long encodings wrap); a real
        # disassembly line ends with a mnemonic that has letters beyond the
        # hex alphabet or known all-hex mnemonics followed by operands.
        match = re.match(
            r"\s*[0-9a-f]+:\s+(?:[0-9a-f]{2} )+\s*([a-z][a-z0-9]*\s*.*)$", line
        )
        if match:
            text = match.group(1).strip()
            if re.fullmatch(r"(?:[0-9a-f]{2}(?: |$))+", text):
                continue  # pure bytes, wrapped encoding
            lines.append(text)
    return lines


def test_objdump_agrees_on_instruction_count(objdump_lines):
    assert len(objdump_lines) == len(CASES), objdump_lines


@pytest.mark.parametrize("index", range(len(CASES)))
def test_objdump_agrees_per_instruction(objdump_lines, index):
    if len(objdump_lines) != len(CASES):
        pytest.skip("count mismatch reported separately")
    _, mnemonic, operand_bits = CASES[index]
    line = objdump_lines[index]
    got_mnemonic = line.split()[0]
    assert got_mnemonic == mnemonic, f"{line!r}"
    rest = line[len(got_mnemonic):]
    position = 0
    for bit in operand_bits:
        found = rest.find(bit, position)
        assert found >= 0, f"{bit!r} not in {line!r} after pos {position}"
        position = found + len(bit)
