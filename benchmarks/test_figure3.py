"""Benchmark: regenerate Figure 3 (verification time vs instruction count).

Shape claim: the paper observes "very little correlation between
verification times and instruction count" — time is driven by state-space
structure (joins, forks), not code size.  We assert the Pearson
correlation over the lifted library functions stays well below a strong
correlation, and that the most expensive function is *not* the largest.
"""

from __future__ import annotations

import pytest

from repro.eval import figure3_data, pearson
from repro.eval.figure3 import format_figure3


def test_figure3_benchmark(benchmark, corpus_report):
    data = benchmark.pedantic(
        lambda: figure3_data(corpus_report), rounds=1, iterations=1
    )
    print()
    print(format_figure3(data))
    assert len(data.points) > 50


def test_low_size_time_correlation(corpus_report):
    data = figure3_data(corpus_report)
    assert abs(data.pearson_r) < 0.8, (
        f"size/time correlation unexpectedly strong: r={data.pearson_r:.3f}"
    )


def test_slowest_function_is_not_the_largest(corpus_report):
    points = figure3_data(corpus_report).points
    slowest = max(points, key=lambda p: p[1])
    largest = max(points, key=lambda p: p[0])
    assert slowest != largest or len(points) < 3


def test_pearson_helper():
    assert pearson([(1, 1.0), (2, 2.0), (3, 3.0)]) == pytest.approx(1.0)
    assert pearson([(1, 3.0), (2, 2.0), (3, 1.0)]) == pytest.approx(-1.0)
    assert pearson([(1, 1.0)]) == 0.0
