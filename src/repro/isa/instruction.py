"""Instruction representation and the mnemonic tables of the supported subset."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.operands import Imm, Mem, Operand, Reg

#: Condition codes in hardware encoding order (the +cc opcode offset).
CONDITION_CODES = (
    "o", "no", "b", "ae", "e", "ne", "be", "a",
    "s", "ns", "p", "np", "l", "ge", "le", "g",
)

#: Synonyms accepted by the assembler, normalized to CONDITION_CODES entries.
CC_ALIASES = {
    "c": "b", "nae": "b", "nc": "ae", "nb": "ae", "z": "e", "nz": "ne",
    "na": "be", "nbe": "a", "pe": "p", "po": "np", "nge": "l", "nl": "ge",
    "ng": "le", "nle": "g",
}

#: ALU family: mnemonic -> /digit (also the opcode-row index).
ALU_OPS = {"add": 0, "or": 1, "adc": 2, "sbb": 3, "and": 4, "sub": 5, "xor": 6, "cmp": 7}

#: Shift family: mnemonic -> /digit of the C0/C1/D2/D3 group.
SHIFT_OPS = {"rol": 0, "ror": 1, "shl": 4, "shr": 5, "sar": 7}

#: Unary F6/F7 group: mnemonic -> /digit.
UNARY_OPS = {"not": 2, "neg": 3, "mul": 4, "imul1": 5, "div": 6, "idiv": 7}

#: Mnemonics with no operands.
NULLARY = {"ret", "leave", "nop", "hlt", "ud2", "int3", "cdq", "cqo", "syscall", "cdqe"}

#: String operations (operands implicit in rsi/rdi/rcx); the ``rep_``
#: variants repeat rcx times.
STRING_OPS = {
    "movsb", "movsq", "stosb", "stosq", "lodsb", "lodsq",
    "rep_movsb", "rep_movsq", "rep_stosb", "rep_stosq",
}

#: All mnemonics understood by the encoder/decoder/semantics.  ``jcc``,
#: ``setcc`` and ``cmovcc`` expand over CONDITION_CODES.
MNEMONICS = (
    frozenset(ALU_OPS) | frozenset(SHIFT_OPS) | NULLARY | STRING_OPS
    | {"mov", "movabs", "lea", "push", "pop", "test", "xchg", "inc", "dec",
       "not", "neg", "mul", "div", "idiv", "imul",
       "movzx", "movsx", "movsxd", "jmp", "call"}
    | {f"j{cc}" for cc in CONDITION_CODES}
    | {f"set{cc}" for cc in CONDITION_CODES}
    | {f"cmov{cc}" for cc in CONDITION_CODES}
)


def normalize_mnemonic(mnemonic: str) -> str:
    """Normalize aliases (``jz``→``je``, ``movabs``→``mov`` is *not* folded)."""
    mnemonic = mnemonic.lower()
    for prefix in ("j", "set", "cmov"):
        if mnemonic.startswith(prefix):
            cc = mnemonic[len(prefix):]
            if cc in CC_ALIASES:
                return prefix + CC_ALIASES[cc]
    return mnemonic


def condition_of(mnemonic: str) -> str | None:
    """The condition code of a jcc/setcc/cmovcc mnemonic, else None."""
    for prefix in ("cmov", "set", "j"):
        if mnemonic.startswith(prefix) and mnemonic[len(prefix):] in CONDITION_CODES:
            return mnemonic[len(prefix):]
    return None


@dataclass(frozen=True)
class Instruction:
    """One decoded (or to-be-encoded) instruction.

    *addr* and *size* are filled in by the decoder; *size* lets clients
    compute the fall-through address ``addr + size``.
    """

    mnemonic: str
    operands: tuple[Operand, ...] = ()
    addr: int | None = None
    size: int | None = None

    @property
    def end(self) -> int:
        """Address of the next sequential instruction."""
        if self.addr is None or self.size is None:
            raise ValueError("instruction has no address/size")
        return self.addr + self.size

    def at(self, addr: int, size: int) -> "Instruction":
        """A copy of this instruction pinned to an address and byte size."""
        return Instruction(self.mnemonic, self.operands, addr, size)

    def is_control_flow(self) -> bool:
        if self.mnemonic in ("jmp", "call", "ret", "hlt", "ud2", "int3", "syscall"):
            return True
        return self.mnemonic.startswith("j") and condition_of(self.mnemonic) is not None

    def __str__(self) -> str:
        ops = ", ".join(str(op) for op in self.operands)
        text = f"{self.mnemonic} {ops}" if ops else self.mnemonic
        if self.addr is not None:
            return f"{self.addr:#x}: {text}"
        return text


def insn(mnemonic: str, *operands: Operand | int | str) -> Instruction:
    """Convenience constructor: strings become registers, ints become Imm32.

    >>> insn("mov", "rax", 5)
    Instruction(mnemonic='mov', operands=(Reg(name='rax'), Imm(value=5, width=32)), ...)
    """
    converted: list[Operand] = []
    for op in operands:
        if isinstance(op, str):
            converted.append(Reg(op))
        elif isinstance(op, int):
            converted.append(Imm(op, 32))
        else:
            converted.append(op)
    return Instruction(normalize_mnemonic(mnemonic), tuple(converted))
