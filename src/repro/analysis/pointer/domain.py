"""The abstract pointer domain: symbolic regions and region sets.

A pointer value is abstracted to a finite set of *regions* in the style of
Verbeek et al.'s binary-level pointer analysis (arXiv 2501.17766): every
concrete address either lies in a named global section, in the stack frame
of some activation (offsets relative to that function's entry ``RSP0``),
in a heap block identified by its allocation site, or is unknown.  The
regions are *designated*: distinct kinds are separate by construction
(the same separation axioms the SMT layer assumes — stack/global and
heap/global separation), which is what lets a call-site summary justify
keeping a caller's global clauses across a call.

Intervals on :class:`Global` and :class:`StackFrame` are inclusive
*pointer-value* ranges; a :class:`Span` pairs a region with an access size
to describe a byte footprint ``[lo, hi + size)``.

``frozenset`` region sets join by union; :data:`UNKNOWN` is absorbing.
Everything here is immutable and hashable so the worklist engine's
``==``-based convergence test works structurally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.elf import Binary
from repro.smt.linear import linearize

#: Interval hulls wider than this collapse to :data:`UNKNOWN` (a pointer
#: "somewhere in a 64 KiB window" predicts nothing useful).
MAX_INTERVAL = 1 << 16

#: Region sets larger than this collapse to :data:`UNKNOWN_VAL`.
MAX_REGIONS = 8

_MASK64 = (1 << 64) - 1


def _signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >> 63 else value


@dataclass(frozen=True)
class Global:
    """A pointer into section *section*, value within ``[lo, hi]``."""

    section: str
    lo: int
    hi: int

    def __str__(self) -> str:
        if self.lo == self.hi:
            return f"Global({self.section}@{self.lo:#x})"
        return f"Global({self.section}@[{self.lo:#x},{self.hi:#x}])"


@dataclass(frozen=True)
class StackFrame:
    """A pointer into the frame of function *fn*: ``RSP0 + [lo, hi]``."""

    fn: int
    lo: int
    hi: int

    def __str__(self) -> str:
        if self.lo == self.hi:
            return f"Stack(sub_{self.fn:x}{self.lo:+#x})"
        return f"Stack(sub_{self.fn:x}[{self.lo:+#x},{self.hi:+#x}])"


@dataclass(frozen=True)
class Heap:
    """A pointer into a block allocated at call site *site* (None: any)."""

    site: int | None = None

    def __str__(self) -> str:
        return "Heap(*)" if self.site is None else f"Heap(@{self.site:#x})"


@dataclass(frozen=True)
class Unknown:
    """The top region: may point anywhere."""

    def __str__(self) -> str:
        return "Unknown"


Region = Global | StackFrame | Heap | Unknown

UNKNOWN = Unknown()

#: A pointer value: a set of regions the pointer may lie in.
PtrVal = frozenset

UNKNOWN_VAL: PtrVal = frozenset({UNKNOWN})


def is_unknown_val(val: PtrVal) -> bool:
    return UNKNOWN in val


def shift_val(val: PtrVal, offset: int) -> PtrVal:
    """The value of ``p + offset`` given the value of ``p``."""
    if offset == 0:
        return val
    offset = _signed(offset)
    out = set()
    for region in val:
        if isinstance(region, Global):
            out.add(Global(region.section, region.lo + offset,
                           region.hi + offset))
        elif isinstance(region, StackFrame):
            out.add(StackFrame(region.fn, region.lo + offset,
                               region.hi + offset))
        else:
            # Heap offsets stay within the (site-identified) block as far
            # as the domain can tell; Unknown absorbs everything.
            out.add(region)
    return frozenset(out)


def _region_key(region: Region):
    if isinstance(region, Global):
        return ("global", region.section)
    if isinstance(region, StackFrame):
        return ("stack", region.fn)
    if isinstance(region, Heap):
        return ("heap", region.site)
    return ("unknown",)


def _hull(a: Region, b: Region) -> Region:
    """Interval hull of two same-key regions."""
    if isinstance(a, (Global, StackFrame)):
        lo, hi = min(a.lo, b.lo), max(a.hi, b.hi)
        if hi - lo > MAX_INTERVAL:
            return UNKNOWN
        if isinstance(a, Global):
            return Global(a.section, lo, hi)
        return StackFrame(a.fn, lo, hi)
    return a


def join_vals(a: PtrVal, b: PtrVal) -> PtrVal:
    """Union, merging same-key intervals by hull; Unknown is absorbing."""
    if a == b:
        return a
    if is_unknown_val(a) or is_unknown_val(b):
        return UNKNOWN_VAL
    merged: dict = {}
    for region in (*a, *b):
        key = _region_key(region)
        prior = merged.get(key)
        merged[key] = region if prior is None else _hull(prior, region)
    if any(isinstance(r, Unknown) for r in merged.values()):
        return UNKNOWN_VAL
    if len(merged) > MAX_REGIONS:
        return UNKNOWN_VAL
    return frozenset(merged.values())


def _covered(region: Region, by: PtrVal) -> bool:
    """Is every concretization of *region* admitted by *by*?"""
    if is_unknown_val(by):
        return True
    for other in by:
        if _region_key(other) != _region_key(region):
            continue
        if isinstance(region, (Global, StackFrame)):
            if other.lo <= region.lo and region.hi <= other.hi:
                return True
        else:
            return True
    return False


def covers_val(old: PtrVal, new: PtrVal) -> bool:
    """``new ⊑ old``: every region of *new* is covered by *old*."""
    return all(_covered(region, old) for region in new)


def widen_vals(old: PtrVal, new: PtrVal) -> PtrVal:
    """Widening: any region still growing after the join threshold is
    pushed straight to :data:`UNKNOWN` (finite-height tail)."""
    joined = join_vals(old, new)
    if covers_val(old, joined):
        return old
    return UNKNOWN_VAL


#: Pseudo-section of :class:`Global` regions holding *absolute* constants
#: that lie in no binary section — scalars (loop indices, sizes) and raw
#: addresses alike.  Keeping the exact value lets the transfer fold scaled
#: constant index terms (``lea rcx, [rcx + rdx*8]`` with a known ``rdx``)
#: instead of degrading to Unknown.  Treating the value as an absolute
#: address when one is *used* as an address is exactly the solver's
#: stack/global separation axiom (a constant is never a stack pointer).
ABS_SECTION = "<abs>"


def classify_const(binary: Binary, value: int) -> PtrVal:
    """The region of a constant: a section pointer or an absolute value."""
    section = binary.section_at(value)
    if section is not None:
        return frozenset({Global(section.name, value, value)})
    return frozenset({Global(ABS_SECTION, value, value)})


def exact_const(val: PtrVal) -> int | None:
    """The single absolute value *val* denotes, if that is all it is."""
    if len(val) != 1:
        return None
    (region,) = val
    if isinstance(region, Global) and region.lo == region.hi:
        return region.lo
    return None


# -- byte footprints and call-site summaries ------------------------------------------


@dataclass(frozen=True)
class Span:
    """A byte footprint: every pointer value of *region*, *size* bytes."""

    region: Region
    size: int

    def __str__(self) -> str:
        return f"{self.region}×{self.size}"


def _const_clause_disjoint(addr: int, size: int, span: Span) -> bool:
    """Is the constant-address clause ``[addr, size]`` provably disjoint
    from *span*?  Relies on the designated-region separation axioms."""
    region = span.region
    if isinstance(region, Unknown):
        return False
    if isinstance(region, (StackFrame, Heap)):
        # Stack/global and heap/global separation: a constant address is a
        # binary-section pointer, never stack or heap.
        return True
    return addr + size <= region.lo or addr >= region.hi + span.size


@dataclass(frozen=True)
class Summary:
    """What one callee MAY do to memory its caller can observe.

    ``writes``/``reads`` hold *non-local* footprints — accesses to the
    callee's own frame are excluded (the calling convention, separately
    verified by the lifter's sanity properties, makes them invisible).
    :class:`StackFrame` spans are in *callee* ``RSP0`` coordinates and are
    translated by the caller's stack height at the call site.  ``escaped``
    are regions whose addresses flowed out of the callee's control
    (stored non-locally or passed onward).
    """

    writes: frozenset = frozenset()
    reads: frozenset = frozenset()
    escaped: frozenset = frozenset()
    top: bool = False

    @property
    def is_top(self) -> bool:
        return self.top

    @property
    def writes_nothing(self) -> bool:
        return not self.top and not self.writes

    @property
    def writes_unknown(self) -> bool:
        return self.top or any(
            isinstance(span.region, Unknown) for span in self.writes
        )

    def keeps(self, key) -> bool:
        """May the caller keep its clause for *key* (an SMT region with
        ``.addr``/``.size``) across this call?

        Used by :func:`repro.hoare.calls.after_call_state` to refine the
        cleaning havoc: a clause survives iff it is provably disjoint from
        every non-local write.  Stack clauses are handled by the caller
        (they are always kept, backed by the MUST-PRESERVE obligation).
        """
        if self.top:
            return False
        if not self.writes:
            return True
        linear = linearize(key.addr)
        if not linear.is_const:
            # A symbolic non-stack address (heap, argument pointer): we
            # cannot separate it from the callee's writes structurally.
            return False
        addr = linear.const
        return all(
            _const_clause_disjoint(addr, key.size, span)
            for span in self.writes
        )

    def __str__(self) -> str:
        if self.top:
            return "Summary(⊤)"
        parts = []
        if self.writes:
            parts.append("writes {" + ", ".join(
                sorted(str(s) for s in self.writes)) + "}")
        if self.reads:
            parts.append("reads {" + ", ".join(
                sorted(str(s) for s in self.reads)) + "}")
        if self.escaped:
            parts.append("escapes {" + ", ".join(
                sorted(str(r) for r in self.escaped)) + "}")
        return "Summary(" + ("; ".join(parts) if parts else "pure") + ")"


TOP_SUMMARY = Summary(
    writes=frozenset({Span(UNKNOWN, 0)}),
    reads=frozenset({Span(UNKNOWN, 0)}),
    escaped=frozenset({UNKNOWN}),
    top=True,
)
