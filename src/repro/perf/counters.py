"""Global hot-path performance counters.

The lifter's hot loops (expression interning, the canonical-sum memo, the
SMT verdict cache, state joins) increment plain integer slots on a single
module-level :data:`counters` object.  Increment sites are guarded by
``counters.enabled`` so a disabled counter set costs one attribute load and
a branch — cheap enough to leave in production code paths.

This module is intentionally dependency-free: every layer of the stack
imports it, so it must import nothing from :mod:`repro`.
"""

from __future__ import annotations


class PerfCounters:
    """A bag of integer counters for the lifter's hot paths."""

    _FIELDS = (
        "expr_new",              # interned expression nodes constructed
        "intern_hits",           # constructor calls served from the tables
        "solver_hits",           # SMT verdict cache hits
        "solver_misses",
        "join_shortcircuits",    # identity short-circuits in join_states
        "equal_shortcircuits",   # identity short-circuits in states_equal
        "lift_joins",            # vertex joins that actually changed a state
        "cache_lift_hits",       # persistent lift-store hits
        "cache_lift_misses",     # persistent lift-store misses
        "cache_lift_stores",     # persistent lift-store writes
        "pointer_summary_hits",  # call sites refined by a pointer summary
        "pointer_refined_havocs",  # cleaning havocs that kept extra clauses
        "pointer_top_summaries",   # functions degraded to the TOP summary
    )

    __slots__ = _FIELDS + ("enabled",)

    def __init__(self) -> None:
        self.enabled = True
        self.reset()

    def reset(self) -> None:
        """Zero every counter (does not touch ``enabled``)."""
        for name in self._FIELDS:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """A plain dict copy of the current counter values."""
        return {name: getattr(self, name) for name in self._FIELDS}

    @staticmethod
    def delta(before: dict[str, int], after: dict[str, int]) -> dict[str, int]:
        """Counter-wise ``after - before``."""
        return {name: after[name] - before.get(name, 0) for name in after}

    @staticmethod
    def merge(into: dict[str, int], other: dict[str, int]) -> dict[str, int]:
        """Counter-wise accumulate *other* into *into* (returns *into*)."""
        for name, value in other.items():
            into[name] = into.get(name, 0) + value
        return into


#: The process-global counter set.  Hot sites call ``gated("name")``.
counters = PerfCounters()


def gated(counter: str, n: int = 1) -> None:
    """Increment ``counters.<counter>`` by *n* iff counters are enabled.

    The shared guard idiom: one enabled check, then the increment.  At the
    measured site frequencies (~3.7M interning calls over a ~170s scale-3
    lift) the call overhead versus an inlined guard is <0.3% of lift time,
    so every increment site uses this helper instead of copy-pasting the
    ``if counters.enabled: counters.x += 1`` pattern.  Unknown counter
    names raise ``AttributeError`` (the counter set is slotted).
    """
    c = counters
    if c.enabled:
        setattr(c, counter, getattr(c, counter) + n)


def hit_rate(hits: int, misses: int) -> float:
    """``hits / (hits + misses)`` guarded against empty caches."""
    total = hits + misses
    return hits / total if total else 0.0
