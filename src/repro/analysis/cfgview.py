"""Per-function views over the verified CFG.

Dataflow analyses are function-local: a :class:`FunctionView` restricts the
CFG to one function partition and rewires call sites the way the lifter's
calling convention justifies — a block ending in ``call`` flows to its
fall-through continuation only (the callee runs under its own contract and
restores the stack), never into the callee's entry block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hoare.cfg import CFG, build_cfg
from repro.hoare.lifter import LiftResult
from repro.isa import Instruction


@dataclass
class FunctionView:
    """One function's blocks, intra-function edges, and instruction lists."""

    entry: int
    blocks: tuple[int, ...]                     # leaders, sorted
    succs: dict[int, tuple[int, ...]] = field(default_factory=dict)
    preds: dict[int, tuple[int, ...]] = field(default_factory=dict)
    instrs: dict[int, list[Instruction]] = field(default_factory=dict)
    rets: frozenset[int] = frozenset()          # blocks returning to caller
    exits: frozenset[int] = frozenset()         # blocks terminating the program

    def terminator(self, leader: int) -> Instruction | None:
        """The last decoded instruction of a block (None if undecoded)."""
        instrs = self.instrs.get(leader, [])
        return instrs[-1] if instrs else None

    def exit_blocks(self) -> tuple[int, ...]:
        """Blocks where function-local dataflow leaves the function: return
        and terminal blocks, plus any block with no intra-function successor
        (e.g. an unresolved indirect jump cut off by an annotation)."""
        out = set(self.rets) | set(self.exits)
        for leader in self.blocks:
            if not self.succs.get(leader):
                out.add(leader)
        return tuple(sorted(out))


def function_views(result: LiftResult, cfg: CFG | None = None) -> list[FunctionView]:
    """Split the CFG into per-function views (see module docstring)."""
    if cfg is None:
        cfg = build_cfg(result)
    succ_map = cfg.successor_map()
    views: list[FunctionView] = []
    for entry, members in sorted(cfg.functions.items()):
        blocks = tuple(sorted(members & set(cfg.blocks)))
        member_set = set(blocks)
        succs: dict[int, tuple[int, ...]] = {}
        instrs: dict[int, list[Instruction]] = {}
        for leader in blocks:
            instrs[leader] = cfg.instructions_of(leader, result)
            last = instrs[leader][-1] if instrs[leader] else None
            targets = [t for t in succ_map.get(leader, ()) if t in member_set]
            if last is not None and last.mnemonic == "call":
                # Only the fall-through continuation is function-local.
                targets = [t for t in targets if t == last.end]
            succs[leader] = tuple(sorted(targets))
        preds: dict[int, set[int]] = {leader: set() for leader in blocks}
        for src, dsts in succs.items():
            for dst in dsts:
                preds[dst].add(src)
        views.append(FunctionView(
            entry=entry,
            blocks=blocks,
            succs=succs,
            preds={leader: tuple(sorted(ps)) for leader, ps in preds.items()},
            instrs=instrs,
            rets=frozenset(b for b in blocks if b in cfg.returns),
            exits=frozenset(b for b in blocks if b in cfg.exits),
        ))
    return views
