"""Satellite (d): triple status counts surface in table2 and obs rollups."""

from __future__ import annotations

import pytest

from repro import obs
from repro.eval.table2 import Table2Row, format_table2
from repro.export.checker import STATUSES, check_triples
from repro.hoare import lift
from repro.obs.metrics import metrics
from repro.obs.report import render_obs_rollup
from repro.obs.tracer import tracer
from repro.qa.targets import build_target


@pytest.fixture(autouse=True)
def _obs_off_after():
    yield
    obs.disable()
    obs.reset()


def test_status_counts_shape():
    result = lift(build_target("scratch"))
    report = check_triples(result, samples=2, seed=2022)
    counts = report.status_counts()
    assert tuple(counts) == STATUSES
    assert sum(counts.values()) == len(report.checks)
    assert counts["FAILED"] == 0


def test_checker_emits_status_counters_when_traced():
    metrics.reset()
    tracer.reset()
    tracer.configure(enabled=True)
    result = lift(build_target("guard"))
    report = check_triples(result, samples=2, seed=2022)
    snap = metrics.snapshot()
    counters = snap.get("counters", {})
    assert counters.get("check.status.proven") == report.proven
    for status in STATUSES:
        assert counters.get(f"check.status.{status}", 0) == \
            report.count(status)
    kinds = [event.kind for event in tracer.events()]
    assert "check.report" in kinds


def test_checker_emits_nothing_when_tracing_disabled():
    metrics.reset()
    tracer.configure(enabled=False)
    result = lift(build_target("scratch"))
    check_triples(result, samples=2, seed=2022)
    assert "check.status.proven" not in metrics.snapshot().get("counters", {})


def test_table2_row_and_text_carry_untested():
    row = Table2Row(name="cat", instructions=10, indirections=0, triples=5,
                    proven=3, assumed=1, untested=1, failed=0,
                    theory_lines=40)
    text = format_table2([row])
    header, _, body = text.splitlines()[2:5]
    assert "untested" in header
    assert body.split()[-2:] == ["1", "0"]  # untested, FAILED columns


def test_obs_rollup_renders_counter_totals():
    rollup = {
        "sampling": 1,
        "tasks": {},
        "totals": {
            "events": {},
            "metrics": {
                "counters": {"check.status.proven": 12,
                             "check.status.FAILED": 1},
                "histograms": {},
                "timers": {},
            },
        },
    }
    text = render_obs_rollup(rollup)
    assert "Counters (all tasks):" in text
    assert "check.status.proven" in text
    assert "12" in text
