"""Benchmark: regenerate Table 1 (the Xen-like case-study statistics).

Shape claims asserted against the paper:

* the large majority of library functions lift (paper: 2115/2151 ≈ 98 %);
* the number of symbolic states stays close to the number of instructions
  (paper: 399 771 instructions vs 391 524 + 18 562 states);
* rejection causes split into unprovable-return-address, concurrency and
  timeout, all non-zero across the corpus (paper: 32 + 3+13 + 1+4);
* unresolved indirect *calls* (column C, callbacks) dominate unresolved
  indirect *jumps* (column B) on library code with callback registries.
"""

from __future__ import annotations

import pytest

from repro.eval import format_table1, run_corpus


def lift_corpus():
    return run_corpus(scale=1, timeout_seconds=10.0, max_states=10_000)


def test_table1_benchmark(benchmark, corpus_report):
    # Measure a single fresh regeneration; reuse the session report for the
    # shape assertions so failures point at semantics, not timing noise.
    report = benchmark.pedantic(lift_corpus, rounds=1, iterations=1)
    print()
    print(format_table1(report))


def test_majority_of_library_functions_lift(corpus_report):
    totals = corpus_report.totals("function")
    assert totals.total > 100
    assert totals.lifted / totals.total >= 0.85, (
        f"only {totals.lifted}/{totals.total} library functions lifted"
    )


def test_states_close_to_instructions(corpus_report):
    """Joining keeps the state count within a few percent of the
    instruction count (the paper's central scalability claim)."""
    totals_fn = corpus_report.totals("function")
    totals_bin = corpus_report.totals("binary")
    instructions = totals_fn.instructions + totals_bin.instructions
    states = totals_fn.states + totals_bin.states
    assert instructions > 0
    assert states <= instructions * 1.10, f"{states} states vs {instructions}"


def test_all_rejection_causes_observed(corpus_report):
    binary_totals = corpus_report.totals("binary")
    function_totals = corpus_report.totals("function")
    assert binary_totals.unprovable >= 1
    assert binary_totals.concurrency >= 1
    assert binary_totals.timeout >= 1
    assert function_totals.unprovable >= 1


def test_callbacks_dominate_unresolved_indirections(corpus_report):
    """Paper Section 5.1: 'Unresolved indirect calls are often caused by
    function callbacks'; on the libraries C > B."""
    totals = corpus_report.totals("function")
    assert totals.unresolved_calls > totals.unresolved_jumps


def test_jump_tables_resolve(corpus_report):
    """Dense switches produce resolved indirections (column A > 0) in every
    directory with dispatch templates."""
    function_totals = corpus_report.totals("function")
    binary_totals = corpus_report.totals("binary")
    assert function_totals.resolved > 0
    assert binary_totals.resolved > 0


def test_expected_outcomes_match_corpus_design(corpus_report):
    """Every corpus item's designed outcome is reproduced by the lifter."""
    from repro.corpus import build_corpus

    corpus = build_corpus(scale=1)
    by_name = {record.name: record for record in corpus_report.records
               if record.kind == "binary"}
    mismatches = []
    for item in corpus.binaries:
        record = by_name[item.name]
        if record.outcome != item.expected:
            mismatches.append((item.name, item.expected, record.outcome))
    assert not mismatches, mismatches
