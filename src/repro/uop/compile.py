"""``compile_insn``: decoded instruction → :class:`UopBlock`, memoized.

The compile table is **content-addressed**: the memo key is the
instruction's *shape* — mnemonic plus a per-operand descriptor
(register name / immediate value+width / full addressing form) — paired
with the live ``SEMANTICS_VERSION`` from :mod:`repro.perf.store`, and the
block's digest is the SHA-256 of that pair.  A corpus therefore compiles
each distinct instruction form exactly once, two occurrences of
``add rax, rbx`` at different addresses share one block (``IMark``
binds the address at execution time), and bumping the semantics version
misses the whole table — the same invalidation discipline as the PR-5
lift store.

Compile rules mirror τ (:mod:`repro.semantics.tau`) case by case.  What τ
decides per *visit* — immediate sign-extension widths, sub-register
keep masks, zext insertion, flag kinds — the compiler decides once per
*form* and bakes into the micro-op operands as pre-simplified
:class:`~repro.expr.Const` nodes and kernel references.  Forms whose
successor structure doesn't fit a straight-line temp file (``jcc``,
``push``/``pop``, control flow) compile to ``RUN`` closures; the rare
complex forms (string ops, ``mul``/``div``, ``adc``/``sbb``, ``xchg``,
``leave``) compile to ``CCALL`` blocks that clean-call τ's own
transformer — identical semantics by construction, and the step memo in
:mod:`repro.uop.interp` still applies to them.
"""

from __future__ import annotations

import hashlib

from repro.expr import Const, Expr, RegRef, simplify as s
from repro.isa import Imm, Instruction, Mem, Reg, condition_of
from repro.isa.registers import family_of, reg_width
from repro.perf import register_cache
from repro.uop import ir
from repro.uop.ir import BlockEmitter, UopBlock

_MASK64 = (1 << 64) - 1


def _semantics_version() -> str:
    # Read dynamically (not captured at import) so a version bump — e.g. a
    # monkeypatched SEMANTICS_VERSION in tests — misses the memo.
    from repro.perf import store

    return str(store.SEMANTICS_VERSION)


# -- the memo ------------------------------------------------------------------

#: (version, shape) -> UopBlock.  The content-addressed compile table.
_TABLE: dict[tuple, UopBlock] = {}
#: (version, Instruction) -> UopBlock.  Per-instruction probe in front of
#: the shape table (hashing a decoded Instruction is cheaper than
#: recomputing its shape key on every visit).
_BY_INSTR: dict[tuple, UopBlock] = {}
#: mnemonic -> [table_hits, table_misses] (probe hits count as table hits).
_OPCODE_STATS: dict[str, list[int]] = {}
_STATS = {"hits": 0, "misses": 0}


def compile_insn(instr: Instruction) -> UopBlock:
    """The compiled block for *instr* (memoized per opcode+operand shape)."""
    version = _semantics_version()
    probe = (version, instr)
    block = _BY_INSTR.get(probe)
    if block is not None:
        _STATS["hits"] += 1
        _bump(instr.mnemonic, 0)
        return block
    shape = shape_key(instr)
    key = (version, shape)
    block = _TABLE.get(key)
    if block is not None:
        _STATS["hits"] += 1
        _bump(instr.mnemonic, 0)
    else:
        _STATS["misses"] += 1
        _bump(instr.mnemonic, 1)
        digest = hashlib.sha256(
            f"{version}|{shape!r}".encode("utf-8")).hexdigest()
        block = _compile(instr, digest)
        _TABLE[key] = block
    _BY_INSTR[probe] = block
    return block


def shape_key(instr: Instruction) -> tuple:
    """The opcode+operand-shape memo key (address-independent)."""
    parts: list = [instr.mnemonic]
    for op in instr.operands:
        if isinstance(op, Reg):
            parts.append(("r", op.name))
        elif isinstance(op, Imm):
            parts.append(("i", op.value, op.width))
        else:
            parts.append(("m", op.width, op.base, op.index, op.scale, op.disp))
    return tuple(parts)


def _bump(mnemonic: str, miss: int) -> None:
    slot = _OPCODE_STATS.get(mnemonic)
    if slot is None:
        slot = _OPCODE_STATS[mnemonic] = [0, 0]
    slot[miss] += 1


def opcode_stats() -> dict[str, dict[str, int]]:
    """Per-mnemonic compile-table hit/miss counts (for ``render_profile``)."""
    return {name: {"hits": slot[0], "misses": slot[1]}
            for name, slot in sorted(_OPCODE_STATS.items())}


def _cache_stats() -> dict:
    return {"hits": _STATS["hits"], "misses": _STATS["misses"],
            "size": len(_TABLE)}


def _cache_clear() -> None:
    _TABLE.clear()
    _BY_INSTR.clear()
    _OPCODE_STATS.clear()
    _STATS["hits"] = _STATS["misses"] = 0


register_cache("uop.compile", _cache_stats, _cache_clear)


# -- region recipes (Definition 4.2's R, shape-compiled) -----------------------

_STRING_MNEMONICS = ("movsb", "movsq", "stosb", "stosq", "lodsb", "lodsq")


def _addr_template(mem: Mem) -> Expr:
    """``mem_addr_expr`` minus the rip case, folded at compile time."""
    expr: Expr = Const(mem.disp & _MASK64)
    if mem.base:
        expr = s.add(expr, RegRef(mem.base))
    if mem.index:
        expr = s.add(expr, s.mul(RegRef(mem.index), Const(mem.scale)))
    return expr


def _region_recipe(instr: Instruction) -> tuple[tuple[tuple, ...], dict[int, int]]:
    """The per-form region recipe plus operand-index → slot mapping.

    Slot *i* is the i-th ``RG_MEM`` entry; the interpreter evaluates the
    recipe once per step and the body's LOAD/STORE/ADDR micro-ops reuse
    the evaluated :class:`Region` objects, so each operand address is
    computed exactly once (τ evaluates it twice: regions + read)."""
    recipe: list[tuple] = []
    slot_of: dict[int, int] = {}
    for index, op in enumerate(instr.operands):
        if isinstance(op, Mem):
            slot_of[index] = len(recipe)
            if op.base == "rip":
                recipe.append((ir.RG_MEM, None, op.width // 8, op.disp))
            else:
                recipe.append(
                    (ir.RG_MEM, _addr_template(op), op.width // 8, 0))
    mnemonic = instr.mnemonic
    if mnemonic == "push":
        recipe.append((ir.RG_PUSH,))
    elif mnemonic in ("pop", "ret"):
        recipe.append((ir.RG_POPRET,))
    elif mnemonic == "leave":
        recipe.append((ir.RG_LEAVE,))
    elif mnemonic in _STRING_MNEMONICS:
        size = 1 if mnemonic.endswith("b") else 8
        recipe.append((ir.RG_STRING,
                       mnemonic.startswith(("movs", "stos")),
                       mnemonic.startswith(("movs", "lods")), size))
    return tuple(recipe), slot_of


# -- compile rules -------------------------------------------------------------

_ALU_KERNEL = {"add": s.add, "sub": s.sub, "cmp": s.sub,
               "and": s.and_, "or": s.or_, "xor": s.xor, "test": s.and_}
_FLAG_KIND = {"cmp": "cmp", "sub": "cmp", "test": "test"}
_SHIFT_CODE = {"shl": ir.SHL, "shr": ir.SHR, "sar": ir.SAR,
               "rol": ir.ROL, "ror": ir.ROR}
_RUN_FORMS = ("jmp", "call", "ret", "push", "pop",
              "hlt", "ud2", "int3", "syscall")


class _Rules:
    """One compilation: an emitter plus the operand-access helpers."""

    def __init__(self, instr: Instruction, slot_of: dict[int, int]) -> None:
        self.instr = instr
        self.slot_of = slot_of
        self.em = BlockEmitter()

    def read(self, index: int) -> int:
        """τ's ``_read_operand`` as micro-ops; returns the value temp."""
        op = self.instr.operands[index]
        if isinstance(op, Reg):
            return self.em.value(ir.GET, op.family,
                                 0 if op.width == 64 else op.width)
        if isinstance(op, Imm):
            return self.em.value(ir.CONST, Const(op.value, op.width))
        return self.em.load(self.slot_of[index], op.width // 8)

    def store(self, index: int, src: int) -> None:
        """τ's ``_store`` as micro-ops (keep masks folded per form)."""
        op = self.instr.operands[index]
        if isinstance(op, Reg):
            width = reg_width(op.name)
            keep = Const(~((1 << width) - 1)) if width < 32 else None
            self.em.emit(ir.PUT, family_of(op.name), src, width, keep)
        else:
            self.em.emit(ir.STORE, self.slot_of[index], op.width // 8, src)


def _compile(instr: Instruction, digest: str) -> UopBlock:
    mnemonic = instr.mnemonic
    regions, slot_of = _region_recipe(instr)
    pure_hint = not any(isinstance(op, Mem) for op in instr.operands)

    cc = condition_of(mnemonic)
    if (mnemonic in _RUN_FORMS
            or (cc is not None and mnemonic.startswith("j"))):
        return UopBlock(digest=digest, mnemonic=mnemonic, kind=ir.RUN,
                        regions=regions, run=_run_closure(mnemonic, cc),
                        pure_hint=pure_hint and mnemonic not in
                        ("push", "pop", "ret", "call", "jmp"))

    rules = _OPS_RULES.get(mnemonic)
    if rules is None and cc is not None:
        rules = _compile_setcc if mnemonic.startswith("set") else \
            _compile_cmovcc if mnemonic.startswith("cmov") else None
    if rules is None:
        # adc/sbb, mul/div/imul, cdq/cqo/cdqe, xchg, leave, string ops,
        # and anything τ itself would reject: clean-call the reference
        # transformer.  UnsupportedInstruction still surfaces at step time.
        return UopBlock(digest=digest, mnemonic=mnemonic, kind=ir.CCALL,
                        regions=regions)

    compiler = _Rules(instr, slot_of)
    rules(compiler)
    ops, n_temps = compiler.em.finish()
    return UopBlock(digest=digest, mnemonic=mnemonic, kind=ir.OPS,
                    regions=regions, ops=ops, n_temps=n_temps,
                    pure_hint=pure_hint)


def _run_closure(mnemonic: str, cc: str | None):
    """RUN bodies: τ's successor-shaped transformers, dispatch pre-resolved."""
    from repro.semantics import tau
    from repro.semantics.events import TerminalEvent
    from repro.semantics.tau import Successor

    if mnemonic in ("hlt", "ud2", "int3"):
        def run(state, instr, ctx):
            return [Successor(state, events=(TerminalEvent(mnemonic),))]
    elif mnemonic == "syscall":
        def run(state, instr, ctx):
            return [Successor(state, events=(TerminalEvent("syscall"),))]
    elif mnemonic == "jmp":
        run = tau._jmp
    elif mnemonic == "call":
        run = tau._call
    elif mnemonic == "ret":
        run = tau._ret
    elif cc is not None:
        def run(state, instr, ctx):
            return tau._jcc(state, instr, cc)
    else:  # push / pop: dataflow forms -> advance rip afterwards
        body = tau._push if mnemonic == "push" else tau._pop

        def run(state, instr, ctx):
            new_state, events = body(state, instr, ctx)
            new_state = new_state.with_pred(
                tau._advance(new_state.pred, instr))
            return [Successor(new_state, events=events)]
    return run


# Each rule receives a `_Rules` and emits the body.  Emission order is
# τ's evaluation order — reads, then the store, then the flag thunk — so
# the interpreter consumes fresh havoc names in exactly τ's order.

def _compile_nop(c: _Rules) -> None:
    pass


def _compile_mov(c: _Rules) -> None:
    dst, src = c.instr.operands
    if isinstance(src, Imm) and src.width < dst.width:
        value = c.em.value(
            ir.CONST, Const(Imm(src.value, src.width).signed, dst.width))
    else:
        value = c.read(1)
    c.store(0, value)


def _compile_lea(c: _Rules) -> None:
    dst = c.instr.operands[0]
    addr = c.em.value(ir.ADDR, c.slot_of[1])
    if dst.width < 64:
        addr = c.em.value(ir.UN, s.low, addr, dst.width)
    c.store(0, addr)


def _compile_extend(c: _Rules) -> None:
    dst = c.instr.operands[0]
    kernel = s.zext if c.instr.mnemonic == "movzx" else s.sext
    value = c.em.value(ir.UN, kernel, c.read(1), dst.width)
    c.store(0, value)


def _compile_alu(c: _Rules) -> None:
    mnemonic = c.instr.mnemonic
    dst, src = c.instr.operands
    width = dst.width
    a = c.read(0)
    b = c.read(1)
    if isinstance(src, Imm) and src.width < width:
        b = c.em.value(ir.CONST, Const(Imm(src.value, src.width).signed, width))
    elif src.width < width:
        b = c.em.value(ir.UN, s.zext, b, width)
    kind = _FLAG_KIND.get(mnemonic)
    if mnemonic in ("cmp", "test"):
        c.em.emit(ir.FLAG_CMP, kind, a, b, width)
        return
    result = c.em.value(ir.BIN, _ALU_KERNEL[mnemonic], a, b, width)
    c.store(0, result)
    if kind is not None:
        c.em.emit(ir.FLAG_CMP, kind, a, b, width)
    else:
        c.em.emit(ir.FLAG_ARITH, result, width)


def _compile_unary(c: _Rules) -> None:
    mnemonic = c.instr.mnemonic
    (dst,) = c.instr.operands
    width = dst.width
    value = c.read(0)
    if mnemonic == "inc":
        result = c.em.value(ir.BIN, s.add, value,
                            c.em.value(ir.CONST, Const(1, width)), width)
    elif mnemonic == "dec":
        result = c.em.value(ir.BIN, s.sub, value,
                            c.em.value(ir.CONST, Const(1, width)), width)
    elif mnemonic == "neg":
        result = c.em.value(ir.UN, s.neg, value, width)
    else:  # not
        result = c.em.value(ir.UN, s.not_, value, width)
    c.store(0, result)
    if mnemonic != "not":  # `not` leaves the flag state untouched
        c.em.emit(ir.FLAG_ARITH, result, width)


def _compile_shift(c: _Rules) -> None:
    dst = c.instr.operands[0]
    width = dst.width
    a = c.read(0)
    n = c.read(1)
    result = c.em.shift(_SHIFT_CODE[c.instr.mnemonic], a, n, width)
    c.store(0, result)
    c.em.emit(ir.FLAG_SHIFT, result, n, _SHIFT_CODE[c.instr.mnemonic], width)


def _compile_setcc(c: _Rules) -> None:
    cond = c.em.value(ir.COND, condition_of(c.instr.mnemonic))
    c.store(0, c.em.value(ir.UN, s.zext, cond, 8))


def _compile_cmovcc(c: _Rules) -> None:
    dst = c.instr.operands[0]
    cond = c.em.value(ir.COND, condition_of(c.instr.mnemonic))
    old = c.read(0)
    new = c.read(1)
    c.store(0, c.em.value(ir.ITE, cond, new, old, dst.width))


_OPS_RULES = {
    "nop": _compile_nop,
    "mov": _compile_mov,
    "movabs": _compile_mov,
    "lea": _compile_lea,
    "movzx": _compile_extend,
    "movsx": _compile_extend,
    "movsxd": _compile_extend,
    "add": _compile_alu, "sub": _compile_alu, "and": _compile_alu,
    "or": _compile_alu, "xor": _compile_alu, "cmp": _compile_alu,
    "test": _compile_alu,
    "inc": _compile_unary, "dec": _compile_unary,
    "neg": _compile_unary, "not": _compile_unary,
    "shl": _compile_shift, "shr": _compile_shift, "sar": _compile_shift,
    "rol": _compile_shift, "ror": _compile_shift,
}
