"""Def/use introspection over τ: what an instruction reads and writes.

The analysis layer (``repro.analysis``) needs, per instruction, the set of
register families read and written, whether flags are consumed/produced,
and the memory regions touched.  Rather than maintaining a second mnemonic
table that could drift from the semantics, we *probe τ itself*: the
instruction is stepped on a synthetic state in which every register family
holds a distinct marker variable (and the flag state holds marker
operands), and the successor states are diffed against the probe.  A
register whose valuation changed was defined; a marker variable occurring
in any produced expression was used; ``Deref`` nodes in produced values
are loads; new ``*[a, n] == v`` valuation clauses are stores.

This makes ``repro.semantics`` the single source of truth for effects:
if τ gains an instruction (or changes what one clobbers), def/use follows
automatically.  The one deliberate mirror of τ's own abstraction: ``adc``/
``sbb`` havoc their destination, so they report no flag *use* — exactly as
imprecise as the transformer is.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.expr import Const, Deref, Expr, Var
from repro.isa import Instruction
from repro.isa.registers import GPR64
from repro.memmodel import MemModel
from repro.pred import FlagState, Predicate
from repro.semantics.events import CallEvent, RetEvent
from repro.semantics.state import LiftContext, NameGen, SymState
from repro.semantics.tau import UnsupportedInstruction, step

#: Prefix of the marker variables injected by the probe.  Analyses decode
#: effect expressions (e.g. store addresses) against these names.
PROBE_PREFIX = "probe:"

_FLAG_MARKERS = (Var(PROBE_PREFIX + "flag.a"), Var(PROBE_PREFIX + "flag.b"))
_PIN_ADDR = 0x10_0000
_PIN_SIZE = 4


def reg_marker(family: str) -> Var:
    """The marker variable standing for *family*'s pre-state value."""
    return Var(PROBE_PREFIX + family)


def marker_family(var: Var) -> str | None:
    """Inverse of :func:`reg_marker`; None for flag markers / non-markers."""
    if not var.name.startswith(PROBE_PREFIX):
        return None
    name = var.name[len(PROBE_PREFIX):]
    return name if name in GPR64 else None


@dataclass(frozen=True)
class MemEffect:
    """One memory access: address expression over probe markers + size.

    ``addr`` mentions :func:`reg_marker` variables for the registers that
    feed the address computation (e.g. a store to ``[rsp - 16]`` has
    ``addr = probe:rsp - 0x10``).  For stores, ``value`` is the stored
    expression over probe markers when every successor agrees on it (None
    otherwise, and always None for loads)."""

    addr: Expr
    size: int
    value: Expr | None = None

    def __str__(self) -> str:
        return f"[{self.addr}, {self.size}]"


@dataclass(frozen=True)
class DefUse:
    """Effect summary of one instruction, as observed from τ."""

    uses: frozenset[str]            # register families read
    defs: frozenset[str]            # register families written (rip excluded)
    reads_flags: bool
    writes_flags: bool
    loads: tuple[MemEffect, ...]
    stores: tuple[MemEffect, ...]
    #: family -> post-state value over probe markers, when it is the same
    #: in every successor (e.g. ``rsp -> probe:rsp + 8`` for ``ret``).
    results: tuple[tuple[str, Expr], ...] = ()

    def result_of(self, family: str) -> Expr | None:
        for name, value in self.results:
            if name == family:
                return value
        return None

    @staticmethod
    def unknown() -> "DefUse":
        """Conservative top: everything read, everything clobbered."""
        return DefUse(
            uses=frozenset(GPR64),
            defs=frozenset(GPR64),
            reads_flags=True,
            writes_flags=True,
            loads=(),
            stores=(),
        )


class _ProbeBinary:
    """Binary stand-in for the probe context.  The probe state holds no
    concrete pointers, so τ only ever asks for sections it cannot find."""

    name = "<probe>"

    def section_at(self, addr: int):
        return None

    def external_name(self, addr: int):
        return None


def _probe_state(instr: Instruction) -> SymState:
    regs: dict[str, Expr] = {family: reg_marker(family) for family in GPR64}
    regs["rip"] = Const(instr.addr)
    flags = FlagState("cmp", _FLAG_MARKERS[0], _FLAG_MARKERS[1], 64)
    return SymState(
        pred=Predicate.make(regs=regs, flags=flags), model=MemModel(frozenset())
    )


def _collect(
    expr: Expr,
    uses: set[str],
    flag_use: list[bool],
    loads: dict[tuple[str, int], MemEffect],
) -> None:
    for node in expr.walk():
        if isinstance(node, Var):
            family = marker_family(node)
            if family is not None:
                uses.add(family)
            elif node in _FLAG_MARKERS:
                flag_use[0] = True
        elif isinstance(node, Deref):
            loads.setdefault((str(node.addr), node.size),
                             MemEffect(node.addr, node.size))


def _extract(instr: Instruction) -> DefUse:
    probe = _probe_state(instr)
    ctx = LiftContext(binary=_ProbeBinary(), names=NameGen(), trust_data=False)
    successors = step(probe, instr, ctx)

    uses: set[str] = set()
    defs: set[str] = set()
    flag_use = [False]
    writes_flags = False
    loads: dict[tuple[str, int], MemEffect] = {}
    stores: dict[tuple[str, int], MemEffect] = {}
    results: dict[str, set[Expr]] = {}
    baseline = {family: reg_marker(family) for family in GPR64}

    for successor in successors:
        pred = successor.state.pred
        new_regs = pred.reg_dict()
        for family in GPR64:
            value = new_regs.get(family)
            if value == baseline[family]:
                continue
            defs.add(family)
            if value is not None:
                results.setdefault(family, set()).add(value)
                _collect(value, uses, flag_use, loads)
        rip_value = new_regs.get("rip")
        if rip_value is not None and not isinstance(rip_value, Const):
            # Indirect transfer: the target computation is a use.
            _collect(rip_value, uses, flag_use, loads)
        for region, value in pred.mem:
            key = (str(region.addr), region.size)
            prior = stores.get(key)
            if prior is None:
                stores[key] = MemEffect(region.addr, region.size, value)
            elif prior.value is not None and prior.value != value:
                # Successors disagree on the stored value: keep the access,
                # drop the value.
                stores[key] = MemEffect(region.addr, region.size)
            _collect(region.addr, uses, flag_use, loads)
            _collect(value, uses, flag_use, loads)
        if pred.flags != probe.pred.flags:
            writes_flags = True
            if pred.flags is not None:
                for operand in (pred.flags.a, pred.flags.b):
                    if operand is not None:
                        _collect(operand, uses, flag_use, loads)
        for clause in pred.clauses:
            _collect(clause.lhs, uses, flag_use, loads)
            _collect(clause.rhs, uses, flag_use, loads)
        for event in successor.events:
            if isinstance(event, CallEvent) and event.target is not None:
                _collect(event.target, uses, flag_use, loads)
            elif isinstance(event, RetEvent):
                if event.target is not None:
                    _collect(event.target, uses, flag_use, loads)
                if event.rsp_after is not None:
                    _collect(event.rsp_after, uses, flag_use, loads)

    agreed = tuple(
        sorted(
            (family, next(iter(values)))
            for family, values in results.items()
            if len(values) == 1
        )
    )
    return DefUse(
        uses=frozenset(uses),
        defs=frozenset(defs),
        reads_flags=flag_use[0],
        writes_flags=writes_flags,
        loads=tuple(sorted(loads.values(), key=str)),
        stores=tuple(sorted(stores.values(), key=str)),
        results=agreed,
    )


@lru_cache(maxsize=8192)
def _cached(instr: Instruction) -> DefUse:
    return _extract(instr)


def def_use(instr: Instruction) -> DefUse:
    """Effect summary of *instr*, derived by probing τ (memoized).

    Raises :class:`UnsupportedInstruction` for mnemonics τ does not model;
    callers wanting a conservative answer should catch it and fall back to
    :meth:`DefUse.unknown`."""
    if instr.addr is None or instr.size is None:
        instr = instr.at(_PIN_ADDR, _PIN_SIZE)
    return _cached(instr)
