"""Evaluation-harness unit tests (formatting, aggregation, CLI)."""

from __future__ import annotations

import pytest

from repro.eval.figure3 import Figure3Data, format_figure3, pearson
from repro.eval.runner import DirectoryRow, CorpusReport, FunctionRecord
from repro.eval.table1 import format_table1
from repro.eval.table2 import Table2Row, format_table2


def make_report() -> CorpusReport:
    report = CorpusReport()
    report.rows.append(DirectoryRow(
        directory="bin", kind="binary", total=5, lifted=4, unprovable=1,
        instructions=700, states=700, resolved=4, seconds=12.0,
    ))
    report.rows.append(DirectoryRow(
        directory="lib", kind="function", total=100, lifted=96, unprovable=4,
        instructions=2800, states=2810, resolved=12, unresolved_jumps=6,
        unresolved_calls=12, seconds=50.0,
    ))
    report.records.append(FunctionRecord(
        name="f", directory="lib", kind="function", outcome="lifted",
        instructions=30, states=30, resolved=0, unresolved_jumps=0,
        unresolved_calls=0, seconds=0.5,
    ))
    return report


def test_directory_row_counts_cell():
    row = DirectoryRow(directory="bin", kind="binary", total=15, lifted=12,
                       unprovable=2, concurrency=1, timeout=0)
    assert row.counts_cell() == "15 = 12 + 2 + 1 + 0"


def test_totals_aggregate_by_kind():
    report = make_report()
    binary_totals = report.totals("binary")
    function_totals = report.totals("function")
    assert binary_totals.total == 5
    assert function_totals.unresolved_calls == 12
    assert function_totals.instructions == 2800


def test_format_table1_contains_sections():
    text = format_table1(make_report())
    assert "Binaries" in text and "Library functions" in text
    assert "bin" in text and "lib" in text
    assert "A = resolved indirections" in text


def test_format_table2():
    rows = [
        Table2Row(name="wc", instructions=90, indirections=0, triples=90,
                  proven=88, assumed=2, untested=0, failed=0,
                  theory_lines=400),
        Table2Row(name="tar", instructions=1100, indirections=3,
                  triples=1100, proven=1050, assumed=30, untested=20,
                  failed=0, theory_lines=5000),
    ]
    text = format_table2(rows)
    assert "wc" in text and "tar" in text and "Total" in text


def test_pearson_degenerate_cases():
    assert pearson([]) == 0.0
    assert pearson([(5, 1.0), (5, 2.0)]) == 0.0  # zero variance in x


def test_format_figure3_renders_scatter():
    data = Figure3Data(points=[(10, 0.1), (200, 0.5), (900, 0.2)],
                       pearson_r=0.12)
    text = format_figure3(data)
    assert "Pearson r" in text
    assert "*" in text
    assert "n = 3" in text


def test_format_figure3_empty():
    assert "(no data)" in format_figure3(Figure3Data(points=[], pearson_r=0.0))


def test_cli_failures(capsys):
    from repro.eval.__main__ import main

    assert main(["failures"]) == 0
    out = capsys.readouterr().out
    assert "MUST PRESERVE" in out
    assert "verification error" in out


def test_cli_rejects_unknown():
    from repro.eval.__main__ import main

    with pytest.raises(SystemExit):
        main(["bogus"])


def test_lint_report_small_corpus():
    from repro.corpus import CorpusBinary
    from repro.corpus.xenlike import Corpus
    from repro.eval.lint_report import generate_lint_report
    from repro.minicc import compile_source

    corpus = Corpus()
    corpus.binaries.append(CorpusBinary(
        name="tiny", directory="bin",
        binary=compile_source("long main(long n) { return n + 1; }",
                              name="tiny"),
        expected="lifted",
    ))
    text = generate_lint_report(corpus=corpus)
    assert "bin/tiny" in text
    assert "lifted" in text
    # Every seeded-bug binary must report HIT, never MISS.
    assert "HIT" in text and "MISS" not in text
