"""The xenlike corpus: the Xen-hypervisor case-study substitute.

The paper lifts 63 binaries and 2151 shared-object functions from four
binary directories and four library directories (Table 1).  Real Xen
binaries cannot be built here, and a pure-Python lifter cannot chew 400K
instructions in benchmark time, so the corpus reproduces the *structure*
at a configurable scale: each paper directory maps to a generated set of
binaries / shared objects with the same outcome mix — lifted, unprovable
return address, concurrency, timeout — and the same phenomenology in the
indirection columns (resolved jump tables, unresolved callback calls).

``build_corpus(scale)`` returns a :class:`Corpus`; scale 1 is roughly a
twelfth of the paper's function count (fits in CI); larger scales grow
linearly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elf import Binary
from repro.minicc import compile_source
from repro.corpus import templates as T
from repro.corpus.failures import (
    buffer_overflow,
    concurrency,
    nonstandard_rsp,
    stack_probe,
)


@dataclass
class CorpusBinary:
    """One whole-program entry (lifted from its entry point)."""

    name: str
    directory: str
    binary: Binary
    expected: str  # "lifted" | "unprovable" | "concurrency" | "timeout"


@dataclass
class CorpusLibrary:
    """One shared object whose exported functions are lifted individually."""

    name: str
    directory: str
    binary: Binary
    functions: list[str]
    #: function name -> expected outcome (default "lifted")
    expected: dict[str, str] = field(default_factory=dict)


@dataclass
class Corpus:
    binaries: list[CorpusBinary] = field(default_factory=list)
    libraries: list[CorpusLibrary] = field(default_factory=list)

    def directories(self) -> list[str]:
        seen: list[str] = []
        for item in self.binaries + self.libraries:
            if item.directory not in seen:
                seen.append(item.directory)
        return seen


# -- program synthesis ---------------------------------------------------------------


def _binary_source(index: int) -> str:
    """A whole program: main calls a mix of helpers."""
    parts = [
        T.make_arith(f"b{index}", multiplier=3 + index % 5),
        T.make_clamp(f"b{index}", hi=100 + index),
        T.make_loop_sum(f"b{index}"),
        T.make_switch_dispatch(f"b{index}", cases=4 + index % 4),
        T.make_helper_chain(f"b{index}", depth=2 + index % 3),
        f"""
long main(long argc) {{
    long r = arith_b{index}(argc, {index + 1});
    r = r + clamp_b{index}(argc);
    r = r + loopsum_b{index}(clamp_b{index}(argc));
    r = r + dispatch_b{index}(argc & {3 + index % 4});
    r = r + chain_b{index}_0(argc);
    return r;
}}
""",
    ]
    return "\n".join(parts)


def _timeout_source() -> str:
    """Heavy enough to blow a small exploration budget: many forking
    pointer stores in nested control flow."""
    stores = "\n".join(
        f"    if (a{i} != 0) *a{i} = {i};" for i in range(12)
    )
    params = ", ".join(f"long a{i}" for i in range(6))
    extra = "\n".join(f"    long a{i} = a0 + {i};" for i in range(6, 12))
    return f"""
long main({params}) {{
{extra}
{stores}
    long sum = 0;
    for (long i = 0; i < 4; i = i + 1) {{
        sum = sum + a0 + a1 + a2;
    }}
    return sum;
}}
"""


#: One "function bundle" per slot: (template builder, function names, expected)
def _library_slots(tag: str) -> list[tuple[str, list[str], dict[str, str]]]:
    return [
        (T.make_arith(f"{tag}a"), [f"arith_{tag}a"], {}),
        (T.make_clamp(f"{tag}c"), [f"clamp_{tag}c"], {}),
        (T.make_loop_sum(f"{tag}l"), [f"loopsum_{tag}l"], {}),
        (T.make_global_table_walk(f"{tag}w"), [f"walk_{tag}w"], {}),
        (T.make_local_buffer(f"{tag}b"), [f"localbuf_{tag}b"], {}),
        (T.make_switch_dispatch(f"{tag}d", cases=5),
         [f"dispatch_{tag}d"], {}),
        (T.make_state_machine(f"{tag}f"), [f"fsm_{tag}f"], {}),
        (T.make_callback_invoker(f"{tag}i"), [f"invoke_{tag}i"], {}),
        (T.make_callback_registry(f"{tag}r"),
         [f"register_{tag}r", f"fire_{tag}r"], {}),
        (T.make_recursive(f"{tag}q"), [f"recur_{tag}q"], {}),
        (T.make_extern_user(f"{tag}m"), [f"use_{tag}m"], {}),
        (T.make_buffer_writer_extern(f"{tag}s"), [f"fillbuf_{tag}s"], {}),
        (T.make_byte_scanner(f"{tag}n"), [f"scan_{tag}n"], {}),
        (T.make_checksum(f"{tag}k"), [f"checksum_{tag}k"], {}),
        (T.make_bitops(f"{tag}o"), [f"bits_{tag}o"], {}),
        (T.make_divider(f"{tag}v", divisor=7 + len(tag)), [f"divmod_{tag}v"], {}),
        (T.make_unrolled(f"{tag}u", steps=40 + 15 * (len(tag) % 4)),
         [f"unrolled_{tag}u"], {}),
    ]


def build_library(name: str, directory: str, bundles: int) -> CorpusLibrary:
    """One shared object holding `bundles` rounds of template instances."""
    sources: list[str] = []
    functions: list[str] = []
    expected: dict[str, str] = {}
    for round_index in range(bundles):
        tag = f"{name.replace('.', '_').replace('-', '_')}{round_index}"
        for source, names, marks in _library_slots(tag):
            sources.append(source)
            functions += names
            expected.update(marks)
    binary = compile_source(
        "\n".join(sources), name=name, entry=functions[0],
        export_labels=True, optimize=1 if "lowlevel" in name else 0,
    )
    return CorpusLibrary(name, directory, binary, functions, expected)


def _unprovable_library_function(tag: str) -> str:
    """A function rejected for an unprovable return address: writes through
    a completely unconstrained pointer-sized offset into its own frame."""
    return f"""
long smash_{tag}(long off) {{
    long buf[4];
    long p = &buf[0];
    *(p + off) = 1;
    return buf[0];
}}
"""


def build_corpus(scale: int = 1) -> Corpus:
    """Build the xenlike corpus.

    The directory mix mirrors Table 1 (scaled down; see EXPERIMENTS.md):

    ========================  =======================================
    paper directory           composition per scale unit
    ========================  =======================================
    xen/bin   (binaries)      3 lifted + 1 unprovable + 1 concurrency
    bin       (binaries)      4 lifted + 1 unprovable
    sbin      (binaries)      5 lifted + 1 unprovable + 1 timeout
    libexec   (binaries)      1 lifted
    lib       (library)       6 bundles (~96 functions) + 2 unprovable
    xenfsimage (library)      1 bundle + 1 unprovable
    dist-packages (library)   1 small bundle
    lowlevel  (library)       1 bundle
    ========================  =======================================
    """
    corpus = Corpus()

    def add_binary(name, directory, binary, expected):
        corpus.binaries.append(CorpusBinary(name, directory, binary, expected))

    index = 0
    for unit in range(scale):
        suffix = f"_{unit}" if scale > 1 else ""
        # .../bin
        for i in range(4):
            # Alternate optimization levels (the paper: "various levels").
            add_binary(f"bin_prog{index}{suffix}", "bin",
                       compile_source(_binary_source(index), name=f"bin{index}",
                                      optimize=index % 2),
                       "lifted")
            index += 1
        add_binary(f"bin_overflow{suffix}", "bin", buffer_overflow(), "unprovable")
        # .../xen/bin
        for i in range(3):
            add_binary(f"xen_prog{index}{suffix}", "xen/bin",
                       compile_source(_binary_source(index), name=f"xen{index}"),
                       "lifted")
            index += 1
        add_binary(f"xen_probe{suffix}", "xen/bin", stack_probe(), "unprovable")
        add_binary(f"xen_threads{suffix}", "xen/bin", concurrency(), "concurrency")
        # .../sbin
        for i in range(5):
            add_binary(f"sbin_prog{index}{suffix}", "sbin",
                       compile_source(_binary_source(index), name=f"sbin{index}"),
                       "lifted")
            index += 1
        add_binary(f"sbin_rsp{suffix}", "sbin", nonstandard_rsp(), "unprovable")
        add_binary(f"sbin_big{suffix}", "sbin",
                   compile_source(_timeout_source(), name="big"), "timeout")
        # .../libexec
        add_binary(f"libexec_prog{index}{suffix}", "libexec",
                   compile_source(_binary_source(index), name=f"le{index}"),
                   "lifted")
        index += 1

        # Libraries.
        lib = build_library(f"libxenlike{suffix}.so", "lib", bundles=6)
        _add_unprovable(lib, f"lib{unit}x"), _add_unprovable(lib, f"lib{unit}y")
        corpus.libraries.append(lib)

        fsimage = build_library(f"xenfsimage{suffix}.so", "xenfsimage", bundles=1)
        _add_unprovable(fsimage, f"fs{unit}")
        corpus.libraries.append(fsimage)

        corpus.libraries.append(
            build_library(f"pyxen{suffix}.so", "dist-packages", bundles=1)
        )
        corpus.libraries.append(
            build_library(f"lowlevel{suffix}.so", "lowlevel", bundles=1)
        )
    return corpus


def _add_unprovable(library: CorpusLibrary, tag: str) -> None:
    """Append an unprovable-return-address function to a library by
    rebuilding it with one extra source."""
    extra = _unprovable_library_function(tag)
    # Rebuild: collect existing sources is impractical; instead compile the
    # extra function as its own object appended logically — simplest is to
    # rebuild from scratch, so we instead compile the smash function into
    # the library by regenerating it.  To keep build time low we compile the
    # single function as a standalone shared object and merge the function
    # list under this library's accounting.
    binary = compile_source(extra, name=f"{library.name}:{tag}",
                            entry=f"smash_{tag}", export_labels=True)
    merged_name = f"smash_{tag}"
    library.functions.append(merged_name)
    library.expected[merged_name] = "unprovable"
    _EXTRA_FUNCTION_BINARIES[(library.name, merged_name)] = binary


#: (library name, function name) -> standalone binary for merged functions.
_EXTRA_FUNCTION_BINARIES: dict[tuple[str, str], Binary] = {}


def function_binary(library: CorpusLibrary, function: str) -> Binary:
    """The binary in which *function* lives (libraries may carry merged
    standalone functions, see :func:`_add_unprovable`)."""
    return _EXTRA_FUNCTION_BINARIES.get((library.name, function),
                                        library.binary)
