"""Rollups and text rendering for the observability layer.

Two jobs:

* **per-task capture** — :func:`task_obs_data` snapshots the process-global
  tracer + metrics into a small picklable dict after one lift task; the
  corpus runner collects these from workers and :func:`merge_rollup`
  aggregates them in sorted-name order, so serial and parallel corpus runs
  produce identical rollup *content*;
* **rendering** — the ``python -m repro trace`` text report (trace summary,
  metrics, provenance chains) and the ``python -m repro.eval obs`` corpus
  rollup table.

Canonical form: wall-clock quantities (timers, timestamps) and
cache-state-dependent fields (``cached`` flags, the SMT hit/miss split)
are excluded by :func:`canonical_obs` — everything that remains is a pure
function of the lifted tasks.
"""

from __future__ import annotations

import io
from typing import Any

from repro.obs.metrics import (
    Metrics,
    canonical_snapshot,
    merge_snapshots,
    percentiles,
)
from repro.obs.profile import (
    NONDETERMINISTIC_PHASE_COUNTS,
    PhaseTimer,
    phases as _phases,
)
from repro.obs.tracer import Event, Tracer

#: Event kinds whose occurrence and content are deterministic per task
#: (never sampled away, independent of cache state) — the only kinds that
#: enter canonical trace tails.
CANONICAL_TAIL_KINDS = frozenset({
    "annotation", "reject", "join.widen",
})

#: How many trailing events each task contributes to the rollup.
DEFAULT_TAIL_LIMIT = 32


def _canonical_tail(events: list[Event], limit: int) -> list[list]:
    """The last *limit* deterministic events, timestamps stripped."""
    picked = [event for event in events
              if event.kind in CANONICAL_TAIL_KINDS][-limit:]
    return [
        [event.kind, event.addr,
         {key: value if isinstance(value, (bool, int, float, str))
          or value is None else str(value)
          for key, value in sorted(event.detail.items())}]
        for event in picked
    ]


def task_obs_data(tracer: Tracer, metrics: Metrics,
                  tail_limit: int = DEFAULT_TAIL_LIMIT,
                  phases: PhaseTimer | None = None) -> dict[str, Any]:
    """Snapshot one task's obs state into a picklable, mergeable dict."""
    timer = _phases if phases is None else phases
    return {
        "events": dict(tracer.counts),
        "events_dropped": tracer.dropped,
        "metrics": metrics.snapshot(),
        "phases": timer.snapshot(),
        "tail": _canonical_tail(tracer.events(), tail_limit),
    }


def merge_rollup(tasks: dict[str, dict[str, Any]],
                 sampling: int) -> dict[str, Any]:
    """Aggregate per-task obs data (keyed by task name) into the report
    form.  Tasks are merged in sorted-name order; the result's content is
    independent of how tasks were distributed over workers."""
    totals_events: dict[str, int] = {}
    totals_metrics: dict[str, Any] = {}
    totals_phases: dict[str, Any] = {}
    totals_dropped = 0
    for name in sorted(tasks):
        data = tasks[name]
        for kind, count in data.get("events", {}).items():
            totals_events[kind] = totals_events.get(kind, 0) + count
        merge_snapshots(totals_metrics, data.get("metrics", {}))
        PhaseTimer.merge(totals_phases, data.get("phases", {}))
        totals_dropped += data.get("events_dropped", 0)
    return {
        "sampling": sampling,
        "tasks": {name: tasks[name] for name in sorted(tasks)},
        "totals": {"events": totals_events, "metrics": totals_metrics,
                   "phases": totals_phases,
                   "events_dropped": totals_dropped},
    }


def canonical_obs(obs: dict[str, Any]) -> dict[str, Any]:
    """The deterministic view of a rollup (see the module docstring)."""
    def phase_counts(snapshot: dict[str, Any]) -> dict[str, int]:
        # Phase *counts* are deterministic per task except ``smt`` (the
        # uncached-query count tracks solver-cache warmth, which differs
        # between a long-lived serial process and fresh workers) — the
        # same split canonical_snapshot makes for the hit/miss counters.
        return {name: slot.get("count", 0)
                for name, slot in sorted(snapshot.items())
                if name not in NONDETERMINISTIC_PHASE_COUNTS}

    tasks = {}
    for name in sorted(obs.get("tasks", {})):
        data = obs["tasks"][name]
        tasks[name] = {
            "events": dict(data.get("events", {})),
            "events_dropped": data.get("events_dropped", 0),
            "metrics": canonical_snapshot(data.get("metrics", {})),
            "phases": phase_counts(data.get("phases", {})),
            "tail": data.get("tail", []),
        }
    totals = obs.get("totals", {})
    return {
        "sampling": obs.get("sampling"),
        "tasks": tasks,
        "totals": {
            "events": dict(totals.get("events", {})),
            "events_dropped": totals.get("events_dropped", 0),
            "metrics": canonical_snapshot(totals.get("metrics", {})),
            "phases": phase_counts(totals.get("phases", {})),
        },
    }


# -- rendering -------------------------------------------------------------

def _format_histogram(name: str, snap: dict[str, Any]) -> str:
    count = snap.get("count", 0)
    mean = (snap.get("sum", 0) / count) if count else 0.0
    pcts = percentiles(snap)
    return (f"  {name:<24} n={count:<8} mean={mean:<10.1f} "
            f"p50={pcts['p50']:<8.1f} p90={pcts['p90']:<8.1f} "
            f"p99={pcts['p99']:<8.1f} max={snap.get('max', 0)}")


def render_trace_summary(events: list[Event],
                         metrics_snapshot: dict[str, Any],
                         counts: dict[str, int],
                         capacity: int,
                         dropped: int = 0) -> str:
    """The header block of the ``python -m repro trace`` text report."""
    out = io.StringIO()
    recorded = len(events)
    emitted = sum(counts.values())
    out.write(f"Trace: {recorded} events buffered "
              f"({emitted} emitted, capacity {capacity})\n")
    if dropped:
        out.write(f"WARNING: {dropped} events dropped (ring wrapped; raise "
                  "--capacity for a complete stream)\n")
    out.write("Event counts (exact, including sampled-away occurrences):\n")
    for kind in sorted(counts):
        out.write(f"  {kind:<24} {counts[kind]}\n")
    histograms = metrics_snapshot.get("histograms", {})
    if histograms:
        out.write("Histograms:\n")
        for name in sorted(histograms):
            out.write(_format_histogram(name, histograms[name]) + "\n")
    timers = metrics_snapshot.get("timers", {})
    if timers:
        out.write("Timers:\n")
        for name in sorted(timers):
            timer = timers[name]
            out.write(f"  {name:<24} {timer['seconds']:.6f} s over "
                      f"{timer['count']} samples\n")
    counters = metrics_snapshot.get("counters", {})
    if counters:
        out.write("Counters:\n")
        for name in sorted(counters):
            out.write(f"  {name:<24} {counters[name]}\n")
    return out.getvalue()


def render_obs_rollup(obs: dict[str, Any], records=None) -> str:
    """The ``python -m repro.eval obs`` corpus rollup."""
    out = io.StringIO()
    totals = obs.get("totals", {})
    out.write("Observability rollup "
              f"(sampling level {obs.get('sampling')}, "
              f"{len(obs.get('tasks', {}))} tasks)\n\n")
    dropped = totals.get("events_dropped", 0)
    if dropped:
        out.write(f"WARNING: {dropped} events dropped across tasks "
                  "(trace rings wrapped)\n\n")
    out.write("Event totals:\n")
    events = totals.get("events", {})
    for kind in sorted(events):
        out.write(f"  {kind:<24} {events[kind]}\n")
    phase_totals = totals.get("phases", {})
    if phase_totals:
        out.write("\nPhase self-time (all tasks):\n")
        for name in sorted(phase_totals,
                           key=lambda n: -phase_totals[n].get("self_seconds", 0)):
            slot = phase_totals[name]
            out.write(f"  {name:<12} self={slot.get('self_seconds', 0.0):<10.3f} "
                      f"wall={slot.get('wall_seconds', 0.0):<10.3f} "
                      f"n={slot.get('count', 0)}\n")
    metrics_totals = totals.get("metrics", {})
    histograms = metrics_totals.get("histograms", {})
    if histograms:
        out.write("\nHistograms (all tasks):\n")
        for name in sorted(histograms):
            out.write(_format_histogram(name, histograms[name]) + "\n")
    timers = metrics_totals.get("timers", {})
    if timers:
        out.write("\nTimers (all tasks):\n")
        for name in sorted(timers):
            timer = timers[name]
            out.write(f"  {name:<24} {timer['seconds']:.3f} s over "
                      f"{timer['count']} samples\n")
    counters = metrics_totals.get("counters", {})
    if counters:
        out.write("\nCounters (all tasks):\n")
        for name in sorted(counters):
            out.write(f"  {name:<24} {counters[name]}\n")
    # The per-task section surfaces only tasks whose tail carries
    # diagnostics (annotations/rejections) — the interesting ones.
    noisy = {name: data for name, data in obs.get("tasks", {}).items()
             if data.get("tail")}
    if noisy:
        out.write("\nTasks with annotations or rejections:\n")
        for name in sorted(noisy):
            out.write(f"  {name}:\n")
            for kind, addr, detail in noisy[name]["tail"]:
                where = f"@{addr:#x}" if addr is not None else "@?"
                brief = detail.get("kind", "")
                extra = detail.get("detail", "")
                out.write(f"    {kind} {where} {brief} {extra}".rstrip()
                          + "\n")
    # *records* are duck-typed FunctionRecords (``directory``,
    # ``annotations``) — the runner's annotation-by-kind satellite view.
    if records:
        by_dir: dict[tuple[str, str], int] = {}
        for record in records:
            for ann_kind, count in record.annotations.items():
                key = (record.directory, ann_kind)
                by_dir[key] = by_dir.get(key, 0) + count
        if by_dir:
            out.write("\nAnnotation counts by directory:\n")
            for (directory, ann_kind) in sorted(by_dir):
                out.write(f"  {directory:<20} {ann_kind:<20} "
                          f"{by_dir[(directory, ann_kind)]}\n")
    return out.getvalue()
