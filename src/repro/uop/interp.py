"""The array-based abstract interpreter for :class:`UopBlock`s.

``uop_step(state, instr, ctx)`` is a drop-in replacement for τ's
``step`` — same signature, same :class:`Successor` results — organized as

1. **compile** (phase ``uop.compile``): probe the content-addressed
   compile table for the instruction's block;
2. **region recipe**: evaluate the block's precompiled region recipe once
   against the predicate; the resulting :class:`Region` slots are shared
   between the memory-model forking below and the body's LOAD/STORE/ADDR
   micro-ops (τ computes every operand address twice);
3. **fork** (Definition 3.7): insert each evaluable region through
   ``ins`` — memoized on ``(region, model, pred)``, which is its full
   input set;
4. **execute** (phase ``uop.exec``): run the block body on each fork —
   the OPS interpreter walks the flat micro-op tuple against a dense
   temp-slot list (int indices, no dict probes, no string dispatch) with
   a single final :class:`Predicate` construction; RUN/CCALL blocks call
   their compiled closure / τ's reference transformer.

The whole transfer is additionally memoized content-addressed on
``(block.digest, instr, pred, model, epoch, reachable, binary,
trust_data)`` — its complete input set — but **only** when executing it
consumed no fresh havoc names (checked via ``ctx.names.issued``): a
transfer that allocated names is rerun every visit, exactly like τ, so
name streams stay identical.  On the corpus ~half of all transfer inputs
are exact repeats (loop bodies re-visited under a stable predicate), and
a memo hit returns the *same* hash-consed states τ would have rebuilt —
byte-identical canonical reports by construction.
"""

from __future__ import annotations

from repro.expr import Const, Expr
from repro.expr import simplify as s
from repro.isa import Instruction
from repro.memmodel import ins
from repro.obs.profile import phase
from repro.perf import register_cache
from repro.pred import FlagState, Predicate
from repro.pred.flags import condition_expr
from repro.semantics import tau
from repro.semantics.memory import read_region, write_region
from repro.semantics.state import LiftContext, SymState
from repro.semantics.tau import Successor
from repro.smt.solver import Region
from repro.uop import ir
from repro.uop.compile import compile_insn

_MASK64 = (1 << 64) - 1

# -- memo tables ---------------------------------------------------------------

#: (digest, instr, pred, model, epoch, reachable, binary, trust) -> successors.
_STEP_MEMO: dict[tuple, tuple[Successor, ...]] = {}
_STEP_STATS = {"hits": 0, "misses": 0, "impure": 0}

#: (region, model, pred) -> ins results.  ``ins`` is a pure function of
#: exactly this triple (the predicate is its bounds provider).
_INS_MEMO: dict[tuple, tuple] = {}
_INS_STATS = {"hits": 0, "misses": 0}


def _step_cache_stats() -> dict:
    return {"hits": _STEP_STATS["hits"], "misses": _STEP_STATS["misses"],
            "impure": _STEP_STATS["impure"], "size": len(_STEP_MEMO)}


def _step_cache_clear() -> None:
    _STEP_MEMO.clear()
    _STEP_STATS["hits"] = _STEP_STATS["misses"] = _STEP_STATS["impure"] = 0


def _ins_cache_stats() -> dict:
    return {"hits": _INS_STATS["hits"], "misses": _INS_STATS["misses"],
            "size": len(_INS_MEMO)}


def _ins_cache_clear() -> None:
    _INS_MEMO.clear()
    _INS_STATS["hits"] = _INS_STATS["misses"] = 0


register_cache("uop.step", _step_cache_stats, _step_cache_clear)
register_cache("uop.ins", _ins_cache_stats, _ins_cache_clear)

#: Monotonic identity tokens for (unhashable) Binary objects, so lifts of
#: different binaries in one process never share step-memo entries.
_BINARY_TOKENS: int = 0


def _binary_token(binary) -> int:
    global _BINARY_TOKENS
    token = getattr(binary, "_uop_token", None)
    if token is None:
        _BINARY_TOKENS += 1
        token = _BINARY_TOKENS
        try:
            binary._uop_token = token
        except AttributeError:  # slotted/frozen binary: fall back to id
            return id(binary)
    return token


# -- the step function ---------------------------------------------------------

#: Deoptimization latch, set by :func:`repro.qa.faults.inject` while a
#: τ-layer fault is installed.  Compiled blocks re-derive τ's semantics
#: instead of calling it, so they would keep executing the *unpatched*
#: semantics under a hot-patched τ — stale code.  When True, every step
#: routes through ``tau.step`` wholesale.
DEOPT_TO_TAU = False


def uop_step(
    state: SymState, instr: Instruction, ctx: LiftContext
) -> list[Successor]:
    """``step_Σ`` through the micro-op engine (drop-in for ``tau.step``)."""
    if DEOPT_TO_TAU:
        return tau.step(state, instr, ctx)
    with phase("uop.compile"):
        block = compile_insn(instr)
    with phase("uop.exec"):
        key = (block.digest, instr, state.pred, state.model, state.epoch,
               state.reachable, _binary_token(ctx.binary), ctx.trust_data)
        cached = _STEP_MEMO.get(key)
        if cached is not None:
            _STEP_STATS["hits"] += 1
            return list(cached)
        _STEP_STATS["misses"] += 1
        issued_before = ctx.names.issued
        successors = _execute(block, state, instr, ctx)
        if ctx.names.issued == issued_before:
            # No fresh havoc names were consumed: the transfer is a pure
            # function of the memo key and its results can be replayed.
            _STEP_MEMO[key] = tuple(successors)
        else:
            _STEP_STATS["impure"] += 1
        return successors


def _execute(
    block, state: SymState, instr: Instruction, ctx: LiftContext
) -> list[Successor]:
    regions = _eval_regions(block.regions, state.pred, instr)
    # Fork the memory model over the evaluable regions (Definition 4.2).
    forks: list[tuple[SymState, tuple, ...]] = [(state, ())]
    for region in regions:
        if region is None:
            continue
        next_forks = []
        for forked, assumptions in forks:
            for result in _ins_memo(region, forked.model, forked.pred):
                next_forks.append(
                    (forked.with_model(result.model),
                     assumptions + result.assumptions))
        forks = next_forks

    successors: list[Successor] = []
    if block.kind == ir.OPS:
        for forked, assumptions in forks:
            successors.append(
                _run_ops(block, forked, assumptions, instr, ctx, regions))
    elif block.kind == ir.RUN:
        run = block.run
        for forked, assumptions in forks:
            for succ in run(forked, instr, ctx):
                successors.append(Successor(
                    succ.state, assumptions + succ.assumptions, succ.events))
    else:  # CCALL: clean call into the reference transformer
        for forked, assumptions in forks:
            for succ in tau._transform(forked, instr, ctx):
                successors.append(Successor(
                    succ.state, assumptions + succ.assumptions, succ.events))
    return successors


def _ins_memo(region: Region, model, pred: Predicate) -> tuple:
    key = (region, model, pred)
    results = _INS_MEMO.get(key)
    if results is None:
        _INS_STATS["misses"] += 1
        results = _INS_MEMO[key] = tuple(ins(region, model, pred))
    else:
        _INS_STATS["hits"] += 1
    return results


def _eval_regions(
    recipe: tuple, pred: Predicate, instr: Instruction
) -> list[Region | None]:
    """Evaluate the compiled region recipe (τ's ``_instruction_regions``).

    ``RG_MEM`` slots keep their position (None = unevaluable operand);
    the trailing special entries append only when evaluable, exactly as
    τ's region list does."""
    regions: list[Region | None] = []
    for entry in recipe:
        kind = entry[0]
        if kind == ir.RG_MEM:
            template, size, rip_disp = entry[1], entry[2], entry[3]
            if template is None:  # rip-relative: fold at the call site
                addr: Expr | None = Const((instr.end + rip_disp) & _MASK64)
            else:
                addr = pred.eval(template)
            regions.append(None if addr is None else Region(addr, size))
        elif kind == ir.RG_PUSH:
            rsp = pred.get_reg("rsp")
            if rsp is not None:
                regions.append(Region(s.sub(rsp, Const(8)), 8))
        elif kind == ir.RG_POPRET:
            rsp = pred.get_reg("rsp")
            if rsp is not None:
                regions.append(Region(rsp, 8))
        elif kind == ir.RG_LEAVE:
            rbp = pred.get_reg("rbp")
            if rbp is not None:
                regions.append(Region(rbp, 8))
        else:  # RG_STRING
            use_rdi, use_rsi, size = entry[1], entry[2], entry[3]
            rdi, rsi = pred.get_reg("rdi"), pred.get_reg("rsi")
            if use_rdi and rdi is not None:
                regions.append(Region(rdi, size))
            if use_rsi and rsi is not None:
                regions.append(Region(rsi, size))
    return regions


_KEEP = object()  # sentinel: block did not touch the flag state


def _run_ops(
    block, forked: SymState, assumptions: tuple, instr: Instruction,
    ctx: LiftContext, regions: list[Region | None],
) -> Successor:
    """Run a flat OPS body against a dense temp file; one Successor out."""
    temps: list[Expr | None] = [None] * block.n_temps
    state = forked
    rd = dict(forked.pred.regs)        # register file as a dict, mutated
    base_flags = forked.pred.flags     # flag thunks read the entry flags
    flags = _KEEP
    events: tuple = ()

    for op in block.ops:
        code = op[0]
        if code == ir.GET:
            value = rd.get(op[2])
            if value is not None and op[3]:
                value = s.low(value, op[3])
            temps[op[1]] = value
        elif code == ir.CONST:
            temps[op[1]] = op[2]
        elif code == ir.BIN:
            a, b = temps[op[3]], temps[op[4]]
            temps[op[1]] = op[2](a, b, op[5]) \
                if a is not None and b is not None else None
        elif code == ir.UN:
            a = temps[op[3]]
            temps[op[1]] = op[2](a, op[4]) if a is not None else None
        elif code == ir.LOAD:
            region = regions[op[2]]
            temps[op[1]] = None if region is None else \
                read_region(state, region, ctx)
        elif code == ir.ADDR:
            region = regions[op[2]]
            temps[op[1]] = None if region is None else region.addr
        elif code == ir.ITE:
            c, a, b = temps[op[2]], temps[op[3]], temps[op[4]]
            temps[op[1]] = s.ite(c, a, b, op[5]) \
                if c is not None and a is not None and b is not None else None
        elif code == ir.COND:
            temps[op[1]] = condition_expr(base_flags, op[2]) \
                if base_flags is not None else None
        elif code == ir.PUT:
            _put(rd, op[1], temps[op[2]], op[3], op[4])
        elif code == ir.STORE:
            region = regions[op[1]]
            if region is None:
                state, new_events = tau._unknown_write(state, instr)
                events += new_events
            else:
                value = temps[op[3]]
                if value is None:
                    value = ctx.names.fresh("havoc", op[2] * 8)
                state = state.with_pred(
                    write_region(state, region, value, ctx))
        elif code == ir.FLAG_CMP:
            a, b = temps[op[2]], temps[op[3]]
            flags = FlagState(op[1], a, b, op[4]) \
                if a is not None and b is not None else None
        elif code == ir.FLAG_ARITH:
            result = temps[op[1]]
            flags = FlagState("arith", result, None, op[2]) \
                if result is not None else None
        elif code == ir.FLAG_NONE:
            flags = None
        elif code == ir.SHIFT:
            temps[op[1]] = _shift_value(
                op[2], temps[op[3]], temps[op[4]], op[5])
        elif code == ir.FLAG_SHIFT:
            flags = _shift_flags(
                temps[op[1]], temps[op[2]], op[3], op[4], flags)
        # IMARK: no-op

    rd["rip"] = Const(instr.end)       # τ's _advance
    pred = state.pred
    new_pred = Predicate(
        regs=tuple(sorted(rd.items())),
        flags=pred.flags if flags is _KEEP else flags,
        mem=pred.mem, clauses=pred.clauses,
    )
    new_state = SymState(pred=new_pred, model=state.model,
                         epoch=state.epoch, reachable=state.reachable)
    return Successor(new_state, assumptions, events)


def _put(rd: dict, family: str, value: Expr | None, width: int,
         keep: Const | None) -> None:
    """τ's ``_write_reg`` with the width dispatch resolved at compile time."""
    if value is None:
        rd.pop(family, None)
    elif width == 64:
        rd[family] = value
    elif width == 32:
        rd[family] = s.zext(s.low(value, 32) if value.width > 32 else value, 64)
    else:
        old = rd.get(family)
        if old is None:
            rd.pop(family, None)
            return
        narrowed = s.low(value, width) if value.width > width else value
        rd[family] = s.or_(s.and_(old, keep), s.zext(narrowed, 64))


def _shift_value(code: int, a: Expr | None, n: Expr | None,
                 width: int) -> Expr | None:
    """τ's ``_shift`` result computation (count-at-runtime contract)."""
    if a is None or n is None:
        return None
    if code == ir.SHL or code == ir.SHR or code == ir.SAR:
        builder = s.shl if code == ir.SHL else s.shr if code == ir.SHR \
            else s.sar
        masked = s.and_(s.zext(n, width) if n.width < width else n,
                        Const(width - 1, width), width)
        return builder(a, masked, width)
    if not isinstance(n, Const):  # symbolic rotate count
        return None
    shift = n.value % width
    if not shift:
        return a
    if code == ir.ROL:
        return s.or_(s.shl(a, Const(shift, width), width),
                     s.shr(a, Const(width - shift, width), width), width)
    return s.or_(s.shr(a, Const(shift, width), width),
                 s.shl(a, Const(width - shift, width), width), width)


def _shift_flags(result: Expr | None, n: Expr | None, code: int, width: int,
                 current):
    """τ's count-dependent shift flag contract.

    Rotates havoc the flag state; a provably-zero count keeps the previous
    flags; a variable count (a zero count would keep flags) havocs; a
    nonzero constant count yields result-derived arith flags."""
    count = None
    if n is not None and isinstance(n, Const):
        count = n.value & (63 if width == 64 else 31)
    if code == ir.ROL or code == ir.ROR:
        return None
    if count == 0:
        return current  # keep (stays the _KEEP sentinel if untouched)
    if result is None or count is None:
        return None
    return FlagState("arith", result, None, width)
