"""The lifting-as-a-service daemon behind ``python -m repro serve``.

Architecture (three thread roles + N worker processes)::

    accept thread ──> connection handler threads (one per client)
                          │  submit/status/result/cancel/watch/stats
                          ▼
                  shared state under one lock
        jobs, units, PriorityJobQueue, backoff timers, dedup indexes
                          ▲
                          │  assign / results / crash events
    scheduler thread <──> WorkerPool (persistent spawn processes)

The **scheduler** is the only thread that touches the pool (assignment,
event wait, kills, shutdown); connection threads just mutate queue/job
state under the lock and poke the pool's wake pipe.  That single-writer
rule is what keeps worker bookkeeping race-free without per-worker locks.

Duplicate submissions (shared dedup, multi-tenant namespacing)
--------------------------------------------------------------
Jobs are namespaced by tenant — ids are only resolvable by the tenant
that created them — but the *work* is deduplicated globally:

* a lift whose content address (:func:`repro.perf.store.lift_key`) is
  already in the persistent lift store is answered instantly from the
  store (``source = "store"``, a ``cache.lift.hit``) without touching
  the queue;
* a lift identical to one already queued/running attaches to it as a
  **follower** (``source = "inflight"``): one unit runs, every attached
  job completes with its result.  Cancelling the primary promotes the
  oldest follower to owner instead of killing shared work.

Retry / failure semantics
-------------------------
A worker death orphans exactly one unit.  The unit is retried after
``backoff_delay(crashes, retry_base, retry_cap)`` — capped exponential —
and after ``max_retries`` crashes the unit fails with structured
diagnostics (exit code, attempts, pid); the job then reports ``failed``
with those diagnostics rather than hanging.  Deterministic in-worker
exceptions and budget violations fail immediately (no retry).

Graceful drain
--------------
``SIGTERM`` (or the ``drain`` op) stops new submissions (``draining``
errors), lets every queued and running unit finish, finalizes all jobs,
shuts the pool down, and exits 0.  ``drain_grace`` bounds the wait; on
expiry remaining units are failed as ``drain-timeout`` and the exit code
is 1 — drain is graceful, never a hang.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.perf.counters import counters
from repro.serve import protocol
from repro.serve.jobs import (
    IdAllocator,
    Job,
    Unit,
    backoff_delay,
    summarize_record,
)
from repro.serve.pool import WorkerPool
from repro.serve.queue import PriorityJobQueue

#: Scheduler idle tick — the longest the loop sleeps with nothing to do.
IDLE_TICK = 0.5


@dataclass
class ServerConfig:
    socket_path: str
    workers: int = 2
    max_retries: int = 3
    retry_base: float = 0.25
    retry_cap: float = 5.0
    max_line_bytes: int = protocol.MAX_LINE_BYTES
    #: Persistent lift store: None = consult REPRO_CACHE, bools force.
    cache: bool | None = None
    cache_dir: str | None = None
    #: Accept chaos job kinds (fault-injection tests / CI smoke only).
    allow_chaos: bool = False
    #: Seconds a drain may wait for in-flight work before forcing it.
    drain_grace: float = 300.0
    start_method: str = "spawn"
    default_timeout_seconds: float = 10.0
    default_max_states: int = 10_000
    schedule: str = "scc"


@dataclass
class _Totals:
    submitted: int = 0
    done: int = 0
    failed: int = 0
    cancelled: int = 0
    retries: int = 0
    store_answers: int = 0
    inflight_attach: int = 0
    instrs_total: int = 0
    lift_seconds_total: float = 0.0
    by_tenant: dict[str, int] = field(default_factory=dict)


class Server:
    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._units: dict[str, Unit] = {}
        self._queue = PriorityJobQueue()
        self._delayed: list[tuple[float, str]] = []   # (ready_at, unit_id)
        self._kill_requests: list[str] = []           # unit ids to kill
        self._inflight: dict[str, str] = {}           # lift_key -> job id
        self._job_ids = IdAllocator("j")
        self._unit_ids = IdAllocator("u")
        self._totals = _Totals()
        self._draining = False
        self._drain_started: float | None = None
        self._drain_forced = False
        self._stopped = threading.Event()
        self._started_ts = time.time()
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._client_socks: set[socket.socket] = set()
        self._pool: WorkerPool | None = None
        from repro.perf.store import resolve_store

        self._store = resolve_store(config.cache, config.cache_dir)
        self._use_cache = self._store is not None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        path = self.config.socket_path
        try:
            os.unlink(path)
        except OSError:
            pass
        self._pool = WorkerPool(self.config.workers,
                                start_method=self.config.start_method)
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(path)
        self._listener.listen(64)
        self._listener.settimeout(0.2)
        for target, name in ((self._scheduler_loop, "repro-serve-scheduler"),
                             (self._accept_loop, "repro-serve-accept")):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)

    def begin_drain(self) -> None:
        """Stop accepting work; finish what is in flight; then exit."""
        with self._lock:
            if not self._draining:
                self._draining = True
                self._drain_started = time.monotonic()
            self._cond.notify_all()
        if self._pool is not None:
            self._pool.wake()

    def wait(self, timeout: float | None = None) -> int:
        """Block until the server has fully stopped; returns the exit
        code (0 = clean drain, 1 = drain_grace forced it)."""
        self._stopped.wait(timeout)
        if not self._stopped.is_set():
            return 1
        for thread in self._threads:
            thread.join(timeout=5)
        return 1 if self._drain_forced else 0

    def close(self) -> None:
        """Immediate teardown (tests); prefer :meth:`begin_drain`."""
        self._stopped.set()
        with self._lock:
            self._draining = True
            self._cond.notify_all()
        if self._pool is not None:
            self._pool.wake()
        for thread in self._threads:
            thread.join(timeout=5)
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._close_listener()

    def _close_listener(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        try:
            os.unlink(self.config.socket_path)
        except OSError:
            pass
        for sock in list(self._client_socks):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    # -- the scheduler thread ---------------------------------------------

    def _any_work(self) -> bool:
        return bool(len(self._queue) or self._delayed or self._kill_requests
                    or (self._pool and self._pool.busy_workers()))

    def _scheduler_loop(self) -> None:
        pool = self._pool
        while not self._stopped.is_set():
            with self._lock:
                self._process_kills_locked()
                timeout = self._release_and_assign_locked()
                if self._draining:
                    if not self._any_work():
                        break
                    grace = self.config.drain_grace
                    if (self._drain_started is not None
                            and time.monotonic() - self._drain_started
                            > grace):
                        self._force_drain_locked()
                        break
            events = pool.wait(timeout)
            with self._lock:
                for event in events:
                    if event.kind == "result":
                        self._on_result_locked(event)
                    elif event.kind == "died":
                        self._on_death_locked(event)
        pool.shutdown()
        self._close_listener()
        self._stopped.set()

    def _release_and_assign_locked(self) -> float:
        """Move ripe backoff units into the queue, hand queued units to
        idle workers; returns the pool-wait timeout."""
        now = time.monotonic()
        ripe = [uid for ready_at, uid in self._delayed if ready_at <= now]
        self._delayed = [(ready_at, uid) for ready_at, uid in self._delayed
                         if ready_at > now]
        for unit_id in ripe:
            unit = self._units[unit_id]
            if unit.state == "retry-wait":
                unit.state = "queued"
                self._queue.push(unit_id, unit, unit.priority)
        while True:
            idle = self._pool.idle_workers()
            if not idle:
                break
            popped = self._queue.pop()
            if popped is None:
                break
            unit_id, unit = popped
            worker = idle[0]
            unit.attempts += 1
            unit.state = "running"
            worker.assign(unit_id, unit.attempts, unit.payload)
            unit.worker_pid = worker.pid
            self._on_unit_started_locked(unit)
        if self._delayed:
            next_ready = min(ready_at for ready_at, _ in self._delayed)
            return max(0.0, min(IDLE_TICK, next_ready - now))
        return IDLE_TICK

    def _process_kills_locked(self) -> None:
        while self._kill_requests:
            unit_id = self._kill_requests.pop()
            unit = self._units.get(unit_id)
            if unit is None or unit.state != "cancelling":
                continue
            worker = self._pool.worker_for_unit(unit_id)
            if worker is not None:
                worker.unit_id = None  # nothing to orphan: it's cancelled
                self._pool.kill_worker(worker)
            unit.state = "cancelled"
            self._maybe_finalize_job_locked(self._jobs[unit.job_id])

    def _force_drain_locked(self) -> None:
        """drain_grace expired: fail everything still pending."""
        self._drain_forced = True
        while True:
            popped = self._queue.pop()
            if popped is None:
                break
            _, unit = popped
            self._fail_unit_locked(unit, {"code": "drain-timeout",
                                          "message": "drain grace expired "
                                                     "before the unit ran"})
        for _, unit_id in self._delayed:
            unit = self._units[unit_id]
            if unit.state == "retry-wait":
                self._fail_unit_locked(unit, {"code": "drain-timeout",
                                              "message": "drain grace "
                                                         "expired in "
                                                         "backoff"})
        self._delayed.clear()
        for worker in list(self._pool.busy_workers()):
            unit = self._units.get(worker.unit_id)
            worker.unit_id = None
            self._pool.kill_worker(worker)
            if unit is not None and unit.state == "running":
                self._fail_unit_locked(unit, {"code": "drain-timeout",
                                              "message": "drain grace "
                                                         "expired mid-run"})

    # -- unit / job state machine (all under the lock) ---------------------

    def _on_unit_started_locked(self, unit: Unit) -> None:
        job = self._jobs[unit.job_id]
        if job.state == "queued":
            job.state = "running"
            job.started_ts = time.time()
            self._sync_followers_locked(job)
            job.emit("job_started", job=job.id, attempt=unit.attempts)
        if job.kind == "corpus":
            job.emit("task_started", task=self._unit_name(unit),
                     queue_depth=job.units_total - job.units_done)
        self._cond.notify_all()

    def _unit_name(self, unit: Unit) -> str:
        payload = unit.payload
        if payload.get("type") == "task":
            return payload["task"].name
        return unit.id

    def _on_result_locked(self, event) -> None:
        unit = self._units.get(event.unit_id)
        if unit is None or unit.state in ("done", "failed", "cancelled"):
            return
        if unit.state == "cancelling" and unit.id in self._kill_requests:
            # Finished before the kill landed — the result wins.
            self._kill_requests.remove(unit.id)
        result = event.result
        if result.get("status") == "ok":
            unit.state = "done"
            unit.result = result
            self._account_unit_locked(unit, result)
        else:
            self._fail_unit_locked(unit, result.get("error",
                                                    {"code": "internal",
                                                     "message": "no error "
                                                                "detail"}))
            return
        job = self._jobs[unit.job_id]
        job.units_done += 1
        if job.kind == "corpus" and result.get("record") is not None:
            record = result["record"]
            job.metrics["instructions"] = (job.metrics.get("instructions", 0)
                                           + record.instructions)
            job.metrics["seconds"] = round(
                job.metrics.get("seconds", 0.0) + record.seconds, 6)
            elapsed = max(time.time() - (job.started_ts or job.created_ts),
                          1e-9)
            job.emit("task_finished", task=self._unit_name(unit),
                     outcome=record.outcome, done=job.units_done,
                     total=job.units_total,
                     instructions=record.instructions,
                     seconds=round(record.seconds, 6),
                     instrs_total=job.metrics["instructions"],
                     instrs_per_second=round(
                         job.metrics["instructions"] / elapsed, 2),
                     queue_depth=job.units_total - job.units_done)
        self._maybe_finalize_job_locked(job)

    def _on_death_locked(self, event) -> None:
        if event.unit_id is None:
            return
        unit = self._units.get(event.unit_id)
        if unit is None or unit.state in ("done", "failed", "cancelled"):
            return
        if unit.state == "cancelling":
            if unit.id in self._kill_requests:
                self._kill_requests.remove(unit.id)
            unit.state = "cancelled"
            self._maybe_finalize_job_locked(self._jobs[unit.job_id])
            return
        unit.crashes += 1
        unit.worker_pid = None
        job = self._jobs[unit.job_id]
        if unit.crashes > self.config.max_retries:
            self._fail_unit_locked(unit, {
                "code": "worker-crashed",
                "message": f"worker died {unit.crashes} times running this "
                           f"unit (last exit code {event.exitcode}); "
                           f"retries exhausted",
                "exitcode": event.exitcode,
                "attempts": unit.attempts,
            })
            return
        delay = backoff_delay(unit.crashes, self.config.retry_base,
                              self.config.retry_cap)
        unit.state = "retry-wait"
        unit.not_before = time.monotonic() + delay
        self._delayed.append((unit.not_before, unit.id))
        self._totals.retries += 1
        job.emit("job_retried", job=job.id, attempt=unit.crashes,
                 delay=round(delay, 6),
                 reason=f"worker-crashed exit {event.exitcode}")
        self._cond.notify_all()

    def _fail_unit_locked(self, unit: Unit, error: dict) -> None:
        unit.state = "failed"
        unit.error = error
        job = self._jobs[unit.job_id]
        job.diagnostics.append({"unit": unit.id,
                                "name": self._unit_name(unit),
                                "attempts": unit.attempts, **error})
        self._maybe_finalize_job_locked(job)

    def _account_unit_locked(self, unit: Unit, result: dict) -> None:
        record = result.get("record")
        if record is not None:
            self._totals.instrs_total += record.instructions
            self._totals.lift_seconds_total += record.seconds
        delta = result.get("counters")
        if delta:
            merged = self._jobs[unit.job_id].metrics.setdefault(
                "counters", {})
            counters.merge(merged, delta)

    def _job_units_locked(self, job: Job) -> list[Unit]:
        return [u for u in self._units.values() if u.job_id == job.id]

    def _maybe_finalize_job_locked(self, job: Job) -> None:
        if job.finished:
            return
        units = self._job_units_locked(job)
        if any(u.state not in ("done", "failed", "cancelled")
               for u in units):
            return
        if any(u.state == "failed" for u in units):
            state = "failed"
        elif any(u.state == "cancelled" for u in units):
            state = "cancelled"
        else:
            state = "done"
        job.result = self._build_result_locked(job, units) \
            if state == "done" else None
        self._finalize_job_locked(job, state)

    def _finalize_job_locked(self, job: Job, state: str) -> None:
        job.state = state
        job.finished_ts = time.time()
        key = {"done": "done", "failed": "failed",
               "cancelled": "cancelled"}[state]
        setattr(self._totals, key, getattr(self._totals, key) + 1)
        seconds = round(job.finished_ts - job.created_ts, 6)
        job.emit("job_finished", job=job.id, state=state, seconds=seconds,
                 source=job.source)
        for follower_id in job.followers:
            follower = self._jobs.get(follower_id)
            if follower is None or follower.finished:
                continue
            follower.result = job.result
            follower.metrics = dict(job.metrics)
            follower.diagnostics = list(job.diagnostics)
            follower.units_total = job.units_total
            follower.units_done = job.units_done
            self._finalize_job_locked(follower, state)
        # Drop the in-flight dedup entry pointing at this job, if any.
        for key_, owner in list(self._inflight.items()):
            if owner == job.id:
                del self._inflight[key_]
        self._cond.notify_all()

    def _build_result_locked(self, job: Job, units: list[Unit]) -> dict:
        if job.kind == "chaos":
            payload = dict(units[0].result)
            payload.pop("status", None)
            return {"chaos": payload}
        if job.kind == "lift":
            result = units[0].result
            record = result["record"]
            job.metrics.setdefault("instructions", record.instructions)
            job.metrics.setdefault("seconds", round(record.seconds, 6))
            return {"outcome": record.outcome,
                    "record": summarize_record(record),
                    "source": job.source}
        # corpus: merge exactly like run_corpus would (shared assembler).
        from repro.eval.runner import assemble_report

        outcomes = []
        for unit in sorted(units, key=lambda u: u.id):
            result = unit.result
            outcomes.append((result["record"], result.get("counters") or {},
                             result.get("obs")))
        report = assemble_report(outcomes)
        totals_bin = report.totals("binary")
        totals_fn = report.totals("function")
        return {
            "canonical_json": report.canonical_json(),
            "outcomes": {record.name: record.outcome
                         for record in report.records},
            "totals": {
                "functions": len(report.records),
                "instructions": (totals_bin.instructions
                                 + totals_fn.instructions),
                "lifted": totals_bin.lifted + totals_fn.lifted,
            },
            "source": job.source,
        }

    def _sync_followers_locked(self, job: Job) -> None:
        for follower_id in job.followers:
            follower = self._jobs.get(follower_id)
            if follower is not None and not follower.finished:
                follower.state = job.state
                follower.started_ts = job.started_ts

    # -- submission --------------------------------------------------------

    def submit(self, spec: dict, tenant: str) -> dict:
        """Validate + enqueue one job; the core of the ``submit`` op.

        Returns the response dict.  Also the in-process entry point the
        bench harness uses (no socket round-trip)."""
        try:
            protocol.validate_job_spec(spec)
        except protocol.ProtocolError as exc:
            return protocol.error_response(exc.code, exc.message)
        kind = spec["kind"]
        if kind == "chaos" and not self.config.allow_chaos:
            return protocol.error_response(
                "chaos-disabled",
                "chaos jobs need a server started with --allow-chaos")
        with self._lock:
            if self._draining:
                return protocol.error_response(
                    "draining", "server is draining; not accepting jobs")
        # Build payloads outside the lock: corpus construction and binary
        # loading are the slow part of submission.
        try:
            units_payloads, dedup_key = self._build_payloads(spec)
        except protocol.ProtocolError as exc:
            return protocol.error_response(exc.code, exc.message)
        priority = spec.get("priority", 0)
        with self._lock:
            if self._draining:
                return protocol.error_response(
                    "draining", "server is draining; not accepting jobs")
            job = Job(id=self._job_ids.next(), tenant=tenant, kind=kind,
                      spec=spec, priority=priority)
            self._jobs[job.id] = job
            self._totals.submitted += 1
            self._totals.by_tenant[tenant] = (
                self._totals.by_tenant.get(tenant, 0) + 1)
            # Shared dedup, fastest first: the persistent store, then an
            # identical in-flight job (any tenant — results are content-
            # addressed, so sharing them across tenants is sound).
            if dedup_key is not None and self._store is not None \
                    and self._store.contains(dedup_key):
                stored = self._store.get(dedup_key)
                if stored is not None:
                    self._complete_from_store_locked(job, spec, stored)
                    return {"ok": True, "job_id": job.id,
                            "state": job.state, "source": job.source}
            if dedup_key is not None and dedup_key in self._inflight:
                primary = self._jobs[self._inflight[dedup_key]]
                primary.followers.append(job.id)
                job.source = "inflight"
                job.state = primary.state
                job.units_total = primary.units_total
                self._totals.inflight_attach += 1
                job.emit("job_queued", job=job.id, tenant=tenant,
                         job_kind=kind, priority=priority,
                         queue_depth=len(self._queue))
                return {"ok": True, "job_id": job.id, "state": job.state,
                        "source": "inflight", "primary": primary.id}
            job.units_total = len(units_payloads)
            for payload in units_payloads:
                unit = Unit(id=self._unit_ids.next(), job_id=job.id,
                            payload=payload, priority=priority)
                self._units[unit.id] = unit
                self._queue.push(unit.id, unit, priority)
            if dedup_key is not None:
                self._inflight[dedup_key] = job.id
            job.emit("job_queued", job=job.id, tenant=tenant, job_kind=kind,
                     priority=priority, queue_depth=len(self._queue))
            self._cond.notify_all()
        self._pool.wake()
        return {"ok": True, "job_id": job.id, "state": "queued",
                "source": "worker"}

    def _build_payloads(self, spec: dict) -> tuple[list[dict], str | None]:
        """Resolve *spec* into worker payloads + an optional dedup key."""
        kind = spec["kind"]
        budgets = {"cpu_seconds": spec.get("cpu_seconds"),
                   "memory_bytes": spec.get("memory_bytes")}
        if kind == "chaos":
            payload = {"type": "chaos", "action": spec["action"], **budgets}
            for name in ("seconds", "attempts", "bytes"):
                if name in spec:
                    payload[name] = spec[name]
            return [payload], None
        options = spec.get("options", {})
        timeout_seconds = options.get("timeout_seconds",
                                      self.config.default_timeout_seconds)
        max_states = options.get("max_states",
                                 self.config.default_max_states)
        schedule = options.get("schedule", self.config.schedule)
        pointer_summaries = options.get("pointer_summaries", False)
        engine = options.get("engine", "tau")
        use_cache = spec.get("cache", self._use_cache) and self._use_cache
        if kind == "lift":
            from repro.elf import load_binary
            from repro.eval.runner import LiftTask
            from repro.perf.store import lift_key

            try:
                binary = load_binary(spec["path"])
            except Exception as exc:  # ELF parse errors vary; all bad-job
                raise protocol.ProtocolError(
                    "bad-job", f"cannot load {spec['path']!r}: {exc}")
            task = LiftTask(
                name=os.path.basename(spec["path"]), directory="serve",
                kind="binary", binary=binary, function=None,
                timeout_seconds=timeout_seconds, max_states=max_states,
                cache=use_cache, cache_dir=self.config.cache_dir,
                schedule=schedule, pointer_summaries=pointer_summaries,
                engine=engine)
            key = None
            if self._store is not None:
                # lift_key folds the engine, so tau and uop results never
                # alias in the store or the in-flight dedup table.
                key = lift_key(binary, max_states=max_states,
                               timeout_seconds=timeout_seconds,
                               schedule=schedule,
                               pointer_summaries=pointer_summaries,
                               engine=engine)
            return [{"type": "task", "task": task, **budgets}], key
        # corpus
        from repro.corpus import build_corpus
        from repro.eval.runner import corpus_tasks

        corpus = build_corpus(spec["scale"])
        tasks = corpus_tasks(corpus, timeout_seconds, max_states,
                             False, 1, use_cache, self.config.cache_dir,
                             schedule, pointer_summaries, engine)
        return [{"type": "task", "task": task, **budgets}
                for task in tasks], None

    def _complete_from_store_locked(self, job: Job, spec: dict,
                                    stored) -> None:
        from repro.eval.runner import record_from_result

        record = record_from_result(os.path.basename(spec["path"]),
                                    "serve", "binary", stored)
        job.source = "store"
        job.units_total = job.units_done = 1
        job.metrics = {"instructions": record.instructions,
                       "seconds": round(record.seconds, 6)}
        self._totals.store_answers += 1
        job.emit("job_queued", job=job.id, tenant=job.tenant,
                 job_kind=job.kind, priority=job.priority,
                 queue_depth=len(self._queue))
        job.result = {"outcome": record.outcome,
                      "record": summarize_record(record),
                      "source": "store"}
        self._finalize_job_locked(job, "done")

    # -- the other ops -----------------------------------------------------

    def _job_for(self, job_id: str, tenant: str) -> Job | None:
        """Tenant-namespaced lookup: other tenants' jobs do not exist."""
        job = self._jobs.get(job_id)
        if job is None or job.tenant != tenant:
            return None
        return job

    def status(self, job_id: str, tenant: str) -> dict:
        with self._lock:
            job = self._job_for(job_id, tenant)
            if job is None:
                return protocol.error_response(
                    "unknown-job", f"no job {job_id!r} for this tenant")
            return {"ok": True, "job": job.status_dict()}

    def result(self, job_id: str, tenant: str) -> dict:
        with self._lock:
            job = self._job_for(job_id, tenant)
            if job is None:
                return protocol.error_response(
                    "unknown-job", f"no job {job_id!r} for this tenant")
            if not job.finished:
                return protocol.error_response(
                    "not-done", f"job {job_id} is {job.state}")
            return {"ok": True, "job": job.status_dict(),
                    "result": job.result}

    def cancel(self, job_id: str, tenant: str) -> dict:
        with self._lock:
            job = self._job_for(job_id, tenant)
            if job is None:
                return protocol.error_response(
                    "unknown-job", f"no job {job_id!r} for this tenant")
            if job.finished:
                return {"ok": True, "job_id": job.id, "cancelled": False,
                        "state": job.state}
            if job.source == "inflight":
                # A follower owns no units; detach it alone.
                for primary in self._jobs.values():
                    if job.id in primary.followers:
                        primary.followers.remove(job.id)
                self._finalize_job_locked(job, "cancelled")
                return {"ok": True, "job_id": job.id, "cancelled": True,
                        "state": "cancelled"}
            if job.followers:
                promoted = self._promote_follower_locked(job)
                if promoted is not None:
                    self._finalize_job_locked(job, "cancelled")
                    return {"ok": True, "job_id": job.id,
                            "cancelled": True, "state": "cancelled",
                            "promoted": promoted.id}
            kills = False
            for unit in self._job_units_locked(job):
                if unit.state == "queued":
                    self._queue.cancel(unit.id)
                    unit.state = "cancelled"
                elif unit.state == "retry-wait":
                    self._delayed = [(t, uid) for t, uid in self._delayed
                                     if uid != unit.id]
                    unit.state = "cancelled"
                elif unit.state == "running":
                    unit.state = "cancelling"
                    self._kill_requests.append(unit.id)
                    kills = True
            if not kills:
                self._maybe_finalize_job_locked(job)
            else:
                # Finalization happens when the scheduler processes the
                # kill (the job must not look finished before its units
                # are), but wake watchers now.
                self._cond.notify_all()
        self._pool.wake()
        return {"ok": True, "job_id": job_id, "cancelled": True,
                "state": "cancelled"}

    def _promote_follower_locked(self, job: Job) -> Job | None:
        """Hand *job*'s units to its oldest live follower (dedup must not
        let one tenant's cancel kill another tenant's job)."""
        while job.followers:
            follower = self._jobs.get(job.followers.pop(0))
            if follower is None or follower.finished:
                continue
            follower.followers = job.followers
            follower.units_total = job.units_total
            follower.units_done = job.units_done
            follower.source = "worker"
            follower.metrics = job.metrics
            job.followers = []
            for unit in self._job_units_locked(job):
                unit.job_id = follower.id
            for key, owner in list(self._inflight.items()):
                if owner == job.id:
                    self._inflight[key] = follower.id
            return follower
        return None

    def stats(self) -> dict:
        with self._lock:
            jobs_by_state: dict[str, int] = {}
            for job in self._jobs.values():
                jobs_by_state[job.state] = jobs_by_state.get(job.state,
                                                             0) + 1
            uptime = time.time() - self._started_ts
            payload = {
                "state": "draining" if self._draining else "serving",
                "uptime_seconds": round(uptime, 3),
                "protocol_version": protocol.PROTOCOL_VERSION,
                "workers": self._pool.stats() if self._pool else {},
                "queue": {
                    "depth": len(self._queue),
                    "delayed": len(self._delayed),
                    "by_priority": self._queue.depth_by_priority(),
                },
                "jobs": {
                    "submitted": self._totals.submitted,
                    "by_state": dict(sorted(jobs_by_state.items())),
                    "by_tenant": dict(sorted(
                        self._totals.by_tenant.items())),
                    "retries": self._totals.retries,
                },
                "dedup": {
                    "store_answers": self._totals.store_answers,
                    "inflight_attach": self._totals.inflight_attach,
                },
                "throughput": {
                    "instrs_total": self._totals.instrs_total,
                    "lift_seconds_total": round(
                        self._totals.lift_seconds_total, 6),
                    "instrs_per_second": round(
                        self._totals.instrs_total
                        / self._totals.lift_seconds_total, 2)
                    if self._totals.lift_seconds_total else 0.0,
                },
                "cache": {"enabled": self._use_cache},
            }
            if self._store is not None:
                store_stats = self._store.stats()
                payload["cache"].update({
                    "root": store_stats["root"],
                    "entries": store_stats["entries"],
                    "telemetry": store_stats["telemetry"],
                })
            return {"ok": True, "stats": payload}

    # -- the socket front end ---------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            listener = self._listener
            if listener is None:
                break
            try:
                sock, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(target=self._handle_connection,
                                      args=(sock,), daemon=True,
                                      name="repro-serve-conn")
            thread.start()

    def _handle_connection(self, sock: socket.socket) -> None:
        self._client_socks.add(sock)
        reader = protocol.LineReader(sock, self.config.max_line_bytes)
        try:
            while not self._stopped.is_set():
                try:
                    request = protocol.read_request(reader)
                except protocol.ProtocolError as exc:
                    self._send(sock, protocol.error_response(exc.code,
                                                             exc.message))
                    if exc.code in protocol.CLOSING_ERRORS:
                        return
                    continue
                except OSError:
                    return
                if request is None:
                    return
                try:
                    done = self._dispatch(sock, request)
                except Exception as exc:  # must never take the daemon down
                    self._send(sock, protocol.error_response(
                        "internal", f"{type(exc).__name__}: {exc}"))
                    continue
                if done:
                    return
        finally:
            self._client_socks.discard(sock)
            try:
                sock.close()
            except OSError:
                pass

    def _send(self, sock: socket.socket, obj: dict) -> None:
        try:
            sock.sendall(protocol.encode(obj))
        except OSError:
            pass

    def _dispatch(self, sock: socket.socket, request: dict) -> bool:
        """Handle one request; True means the connection should close."""
        op = request["op"]
        tenant = request.get("tenant", "default")
        if op == "ping":
            self._send(sock, {"ok": True, "pong": round(time.time(), 3),
                              "version": protocol.PROTOCOL_VERSION})
            return False
        if op == "submit":
            self._send(sock, self.submit(request["job"], tenant))
            return False
        if op == "status":
            self._send(sock, self.status(request["job_id"], tenant))
            return False
        if op == "result":
            self._send(sock, self.result(request["job_id"], tenant))
            return False
        if op == "cancel":
            self._send(sock, self.cancel(request["job_id"], tenant))
            return False
        if op == "stats":
            self._send(sock, self.stats())
            return False
        if op == "drain":
            with self._lock:
                pending = len(self._queue) + len(self._delayed) + len(
                    self._pool.busy_workers() if self._pool else [])
            self.begin_drain()
            self._send(sock, {"ok": True, "state": "draining",
                              "pending": pending})
            return False
        if op == "watch":
            return self._watch(sock, request["job_id"], tenant)
        raise AssertionError(f"unvalidated op {op!r}")

    def _watch(self, sock: socket.socket, job_id: str, tenant: str) -> bool:
        """Stream a job's heartbeat events until it finishes; the final
        line is the normal status response.  Closes the connection after
        (a watch is a terminal request on its connection)."""
        sent = 0
        while True:
            with self._cond:
                job = self._job_for(job_id, tenant)
                if job is None:
                    self._send(sock, protocol.error_response(
                        "unknown-job", f"no job {job_id!r} for this tenant"))
                    return True
                total = len(job.events) + job.events_dropped
                start = max(sent - job.events_dropped, 0)
                fresh = list(job.events[start:])
                sent = total
                finished = job.finished
                final = job.status_dict() if finished else None
                if not fresh and not finished:
                    self._cond.wait(timeout=0.5)
                    if self._stopped.is_set():
                        return True
                    continue
            for event in fresh:
                self._send(sock, {"event": event})
            if finished:
                self._send(sock, {"ok": True, "job": final})
                return True
