"""The context-free function-call policy (Section 4.2).

External calls (Section 4.2.1): known-terminating functions stop
exploration; unknown externals *clean* the state — heap and globals are
destroyed, caller-saved registers are havocked, only the local stack frame
and callee-saved registers survive — and a MUST-PRESERVE proof obligation
is recorded.

Internal calls (Section 4.2.2): the callee is explored exactly once, in a
fresh state whose return-address slot holds the symbol ``ret@<entry>``; the
caller's continuation is parked unreachable until some ``ret`` in the
callee sets the instruction pointer to that symbol.
"""

from __future__ import annotations

from repro.expr import Const, Expr, Var
from repro.isa.registers import ARG_REGISTERS, CALLEE_SAVED
from repro.perf.counters import gated as _gated
from repro.pred import Predicate
from repro.semantics import LiftContext, SymState, havoc_non_stack, initial_state
from repro.smt.linear import linearize
from repro.smt.solver import is_stack_pointer
from repro.hoare.annotations import Obligation
from repro.hoare.resolve import return_symbol

#: External functions known not to return (Section 4.2.1).
TERMINATING_EXTERNALS = frozenset({
    "exit", "_exit", "_Exit", "abort", "quick_exit",
    "__stack_chk_fail", "__assert_fail", "err", "errx", "verr", "verrx",
    "pthread_exit", "longjmp", "siglongjmp",
})

#: Externals whose presence marks the binary as concurrent (out of scope).
CONCURRENCY_EXTERNALS_PREFIX = "pthread_"


def is_terminating_external(name: str) -> bool:
    return name in TERMINATING_EXTERNALS


def is_concurrency_external(name: str) -> bool:
    return (
        name.startswith(CONCURRENCY_EXTERNALS_PREFIX)
        and name not in TERMINATING_EXTERNALS
    )


def callee_initial_state(entry: int) -> SymState:
    """The fresh context-free state a callee is explored in."""
    return initial_state(entry, ret_symbol=return_symbol(entry))


def after_call_state(
    state: SymState, return_addr: int, ctx: LiftContext, summary=None
) -> SymState:
    """The caller's continuation after an opaque (external or context-free
    internal) call: System V cleaning.

    With a pointer-analysis *summary* of the callee (duck-typed: ``is_top``,
    ``writes_nothing``, ``keeps(region)``), the memory cleaning is refined:
    clauses provably disjoint from everything the callee MAY write survive,
    and the epoch taint is left alone when the callee writes no non-local
    memory at all.  Registers are cleaned exactly as without a summary —
    the refinement only touches what :func:`havoc_non_stack` keeps."""
    if summary is not None and not summary.is_top:
        _gated("pointer_refined_havocs")
        epoch = state.epoch if summary.writes_nothing else 1
        cleaned = havoc_non_stack(state, ctx, keep=summary.keeps, epoch=epoch)
    else:
        cleaned = havoc_non_stack(state, ctx)
    regs: dict[str, Expr] = {}
    old = cleaned.pred.reg_dict()
    for reg in CALLEE_SAVED + ("rsp",):
        if reg in old:
            regs[reg] = old[reg]
    regs["rax"] = ctx.names.fresh("retval")
    regs["rip"] = Const(return_addr)
    pred = cleaned.pred.with_regs(regs).with_flags(None)
    return cleaned.with_pred(pred).mark_reachable(False)


def call_obligation(
    state: SymState, call_addr: int, callee: str
) -> Obligation:
    """The MUST-PRESERVE obligation for an opaque call (Section 5.3).

    The cleaning above *kept* the local stack frame: the obligation records
    exactly which stack regions the callee is assumed to leave intact, and
    which arguments hand the callee pointers into that frame (the dangerous
    ones — negating this obligation is an exploit candidate, cf. ret2win).
    """
    def render_stack(value) -> str:
        offset = linearize(value).const
        if offset >= 1 << 63:
            offset -= 1 << 64
        if offset == 0:
            return "RSP0"
        return f"RSP0 {'-' if offset < 0 else '+'} {abs(offset):#x}"

    pointer_args = tuple(
        (reg, render_stack(value))
        for reg in ARG_REGISTERS
        if (value := state.pred.get_reg(reg)) is not None
        and is_stack_pointer(value)
    )
    preserve = ["[RSP0 - 8 TO RSP0 + 8]"]  # the return-address slot
    for region, _ in state.pred.mem:
        if is_stack_pointer(region.addr):
            offset = linearize(region.addr).const
            if offset >= 1 << 63:
                offset -= 1 << 64
            preserve.append(f"[RSP0{offset:+#x}, {region.size}]")
    return Obligation(
        addr=call_addr,
        callee=callee,
        pointer_args=pointer_args,
        preserve=tuple(sorted(set(preserve))),
    )
