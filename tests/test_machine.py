"""Concrete emulator tests, including small end-to-end programs."""

from __future__ import annotations

import pytest

from repro.elf import BinaryBuilder
from repro.isa import Imm, Mem, abs64, insn
from repro.machine import CPU, MachineError, run_binary


def build(program) -> "Binary":
    builder = BinaryBuilder("test")
    program(builder)
    return builder.build(entry="main")


def test_mov_and_arith():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("mov", "eax", Imm(40, 32))
        t.emit("add", "eax", Imm(2, 32))
        t.emit("ret")

    cpu = run_binary(build(program))
    assert cpu.exit_code == 42


def test_function_call_and_stack():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("mov", "edi", Imm(5, 32))
        t.emit("call", "double_it")
        t.emit("add", "eax", Imm(1, 32))
        t.emit("ret")
        t.label("double_it")
        t.emit("lea", "eax", Mem(32, base="rdi", index="rdi", scale=1))
        t.emit("ret")

    cpu = run_binary(build(program))
    assert cpu.exit_code == 11


def test_loop_sums_first_n():
    def program(b):
        t = b.text
        t.label("main")            # sum 1..rdi
        t.emit("xor", "eax", "eax")
        t.label("loop")
        t.emit("test", "rdi", "rdi")
        t.emit("je", "done")
        t.emit("add", "rax", "rdi")
        t.emit("sub", "rdi", Imm(1, 32))
        t.emit("jmp", "loop")
        t.label("done")
        t.emit("ret")

    cpu = run_binary(build(program), args=[10])
    assert cpu.exit_code == 55


def test_conditional_signed_vs_unsigned():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("cmp", "rdi", "rsi")
        t.emit("jl", "less")       # signed
        t.emit("mov", "eax", Imm(0, 32))
        t.emit("ret")
        t.label("less")
        t.emit("mov", "eax", Imm(1, 32))
        t.emit("ret")

    binary = build(program)
    assert run_binary(binary, args=[3, 5]).exit_code == 1
    assert run_binary(binary, args=[5, 3]).exit_code == 0
    # -1 <s 1 even though 0xffff... >u 1.
    assert run_binary(binary, args=[(1 << 64) - 1, 1]).exit_code == 1


def test_memory_store_load_roundtrip():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("push", "rbp")
        t.emit("mov", "rbp", "rsp")
        t.emit("sub", "rsp", Imm(16, 32))
        t.emit("mov", Mem(64, base="rbp", disp=-8), Imm(1234, 32))
        t.emit("mov", "rax", Mem(64, base="rbp", disp=-8))
        t.emit("leave")
        t.emit("ret")

    assert run_binary(build(program)).exit_code == 1234 & 0xFF


def test_jump_table_dispatch():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("cmp", "rdi", Imm(2, 32))
        t.emit("ja", "default")
        t.emit("lea", "rax", Mem(64, base="rip", disp=0))  # placeholder
        # Proper table load: rax = [table + rdi*8]
        b.text._items.pop()  # drop placeholder
        t.emit("movabs", "rax", abs64("table"))
        t.emit("mov", "rax", Mem(64, base="rax", index="rdi", scale=8))
        t.emit("jmp", "rax")
        t.label("default")
        t.emit("mov", "eax", Imm(99, 32))
        t.emit("ret")
        t.label("case0")
        t.emit("mov", "eax", Imm(10, 32))
        t.emit("ret")
        t.label("case1")
        t.emit("mov", "eax", Imm(11, 32))
        t.emit("ret")
        t.label("case2")
        t.emit("mov", "eax", Imm(12, 32))
        t.emit("ret")
        rod = b.rodata
        rod.label("table")
        rod.quad(abs64("case0"))
        rod.quad(abs64("case1"))
        rod.quad(abs64("case2"))

    binary = build(program)
    assert run_binary(binary, args=[0]).exit_code == 10
    assert run_binary(binary, args=[1]).exit_code == 11
    assert run_binary(binary, args=[2]).exit_code == 12
    assert run_binary(binary, args=[3]).exit_code == 99


def test_subregister_writes():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("movabs", "rax", Imm(0x1122334455667788, 64))
        t.emit("mov", "al", Imm(0xFF, 8))      # only low byte
        t.emit("mov", "rdx", "rax")
        t.emit("mov", "eax", Imm(0, 32))        # zero-extends
        t.emit("mov", "rax", "rdx")
        t.emit("ret")

    cpu = run_binary(build(program))
    assert cpu.regs["rdx"] == 0x11223344556677FF


def test_division():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("mov", "rax", "rdi")
        t.emit("cqo")
        t.emit("idiv", "rsi")
        t.emit("ret")

    assert run_binary(build(program), args=[100, 7]).exit_code == 14


def test_shifts_and_rotates():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("mov", "rax", "rdi")
        t.emit("shl", "rax", Imm(4, 8))
        t.emit("shr", "rax", Imm(2, 8))
        t.emit("ret")

    assert run_binary(build(program), args=[3]).exit_code == 12


def test_setcc_and_cmov():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("xor", "eax", "eax")
        t.emit("cmp", "rdi", "rsi")
        t.emit("sete", "al")
        t.emit("mov", "ecx", Imm(7, 32))
        t.emit("cmp", "rdi", Imm(0, 32))
        t.emit("cmove", "rax", "rcx")
        t.emit("ret")

    assert run_binary(build(program), args=[4, 4]).exit_code == 1
    assert run_binary(build(program), args=[0, 9]).exit_code == 7


def test_external_call_handler():
    def program(b):
        b.extern("get_seven")
        t = b.text
        t.label("main")
        t.emit("call", "get_seven")
        t.emit("add", "eax", Imm(1, 32))
        t.emit("ret")

    def get_seven(cpu):
        cpu.regs["rax"] = 7

    cpu = run_binary(build(program), extern_handlers={"get_seven": get_seven})
    assert cpu.exit_code == 8


def test_unhandled_external_raises():
    def program(b):
        b.extern("mystery")
        t = b.text
        t.label("main")
        t.emit("call", "mystery")
        t.emit("ret")

    with pytest.raises(MachineError):
        run_binary(build(program))


def test_step_budget():
    def program(b):
        t = b.text
        t.label("main")
        t.label("spin")
        t.emit("jmp", "spin")

    with pytest.raises(MachineError):
        run_binary(build(program), max_steps=100)


def test_syscall_exit():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("mov", "edi", Imm(33, 32))
        t.emit("mov", "eax", Imm(60, 32))
        t.emit("syscall")

    assert run_binary(build(program)).exit_code == 33


def test_trace_records_executed_addresses():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("mov", "eax", Imm(1, 32))
        t.emit("ret")

    cpu = run_binary(build(program))
    assert cpu.trace[0] == cpu.binary.entry
    assert len(cpu.trace) == 2
