"""Campaign driver: fault/mutant trials, worker-pool fan-out, kill rates.

A **trial** pairs one detector subject (a qa target binary, a byte-level
mutant of one, or the differential battery) with at most one injected
fault.  The driver computes a fault-free baseline signature per subject in
the parent process, then runs every trial — serially or over a
:class:`~concurrent.futures.ProcessPoolExecutor` — and compares the
trial's signature against the baseline.  A differing signature is a
**kill**, attributed to the first differing detector in pipeline order.

Determinism contract (mirrors :mod:`repro.eval.runner`): trials are
deterministic functions of ``(subject bytes, fault name, seed)`` — fault
injection clears every memo cache on install and uninstall, the triple
replay is seeded, and signatures contain no wall-clock or cache-state
content.  Results are merged in sorted trial-name order, so
``canonical_json()`` is byte-identical across repeats and across
``jobs=1`` vs ``jobs=N``.

Three gates make up :meth:`CampaignReport.gate_ok`:

* every curated ``expect="killed"`` trial is killed (100% kill rate);
* no control trial detects anything (zero false positives);
* no ``expect="survives"`` mutant is killed (legal programs stay legal).
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.elf import Binary
from repro.obs.metrics import metrics as _M
from repro.obs.tracer import tracer as _T
from repro.qa import detectors, faults, mutants, targets
from repro.qa.detectors import (
    DETECTOR_ORDER,
    binary_signature,
    signature_diff,
    signature_json,
)
from repro.qa.diffsweep import run_battery
from repro.qa.targets import BATTERY

#: Default replay sampling for campaign lifts (small targets, 4 witnesses
#: per triple keeps the quick campaign fast and is plenty to kill the
#: curated faults deterministically).
DEFAULT_SAMPLES = 4
DEFAULT_SEED = 2022

#: The battery subset campaign trials run (the full form sweep lives in
#: the test suite).  One sensitive form per family: ALU value+flag
#:  materialization, shifts, memory traffic, conditions, strings, stack.
BATTERY_FORMS = (
    "add-r64-r64", "sub-r64-r64", "and-r64-r64", "or-r64-r64",
    "xor-r64-r64", "cmp-r64-r64", "adc-r64-r64", "sbb-r64-r64",
    "add-r64-imm8", "add-m64-r64", "mov-r64-m64", "mov-m64-r64",
    "shl-r64-imm8", "shr-r64-cl", "sar-r64-imm8",
    "sete-r8", "setb-r8", "setl-r8", "setg-r8",
    "cmove-r64-r64", "cmovb-r64-r64",
    "je-rel", "jb-rel", "jl-rel", "jge-rel",
    "push-pop-r64", "leave-frame", "lea-r64-m",
    "movsq", "stosq", "rep_movsq",
    "imul-r64-r64", "idiv-r64", "neg-r64", "inc-r64",
)


@dataclass(frozen=True)
class Trial:
    """One campaign unit: subject × (optional) fault, plus expectations."""

    name: str
    kind: str            # "fault" | "mutant" | "control"
    target: str          # qa target name or the battery pseudo-target
    fault: str | None    # fault name (kind == "fault")
    mutation: str | None # curated/random mutant name (kind == "mutant")
    fault_class: str     # fault layer / mutation operator / "control"
    expect: str          # "killed" | "survives" | "clean" | "unknown"


@dataclass
class TrialResult:
    name: str
    kind: str
    target: str
    fault_class: str
    expect: str
    killed: bool
    killed_by: str                 # first differing detector, "" if none
    detectors: list[str] = field(default_factory=list)
    detail: str = ""
    #: Expectation met?  ("unknown" trials are always ok.)
    ok: bool = True
    #: baseline/observed signatures, kept only for trials that missed
    #: their expectation (the CI witness artifact).
    witness: dict[str, Any] | None = None


@dataclass
class CampaignReport:
    campaign: str
    seed: int
    samples: int
    results: list[TrialResult] = field(default_factory=list)

    def trials_of(self, expect: str) -> list[TrialResult]:
        return [r for r in self.results if r.expect == expect]

    @property
    def curated_killed(self) -> int:
        return sum(1 for r in self.trials_of("killed") if r.killed)

    @property
    def kill_rate(self) -> float:
        gated = self.trials_of("killed")
        return (self.curated_killed / len(gated)) if gated else 1.0

    @property
    def missed(self) -> list[TrialResult]:
        return [r for r in self.trials_of("killed") if not r.killed]

    @property
    def false_positives(self) -> list[TrialResult]:
        return [r for r in self.results
                if r.expect in ("clean", "survives") and r.killed]

    @property
    def gate_ok(self) -> bool:
        return not self.missed and not self.false_positives

    def by_class(self) -> dict[str, dict[str, int]]:
        """Per fault class: trials, kills (all trials, curated and not)."""
        out: dict[str, dict[str, int]] = {}
        for result in self.results:
            row = out.setdefault(result.fault_class,
                                 {"trials": 0, "killed": 0})
            row["trials"] += 1
            row["killed"] += int(result.killed)
        return dict(sorted(out.items()))

    def canonical(self) -> dict[str, Any]:
        """The comparison form: everything except the (large) witnesses."""
        trials = []
        for result in self.results:
            data = asdict(result)
            data.pop("witness")
            trials.append(data)
        return {
            "campaign": self.campaign,
            "seed": self.seed,
            "samples": self.samples,
            "trials": trials,
            "by_class": self.by_class(),
            "kill_rate": self.kill_rate,
            "missed": [r.name for r in self.missed],
            "false_positives": [r.name for r in self.false_positives],
            "gate_ok": self.gate_ok,
        }

    def canonical_json(self) -> str:
        return json.dumps(self.canonical(), sort_keys=True, indent=1)


# -- trial assembly -----------------------------------------------------------

#: The curated fault set: every (fault, target) pair here is required to
#: be killed.  Pairings put each fault on a subject whose verification
#: verdict the fault demonstrably influences.
CURATED_FAULT_TRIALS: tuple[tuple[str, str], ...] = (
    ("tau-add-imm-off-by-one", "scratch"),
    ("tau-add-imm-off-by-one", "frame"),
    ("tau-jcc-cond-swap", "guard"),
    ("tau-mem-disp-off-by-one", "stack"),
    ("tau-mem-disp-off-by-one", "frame"),
    ("cpu-carry-invert", BATTERY),
    ("cpu-cond-invert", "branch"),
    ("cpu-cond-invert", BATTERY),
    ("cpu-mem-addr-off-by-one", "frame"),
    ("cpu-mem-addr-off-by-one", BATTERY),
    ("smt-unknown-is-separate", "overflow"),
    ("smt-fork-drops-alias", "overflow"),
    ("join-keeps-left", "loop"),
    ("join-keeps-left", "branch"),
)


def build_trials(campaign: str = "quick") -> list[Trial]:
    """The trial list of a campaign (no binaries yet — names only)."""
    if campaign not in ("quick", "full"):
        raise ValueError(f"unknown campaign {campaign!r}")
    trials: list[Trial] = []

    for name in targets.target_names():
        trials.append(Trial(
            name=f"control/{name}", kind="control", target=name,
            fault=None, mutation=None, fault_class="control",
            expect="clean",
        ))
    trials.append(Trial(
        name=f"control/{BATTERY}", kind="control", target=BATTERY,
        fault=None, mutation=None, fault_class="control", expect="clean",
    ))

    for fault_name, target in CURATED_FAULT_TRIALS:
        layer = faults.FAULTS[fault_name].layer
        trials.append(Trial(
            name=f"fault/{fault_name}/{target}", kind="fault",
            target=target, fault=fault_name, mutation=None,
            fault_class=layer, expect="killed",
        ))

    for spec in mutants.CURATED_MUTANTS:
        trials.append(Trial(
            name=f"mutant/{spec.name}", kind="mutant", target=spec.target,
            fault=None, mutation=spec.name, fault_class=spec.operator,
            expect=spec.expect,
        ))

    if campaign == "full":
        curated = set(CURATED_FAULT_TRIALS)
        subjects = targets.target_names() + [BATTERY]
        for fault_name in sorted(faults.FAULTS):
            for target in subjects:
                if (fault_name, target) in curated:
                    continue
                layer = faults.FAULTS[fault_name].layer
                trials.append(Trial(
                    name=f"fault/{fault_name}/{target}", kind="fault",
                    target=target, fault=fault_name, mutation=None,
                    fault_class=layer, expect="unknown",
                ))
    return trials


# -- execution ----------------------------------------------------------------


@dataclass(frozen=True)
class _TrialTask:
    """One picklable unit of work (binaries resolved in the parent)."""

    trial: Trial
    binary: Binary | None      # None for the battery pseudo-target
    baseline_json: str
    samples: int
    seed: int
    engine: str = "tau"        # transfer engine trials lift/sweep with


def _subject_signature(trial: Trial, binary: Binary | None,
                       samples: int, seed: int,
                       engine: str = "tau") -> dict[str, Any]:
    if trial.target == BATTERY:
        return {"differential": run_battery(seed, names=list(BATTERY_FORMS),
                                            engine=engine)}
    return binary_signature(binary, samples=samples, seed=seed,
                            engine=engine)


def _summarize(baseline: dict, current: dict, section: str) -> str:
    """A one-line account of the first differing detector section."""
    if section == "lift":
        return (f"lift outcome {baseline['lift']['outcome']} -> "
                f"{current['lift']['outcome']}; errors "
                f"{baseline['lift']['errors']} -> {current['lift']['errors']}")
    if section == "triples":
        base = (baseline.get("triples") or {}).get("statuses", {})
        cur = (current.get("triples") or {}).get("statuses", {})
        return f"triple statuses {base} -> {cur}"
    if section == "differential":
        failing = current.get("differential") or []
        return (f"{len(failing)} differential form(s) diverged"
                + (f": {failing[0]}" if failing else ""))
    return f"{section} section changed"


def _run_trial(task: _TrialTask) -> TrialResult:
    """Module-level so it pickles; used verbatim on the serial path."""
    trial = task.trial
    baseline = json.loads(task.baseline_json)
    if trial.fault is not None:
        with faults.inject(trial.fault):
            current = _subject_signature(trial, task.binary,
                                         task.samples, task.seed,
                                         engine=task.engine)
    else:
        current = _subject_signature(trial, task.binary,
                                     task.samples, task.seed,
                                     engine=task.engine)
    diffs = signature_diff(baseline, current)
    killed = bool(diffs)
    killed_by = diffs[0] if diffs else ""
    if trial.expect == "killed":
        ok = killed
    elif trial.expect in ("clean", "survives"):
        ok = not killed
    else:
        ok = True
    result = TrialResult(
        name=trial.name, kind=trial.kind, target=trial.target,
        fault_class=trial.fault_class, expect=trial.expect,
        killed=killed, killed_by=killed_by, detectors=diffs,
        detail=_summarize(baseline, current, killed_by) if killed else "",
        ok=ok,
    )
    if not ok:
        result.witness = {"trial": trial.name, "expect": trial.expect,
                          "baseline": baseline, "observed": current}
    return result


def _assemble_tasks(campaign: str, seed: int, samples: int,
                    engine: str = "tau") -> list[_TrialTask]:
    """Build subjects and baselines (fault-free, parent process only)."""
    trials = build_trials(campaign)

    subjects: dict[str, Binary | None] = {BATTERY: None}
    for name in targets.target_names():
        subjects[name] = targets.build_target(name)

    mutant_binaries: dict[str, Binary] = {}
    specs = {spec.name: spec for spec in mutants.CURATED_MUTANTS}
    for trial in trials:
        if trial.kind != "mutant":
            continue
        spec = specs[trial.mutation]
        mutant = mutants.apply_mutation(subjects[spec.target], spec)
        if mutant is None:
            raise RuntimeError(
                f"curated mutant {spec.name} failed to re-encode")
        mutant_binaries[trial.mutation] = mutant

    if campaign == "full":
        import random

        rng = random.Random(f"{seed}:random-mutants")
        extra: list[Trial] = []
        for target in ("arith", "branch", "frame", "stack"):
            for spec, mutant in mutants.random_mutants(
                    subjects[target], target, rng, count=3):
                extra.append(Trial(
                    name=f"mutant/{spec.name}", kind="mutant",
                    target=target, fault=None, mutation=spec.name,
                    fault_class=spec.operator, expect="unknown",
                ))
                mutant_binaries[spec.name] = mutant
        trials = trials + extra

    baselines: dict[str, str] = {}
    for name, binary in subjects.items():
        trial = Trial(name=f"baseline/{name}", kind="control", target=name,
                      fault=None, mutation=None, fault_class="control",
                      expect="clean")
        baselines[name] = signature_json(
            _subject_signature(trial, binary, samples, seed, engine=engine))

    tasks: list[_TrialTask] = []
    for trial in trials:
        if trial.kind == "mutant":
            binary = mutant_binaries[trial.mutation]
        else:
            binary = subjects[trial.target]
        tasks.append(_TrialTask(
            trial=trial, binary=binary,
            baseline_json=baselines[trial.target],
            samples=samples, seed=seed, engine=engine,
        ))
    return tasks


def run_campaign(campaign: str = "quick", seed: int = DEFAULT_SEED,
                 jobs: int = 1, samples: int = DEFAULT_SAMPLES,
                 engine: str = "tau") -> CampaignReport:
    """Run a campaign; deterministic canonical report (see module doc).

    *engine* runs every trial (baselines included) through the selected
    transfer engine — the uop engine must keep the same kill rate as τ.
    """
    tasks = _assemble_tasks(campaign, seed, samples, engine=engine)

    if jobs > 1 and len(tasks) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(_run_trial, tasks))
    else:
        results = [_run_trial(task) for task in tasks]

    report = CampaignReport(campaign=campaign, seed=seed, samples=samples)
    report.results = sorted(results, key=lambda r: r.name)

    if _T.enabled:
        for result in report.results:
            _M.inc(f"qa.trials.{result.kind}")
            if result.killed:
                _M.inc(f"qa.killed.{result.fault_class}")
            if not result.ok:
                _M.inc("qa.expectation-missed")
            _T.emit("qa.trial", name=result.name, killed=result.killed,
                    killed_by=result.killed_by, ok=result.ok)
    return report
