"""Rendering and precision statistics for the pointer analysis.

The ``python -m repro pointer <binary>`` verb and the eval harness both
want the same things: per-function summaries, an access-classification
precision table, and the escape list.  Everything here is pure
formatting over :class:`~repro.analysis.pointer.summaries.PointerAnalysis`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.pointer.domain import StackFrame, Unknown
from repro.analysis.pointer.summaries import PointerAnalysis


@dataclass(frozen=True)
class PrecisionStats:
    """Counted over every classified access site of one binary."""

    functions: int = 0
    accesses: int = 0
    precise: int = 0          # MAY-set without Unknown
    stack: int = 0            # at least one own-frame region
    global_: int = 0
    heap: int = 0
    escapes: int = 0
    top_summaries: int = 0
    converged: int = 0

    @property
    def precision(self) -> float:
        return self.precise / self.accesses if self.accesses else 1.0

    def as_dict(self) -> dict:
        return {
            "functions": self.functions,
            "accesses": self.accesses,
            "precise": self.precise,
            "precision": round(self.precision, 4),
            "stack": self.stack,
            "global": self.global_,
            "heap": self.heap,
            "escapes": self.escapes,
            "top_summaries": self.top_summaries,
            "converged": self.converged,
        }


def precision_stats(analysis: PointerAnalysis) -> PrecisionStats:
    from repro.analysis.pointer.domain import Global, Heap

    functions = len(analysis.functions)
    accesses = precise = stack = global_ = heap = escapes = 0
    converged = 0
    for entry, facts in analysis.functions.items():
        converged += int(facts.converged)
        escapes += len(facts.escapes)
        for access in facts.accesses.values():
            accesses += 1
            kinds = {type(r) for r in access.regions}
            if Unknown not in kinds:
                precise += 1
            if StackFrame in kinds:
                stack += 1
            if Global in kinds:
                global_ += 1
            if Heap in kinds:
                heap += 1
    top = sum(1 for s in analysis.summaries.values() if s.is_top)
    return PrecisionStats(
        functions=functions, accesses=accesses, precise=precise,
        stack=stack, global_=global_, heap=heap, escapes=escapes,
        top_summaries=top, converged=converged,
    )


def render_pointer_report(analysis: PointerAnalysis,
                          gate=None, verbose: bool = False) -> str:
    """The human-readable ``pointer`` verb output."""
    stats = precision_stats(analysis)
    lines = [
        f"pointer analysis: {stats.functions} functions, "
        f"{stats.accesses} access sites, "
        f"{stats.precise} precise ({stats.precision:.1%})",
        f"  region mix: stack={stats.stack} global={stats.global_} "
        f"heap={stats.heap}; escapes={stats.escapes}; "
        f"top summaries={stats.top_summaries}",
    ]
    for entry in sorted(analysis.summaries):
        summary = analysis.summaries[entry]
        lines.append(f"  sub_{entry:x}: {summary}")
        facts = analysis.functions.get(entry)
        if facts is None:
            continue
        for escape in facts.escapes:
            lines.append(f"    escape @{escape.addr:#x}: "
                         f"{escape.region} ({escape.how})")
        if verbose:
            for (addr, kind), access in sorted(facts.accesses.items()):
                regions = ", ".join(sorted(str(r) for r in access.regions))
                lines.append(f"    {addr:#x} {kind:<5} x{access.size} "
                             f"-> {{{regions}}}")
    if gate is not None:
        lines.append(gate.summary())
        for miss in gate.misses:
            lines.append(f"  MISS {miss}")
    return "\n".join(lines)
