"""Bottom-up interprocedural call-site summaries.

The function-level call graph (direct ``call`` targets plus direct tail
jumps out of a function) is condensed with the same iterative Tarjan the
scheduler uses (:func:`repro.hoare.schedule.condense`); SCCs arrive in
completion order, i.e. callees before callers, so one bottom-up sweep
suffices for the acyclic part.  Recursive SCCs iterate ascending from the
optimistic empty summary to a fixpoint, with a round cap that degrades —
flagged, never silently — to :data:`TOP_SUMMARY`.

A summary records the *non-local* byte footprints a callee MAY read and
write (own-frame accesses are invisible under the calling convention the
lifter separately verifies) plus escaped regions.  Callee ``StackFrame``
spans stay in callee ``RSP0`` coordinates and are translated by the stack
height at each call site when they propagate upward.
"""

from __future__ import annotations

from repro.obs.profile import phase as _phase
from repro.obs.tracer import tracer as _T
from repro.perf.counters import gated as _gated
from repro.hoare.schedule import condense
from repro.analysis.context import AnalysisContext
from repro.analysis.pointer.domain import (
    Global,
    Heap,
    PtrVal,
    Region,
    Span,
    StackFrame,
    Summary,
    TOP_SUMMARY,
    UNKNOWN,
    Unknown,
)
from repro.analysis.pointer.transfer import (
    ALLOCATORS,
    FunctionFacts,
    call_target,
    collect_facts,
)

#: Externals known to leave all caller-visible memory intact (their own
#: observable effects live outside the lifted address space).
PURE_EXTERNALS = frozenset({
    "strlen", "strcmp", "strncmp", "memcmp", "strchr",
    "puts", "putchar", "getchar", "abs", "labs", "atoi", "getpid",
})

_UNKNOWN_SPAN = Span(UNKNOWN, 0)
_READS_ANYTHING = frozenset({_UNKNOWN_SPAN})

#: Summary iteration rounds per SCC before degrading to TOP.
MAX_SCC_ROUNDS = 8


def external_summary(name: str) -> Summary:
    """The modelled contract of one external function.

    Only a small whitelist is refined; everything else is TOP, which makes
    the refinement degrade exactly to the paper's context-free cleaning."""
    if name in ALLOCATORS:
        # A fresh block: no caller-visible region is read or written
        # (allocator metadata is outside the lifted address space).
        return Summary(reads=frozenset(), writes=frozenset())
    if name in PURE_EXTERNALS:
        return Summary(reads=_READS_ANYTHING, writes=frozenset())
    if name == "free":
        # Destroys one heap block: global clauses survive (heap/global
        # separation), heap-valued clauses do not.
        return Summary(reads=_READS_ANYTHING,
                       writes=frozenset({Span(Heap(None), 0)}))
    return TOP_SUMMARY


def _merge_spans(spans) -> frozenset:
    """Canonicalize a span set: one footprint hull per region key."""
    merged: dict = {}
    for span in spans:
        region = span.region
        if isinstance(region, Unknown):
            return frozenset({_UNKNOWN_SPAN})
        if isinstance(region, Heap):
            key = ("heap", region.site)
            prior = merged.get(key)
            size = span.size if prior is None else max(span.size, prior.size)
            merged[key] = Span(region, size)
            continue
        if isinstance(region, Global):
            key = ("global", region.section)
        else:
            key = ("stack", region.fn)
        lo, end = region.lo, region.hi + span.size
        prior = merged.get(key)
        if prior is not None:
            lo = min(lo, prior.region.lo)
            end = max(end, prior.region.hi + prior.size)
        if isinstance(region, Global):
            merged[key] = Span(Global(region.section, lo, end - 1), 1)
        else:
            merged[key] = Span(StackFrame(region.fn, lo, end - 1), 1)
    return frozenset(merged.values())


def _translate_stack_span(span: Span, height: int | None,
                          shift: int) -> Span:
    """Map a callee-coordinate stack span into caller coordinates.

    ``shift`` is the callee ``RSP0`` offset from the caller's: ``h - 8``
    for a call at caller height ``h``, ``h`` for a tail jump."""
    region = span.region
    if not isinstance(region, StackFrame):
        return span
    if height is None:
        return _UNKNOWN_SPAN
    base = height + shift
    return Span(
        StackFrame(0, region.lo + base, region.hi + base), span.size
    )


def _is_local(span: Span) -> bool:
    """A stack footprint entirely below the frame base is callee-private."""
    region = span.region
    return (isinstance(region, StackFrame)
            and region.hi + span.size <= 0)


def _retag(span: Span, fn: int) -> Span:
    region = span.region
    if isinstance(region, StackFrame):
        return Span(StackFrame(fn, region.lo, region.hi), span.size)
    return span


class PointerAnalysis:
    """Interprocedural pointer facts for one lifted binary."""

    def __init__(self, ctx: AnalysisContext) -> None:
        self.ctx = ctx
        self.summaries: dict[int, Summary] = {}
        self.functions: dict[int, FunctionFacts] = {}
        self._views = {view.entry: view for view in ctx.views}
        self._edges: dict[int, set[int]] = {}
        self._ran = False

    # -- call-site resolution ---------------------------------------------------------

    def summary_for_call(self, instr) -> Summary:
        """The summary governing one ``call`` instruction (TOP when the
        callee is indirect or not analyzed)."""
        kind, target = call_target(self.ctx.result.binary, instr)
        if kind == "external":
            return external_summary(target)
        if kind == "internal":
            return self.summaries.get(target, TOP_SUMMARY)
        return TOP_SUMMARY

    # -- the bottom-up sweep ----------------------------------------------------------

    def run(self) -> "PointerAnalysis":
        if self._ran:
            return self
        self._ran = True
        with _T.span("pointer.analysis",
                     binary=self.ctx.result.binary.name,
                     functions=len(self._views)):
            with _phase("pointer"):
                for scc in self._condensation():
                    self._solve_scc(scc)
        return self

    def _call_edges(self, entry: int) -> set[int]:
        cached = self._edges.get(entry)
        if cached is not None:
            return cached
        view = self._views[entry]
        edges: set[int] = set()
        binary = self.ctx.result.binary
        for leader in view.blocks:
            for instr in view.instrs.get(leader, []):
                if instr.mnemonic == "call":
                    kind, target = call_target(binary, instr)
                    if kind == "internal" and target in self._views:
                        edges.add(target)
                elif instr.mnemonic == "jmp":
                    ops = instr.operands
                    if len(ops) == 1 and hasattr(ops[0], "signed"):
                        target = (instr.end + ops[0].signed) & ((1 << 64) - 1)
                        if target in self._views and target != entry:
                            edges.add(target)
        self._edges[entry] = edges
        return edges

    def _condensation(self) -> list[list[int]]:
        nodes = sorted(self._views)
        flow = {entry: tuple(sorted(self._call_edges(entry)))
                for entry in nodes}
        return condense(nodes, flow)

    def _solve_scc(self, members: list[int]) -> None:
        recursive = len(members) > 1 or any(
            entry in self._call_edges(entry) for entry in members
        )
        for entry in members:
            self.summaries.setdefault(entry, Summary())
        if not recursive:
            # Callees are already final: one pass is the fixpoint.
            (entry,) = members
            self._resummarize(entry)
            return
        # Ascending iteration from the optimistic empty summary.
        for _ in range(MAX_SCC_ROUNDS):
            changed = [self._resummarize(entry)
                       for entry in sorted(members)]
            if not any(changed):
                return
        # The iteration did not close: degrade, flagged.
        _gated("pointer_top_summaries", len(members))
        for entry in members:
            self.summaries[entry] = TOP_SUMMARY

    def _resummarize(self, entry: int) -> bool:
        """Re-analyze one function; True if its summary changed."""
        facts = collect_facts(
            self.ctx, self._views[entry], self.summary_for_call
        )
        summary = (
            self._summarize(entry, facts) if facts.converged
            else TOP_SUMMARY
        )
        self.functions[entry] = facts
        if summary == self.summaries[entry]:
            return False
        self.summaries[entry] = summary
        return True

    # -- summary construction ---------------------------------------------------------

    def _summarize(self, entry: int, facts: FunctionFacts) -> Summary:
        binary = self.ctx.result.binary
        writes: list[Span] = []
        reads: list[Span] = []
        escaped: set[Region] = set(
            escape.region for escape in facts.escapes
        )

        for (addr, kind), access in facts.accesses.items():
            sink = writes if kind == "store" else reads
            for region in access.regions:
                sink.append(Span(region, access.size))

        def absorb(summary: Summary, height: int | None,
                   shift: int) -> None:
            if summary.is_top:
                writes.append(_UNKNOWN_SPAN)
                reads.append(_UNKNOWN_SPAN)
                escaped.add(UNKNOWN)
                return
            for span in summary.writes:
                writes.append(_translate_stack_span(span, height, shift))
            for span in summary.reads:
                reads.append(_translate_stack_span(span, height, shift))
            for region in summary.escaped:
                if not isinstance(region, StackFrame):
                    escaped.add(region)

        for addr, height in facts.call_heights.items():
            instr = self.ctx.result.instructions.get(addr)
            if instr is None:
                writes.append(_UNKNOWN_SPAN)
                continue
            kind, target = call_target(binary, instr)
            if kind == "external":
                absorb(external_summary(target), height, -8)
            elif kind == "internal":
                absorb(self.summaries.get(target, TOP_SUMMARY), height, -8)
            else:
                writes.append(_UNKNOWN_SPAN)
                reads.append(_UNKNOWN_SPAN)
                escaped.add(UNKNOWN)
        for addr, (target, height) in facts.tail_calls.items():
            if isinstance(target, str):
                absorb(external_summary(target), height, 0)
            else:
                absorb(self.summaries.get(target, TOP_SUMMARY), height, 0)

        return Summary(
            writes=_merge_spans(
                _retag(s, entry) for s in writes if not _is_local(s)
            ),
            reads=_merge_spans(
                _retag(s, entry) for s in reads if not _is_local(s)
            ),
            escaped=frozenset(escaped),
        )

    # -- queries ----------------------------------------------------------------------

    def summary_of(self, entry: int) -> Summary:
        return self.summaries.get(entry, TOP_SUMMARY)

    def facts_of(self, entry: int) -> FunctionFacts | None:
        return self.functions.get(entry)

    def access_at(self, addr: int, kind: str):
        """The classified :class:`Access` at (addr, kind), if any."""
        for facts in self.functions.values():
            access = facts.accesses.get((addr, kind))
            if access is not None:
                return access
        return None
