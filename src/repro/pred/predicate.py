"""Symbolic predicates: valuation clauses, relational clauses, and the join.

A predicate (Section 3.1) is a set of clauses ``E □ C``.  For efficiency we
split it by clause shape:

* ``regs``    — equality clauses ``reg == C`` (one per 64-bit register
  family, plus ``rip``); a missing entry is the paper's ⊥ (unknown value);
* ``mem``     — equality clauses ``*[a, n] == C`` for written regions;
* ``flags``   — the operation that last set the status flags;
* ``clauses`` — the remaining relational clauses (branch conditions,
  range-abstraction bounds from joins).

The join implements Definition 3.3 / Example 3.4: equality clauses for the
same part with different constants merge into range bounds over a
deterministic *join variable*; everything else incomparable is dropped.
Per part the abstraction ladder is  exact value → bounded join variable →
unbounded join variable, so joining terminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache

from repro.expr import (
    Const,
    Deref,
    EvalEnv,
    EvalError,
    Expr,
    RegRef,
    Var,
    evaluate,
    mask,
    substitute,
)
from repro.expr.ast import expr_key, variable_names
from repro.expr.simplify import add as simplify_add, mul as _mul
from repro.obs.metrics import metrics as _M
from repro.obs.tracer import tracer as _T
from repro.perf import register_lru
from repro.pred.clause import Clause, intersect_intervals
from repro.pred.flags import FlagState
from repro.smt.intervals import Interval
from repro.smt.linear import linearize
from repro.smt.solver import Region, expr_interval, region_key


def simplify_mul(term: Expr, coeff: int, width: int) -> Expr:
    return _mul(term, Const(coeff, width), width)


class _ClauseBounds:
    """BoundsProvider over one clause set."""

    def __init__(self, clauses):
        self.clauses = clauses

    def interval_of(self, term: Expr) -> Interval | None:
        interval = intersect_intervals(term, self.clauses)
        return None if interval.is_top else interval


@dataclass(frozen=True)
class Predicate:
    """An immutable symbolic predicate."""

    regs: tuple[tuple[str, Expr], ...] = ()
    flags: FlagState | None = None
    mem: tuple[tuple[Region, Expr], ...] = ()
    clauses: frozenset[Clause] = frozenset()

    # -- constructors -------------------------------------------------------
    @staticmethod
    def make(
        regs: dict[str, Expr] | None = None,
        flags: FlagState | None = None,
        mem: dict[Region, Expr] | None = None,
        clauses=frozenset(),
    ) -> "Predicate":
        return Predicate(
            regs=tuple(sorted((regs or {}).items())),
            flags=flags,
            mem=tuple(sorted((mem or {}).items(),
                             key=lambda kv: region_key(kv[0]))),
            clauses=frozenset(clauses),
        )

    def __hash__(self) -> int:
        # Same value the generated frozen-dataclass hash would produce,
        # cached on first use: the uop engine's transfer memo hashes whole
        # predicates on every probe, and the field walk (17 register pairs
        # plus mem regions) is measurable at that frequency.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.regs, self.flags, self.mem, self.clauses))
            object.__setattr__(self, "_hash", h)
        return h

    # -- views ---------------------------------------------------------------
    def reg_dict(self) -> dict[str, Expr]:
        return dict(self.regs)

    def mem_dict(self) -> dict[Region, Expr]:
        return dict(self.mem)

    def get_reg(self, name: str) -> Expr | None:
        for reg, value in self.regs:
            if reg == name:
                return value
        return None

    @property
    def rip(self) -> Expr | None:
        return self.get_reg("rip")

    # -- functional updates ----------------------------------------------------
    def with_regs(self, regs: dict[str, Expr]) -> "Predicate":
        return Predicate(regs=tuple(sorted(regs.items())), flags=self.flags,
                         mem=self.mem, clauses=self.clauses)

    def with_mem(self, mem: dict[Region, Expr]) -> "Predicate":
        return Predicate(
            regs=self.regs, flags=self.flags,
            mem=tuple(sorted(mem.items(), key=lambda kv: region_key(kv[0]))),
            clauses=self.clauses,
        )

    def with_flags(self, flags: FlagState | None) -> "Predicate":
        return Predicate(regs=self.regs, flags=flags, mem=self.mem,
                         clauses=self.clauses)

    def with_clause(self, clause: Clause) -> "Predicate":
        return Predicate(regs=self.regs, flags=self.flags, mem=self.mem,
                         clauses=self.clauses | {clause})

    def with_clauses(self, clauses) -> "Predicate":
        return Predicate(regs=self.regs, flags=self.flags, mem=self.mem,
                         clauses=self.clauses | frozenset(clauses))

    # -- evaluation (Definition 4.1) ---------------------------------------------
    def eval(self, expr: Expr) -> Expr | None:
        """Map an expression over current registers to a constant expression.

        Returns None (the paper's ⊥) when some register is unvalued.
        """
        missing = False

        def resolve(node: Expr) -> Expr | None:
            nonlocal missing
            if isinstance(node, RegRef):
                value = self.get_reg(node.name)
                if value is None:
                    missing = True
                    return node
                return value
            return None

        result = substitute(expr, resolve)
        return None if missing else result

    # -- solver integration ---------------------------------------------------
    def interval_of(self, term: Expr) -> Interval | None:
        """BoundsProvider hook: interval implied by relational clauses.

        Handles one level of transitivity through variable bounds:
        ``i ≤ n`` with ``n ≤ 15`` caps ``i`` at 15 (the variable-bounded
        loop shape).  Memoized on ``(term, clauses)``: predicates are
        immutable and the solver asks for the same term's bounds on every
        relation query it fingerprints."""
        return _interval_of_cached(term, self.clauses)

    # -- concrete satisfaction: s ⊢ P --------------------------------------------
    def holds(self, env: EvalEnv, read_current=None) -> bool:
        """Check every clause of the predicate in a concrete environment.

        ``env.read_mem`` is the *initial* memory (what ``Deref`` denotes);
        *read_current* reads the state's current memory for checking the
        ``*[a, n] == C`` valuation clauses (defaults to ``env.read_mem``,
        which is correct before any store has executed).
        """
        if read_current is None:
            read_current = env.read_mem
        try:
            for reg, value in self.regs:
                expected = evaluate(value, env)
                actual = env.registers.get(reg)
                if actual is None or (actual & mask(value.width)) != expected:
                    return False
            for region, value in self.mem:
                if read_current is None:
                    return False
                addr = evaluate(region.addr, env)
                actual = read_current(addr, region.size)
                if (actual & mask(value.width)) != evaluate(value, env):
                    return False
            for clause in self.clauses:
                if not clause.holds(env):
                    return False
        except EvalError:
            return False
        return True

    def __str__(self) -> str:
        parts = [f"{reg} == {value}" for reg, value in self.regs]
        parts += [f"*{region} == {value}" for region, value in self.mem]
        parts += [str(clause) for clause in sorted(self.clauses, key=str)]
        if self.flags is not None:
            parts.append(str(self.flags))
        return "{" + ", ".join(parts) + "}"


@lru_cache(maxsize=1 << 16)
def _interval_of_cached(term: Expr, clauses: frozenset) -> Interval | None:
    interval = intersect_intervals(term, clauses)
    half = 1 << (term.width - 1)
    for clause in clauses:
        normalized = clause.normalized()
        if normalized.lhs != term or isinstance(normalized.rhs, Const):
            continue
        rhs_interval = intersect_intervals(normalized.rhs, clauses)
        if rhs_interval.is_top:
            continue
        op = normalized.op
        if op == "leu":
            capped = interval.intersect(Interval(0, rhs_interval.hi))
        elif op == "ltu" and rhs_interval.hi > 0:
            capped = interval.intersect(Interval(0, rhs_interval.hi - 1))
        elif op in ("les", "lts") and rhs_interval.hi < half \
                and interval.hi < half:
            hi = rhs_interval.hi if op == "les" else rhs_interval.hi - 1
            capped = interval.intersect(Interval(0, hi)) if hi >= 0 else None
        elif op == "geu":
            capped = interval.intersect(
                Interval(rhs_interval.lo, (1 << term.width) - 1)
            )
        else:
            continue
        if capped is not None:
            interval = capped
    return None if interval.is_top else interval


register_lru("pred.interval_of", _interval_of_cached)


# -- the join (Definition 3.3, Example 3.4) -------------------------------------

def _join_values(
    part_name: str,
    rip: int,
    v0: Expr | None,
    v1: Expr | None,
    bounds0: frozenset[Clause],
    bounds1: frozenset[Clause],
) -> tuple[Expr | None, tuple[Clause, ...]]:
    """Join two valuations of one state part (memoized).

    The result is a pure function of the arguments (the join variable name
    depends only on *rip* and *part_name*), and join fixpoints re-join the
    same value pairs under the same clause sets at every iteration."""
    if v0 is None or v1 is None:
        return None, ()
    return _join_values_cached(part_name, rip, v0, v1, bounds0, bounds1)


@lru_cache(maxsize=1 << 16)
def _join_values_cached(
    part_name: str,
    rip: int,
    v0: Expr,
    v1: Expr,
    bounds0: frozenset[Clause],
    bounds1: frozenset[Clause],
) -> tuple[Expr | None, tuple[Clause, ...]]:
    value, clauses = _join_values_impl(part_name, rip, v0, v1, bounds0, bounds1)
    return value, tuple(clauses)


register_lru("pred.join_values", _join_values_cached)


def _join_values_impl(
    part_name: str,
    rip: int,
    v0: Expr,
    v1: Expr,
    bounds0: frozenset[Clause],
    bounds1: frozenset[Clause],
) -> tuple[Expr | None, list[Clause]]:
    """Join two valuations of one state part.

    The ladder: equal exprs stay; two constants become a bounded join
    variable; anything else becomes the (unbounded) join variable.  The join
    variable's name is a deterministic function of (rip, part), so repeated
    joins at the same program point reuse it and the ladder has height 3.
    """
    if v0 == v1:
        if not isinstance(v0, Var):
            return v0, []
        # Merge the two sides' bound clauses *semantically*: the interval
        # hull.  (A raw set intersection would drop everything whenever the
        # two sides carry different-generation bounds for the same
        # variable, losing e.g. a loop counter's `>= 0`.)
        own0 = frozenset(c for c in bounds0 if c.lhs == v0)
        own1 = frozenset(c for c in bounds1 if c.lhs == v0)
        if own0 == own1:
            return v0, list(own0)
        hull = intersect_intervals(v0, own0).union(
            intersect_intervals(v0, own1)
        )
        width = v0.width
        bounds = []
        if hull.lo > 0:
            bounds.append(Clause(v0, "geu", Const(hull.lo, width), width))
        if hull.hi < (1 << width) - 1:
            bounds.append(Clause(v0, "leu", Const(hull.hi, width), width))
        return v0, bounds
    # Range abstraction over *linear offsets* (the general form of Example
    # 3.4): when the two values share their symbolic part and differ by a
    # bounded residual, the join is ``common + OFF`` with interval-bounded
    # OFF.  Plain constants are the special case with an empty common part.
    join_var = Var(f"join@{rip:#x}@{part_name}")
    width = v0.width if v0.width == v1.width else 64
    lin0, lin1 = linearize(v0, width), linearize(v1, width)
    d0, d1 = lin0.term_dict(), lin1.term_dict()
    # The part's own join variable never belongs to the common part: a
    # self-referential value (the loop-increment shape ``X`` ⊔ ``X + 1``)
    # folds X into both residuals instead, re-deriving X's interval per
    # side — the new incarnation of X absorbs the increment.
    common = {
        t: co for t, co in d0.items() if d1.get(t) == co and t != join_var
    }

    def residual(lin, terms, own_bounds):
        extra = {t: co for t, co in terms.items() if common.get(t) != co}
        provider = _ClauseBounds(own_bounds)
        expr: Expr = Const(lin.const, width)
        for term, coeff in extra.items():
            expr = simplify_add(expr, simplify_mul(term, coeff, width), width)
        return expr, expr_interval(expr, provider)

    resid0, iv0 = residual(lin0, d0, bounds0)
    resid1, iv1 = residual(lin1, d1, bounds1)
    if iv0.is_top or iv1.is_top:
        return join_var, []

    prior: Interval | None = None
    prior_clauses: list[Clause] = []
    other_iv: Interval | None = None
    if resid0 == join_var:
        prior = iv0
        prior_clauses = [c for c in bounds0 if c.lhs == join_var]
        other_iv = iv1
    elif resid1 == join_var:
        prior = iv1
        prior_clauses = [c for c in bounds1 if c.lhs == join_var]
        other_iv = iv0

    value = join_var
    for term, coeff in sorted(common.items(), key=lambda kv: expr_key(kv[0])):
        value = simplify_add(value, simplify_mul(term, coeff, width), width)

    if prior is not None and other_iv is not None:
        if other_iv.intersect(prior) == other_iv:
            return value, prior_clauses  # contained: fixpoint
        # Grow to the exact interval hull.  An ascending chain of hulls is
        # possible (an unbounded counter); termination is enforced one
        # level up — the lifter widens a vertex to unbounded join variables
        # after a fixed number of joins (see _Lifter.explore).
        hull = prior.union(other_iv)
        clauses: list[Clause] = []
        if hull.lo > 0:
            clauses.append(Clause(join_var, "geu", Const(hull.lo, width), width))
        if hull.hi < mask(width):
            clauses.append(Clause(join_var, "leu", Const(hull.hi, width), width))
        return value, clauses

    hull = iv0.union(iv1)
    clauses: list[Clause] = []
    if hull.lo > 0:
        clauses.append(Clause(join_var, "geu", Const(hull.lo, width), width))
    if hull.hi < mask(width):
        clauses.append(Clause(join_var, "leu", Const(hull.hi, width), width))
    return value, clauses


def join_predicates(p0: Predicate, p1: Predicate, rip: int) -> Predicate:
    """``P ⊔ Q`` at program point *rip*.

    Soundness: every produced clause is implied by P and by Q (for the join
    variables: under *some* assignment, in each).  Information only drops.
    """
    regs0, regs1 = p0.reg_dict(), p1.reg_dict()
    new_regs: dict[str, Expr] = {}
    extra_clauses: list[Clause] = []

    # Parts holding the *same pair* of values on the two sides stay equal
    # after the join: they share one join variable.  (A register that was
    # just loaded from a stack slot keeps its equality with the slot, so a
    # branch bound on the register also bounds the slot.)
    pair_cache: dict[tuple[Expr, Expr], tuple[Expr | None, list[Clause]]] = {}

    def join_pair(name: str, v0: Expr, v1: Expr):
        key = (v0, v1)
        if key not in pair_cache:
            pair_cache[key] = _join_values(name, rip, v0, v1,
                                           p0.clauses, p1.clauses)
        return pair_cache[key]

    for name in sorted(set(regs0) & set(regs1)):
        value, bounds = join_pair(name, regs0[name], regs1[name])
        if value is not None:
            new_regs[name] = value
            extra_clauses += bounds

    mem0, mem1 = p0.mem_dict(), p1.mem_dict()
    new_mem: dict[Region, Expr] = {}
    for region in sorted(set(mem0) | set(mem1), key=region_key):
        v0, v1 = mem0.get(region), mem1.get(region)
        if v0 is not None and v1 is not None:
            value, bounds = join_pair(f"mem@{region}", v0, v1)
            if value is not None:
                new_mem[region] = value
                extra_clauses += bounds
                continue
        # Written on at least one path with diverging/unknown value: the
        # region stays *tracked* (its initial contents must not be
        # re-read) but its value is existentially unknown.
        new_mem[region] = Var(f"mjoin@{rip:#x}@{region}")

    # Flags join through the same pair mechanism: when both sides' flags
    # come from the same kind of operation, joining the operand values
    # (sharing join variables with any register/slot holding the same
    # pair) keeps branch conditions — and hence loop bounds — alive
    # across iterations.
    flags = None
    f0, f1 = p0.flags, p1.flags
    if f0 == f1:
        flags = f0
    elif (
        f0 is not None and f1 is not None
        and f0.kind == f1.kind and f0.width == f1.width
    ):
        joined_a, bounds_a = join_pair("flags.a", f0.a, f1.a)
        if f0.b is None and f1.b is None:
            joined_b, bounds_b = None, ()
            b_ok = True
        elif f0.b is not None and f1.b is not None:
            joined_b, bounds_b = join_pair("flags.b", f0.b, f1.b)
            b_ok = joined_b is not None
        else:
            joined_b, bounds_b, b_ok = None, (), False
        if joined_a is not None and b_ok:
            flags = FlagState(f0.kind, joined_a, joined_b, f0.width)
            extra_clauses += [*bounds_a, *bounds_b]

    # Non-join-variable clauses (branch conditions over program values)
    # survive iff present on both sides — plain intersection.
    own_prefix = f"join@{rip:#x}@"

    def is_join_clause(clause: Clause) -> bool:
        return isinstance(clause.lhs, Var) and clause.lhs.name.startswith("join@")

    shared_clauses = frozenset(
        clause for clause in p0.clauses & p1.clauses if not is_join_clause(clause)
    )
    shared_clauses |= _join_foreign_var_clauses(p0, p1, own_prefix)
    result = Predicate.make(
        regs=new_regs,
        flags=flags,
        mem=new_mem,
        clauses=shared_clauses | frozenset(extra_clauses),
    )
    # Garbage-collect bounds on join variables no longer referenced by any
    # valuation: they constrain nothing, and letting stale generations
    # accumulate would keep the state changing forever (no fixpoint).
    live = _referenced_var_names(result)
    if result.flags is not None:
        for operand in (result.flags.a, result.flags.b):
            if operand is not None:
                live.update(variable_names(operand))
    cleaned = frozenset(
        clause for clause in result.clauses
        if not (isinstance(clause.lhs, Var)
                and clause.lhs.name.startswith("join@")
                and clause.lhs.name not in live)
    )
    if cleaned != result.clauses:
        result = replace(result, clauses=cleaned)
    if _T.enabled:
        _T.emit_sampled("pred.join", rip,
                        clauses=len(result.clauses),
                        regs=len(result.regs), mem=len(result.mem))
        _M.observe("pred.join.clauses", len(result.clauses))
    return result


def _referenced_var_names(pred: Predicate) -> set[str]:
    """Variable names occurring in the predicate's valuations."""
    names: set[str] = set()
    for _, value in pred.regs:
        names.update(variable_names(value))
    for region, value in pred.mem:
        names.update(variable_names(region.addr))
        names.update(variable_names(value))
    return names


def _join_foreign_var_clauses(
    p0: Predicate, p1: Predicate, own_prefix: str
) -> frozenset[Clause]:
    """Join bound clauses on join variables minted at *other* vertices.

    Per variable: both sides bound it → interval hull (implied by each
    side); one side bounds it and the other side never references it → the
    bound is kept (the variable is free there, any witness works); one side
    bounds it but the other references it → dropped (unknown value)."""
    def grouped(pred: Predicate) -> dict[Var, list[Clause]]:
        out: dict[Var, list[Clause]] = {}
        for clause in pred.clauses:
            if isinstance(clause.lhs, Var) and \
                    clause.lhs.name.startswith("join@") and \
                    not clause.lhs.name.startswith(own_prefix):
                out.setdefault(clause.lhs, []).append(clause)
        return out

    def references(pred: Predicate) -> set[str]:
        # "Free on this side" must consider *every* place the predicate
        # can pin the variable: valuations, flags operands (a branch on
        # joined flags constrains them), and compound clause expressions.
        # Missing the flags made a kept one-sided bound contradict the
        # other path's flag state — an unsound (unsatisfiable) join.
        names = _referenced_var_names(pred)
        if pred.flags is not None:
            for operand in (pred.flags.a, pred.flags.b):
                if operand is not None:
                    names.update(variable_names(operand))
        for clause in pred.clauses:
            if not isinstance(clause.lhs, Var):
                names.update(variable_names(clause.lhs))
            if not isinstance(clause.rhs, Const):
                names.update(variable_names(clause.rhs))
        return names

    by_var0, by_var1 = grouped(p0), grouped(p1)
    refs0, refs1 = references(p0), references(p1)
    kept: set[Clause] = set()
    for var in set(by_var0) | set(by_var1):
        clauses0, clauses1 = by_var0.get(var), by_var1.get(var)
        if clauses0 and clauses1:
            hull = intersect_intervals(var, clauses0).union(
                intersect_intervals(var, clauses1)
            )
            width = var.width
            if hull.lo > 0:
                kept.add(Clause(var, "geu", Const(hull.lo, width), width))
            if hull.hi < mask(width):
                kept.add(Clause(var, "leu", Const(hull.hi, width), width))
        elif clauses0 and var.name not in refs1:
            kept.update(clauses0)
        elif clauses1 and var.name not in refs0:
            kept.update(clauses1)
    return frozenset(kept)


def less_abstract(p0: Predicate, p1: Predicate, rip: int) -> bool:
    """``p0 ⊑ p1`` iff ``p0 ⊔ p1 == p1`` (the derived partial order)."""
    return join_predicates(p0, p1, rip) == p1


def widen_predicate(pred: Predicate) -> Predicate:
    """Drop every bound clause on join variables: the terminal rung of the
    range-abstraction ladder.  Applied by the lifter after a vertex has
    been joined many times, guaranteeing termination of ascending interval
    hulls (unbounded loop counters)."""
    kept = frozenset(
        clause for clause in pred.clauses
        if not (isinstance(clause.lhs, Var) and clause.lhs.name.startswith("join@"))
    )
    from dataclasses import replace as _replace

    return _replace(pred, clauses=kept)
