"""The profiling layer: phase timer, cost folds, rollups, the CLI verb.

Covers the PR-8 profiling contracts:

* ``PhaseTimer`` self-time arithmetic (self = wall - nested children) and
  snapshot/merge algebra;
* the disabled no-op region (one shared object, no allocation);
* per-address cost folding with sampling scale-back;
* the canonical profile form: deterministic phase counts (minus the
  cache-warmth-dependent ``smt``), byte-identical between serial and
  worker-pool corpus runs;
* collapsed-stack flamegraph output format;
* ``python -m repro profile`` in both text and collapsed formats.
"""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.corpus import Corpus, CorpusBinary
from repro.eval.runner import run_corpus
from repro.minicc import compile_source
from repro.obs.profile import (
    NONDETERMINISTIC_PHASE_COUNTS,
    PhaseTimer,
    Profile,
    address_costs,
    build_profile,
    canonical_profile,
    collapsed_stacks,
    phase,
    phases,
    profile_rollup,
    render_profile,
)
from repro.obs.tracer import Event


@pytest.fixture(autouse=True)
def _obs_off_after():
    yield
    obs.disable()
    obs.reset()


@pytest.fixture(scope="module")
def tiny_corpus() -> Corpus:
    corpus = Corpus()
    corpus.binaries.append(CorpusBinary(
        name="beta", directory="bin",
        binary=compile_source("long main(long n) { return n * 3; }",
                              name="beta"),
        expected="lifted",
    ))
    corpus.binaries.append(CorpusBinary(
        name="alpha", directory="bin",
        binary=compile_source(
            "long main(long n) { long s = 0;"
            " for (long i = 0; i < n; i = i + 1) { s = s + i; }"
            " return s; }",
            name="alpha"),
        expected="lifted",
    ))
    return corpus


# -- PhaseTimer ------------------------------------------------------------

def test_self_time_excludes_nested_children():
    timer = PhaseTimer()
    timer.start("outer")
    timer.start("inner")
    inner_wall = timer.stop()
    outer_wall = timer.stop()
    snap = timer.snapshot()
    assert snap["inner"]["count"] == 1 and snap["outer"]["count"] == 1
    assert snap["inner"]["self_seconds"] == snap["inner"]["wall_seconds"]
    # outer self-time = outer wall minus the inner region's wall.
    assert snap["outer"]["self_seconds"] == pytest.approx(
        outer_wall - inner_wall)
    # Total self time sums to the instrumented wall (no double counting).
    total_self = sum(s["self_seconds"] for s in snap.values())
    assert total_self == pytest.approx(outer_wall)


def test_profile_mode_folds_collapsed_stacks():
    timer = PhaseTimer()
    timer.profile_mode = True
    timer.start("transfer")
    timer.start("smt")
    timer.stop()
    timer.stop()
    timer.start("transfer")
    timer.stop()
    assert set(timer.stacks) == {"transfer", "transfer;smt"}
    # Stack weights are self seconds, consistent with the totals.
    assert timer.stacks["transfer"] == pytest.approx(
        timer.totals["transfer"][0])


def test_snapshot_merge_accumulates_counts_and_seconds():
    a = PhaseTimer()
    a.start("decode"); a.stop()
    b = PhaseTimer()
    b.start("decode"); b.stop()
    b.start("join"); b.stop()
    merged = PhaseTimer.merge(a.snapshot(), b.snapshot())
    assert merged["decode"]["count"] == 2
    assert merged["join"]["count"] == 1
    assert merged["decode"]["self_seconds"] == pytest.approx(
        a.totals["decode"][0] + b.totals["decode"][0])


def test_phase_region_is_noop_when_disabled():
    obs.disable()
    phases.reset()
    region = phase("decode")
    with region:
        pass
    assert phases.totals == {}
    # Shared object, no per-use allocation.
    assert phase("join") is region


def test_phase_region_records_when_enabled():
    obs.reset()
    obs.enable(sampling=1)
    with phase("decode"):
        pass
    with phase("decode"):
        pass
    assert phases.totals["decode"][2] == 2


def test_reset_clears_open_regions_and_stacks():
    timer = PhaseTimer()
    timer.profile_mode = True
    timer.start("decode")
    timer.reset()
    assert timer.totals == {} and timer.stacks == {}
    # A stop after reset would underflow; a fresh start/stop works.
    timer.start("join")
    timer.stop()
    assert timer.totals["join"][2] == 1


# -- folds -----------------------------------------------------------------

def test_address_costs_scale_sampled_kinds():
    events = [
        Event(ts=0.0, kind="state.explore", addr=0x1000, detail={}),
        Event(ts=0.0, kind="join", addr=0x1000, detail={}),
        Event(ts=0.0, kind="join.widen", addr=0x1000, detail={}),
        Event(ts=0.0, kind="span", addr=None, detail={}),  # not an address kind
        Event(ts=0.0, kind="smt.query", addr=0x2000, detail={}),
    ]
    table = address_costs(events, sampling=8)
    # Sampled kinds scale back up by the sampling level; exact kinds
    # (widen) count 1:1.
    assert table[0x1000] == {"explores": 8, "joins": 8, "widens": 1}
    assert table[0x2000] == {"smt_queries": 8}


def test_canonical_profile_keeps_counts_drops_walls_and_smt():
    data = {
        "phases": {
            "decode": {"self_seconds": 1.0, "wall_seconds": 1.0, "count": 10},
            "smt": {"self_seconds": 0.5, "wall_seconds": 0.5, "count": 3},
        },
        "events": {"join": 7},
        "attributed_seconds": 1.5,
    }
    canon = canonical_profile(data)
    assert canon == {"phases": {"decode": 10}, "events": {"join": 7}}
    assert "smt" in NONDETERMINISTIC_PHASE_COUNTS


def test_profile_coverage_property():
    profile = Profile(
        phases={"decode": {"self_seconds": 0.6, "wall_seconds": 0.6,
                           "count": 1},
                "join": {"self_seconds": 0.35, "wall_seconds": 0.35,
                         "count": 1}},
        wall_seconds=1.0,
    )
    assert profile.attributed_seconds == pytest.approx(0.95)
    assert profile.coverage == pytest.approx(0.95)
    assert Profile().coverage is None


def test_collapsed_stacks_format():
    text = collapsed_stacks({"transfer;smt": 0.0025, "decode": 0.001})
    lines = text.splitlines()
    # Sorted by path, integer-microsecond weights.
    assert lines == ["decode 1000", "transfer;smt 2500"]


# -- corpus rollup determinism ---------------------------------------------

def test_serial_and_parallel_profile_rollups_are_byte_identical(tiny_corpus):
    serial = run_corpus(corpus=tiny_corpus, jobs=1, obs=True, obs_sampling=1)
    parallel = run_corpus(corpus=tiny_corpus, jobs=2, obs=True, obs_sampling=1)
    canon_serial = canonical_profile(profile_rollup(serial.obs))
    canon_parallel = canonical_profile(profile_rollup(parallel.obs))
    assert (json.dumps(canon_serial, sort_keys=True)
            == json.dumps(canon_parallel, sort_keys=True))
    # The rollup attributed real phase work.
    assert canon_serial["phases"]["decode"] > 0
    assert canon_serial["phases"]["join"] > 0


def test_profile_rollup_reports_coverage(tiny_corpus):
    report = run_corpus(corpus=tiny_corpus, jobs=1, obs=True, obs_sampling=1)
    wall = sum(record.seconds for record in report.records)
    data = profile_rollup(report.obs, wall_seconds=wall)
    assert data["attributed_seconds"] > 0.0
    assert 0.0 < data["coverage"] <= 1.0
    # The named phases capture the overwhelming share of lift wall time
    # (the bench gate demands >= 0.95; leave slack for CI-noise here).
    assert data["coverage"] > 0.8


# -- renderer and CLI ------------------------------------------------------

def test_render_profile_tables_and_dropped_warning():
    profile = Profile(
        phases={"decode": {"self_seconds": 0.1, "wall_seconds": 0.1,
                           "count": 5}},
        addresses={0x401000: {"explores": 3, "smt_queries": 2}},
        events={"smt.query": 2},
        wall_seconds=0.2,
        events_dropped=7,
    )
    text = render_profile(profile, title="Profile: t")
    assert "decode" in text and "0x401000" in text
    assert "50.0% attributed" in text
    assert "7 events dropped" in text


def test_render_profile_opcode_table():
    profile = Profile(
        phases={"uop.exec": {"self_seconds": 0.1, "wall_seconds": 0.1,
                             "count": 5}},
        addresses={}, events={}, wall_seconds=0.1,
    )
    stats = {"add": {"hits": 90, "misses": 2},
             "mov": {"hits": 400, "misses": 3},
             "idiv": {"hits": 0, "misses": 1}}
    text = render_profile(profile, opcode_stats=stats)
    assert "compile-table" in text
    # Ranked by traffic: mov (403) before add (92) before idiv (1).
    assert text.index("mov") < text.index("add") < text.index("idiv")
    assert "97.8%" in text          # add: 90/92 hit rate
    # Empty stats render no table at all.
    assert "compile-table" not in render_profile(profile, opcode_stats={})


def test_uop_phases_are_attributed_and_deterministic():
    # An obs-on uop lift must charge the engine's time to the two uop
    # phases (nested inside transfer) with per-step counts, and those
    # counts must survive canonical_profile: they are deterministic, so
    # serial and worker-pool rollups stay byte-identical.
    from repro.hoare.lifter import lift_uncached

    binary = compile_source(
        "long main(long n) { return n + 41; }", name="uop-prof")
    prior = obs.save_state()
    obs.reset()
    obs.enable()
    try:
        result = lift_uncached(binary, engine="uop")
        profile = build_profile(
            obs.tracer.events(), dict(obs.tracer.counts),
            phases_snapshot=phases.snapshot(),
            wall_seconds=result.stats.seconds,
            sampling=obs.tracer.sampling)
    finally:
        obs.restore_state(prior)
    assert result.verified
    assert profile.phases["uop.compile"]["count"] > 0
    assert profile.phases["uop.exec"]["count"] > 0
    canonical = canonical_profile({"phases": profile.phases,
                                   "events": profile.events})
    assert canonical["phases"]["uop.exec"] == \
        profile.phases["uop.exec"]["count"]
    assert "uop.exec" not in NONDETERMINISTIC_PHASE_COUNTS


@pytest.fixture(scope="module")
def loop_elf(tmp_path_factory) -> str:
    from repro.elf import save_binary

    binary = compile_source(
        "long main(long n) { long s = 0;"
        " for (long i = 0; i < n; i = i + 1) { s = s + i; }"
        " return s; }",
        name="loop")
    path = tmp_path_factory.mktemp("profile") / "loop.elf"
    save_binary(binary, str(path))
    return str(path)


def test_profile_verb_text(loop_elf, capsys):
    from repro.__main__ import main

    assert main(["profile", loop_elf]) == 0
    out = capsys.readouterr().out
    assert "Profile:" in out
    assert "attributed to named phases" in out
    assert "decode" in out and "join" in out
    assert not obs.is_enabled(), "profile must restore the prior obs state"
    assert not phases.profile_mode


def test_profile_verb_collapsed(loop_elf, tmp_path, capsys):
    from repro.__main__ import main

    out_path = tmp_path / "stacks.folded"
    assert main(["profile", loop_elf, "--format", "collapsed",
                 "-o", str(out_path)]) == 0
    lines = out_path.read_text().splitlines()
    assert lines, "profile run must fold at least one stack"
    for line in lines:
        path, weight = line.rsplit(" ", 1)
        assert path and int(weight) >= 0
    assert any(line.startswith("decode ") for line in lines)
