"""Lexer for the mini-C language the corpus is compiled from."""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = frozenset({
    "int", "long", "char", "void", "if", "else", "while", "for", "return",
    "break", "continue", "switch", "case", "default", "extern", "sizeof",
})

# Longest-first so '<<=' style lookahead never misfires.
SYMBOLS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",", ":",
)


@dataclass(frozen=True)
class Token:
    kind: str   # "num" | "ident" | "keyword" | "symbol" | "string" | "eof"
    text: str
    value: int = 0
    line: int = 0


class LexError(SyntaxError):
    pass


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    line = 1
    length = len(source)
    while pos < length:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch.isspace():
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end < 0 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise LexError(f"line {line}: unterminated comment")
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        if ch.isdigit():
            start = pos
            if source.startswith("0x", pos) or source.startswith("0X", pos):
                pos += 2
                while pos < length and source[pos] in "0123456789abcdefABCDEF":
                    pos += 1
                value = int(source[start:pos], 16)
            else:
                while pos < length and source[pos].isdigit():
                    pos += 1
                value = int(source[start:pos])
            tokens.append(Token("num", source[start:pos], value, line))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, 0, line))
            continue
        if ch == "'":
            if pos + 2 < length and source[pos + 1] == "\\":
                escape = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39}
                value = escape.get(source[pos + 2])
                if value is None or source[pos + 3] != "'":
                    raise LexError(f"line {line}: bad character literal")
                tokens.append(Token("num", source[pos:pos + 4], value, line))
                pos += 4
            elif pos + 2 < length and source[pos + 2] == "'":
                tokens.append(
                    Token("num", source[pos:pos + 3], ord(source[pos + 1]), line)
                )
                pos += 3
            else:
                raise LexError(f"line {line}: bad character literal")
            continue
        for symbol in SYMBOLS:
            if source.startswith(symbol, pos):
                tokens.append(Token("symbol", symbol, 0, line))
                pos += len(symbol)
                break
        else:
            raise LexError(f"line {line}: unexpected character {ch!r}")
    tokens.append(Token("eof", "", 0, line))
    return tokens
