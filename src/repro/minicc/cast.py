"""AST for mini-C.

Types are width-based: ``char`` (1 byte), ``int`` (4), ``long`` (8),
pointers (8).  Function pointers are plain ``long`` values obtained by
naming a function; calling a non-function expression emits an indirect
call.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CType:
    base: str           # "char" | "int" | "long" | "void"
    pointers: int = 0   # levels of indirection

    @property
    def is_pointer(self) -> bool:
        return self.pointers > 0

    @property
    def size(self) -> int:
        if self.is_pointer:
            return 8
        return {"char": 1, "int": 4, "long": 8, "void": 0}[self.base]

    def pointee(self) -> "CType":
        if not self.is_pointer:
            raise TypeError(f"not a pointer: {self}")
        return CType(self.base, self.pointers - 1)

    def pointer_to(self) -> "CType":
        return CType(self.base, self.pointers + 1)

    def __str__(self) -> str:
        return self.base + "*" * self.pointers


LONG = CType("long")
INT = CType("int")
CHAR = CType("char")
VOID = CType("void")


# -- expressions -----------------------------------------------------------------

@dataclass
class Num:
    value: int


@dataclass
class Name:
    ident: str


@dataclass
class Unary:
    op: str          # "-" "!" "~" "*" "&"
    operand: "Expr"


@dataclass
class Binary:
    op: str
    left: "Expr"
    right: "Expr"


@dataclass
class Assign:
    target: "Expr"   # Name / Unary("*") / Index
    value: "Expr"


@dataclass
class Index:
    base: "Expr"
    index: "Expr"


@dataclass
class Call:
    callee: "Expr"   # Name (direct) or anything else (indirect)
    args: list


Expr = Num | Name | Unary | Binary | Assign | Index | Call


# -- statements -------------------------------------------------------------------

@dataclass
class ExprStmt:
    expr: Expr


@dataclass
class Decl:
    ctype: CType
    name: str
    array: int | None = None       # element count for local arrays
    init: Expr | None = None


@dataclass
class If:
    cond: Expr
    then: "Stmt"
    otherwise: "Stmt | None" = None


@dataclass
class While:
    cond: Expr
    body: "Stmt"


@dataclass
class For:
    init: "Stmt | None"
    cond: Expr | None
    step: Expr | None
    body: "Stmt"


@dataclass
class Return:
    value: Expr | None = None


@dataclass
class Break:
    pass


@dataclass
class Continue:
    pass


@dataclass
class Case:
    value: int | None   # None = default
    body: list


@dataclass
class Switch:
    scrutinee: Expr
    cases: list


@dataclass
class Block:
    statements: list


Stmt = ExprStmt | Decl | If | While | For | Return | Break | Continue | Switch | Block


# -- top level ----------------------------------------------------------------------

@dataclass
class Param:
    ctype: CType
    name: str


@dataclass
class Function:
    ctype: CType
    name: str
    params: list
    body: Block


@dataclass
class Global:
    ctype: CType
    name: str
    array: int | None = None
    init: int | list | None = None


@dataclass
class Extern:
    ctype: CType
    name: str


@dataclass
class Program:
    functions: list = field(default_factory=list)
    globals: list = field(default_factory=list)
    externs: list = field(default_factory=list)
