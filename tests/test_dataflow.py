"""The worklist engine and the concrete analyses (liveness, reaching
definitions, stack height), including the stack-height cross-check of the
paper's ``rsp = RSP0 + 8`` return invariant."""

from __future__ import annotations

import pytest

from repro import lift
from repro.analysis import (
    AnalysisContext,
    Dataflow,
    live_after,
    reaching_before,
    return_heights,
    rsp_invariant_holds,
    solve,
    solve_liveness,
    solve_stack,
)
from repro.analysis.reaching import ENTRY
from repro.minicc import compile_source

LOOPY = """
long helper(long x) { return x + 3; }
long main(long a, long b) {
  long acc = 0;
  for (long i = 0; i < a; i = i + 1) acc = acc + helper(b + i);
  return acc;
}
"""


@pytest.fixture(scope="module")
def loopy_ctx():
    return AnalysisContext(lift(compile_source(LOOPY, name="loopy")))


@pytest.fixture(scope="module")
def main_view(loopy_ctx):
    view = loopy_ctx.view_of(loopy_ctx.result.entry)
    assert view is not None
    return view


# -- the engine itself ---------------------------------------------------------


def test_engine_rejects_bad_direction():
    with pytest.raises(ValueError):
        Dataflow(direction="sideways", boundary=0, bottom=0,
                 join=max, transfer=lambda i, v: v)


def test_forward_and_backward_cover_all_blocks(loopy_ctx, main_view):
    solution = solve_liveness(loopy_ctx, main_view)
    assert solution.converged
    assert set(solution.entry) == set(main_view.blocks)
    assert set(solution.exit) == set(main_view.blocks)


def test_loop_reaches_fixpoint(loopy_ctx, main_view):
    # The for-loop gives the CFG a cycle; the engine must still converge.
    assert len(main_view.blocks) >= 3
    solution = solve_stack(loopy_ctx, main_view)
    assert solution.converged
    assert solution.iterations >= len(main_view.blocks)


def test_widening_bails_out_flagged(loopy_ctx, main_view):
    # A lattice that never stabilizes: the engine must bail out with
    # converged=False rather than hang.
    counter = Dataflow(
        direction="forward",
        boundary=0,
        bottom=0,
        join=max,
        transfer=lambda instr, v: v + 1,
        widen_after=2,
    )
    solution = solve(main_view, counter)
    assert not solution.converged


# -- liveness ------------------------------------------------------------------


def test_arguments_live_at_entry(loopy_ctx, main_view):
    solution = solve_liveness(loopy_ctx, main_view)
    live_in = solution.entry[main_view.entry]
    # main(a, b) reads both argument registers.
    assert "rdi" in live_in and "rsi" in live_in


def test_live_after_call_includes_result(loopy_ctx, main_view):
    live = live_after(loopy_ctx, main_view)
    calls = [
        instr
        for leader in main_view.blocks
        for instr in main_view.instrs[leader]
        if instr.mnemonic == "call"
    ]
    assert calls
    # The call's return value is consumed by the accumulator.
    assert any("rax" in live[c.addr] for c in calls)


# -- reaching definitions ------------------------------------------------------


def test_entry_defs_reach_first_instruction(loopy_ctx, main_view):
    reach = reaching_before(loopy_ctx, main_view)
    at_entry = reach[main_view.entry]
    assert ("rdi", ENTRY) in at_entry
    assert ("rax", ENTRY) in at_entry


def test_defs_are_killed_by_redefinition(loopy_ctx, main_view):
    reach = reaching_before(loopy_ctx, main_view)
    solution_addrs = sorted(reach)
    last = solution_addrs[-1]
    # By the end of main, rsp has been pushed/popped: the entry def of rsp
    # no longer reaches alone — some instruction redefined it.
    sites = {site for (fam, site) in reach[last] if fam == "rsp"}
    assert sites != {ENTRY}


# -- stack height --------------------------------------------------------------


def test_rsp_invariant_rederived(loopy_ctx):
    # The acceptance criterion: height 0 before every ret, i.e.
    # rsp_after = RSP0 + 8, re-derived without the lifter's solver.
    assert loopy_ctx.result.verified
    assert rsp_invariant_holds(loopy_ctx)


def test_every_function_has_a_checked_ret(loopy_ctx):
    for view in loopy_ctx.views:
        checks = return_heights(loopy_ctx, view)
        assert checks, f"no ret found in fn {view.entry:#x}"
        for check in checks:
            assert check.height == 0
            assert check.ok


def test_stack_height_tracks_prologue(loopy_ctx, main_view):
    from repro.analysis.stack import solve_stack, stack_problem

    problem = stack_problem(loopy_ctx)
    solution = solve_stack(loopy_ctx, main_view)
    entry_val = solution.entry[main_view.entry]
    assert entry_val.height == 0
    # Somewhere in the body the stack is deeper than at entry.
    depths = [
        value.height
        for leader in main_view.blocks
        for _, value in solution.before_each(main_view, problem, leader)
        if value.height is not None
    ]
    assert min(depths) < 0


def test_invariant_fails_on_unbalanced_stack():
    from repro.elf import BinaryBuilder
    from repro.isa import Imm

    builder = BinaryBuilder("unbalanced")
    t = builder.text
    t.label("main")
    t.emit("sub", "rsp", Imm(8, 32))
    t.emit("ret")
    result = lift(builder.build(entry="main"))
    # The lifter rejects this (return address is not at RSP0) — and the
    # numeric analysis independently sees height -8 at the ret.
    assert not result.verified
    ctx = AnalysisContext(result)
    checks = [c for view in ctx.views for c in return_heights(ctx, view)]
    assert checks
    assert all(c.height == -8 and not c.ok for c in checks)
    assert not rsp_invariant_holds(ctx)
