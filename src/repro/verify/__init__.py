"""First-class sanity-property verification (the paper's three properties).

A thin, stable API over the lifter for consumers who care about the
verdicts rather than the graph:

* **return-address integrity** — no execution overwrites the function's
  own return address;
* **bounded control flow** — every indirect transfer resolves to a fixed
  finite target set (violations are per-instruction annotations);
* **calling-convention adherence** — callee-saved registers and the stack
  pointer are restored on every return.

``verify_binary`` / ``verify_function`` return a :class:`SanityReport`.
"""

from repro.verify.report import (
    PropertyResult,
    SanityReport,
    verify_binary,
    verify_function,
)

__all__ = ["PropertyResult", "SanityReport", "verify_binary", "verify_function"]
