"""Table 2: CoreUtils-like binaries exported to Isabelle/HOL and validated."""

from __future__ import annotations

import io
from dataclasses import dataclass

from repro.corpus import build_coreutils
from repro.export import check_triples, export_theory
from repro.hoare import lift


@dataclass
class Table2Row:
    name: str
    instructions: int
    indirections: int
    triples: int
    proven: int
    assumed: int
    untested: int
    failed: int
    theory_lines: int

    @property
    def all_proven(self) -> bool:
        return self.failed == 0


def generate_table2(check_samples: int = 4) -> tuple[list[Table2Row], str]:
    """Lift the six coreutils-like programs, export theories, replay
    every Hoare triple."""
    rows: list[Table2Row] = []
    for name, binary in build_coreutils().items():
        result = lift(binary)
        assert result.verified, f"{name} failed to lift: {result.errors}"
        theory = export_theory(result)
        report = check_triples(result, samples=check_samples)
        rows.append(Table2Row(
            name=name,
            instructions=result.stats.instructions,
            indirections=result.stats.resolved_indirections,
            triples=len(report.checks),
            proven=report.proven,
            assumed=report.assumed,
            untested=report.untested,
            failed=report.failed,
            theory_lines=theory.count("\n"),
        ))
    rows.sort(key=lambda row: row.name)
    return rows, format_table2(rows)


def format_table2(rows: list[Table2Row]) -> str:
    out = io.StringIO()
    out.write("Table 2: binaries exported to Isabelle/HOL and validated\n\n")
    header = (f"{'Binary':<10} {'#Instructions':>14} {'#Indirections':>14} "
              f"{'#Triples':>9} {'proven':>7} {'assumed':>8} "
              f"{'untested':>9} {'FAILED':>7}")
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    total_instr = total_ind = total_triples = 0
    for row in rows:
        out.write(
            f"{row.name:<10} {row.instructions:>14} {row.indirections:>14} "
            f"{row.triples:>9} {row.proven:>7} {row.assumed:>8} "
            f"{row.untested:>9} {row.failed:>7}\n"
        )
        total_instr += row.instructions
        total_ind += row.indirections
        total_triples += row.triples
    out.write("-" * len(header) + "\n")
    out.write(f"{'Total':<10} {total_instr:>14} {total_ind:>14} "
              f"{total_triples:>9}\n")
    return out.getvalue()
