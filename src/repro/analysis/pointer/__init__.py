"""Interprocedural binary-level pointer analysis with call-site summaries.

Layers (each importable on its own):

* :mod:`~repro.analysis.pointer.domain` — regions (``Global`` /
  ``StackFrame`` / ``Heap`` / ``Unknown``), region-set values, spans and
  the :class:`~repro.analysis.pointer.domain.Summary` contract;
* :mod:`~repro.analysis.pointer.transfer` — the flow-sensitive
  per-function pass over the PR-1 worklist engine;
* :mod:`~repro.analysis.pointer.summaries` — the bottom-up SCC sweep
  producing per-function call-site summaries;
* :mod:`~repro.analysis.pointer.feedback` — the two-phase
  ``lift(..., pointer_summaries=True)`` protocol feeding summaries back
  into the lifter's call cleaning;
* :mod:`~repro.analysis.pointer.soundness` — the differential gate
  checking concrete emulator runs against predicted region sets;
* :mod:`~repro.analysis.pointer.report` — precision statistics and CLI
  rendering.

Note: :mod:`repro.hoare.calls` deliberately does *not* import this
package — the refinement hook is duck-typed (``is_top`` /
``writes_nothing`` / ``keeps``) so the lifter stays import-independent of
the analysis layer that refines it.
"""

from repro.analysis.pointer.domain import (
    Global,
    Heap,
    PtrVal,
    Region,
    Span,
    StackFrame,
    Summary,
    TOP_SUMMARY,
    UNKNOWN,
    UNKNOWN_VAL,
    Unknown,
    classify_const,
    join_vals,
    widen_vals,
)
from repro.analysis.pointer.transfer import (
    Access,
    Env,
    Escape,
    FunctionFacts,
    call_target,
    collect_facts,
    eval_value,
    pointer_problem,
)
from repro.analysis.pointer.summaries import (
    PURE_EXTERNALS,
    PointerAnalysis,
    external_summary,
)
from repro.analysis.pointer.feedback import (
    SummaryOracle,
    build_oracle,
    lift_with_summaries,
)
from repro.analysis.pointer.soundness import (
    GateMiss,
    GateReport,
    gate_qa_targets,
    run_gate,
)
from repro.analysis.pointer.report import (
    PrecisionStats,
    precision_stats,
    render_pointer_report,
)

__all__ = [
    "Global", "Heap", "PtrVal", "Region", "Span", "StackFrame", "Summary",
    "TOP_SUMMARY", "UNKNOWN", "UNKNOWN_VAL", "Unknown", "classify_const",
    "join_vals", "widen_vals",
    "Access", "Env", "Escape", "FunctionFacts", "call_target",
    "collect_facts", "eval_value", "pointer_problem",
    "PURE_EXTERNALS", "PointerAnalysis", "external_summary",
    "SummaryOracle", "build_oracle", "lift_with_summaries",
    "GateMiss", "GateReport", "gate_qa_targets", "run_gate",
    "PrecisionStats", "precision_stats", "render_pointer_report",
]
