"""The ``Binary`` abstraction of Definition 3.1: entry point + ``fetch``.

A :class:`Binary` is a loaded view of an executable: a set of mapped
sections, an entry point, a table of *external* function stubs (the PLT
substitute) and — for shared-object-style lifting — a table of exported
function symbols (the ``nm`` substitute from Section 5.1).

``fetch(addr)`` decodes exactly one instruction at *addr*, from whatever
bytes live there; there is no notion of instruction alignment, so "weird"
mid-instruction addresses decode honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa import DecodeError, Instruction, decode


class FetchError(LookupError):
    """No executable bytes at the requested address."""


@dataclass
class Section:
    """One mapped region of the binary."""

    name: str
    addr: int
    data: bytes
    executable: bool = False
    writable: bool = False

    @property
    def end(self) -> int:
        return self.addr + len(self.data)

    def contains(self, addr: int) -> bool:
        return self.addr <= addr < self.end


@dataclass
class Binary:
    """A loaded x86-64 binary: Definition 3.1's ``⟨a_e, fetch, S, →_B⟩``.

    ``externals`` maps stub addresses to external function names (the
    dynamic-linking boundary).  ``symbols`` maps exported function names to
    their addresses; it is empty for stripped executables and populated for
    shared objects lifted function-by-function.
    """

    entry: int
    sections: list[Section] = field(default_factory=list)
    externals: dict[int, str] = field(default_factory=dict)
    symbols: dict[str, int] = field(default_factory=dict)
    name: str = "a.out"

    # -- byte access --------------------------------------------------------
    def section_at(self, addr: int) -> Section | None:
        for section in self.sections:
            if section.contains(addr):
                return section
        return None

    def read(self, addr: int, size: int) -> bytes:
        """Read *size* bytes of initialized data at *addr*."""
        section = self.section_at(addr)
        if section is None or addr + size > section.end:
            raise FetchError(f"no data at {addr:#x}+{size}")
        offset = addr - section.addr
        return section.data[offset:offset + size]

    def read_u64(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 8), "little")

    def read_u32(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 4), "little")

    def is_mapped(self, addr: int) -> bool:
        return self.section_at(addr) is not None

    def is_executable(self, addr: int) -> bool:
        section = self.section_at(addr)
        return section is not None and section.executable

    def is_writable(self, addr: int) -> bool:
        section = self.section_at(addr)
        return section is not None and section.writable

    # -- instruction fetch ----------------------------------------------------
    def fetch(self, addr: int) -> Instruction:
        """Decode the single instruction at *addr* (the paper's ``fetch``).

        Raises :class:`FetchError` if *addr* is not in executable memory and
        propagates :class:`~repro.isa.DecodeError` for undecodable bytes.
        """
        section = self.section_at(addr)
        if section is None or not section.executable:
            raise FetchError(f"address {addr:#x} is not executable")
        return decode(section.data, addr - section.addr, addr)

    def try_fetch(self, addr: int) -> Instruction | None:
        """Like :meth:`fetch` but returns None on any failure."""
        try:
            return self.fetch(addr)
        except (FetchError, DecodeError):
            return None

    # -- layout helpers -------------------------------------------------------
    def text_range(self) -> tuple[int, int]:
        """(low, high) bounds of executable memory; the paper's text-section
        range used by the immediate-pointer compatibility heuristic."""
        execs = [s for s in self.sections if s.executable]
        if not execs:
            return (0, 0)
        return (min(s.addr for s in execs), max(s.end for s in execs))

    def is_text_address(self, value: int) -> bool:
        low, high = self.text_range()
        return low <= value < high

    def external_name(self, addr: int) -> str | None:
        """The external function name if *addr* is an external stub."""
        return self.externals.get(addr)
