"""Bit-vector decision procedures replacing Z3 for Definition 3.6 queries."""

from repro.smt.intervals import Interval, TOP, from_width, singleton
from repro.smt.linear import Linear, difference, linearize
from repro.smt.solver import (
    Assumption,
    BoundsProvider,
    Decision,
    Fork,
    NO_BOUNDS,
    Region,
    Relation,
    decide_relation,
    expr_interval,
    is_global_pointer,
    is_stack_pointer,
    possible_relations,
)

__all__ = [
    "Interval", "TOP", "from_width", "singleton",
    "Linear", "difference", "linearize",
    "Assumption", "BoundsProvider", "Decision", "Fork", "NO_BOUNDS",
    "Region", "Relation", "decide_relation", "expr_interval",
    "is_global_pointer", "is_stack_pointer", "possible_relations",
]
