"""Events emitted by τ for the lifter to act on."""

from __future__ import annotations

from dataclasses import dataclass

from repro.expr import Expr


@dataclass(frozen=True)
class CallEvent:
    """A call instruction; the lifter applies the context-free call policy."""

    target: Expr | None  # evaluated target (None: unresolvable address)
    return_addr: int


@dataclass(frozen=True)
class RetEvent:
    """A ret instruction: rip was set to the popped value."""

    target: Expr | None
    rsp_after: Expr | None  # rsp after the pop (should be rsp0 + 8)


@dataclass(frozen=True)
class TerminalEvent:
    """Execution stops here (hlt / ud2 / int3 / syscall-exit)."""

    reason: str


@dataclass(frozen=True)
class UnknownWriteEvent:
    """A memory write whose destination could not be evaluated.

    The relation of the write to the return-address region is unknown, so
    return-address integrity is unprovable: the function must be rejected
    (paper Section 1)."""

    detail: str


Event = CallEvent | RetEvent | TerminalEvent | UnknownWriteEvent
