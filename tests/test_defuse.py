"""τ-probed def/use extraction: the semantics-derived effect summaries."""

from __future__ import annotations

import pytest

from repro.isa import Imm, Mem, insn
from repro.semantics import DefUse, def_use


def du(*args):
    return def_use(insn(*args))


def test_mov_reg_reg():
    summary = du("mov", "rax", "rdi")
    assert summary.defs == frozenset({"rax"})
    assert summary.uses == frozenset({"rdi"})
    assert not summary.loads and not summary.stores
    assert not summary.writes_flags and not summary.reads_flags


def test_alu_reads_both_writes_flags():
    summary = du("add", "rax", "rdi")
    assert summary.defs == frozenset({"rax"})
    assert summary.uses == frozenset({"rax", "rdi"})
    assert summary.writes_flags


def test_xor_zero_idiom_has_no_use():
    # The simplifier folds x ^ x; the probe sees no marker in the result.
    summary = du("xor", "rax", "rax")
    assert summary.defs == frozenset({"rax"})
    assert "rax" not in summary.uses


def test_cmp_defines_nothing_but_flags():
    summary = du("cmp", "rax", "rdi")
    assert summary.defs == frozenset()
    assert summary.uses == frozenset({"rax", "rdi"})
    assert summary.writes_flags


def test_conditional_jump_reads_flags():
    summary = def_use(insn("je", Imm(0x10_0040, 32)))
    assert summary.reads_flags
    assert not summary.writes_flags


def test_load_and_store_effects():
    load = du("mov", "rax", Mem(64, base="rdi", disp=8))
    assert load.loads and not load.stores
    assert load.uses == frozenset({"rdi"})

    store = du("mov", Mem(64, base="rdi", disp=8), "rax")
    assert store.stores and not store.loads
    assert store.uses == frozenset({"rdi", "rax"})
    assert store.defs == frozenset()
    (effect,) = store.stores
    assert effect.size == 8


def test_push_updates_rsp_and_stores():
    summary = du("push", "rbx")
    assert summary.defs == frozenset({"rsp"})
    assert summary.uses == frozenset({"rsp", "rbx"})
    assert summary.stores


def test_pop_loads_and_defines_both():
    summary = du("pop", "rbx")
    assert summary.defs == frozenset({"rbx", "rsp"})
    assert "rsp" in summary.uses
    assert summary.loads


def test_partial_width_write_preserves_family_use():
    # mov al, 5 writes only the low byte: the rest of rax flows through.
    summary = du("mov", "al", Imm(5, 8))
    assert summary.defs == frozenset({"rax"})
    assert "rax" in summary.uses


def test_32bit_write_zero_extends_no_use():
    # mov eax, 5 zero-extends: the old rax value is NOT read.
    summary = du("mov", "eax", Imm(5, 32))
    assert summary.defs == frozenset({"rax"})
    assert "rax" not in summary.uses


def test_lea_is_not_a_load():
    summary = du("lea", "rax", Mem(64, base="rdi", index="rsi", scale=4))
    assert summary.defs == frozenset({"rax"})
    assert summary.uses == frozenset({"rdi", "rsi"})
    assert not summary.loads and not summary.stores


def test_result_of_is_symbolic_in_markers():
    from repro.semantics.defuse import reg_marker
    from repro.smt.linear import linearize

    summary = du("add", "rax", "rdi")
    result = summary.result_of("rax")
    assert result is not None
    linear = linearize(result)
    assert set(dict(linear.terms)) == {reg_marker("rax"), reg_marker("rdi")}


def test_unknown_is_conservative_top():
    top = DefUse.unknown()
    assert top.writes_flags and top.reads_flags
    assert "rax" in top.defs and "rax" in top.uses
    assert top.result_of("rax") is None


def test_memoized_same_summary():
    a = def_use(insn("add", "rax", "rdi"))
    b = def_use(insn("add", "rax", "rdi"))
    assert a == b


def test_unpinned_and_pinned_agree():
    pinned = def_use(insn("add", "rax", "rdi").at(0x401000, 4))
    unpinned = def_use(insn("add", "rax", "rdi"))
    assert pinned.defs == unpinned.defs
    assert pinned.uses == unpinned.uses
