"""Symbolic expression AST (Section 3.1), hash-consed.

The paper's grammar::

    E ::= R | F | W | V | E x N | Op x [E]

maps onto five immutable node types:

* :class:`Const`   — machine words ``W`` (unsigned, modulo ``2**width``);
* :class:`Var`     — variables ``V``: *initial* register values (``rdi0``),
  havoc values introduced by external calls, and return-address symbols;
* :class:`RegRef`  — a *current* register ``R`` (only meaningful transiently,
  while evaluating an instruction's operands);
* :class:`FlagRef` — a *current* flag ``F``;
* :class:`Deref`   — a memory region read ``E x N`` (address expr, byte size);
* :class:`App`     — operator application ``Op x [E]``.

"Constant expressions" (the paper's ``C``) are expressions built without
``RegRef``/``FlagRef``: combinations of words, variables, and reads from
regions with constant-expression addresses.  :func:`is_constant_expr` tests
this.

All arithmetic is fixed-width two's-complement; ``width`` is in bits.

**Hash-consing.**  Every constructor interns its node in a per-class
weak-value table: structurally equal nodes built anywhere in the process
are the *same object*, so ``a == b ⇔ a is b`` while both are alive, deep
structural comparisons short-circuit on identity, and each node's hash is
computed once at construction.  The tables hold weak references, so nodes
are reclaimed normally when the lifter drops them.  Equality keeps a
structural fallback (identity first), which also keeps pre-reset nodes
comparable after :func:`repro.perf.reset_caches`.  Pickling re-interns via
``__reduce__`` — hashes are *not* assumed stable across processes.
"""

from __future__ import annotations

import weakref
from functools import lru_cache

from repro.perf import register_cache, register_lru
from repro.perf.counters import counters as _C, gated as _gated

MASK64 = (1 << 64) - 1


def mask(width: int) -> int:
    return (1 << width) - 1


def to_signed(value: int, width: int) -> int:
    """Interpret an unsigned *width*-bit value as two's-complement."""
    sign = 1 << (width - 1)
    value &= mask(width)
    return value - (1 << width) if value & sign else value


class Expr:
    """Base class for all symbolic expressions (interned value objects)."""

    __slots__ = ("_hash", "__weakref__")
    width: int

    def __hash__(self) -> int:
        return self._hash

    # Subclasses override __eq__ with direct field comparisons; interning
    # makes the identity fast path the common case, and the structural
    # fallback keeps nodes from before a cache reset comparable.
    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self._fields() == other._fields()

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __setattr__(self, name, value):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __delattr__(self, name):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def _fields(self) -> tuple:
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        return ()

    def walk(self):
        """Yield self and all transitive sub-expressions."""
        yield self
        for child in self.children():
            yield from child.walk()


_set = object.__setattr__

#: Per-class intern tables (weak values: unreferenced nodes are reclaimed).
_INTERN_TABLES: dict[str, weakref.WeakValueDictionary] = {}


def _intern_table(name: str) -> weakref.WeakValueDictionary:
    table = weakref.WeakValueDictionary()
    _INTERN_TABLES[name] = table
    return table


def reset_intern_tables() -> None:
    """Drop every intern table entry (nodes already held stay valid)."""
    for table in _INTERN_TABLES.values():
        table.clear()


def intern_table_sizes() -> dict[str, int]:
    return {name: len(table) for name, table in sorted(_INTERN_TABLES.items())}


register_cache(
    "expr.intern",
    lambda: {"hits": _C.intern_hits, "misses": _C.expr_new,
             "size": sum(intern_table_sizes().values())},
    reset_intern_tables,
)


class Const(Expr):
    """A machine word; value stored unsigned modulo ``2**width``."""

    __slots__ = ("value", "width")
    _interned = _intern_table("Const")

    def __new__(cls, value: int, width: int = 64):
        value &= mask(width)
        key = (value, width)
        self = cls._interned.get(key)
        if self is not None:
            _gated("intern_hits")
            return self
        _gated("expr_new")
        self = object.__new__(cls)
        _set(self, "value", value)
        _set(self, "width", width)
        _set(self, "_hash", hash(("C", value, width)))
        cls._interned[key] = self
        return self

    def __reduce__(self):
        return (Const, (self.value, self.width))

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if other.__class__ is not Const:
            return NotImplemented
        return self.value == other.value and self.width == other.width

    __hash__ = Expr.__hash__

    def _fields(self) -> tuple:
        return (self.value, self.width)

    @property
    def signed(self) -> int:
        return to_signed(self.value, self.width)

    def __str__(self) -> str:
        return hex(self.value)

    def __repr__(self) -> str:
        return f"Const(value={self.value!r}, width={self.width!r})"


class Var(Expr):
    """A symbolic variable: an unknown but fixed machine word.

    Naming conventions used by the lifter: ``rdi0`` (initial register
    values), ``ret@<addr>`` (return-address symbols for context-free calls),
    ``havoc<n>`` (values destroyed by external calls or unmodelled reads).
    """

    __slots__ = ("name", "width")
    _interned = _intern_table("Var")

    def __new__(cls, name: str, width: int = 64):
        key = (name, width)
        self = cls._interned.get(key)
        if self is not None:
            _gated("intern_hits")
            return self
        _gated("expr_new")
        self = object.__new__(cls)
        _set(self, "name", name)
        _set(self, "width", width)
        _set(self, "_hash", hash(("V", name, width)))
        cls._interned[key] = self
        return self

    def __reduce__(self):
        return (Var, (self.name, self.width))

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if other.__class__ is not Var:
            return NotImplemented
        return self.name == other.name and self.width == other.width

    __hash__ = Expr.__hash__

    def _fields(self) -> tuple:
        return (self.name, self.width)

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Var(name={self.name!r}, width={self.width!r})"


class RegRef(Expr):
    """The *current* value of a 64-bit register family (transient)."""

    __slots__ = ("name", "width")
    _interned = _intern_table("RegRef")

    def __new__(cls, name: str, width: int = 64):
        key = (name, width)
        self = cls._interned.get(key)
        if self is not None:
            _gated("intern_hits")
            return self
        _gated("expr_new")
        self = object.__new__(cls)
        _set(self, "name", name)
        _set(self, "width", width)
        _set(self, "_hash", hash(("R", name, width)))
        cls._interned[key] = self
        return self

    def __reduce__(self):
        return (RegRef, (self.name, self.width))

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if other.__class__ is not RegRef:
            return NotImplemented
        return self.name == other.name and self.width == other.width

    __hash__ = Expr.__hash__

    def _fields(self) -> tuple:
        return (self.name, self.width)

    def __str__(self) -> str:
        return f"${self.name}"

    def __repr__(self) -> str:
        return f"RegRef(name={self.name!r}, width={self.width!r})"


class FlagRef(Expr):
    """The *current* value of a status flag (transient)."""

    __slots__ = ("name", "width")
    _interned = _intern_table("FlagRef")

    def __new__(cls, name: str, width: int = 1):
        key = (name, width)
        self = cls._interned.get(key)
        if self is not None:
            _gated("intern_hits")
            return self
        _gated("expr_new")
        self = object.__new__(cls)
        _set(self, "name", name)
        _set(self, "width", width)
        _set(self, "_hash", hash(("F", name, width)))
        cls._interned[key] = self
        return self

    def __reduce__(self):
        return (FlagRef, (self.name, self.width))

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if other.__class__ is not FlagRef:
            return NotImplemented
        return self.name == other.name and self.width == other.width

    __hash__ = Expr.__hash__

    def _fields(self) -> tuple:
        return (self.name, self.width)

    def __str__(self) -> str:
        return f"${self.name}"

    def __repr__(self) -> str:
        return f"FlagRef(name={self.name!r}, width={self.width!r})"


class Deref(Expr):
    """An ``size``-byte little-endian read from memory region ``[addr, size]``.

    A ``Deref`` whose address is a constant expression denotes the value that
    region held *in the initial state* (memory writes substitute derefs away
    or havoc them); this is exactly the paper's ``*[a, n]`` notation.
    """

    __slots__ = ("addr", "size")
    _interned = _intern_table("Deref")

    def __new__(cls, addr: "Expr", size: int):
        key = (addr, size)
        self = cls._interned.get(key)
        if self is not None:
            _gated("intern_hits")
            return self
        _gated("expr_new")
        self = object.__new__(cls)
        _set(self, "addr", addr)
        _set(self, "size", size)
        _set(self, "_hash", hash(("D", addr, size)))
        cls._interned[key] = self
        return self

    def __reduce__(self):
        return (Deref, (self.addr, self.size))

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if other.__class__ is not Deref:
            return NotImplemented
        return self.size == other.size and self.addr == other.addr

    __hash__ = Expr.__hash__

    def _fields(self) -> tuple:
        return (self.addr, self.size)

    @property
    def width(self) -> int:
        return self.size * 8

    def children(self) -> tuple[Expr, ...]:
        return (self.addr,)

    def __str__(self) -> str:
        return f"*[{self.addr}, {self.size}]"

    def __repr__(self) -> str:
        return f"Deref(addr={self.addr!r}, size={self.size!r})"


#: Operators. Binary unless noted. All operate at App.width.
OPS = frozenset({
    "add", "sub", "mul",            # wrapping arithmetic
    "udiv", "sdiv", "urem", "srem",  # division (fold only when concrete)
    "and", "or", "xor",
    "not", "neg",                    # unary
    "shl", "shr", "sar",
    "zext", "sext",                  # (value, from_width Const) -> width
    "low",                           # truncate to width
    "ite",                           # (cond, then, else)
    "ltu", "leu", "lts", "les", "eq",  # comparisons -> width 1
    "bool_not", "bool_and", "bool_or",
    "parity",                        # parity of low byte -> width 1
})


class App(Expr):
    """Application of an operator to subexpressions, at a given bit width."""

    __slots__ = ("op", "args", "width")
    _interned = _intern_table("App")

    def __new__(cls, op: str, args, width: int = 64):
        args = tuple(args)
        key = (op, args, width)
        self = cls._interned.get(key)
        if self is not None:
            _gated("intern_hits")
            return self
        if op not in OPS:
            raise ValueError(f"unknown operator: {op}")
        _gated("expr_new")
        self = object.__new__(cls)
        _set(self, "op", op)
        _set(self, "args", args)
        _set(self, "width", width)
        _set(self, "_hash", hash(("A", op, args, width)))
        cls._interned[key] = self
        return self

    def __reduce__(self):
        return (App, (self.op, self.args, self.width))

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if other.__class__ is not App:
            return NotImplemented
        return (self.op == other.op and self.width == other.width
                and self.args == other.args)

    __hash__ = Expr.__hash__

    def _fields(self) -> tuple:
        return (self.op, self.args, self.width)

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        if self.op == "add" and len(self.args) == 2:
            return f"({self.args[0]} + {self.args[1]})"
        if self.op == "sub" and len(self.args) == 2:
            return f"({self.args[0]} - {self.args[1]})"
        if self.op == "mul" and len(self.args) == 2:
            return f"({self.args[0]} * {self.args[1]})"
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.op}{self.width}({inner})"

    def __repr__(self) -> str:
        return (f"App(op={self.op!r}, args={self.args!r}, "
                f"width={self.width!r})")


# -- convenience constructors -------------------------------------------------

ZERO = Const(0, 64)
ONE = Const(1, 64)
TRUE = Const(1, 1)
FALSE = Const(0, 1)


def const(value: int, width: int = 64) -> Const:
    return Const(value, width)


def var(name: str, width: int = 64) -> Var:
    return Var(name, width)


def is_constant_expr(expr: Expr) -> bool:
    """True if *expr* is a paper-style constant expression ``C``:
    contains no current-register/flag references."""
    return not any(isinstance(node, (RegRef, FlagRef)) for node in expr.walk())


def variables_of(expr: Expr) -> frozenset[Var]:
    """All Var leaves of *expr*."""
    return frozenset(node for node in expr.walk() if isinstance(node, Var))


@lru_cache(maxsize=131072)
def variable_names(expr: Expr) -> frozenset[str]:
    """Memoized names of all Var leaves of *expr* (a hot join-time query)."""
    return frozenset(node.name for node in expr.walk() if isinstance(node, Var))


@lru_cache(maxsize=131072)
def expr_key(expr: Expr) -> str:
    """Memoized ``str(expr)`` for use as a deterministic sort key."""
    return str(expr)


register_lru("expr.key", expr_key)
register_lru("expr.varnames", variable_names)
