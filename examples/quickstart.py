#!/usr/bin/env python3
"""Quickstart: compile a C program, lift it, inspect the Hoare graph.

Run:  python examples/quickstart.py
"""

from repro import lift
from repro.export import check_triples, export_theory
from repro.machine import run_binary
from repro.minicc import compile_source

SOURCE = """
long clamp(long x) {
    if (x < 0) return 0;
    if (x > 100) return 100;
    return x;
}

long main(long a, long b) {
    long total = 0;
    for (long i = 0; i < b; i = i + 1) {
        total = total + clamp(a + i);
    }
    return total;
}
"""


def main() -> None:
    # 1. Compile the mini-C source into a real x86-64 ELF binary.
    binary = compile_source(SOURCE, name="quickstart")
    print(f"compiled {binary.name}: entry point {binary.entry:#x}")

    # 2. Sanity check: run it concretely on the bundled emulator.
    cpu = run_binary(binary, args=[40, 3])
    print(f"concrete run main(40, 3) = {cpu.regs['rax']}")

    # 3. Lift: disassembly + control flow + invariants, with the sanity
    #    properties (return-address integrity, bounded control flow,
    #    calling-convention adherence) proven along the way.
    result = lift(binary)
    print(f"\nlift: {result.summary()}")

    print("\ndisassembly (first 12 instructions):")
    for addr in sorted(result.instructions)[:12]:
        print(f"  {result.instructions[addr]}")

    print("\nper-vertex invariant at the entry point:")
    (entry_state,) = result.graph.states_at(result.entry)
    print(f"  {entry_state.pred}")

    # 4. Step 2: export one Hoare triple per edge to Isabelle/HOL...
    theory = export_theory(result)
    first_lemma = theory[theory.index("lemma hoare_"):].split("\n\n")[0]
    print(f"\nIsabelle export: {theory.count('lemma hoare_')} lemmas; first:")
    for line in first_lemma.splitlines():
        print(f"  {line}")

    # ...and validate every triple against independent concrete semantics.
    report = check_triples(result)
    print(f"\ntriple validation: {report.summary()}")


if __name__ == "__main__":
    main()
