"""The benchmark harness behind ``python -m repro.eval bench``.

Measures end-to-end corpus lifting throughput (instructions per second of
*lift* time, corpus construction excluded), reports the hot-path counters
and memo-cache statistics, and writes the results next to the checked-in
pre-optimization baseline so speedups are tracked in-repo.

The ``check_determinism`` mode runs the same corpus serially and with a
worker pool and asserts the two reports agree in canonical (timing-free)
form — the guarantee the parallel runner is built around.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.obs.tracer import DEFAULT_SAMPLING
from repro.perf import cache_stats, reset_caches
from repro.perf.counters import counters, hit_rate

#: Checked-in pre-optimization measurements (totals metric, this corpus).
BASELINE_PATH = Path(__file__).resolve().parents[3] / "benchmarks" / \
    "baseline_pr2.json"

#: Pre-incremental-lifting measurements (the PR5 comparison point).
BASELINE_PR5_PATH = Path(__file__).resolve().parents[3] / "benchmarks" / \
    "baseline_pr5.json"

#: Pre-pointer-summaries measurements (the PR6 comparison point).
BASELINE_PR6_PATH = Path(__file__).resolve().parents[3] / "benchmarks" / \
    "baseline_pr6.json"


def _instruction_totals(report) -> int:
    totals_fn = report.totals("function")
    totals_bin = report.totals("binary")
    return totals_fn.instructions + totals_bin.instructions


def run_bench(scale: int = 3, jobs: int = 1, timeout_seconds: float = 10.0,
              max_states: int = 10_000,
              check_determinism: bool = False) -> dict:
    """Lift the scale-*scale* corpus once and return the measurement dict.

    Caches and counters are reset first so the reported hit rates describe
    this run alone.  ``jobs=1`` is the default: a single process keeps the
    process-global counters meaningful (worker deltas are merged into the
    report either way, but cold per-worker caches dilute the rates).
    """
    from repro.corpus import build_corpus
    from repro.eval.runner import run_corpus

    reset_caches()

    build_start = time.perf_counter()
    corpus = build_corpus(scale)
    build_seconds = time.perf_counter() - build_start

    lift_start = time.perf_counter()
    # cache=False: the throughput bench measures the lifter, not the
    # persistent store — an ambient REPRO_CACHE must not skew it.
    report = run_corpus(corpus=corpus, timeout_seconds=timeout_seconds,
                        max_states=max_states, jobs=jobs, cache=False)
    lift_seconds = time.perf_counter() - lift_start

    instructions = _instruction_totals(report)
    stats = cache_stats()
    result = {
        "scale": scale,
        "jobs": jobs,
        "functions": sum(1 for _ in report.records),
        "build_seconds": round(build_seconds, 3),
        "lift_seconds": round(lift_seconds, 3),
        "instructions": instructions,
        "instrs_per_second": round(instructions / lift_seconds, 1)
        if lift_seconds else 0.0,
        "counters": dict(report.counters),
        "hit_rates": {
            "interning": round(hit_rate(report.counters.get("intern_hits", 0),
                                        report.counters.get("expr_new", 0)), 4),
            "solver": round(hit_rate(report.counters.get("solver_hits", 0),
                                     report.counters.get("solver_misses", 0)),
                            4),
        },
        "caches": stats,
        "python": platform.python_version(),
    }

    if check_determinism:
        result["determinism"] = _check_determinism(corpus, timeout_seconds,
                                                   max_states, jobs, report)
    return result


def _check_determinism(corpus, timeout_seconds: float, max_states: int,
                       jobs: int, first_report) -> dict:
    """Re-lift in the *other* execution mode; compare canonical forms.

    If the measured run was serial, the check run uses a 2-worker pool
    (and vice versa), so the comparison is always serial vs parallel."""
    from repro.eval.runner import run_corpus

    check_jobs = 1 if jobs > 1 else 2
    reset_caches()
    check_report = run_corpus(corpus=corpus,
                              timeout_seconds=timeout_seconds,
                              max_states=max_states, jobs=check_jobs,
                              cache=False)
    first = first_report.canonical_json()
    check = check_report.canonical_json()
    return {"ok": first == check, "check_jobs": check_jobs,
            "first_bytes": len(first), "check_bytes": len(check)}


def trace_overhead(scale: int = 1, timeout_seconds: float = 10.0,
                   max_states: int = 10_000, rounds: int = 2,
                   sampling: int = DEFAULT_SAMPLING) -> dict:
    """Measure the enabled-tracing overhead: corpus lifts with obs off and
    on, interleaved over *rounds* so drift hits both sides, best-of taken
    per side (standard noise reduction).  ``overhead_ratio`` is
    on/off lift time — the quantity the <=5% acceptance bound is on."""
    from repro.corpus import build_corpus
    from repro.eval.runner import run_corpus

    corpus = build_corpus(scale)
    times: dict[bool, list[float]] = {False: [], True: []}
    instructions = 0
    for _ in range(rounds):
        for enabled in (False, True):
            reset_caches()
            start = time.perf_counter()
            report = run_corpus(corpus=corpus,
                                timeout_seconds=timeout_seconds,
                                max_states=max_states, jobs=1,
                                obs=enabled, obs_sampling=sampling,
                                cache=False)
            times[enabled].append(time.perf_counter() - start)
            instructions = _instruction_totals(report)
    off, on = min(times[False]), min(times[True])
    return {
        "scale": scale,
        "rounds": rounds,
        "sampling": sampling,
        "instructions": instructions,
        "off_seconds": round(off, 3),
        "on_seconds": round(on, 3),
        "off_instrs_per_second": round(instructions / off, 1) if off else 0.0,
        "on_instrs_per_second": round(instructions / on, 1) if on else 0.0,
        "overhead_ratio": round(on / off, 4) if off else 0.0,
    }


def run_cache_bench(scale: int = 3, timeout_seconds: float = 10.0,
                    max_states: int = 10_000,
                    cache_dir: str | None = None) -> dict:
    """Cold-vs-warm lift of the same corpus through the persistent store.

    The cold pass lifts into an (empty) store; the warm pass re-runs the
    identical corpus and should be served almost entirely from disk.  Both
    passes go through ``run_corpus(cache=True)``, so the comparison also
    exercises the canonical-report identity the store guarantees.  A
    third, 2-worker warm pass checks the identity holds across a process
    pool.  Uses a private temp directory unless *cache_dir* is given.
    """
    import tempfile

    from repro.corpus import build_corpus
    from repro.eval.runner import run_corpus

    corpus = build_corpus(scale)

    def phase(jobs: int, directory: str) -> tuple[dict, str]:
        reset_caches()
        counters.reset()
        start = time.perf_counter()
        report = run_corpus(corpus=corpus, timeout_seconds=timeout_seconds,
                            max_states=max_states, jobs=jobs,
                            cache=True, cache_dir=directory)
        seconds = time.perf_counter() - start
        instructions = _instruction_totals(report)
        measurement = {
            "jobs": jobs,
            "lift_seconds": round(seconds, 3),
            "instructions": instructions,
            "instrs_per_second": round(instructions / seconds, 1)
            if seconds else 0.0,
            "cache_hits": report.counters.get("cache_lift_hits", 0),
            "cache_misses": report.counters.get("cache_lift_misses", 0),
            "cache_stores": report.counters.get("cache_lift_stores", 0),
        }
        return measurement, report.canonical_json()

    with tempfile.TemporaryDirectory() as tmp:
        directory = cache_dir or tmp
        cold, cold_canonical = phase(1, directory)
        warm, warm_canonical = phase(1, directory)
        warm2, warm2_canonical = phase(2, directory)

    cold_rate = cold["instrs_per_second"]
    warm_rate = warm["instrs_per_second"]
    return {
        "scale": scale,
        "cold": cold,
        "warm": warm,
        "warm_jobs2": warm2,
        "warm_speedup": round(warm_rate / cold_rate, 2) if cold_rate else 0.0,
        "reports_identical": cold_canonical == warm_canonical,
        "reports_identical_jobs2": cold_canonical == warm2_canonical,
    }


def run_schedule_bench(scale: int = 1, timeout_seconds: float = 10.0,
                       max_states: int = 10_000) -> dict:
    """Address-order vs SCC-order A/B over one corpus.

    Both orders must reach the same *verdict* on every corpus entry —
    ``verdicts_identical`` compares per-record outcomes — while the
    loop-aware order should need fewer productive joins (``lift_joins``)
    to get there.  Annotation counts are deliberately excluded: on
    rejected or widened lifts they describe the order-dependent partial
    remainder, not the verdict (docs/INTERNALS.md §6).
    """
    from repro.corpus import build_corpus
    from repro.eval.runner import run_corpus

    corpus = build_corpus(scale)
    sides = {}
    verdicts = {}
    for mode in ("address", "scc"):
        reset_caches()
        counters.reset()
        start = time.perf_counter()
        report = run_corpus(corpus=corpus, timeout_seconds=timeout_seconds,
                            max_states=max_states, jobs=1,
                            cache=False, schedule=mode)
        seconds = time.perf_counter() - start
        instructions = _instruction_totals(report)
        sides[mode] = {
            "lift_seconds": round(seconds, 3),
            "instructions": instructions,
            "instrs_per_second": round(instructions / seconds, 1)
            if seconds else 0.0,
            "lift_joins": report.counters.get("lift_joins", 0),
        }
        verdicts[mode] = {
            (record.kind, record.directory, record.name): record.outcome
            for record in report.records
        }

    address_joins = sides["address"]["lift_joins"]
    scc_joins = sides["scc"]["lift_joins"]
    return {
        "scale": scale,
        "address": sides["address"],
        "scc": sides["scc"],
        "join_reduction": round(1 - scc_joins / address_joins, 4)
        if address_joins else 0.0,
        "verdicts_identical": verdicts["address"] == verdicts["scc"],
    }


def run_summaries_bench(scale: int = 3, timeout_seconds: float = 10.0,
                        max_states: int = 10_000) -> dict:
    """Pointer call-site summaries off vs on: the feedback A/B.

    The "off" side is one cold context-free corpus lift.  The "on" side is
    the two-phase ``pointer_summaries=True`` lift of the same corpus; its
    per-phase accounting comes from :func:`phase2_counters`, because the
    two-phase total would double-count the context-free phase the refined
    lift is derived from (the phase-2 numbers are therefore the *marginal*
    cost/benefit of re-lifting with summaries — the honest comparison
    against the off side, which is exactly such a lift without them).
    Caches are reset between sides so neither inherits the other's SMT
    verdicts or interning tables.

    The corpus A/B proves the refinement is *safe* at scale; the crafted
    :mod:`repro.corpus.feedback` workloads (lifted off/on alongside it)
    concentrate the global-state-across-calls pattern the refinement
    *targets*, which minicc codegen rarely emits — the headline join/query
    reductions are computed over the combined totals.

    Hard guarantees checked here (and asserted by the CI smoke job):

    * every corpus and workload verdict is identical on both sides;
    * no record gains unsoundness annotations under the refinement.
    """
    from repro.corpus import build_corpus
    from repro.corpus.feedback import build_feedback_workloads
    from repro.eval.runner import run_corpus
    from repro.hoare import lift
    from repro.analysis.pointer.feedback import (
        phase2_counters,
        reset_phase_counters,
    )

    corpus = build_corpus(scale)

    def smt_queries(cnt: dict) -> int:
        return cnt.get("solver_hits", 0) + cnt.get("solver_misses", 0)

    def side(pointer_summaries: bool) -> tuple[dict, dict, dict]:
        reset_caches()
        reset_phase_counters()
        start = time.perf_counter()
        report = run_corpus(corpus=corpus, timeout_seconds=timeout_seconds,
                            max_states=max_states, jobs=1, cache=False,
                            pointer_summaries=pointer_summaries)
        seconds = time.perf_counter() - start
        instructions = _instruction_totals(report)
        cnt = phase2_counters() if pointer_summaries else dict(report.counters)
        measurement = {
            "lift_seconds": round(seconds, 3),
            "instructions": instructions,
            "instrs_per_second": round(instructions / seconds, 1)
            if seconds else 0.0,
            "lift_joins": cnt.get("lift_joins", 0),
            "smt_queries": smt_queries(cnt),
            "pointer_summary_hits": cnt.get("pointer_summary_hits", 0),
            "pointer_refined_havocs": cnt.get("pointer_refined_havocs", 0),
            "pointer_top_summaries": cnt.get("pointer_top_summaries", 0),
        }
        verdicts = {
            (record.kind, record.directory, record.name): record.outcome
            for record in report.records
        }
        annotations = {
            (record.kind, record.directory, record.name):
                sum(record.annotations.values())
            for record in report.records
        }
        return measurement, verdicts, annotations

    off, off_verdicts, off_annotations = side(False)
    on, on_verdicts, on_annotations = side(True)

    workloads: dict[str, dict] = {}
    workloads_ok = True
    for name, binary in build_feedback_workloads():
        rows = {}
        for enabled in (False, True):
            reset_caches()
            reset_phase_counters()
            before = counters.snapshot()
            result = lift(binary, timeout_seconds=timeout_seconds,
                          max_states=max_states, cache=False,
                          pointer_summaries=enabled)
            cnt = (phase2_counters() if enabled
                   else counters.delta(before, counters.snapshot()))
            rows["on" if enabled else "off"] = {
                "verified": result.verified,
                "lift_joins": cnt.get("lift_joins", 0),
                "smt_queries": smt_queries(cnt),
                "pointer_refined_havocs": cnt.get("pointer_refined_havocs", 0),
            }
        workloads[name] = rows
        workloads_ok &= rows["off"]["verified"] == rows["on"]["verified"]

    def combined(side_name: str, metric: str, base: dict) -> int:
        return base[metric] + sum(rows[side_name][metric]
                                  for rows in workloads.values())

    off_joins = combined("off", "lift_joins", off)
    on_joins = combined("on", "lift_joins", on)
    off_smt = combined("off", "smt_queries", off)
    on_smt = combined("on", "smt_queries", on)
    return {
        "scale": scale,
        "off": off,
        "on": on,
        "workloads": workloads,
        "combined": {
            "off_lift_joins": off_joins, "on_lift_joins": on_joins,
            "off_smt_queries": off_smt, "on_smt_queries": on_smt,
        },
        "join_reduction": round(1 - on_joins / off_joins, 4)
        if off_joins else 0.0,
        "smt_query_reduction": round(1 - on_smt / off_smt, 4)
        if off_smt else 0.0,
        "verdicts_identical": off_verdicts == on_verdicts and workloads_ok,
        "annotations_bounded": all(
            on_annotations.get(key, 0) <= count
            for key, count in off_annotations.items()
        ) and set(on_annotations) == set(off_annotations),
    }


def load_baseline(scale: int) -> dict | None:
    if not BASELINE_PATH.exists():
        return None
    data = json.loads(BASELINE_PATH.read_text())
    return data.get(f"scale_{scale}")


def load_pr5_baseline(scale: int) -> dict | None:
    if not BASELINE_PR5_PATH.exists():
        return None
    data = json.loads(BASELINE_PR5_PATH.read_text())
    return data.get(f"scale_{scale}")


def load_pr6_baseline(scale: int) -> dict | None:
    if not BASELINE_PR6_PATH.exists():
        return None
    data = json.loads(BASELINE_PR6_PATH.read_text())
    return data.get(f"scale_{scale}")


def bench_report(scale: int = 3, jobs: int = 1,
                 timeout_seconds: float = 10.0, max_states: int = 10_000,
                 check_determinism: bool = False,
                 check_trace_overhead: bool = False,
                 check_cache: bool = False,
                 check_schedule: bool = False,
                 check_summaries: bool = False,
                 out_path: str | Path | None = None) -> tuple[dict, str]:
    """Run the bench, compare against the checked-in baseline, and render.

    Returns ``(payload, text)``; *payload* is also written to *out_path*
    (JSON) when given.  ``check_trace_overhead`` additionally measures the
    obs-enabled lift-time ratio on the scale-1 corpus.  ``check_cache``
    adds the cold/warm persistent-store split (``run_cache_bench``) at the
    same scale; ``check_schedule`` adds the address-vs-SCC A/B
    (``run_schedule_bench``, scale 1); ``check_summaries`` adds the
    pointer-summaries feedback A/B (``run_summaries_bench``, same scale).
    """
    current = run_bench(scale=scale, jobs=jobs,
                        timeout_seconds=timeout_seconds,
                        max_states=max_states,
                        check_determinism=check_determinism)
    baseline = load_baseline(scale)
    payload = {"baseline": baseline, "current": current}
    if baseline and baseline.get("instrs_per_second"):
        payload["speedup"] = round(
            current["instrs_per_second"] / baseline["instrs_per_second"], 2
        )
    pr5_baseline = load_pr5_baseline(scale)
    if pr5_baseline and pr5_baseline.get("instrs_per_second"):
        payload["pr5_baseline"] = pr5_baseline
        payload["pr5_speedup"] = round(
            current["instrs_per_second"] / pr5_baseline["instrs_per_second"], 2
        )
    if check_trace_overhead:
        payload["trace_overhead"] = trace_overhead(
            scale=1, timeout_seconds=timeout_seconds, max_states=max_states)
    if check_cache:
        payload["cache"] = run_cache_bench(
            scale=scale, timeout_seconds=timeout_seconds,
            max_states=max_states)
    if check_schedule:
        payload["schedule"] = run_schedule_bench(
            scale=1, timeout_seconds=timeout_seconds, max_states=max_states)
    if check_summaries:
        payload["summaries"] = run_summaries_bench(
            scale=scale, timeout_seconds=timeout_seconds,
            max_states=max_states)
        pr6_baseline = load_pr6_baseline(scale)
        if pr6_baseline:
            payload["pr6_baseline"] = pr6_baseline

    lines = [
        f"Bench: scale-{scale} corpus, jobs={jobs}",
        f"  build    {current['build_seconds']:>9.3f} s",
        f"  lift     {current['lift_seconds']:>9.3f} s",
        f"  instrs   {current['instructions']:>9}",
        f"  instrs/s {current['instrs_per_second']:>9.1f}",
        f"  interning hit rate {current['hit_rates']['interning']:.1%}  "
        f"solver hit rate {current['hit_rates']['solver']:.1%}",
    ]
    if baseline:
        lines.append(
            f"  baseline {baseline['instrs_per_second']:>9.1f} instrs/s"
            f"  -> speedup {payload.get('speedup', 0):.2f}x"
        )
    determinism = current.get("determinism")
    if determinism is not None:
        lines.append(
            "  serial == parallel (canonical): "
            + ("OK" if determinism["ok"] else "MISMATCH")
        )
    overhead = payload.get("trace_overhead")
    if overhead is not None:
        lines.append(
            f"  tracing overhead (scale-{overhead['scale']}, sampling "
            f"{overhead['sampling']}): off {overhead['off_seconds']:.3f} s, "
            f"on {overhead['on_seconds']:.3f} s -> "
            f"{overhead['overhead_ratio']:.3f}x"
        )
    cache = payload.get("cache")
    if cache is not None:
        lines.append(
            f"  lift store: cold {cache['cold']['instrs_per_second']:.1f} "
            f"instrs/s, warm {cache['warm']['instrs_per_second']:.1f} "
            f"instrs/s -> {cache['warm_speedup']:.2f}x "
            f"(hits {cache['warm']['cache_hits']}, "
            f"misses {cache['warm']['cache_misses']}); "
            "cold == warm (canonical): "
            + ("OK" if cache["reports_identical"] else "MISMATCH")
            + ", jobs=2: "
            + ("OK" if cache["reports_identical_jobs2"] else "MISMATCH")
        )
    schedule = payload.get("schedule")
    if schedule is not None:
        lines.append(
            f"  schedule A/B (scale-{schedule['scale']}): address "
            f"{schedule['address']['lift_joins']} joins, scc "
            f"{schedule['scc']['lift_joins']} joins -> "
            f"{schedule['join_reduction']:.1%} fewer; verdicts "
            + ("identical" if schedule["verdicts_identical"] else "DIFFER")
        )
    summaries = payload.get("summaries")
    if summaries is not None:
        combined = summaries["combined"]
        lines.append(
            f"  summaries A/B (scale-{summaries['scale']} corpus + "
            f"{len(summaries['workloads'])} workloads): "
            f"off {combined['off_lift_joins']} joins / "
            f"{combined['off_smt_queries']} SMT queries, "
            f"on {combined['on_lift_joins']} joins / "
            f"{combined['on_smt_queries']} SMT queries -> "
            f"{summaries['join_reduction']:.1%} fewer joins, "
            f"{summaries['smt_query_reduction']:.1%} fewer queries "
            f"({summaries['on']['pointer_refined_havocs']} corpus refined "
            "havocs); verdicts "
            + ("identical" if summaries["verdicts_identical"] else "DIFFER")
            + ", annotations "
            + ("bounded" if summaries["annotations_bounded"] else "GREW")
        )
    text = "\n".join(lines)

    if out_path is not None:
        Path(out_path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                                  + "\n")
    return payload, text
