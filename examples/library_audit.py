#!/usr/bin/env python3
"""Shared-object audit: lift every exported function of a library.

This is the paper's library mode (Section 5.1): each exported function is
lifted from its own entry in a fresh context-free state, producing a
per-function verdict — lifted (with annotation counts) or rejected with
the failing sanity property.

Run:  python examples/library_audit.py
"""

from repro.corpus import build_library, function_binary
from repro.hoare import lift_function


def main() -> None:
    library = build_library("libdemo.so", "lib", bundles=1)
    print(f"auditing {library.name}: {len(library.functions)} exported "
          f"functions\n")
    header = (f"{'function':<26} {'verdict':<10} {'instrs':>6} {'states':>6} "
              f"{'A':>3} {'B':>3} {'C':>3}  notes")
    print(header)
    print("-" * len(header))

    lifted = 0
    for name in library.functions:
        binary = function_binary(library, name)
        result = lift_function(binary, name, max_states=8000,
                               timeout_seconds=10)
        stats = result.stats
        if result.verified:
            lifted += 1
            notes = "; ".join(
                {a.kind for a in result.annotations}
            )
            print(f"{name:<26} {'ok':<10} {stats.instructions:>6} "
                  f"{stats.states:>6} {stats.resolved_indirections:>3} "
                  f"{stats.unresolved_jumps:>3} {stats.unresolved_calls:>3}"
                  f"  {notes}")
        else:
            error = result.errors[0]
            print(f"{name:<26} {'REJECTED':<10} {stats.instructions:>6} "
                  f"{stats.states:>6} {'':>3} {'':>3} {'':>3}  {error.kind}")

    print(f"\n{lifted}/{len(library.functions)} functions lifted "
          f"({100 * lifted / len(library.functions):.0f}%)")
    print("A = resolved indirections, B = unresolved jumps, "
          "C = unresolved calls (callbacks)")


if __name__ == "__main__":
    main()
