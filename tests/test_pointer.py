"""The interprocedural pointer analysis: domain laws, per-function facts,
call-site summaries, the lifter feedback loop, and the differential
soundness gate — plus the ``AnalysisContext`` satellites that ride along
(memoized ``view_of``, the conservative def/use fallback, and the
``FunctionView`` edge cases the pointer pass must tolerate)."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.elf import BinaryBuilder
from repro.expr import Const
from repro.hoare import lift
from repro.hoare.lifter import lift_uncached
from repro.isa import Imm, Instruction, Mem, abs64
from repro.perf.counters import counters
from repro.semantics import DefUse
from repro.analysis.cfgview import FunctionView, function_views
from repro.analysis.context import AnalysisContext
from repro.analysis.pointer import (
    Access,
    Global,
    Heap,
    PointerAnalysis,
    StackFrame,
    Summary,
    TOP_SUMMARY,
    UNKNOWN,
    UNKNOWN_VAL,
    classify_const,
    external_summary,
    run_gate,
)
from repro.analysis.pointer.domain import (
    ABS_SECTION,
    Span,
    exact_const,
    join_vals,
    shift_val,
    widen_vals,
)
from repro.analysis.pointer.feedback import SummaryOracle
from repro.analysis.pointer.transfer import collect_facts, pointer_problem
from repro.corpus.feedback import flag_loop, keeps_loop


# -- the domain ----------------------------------------------------------------


def test_join_merges_same_key_intervals_by_hull():
    a = frozenset({StackFrame(0x401000, -16, -16)})
    b = frozenset({StackFrame(0x401000, -8, -8)})
    assert join_vals(a, b) == frozenset({StackFrame(0x401000, -16, -8)})


def test_join_unknown_absorbs():
    a = frozenset({Global(".data", 0, 8)})
    assert join_vals(a, UNKNOWN_VAL) == UNKNOWN_VAL
    assert join_vals(UNKNOWN_VAL, a) == UNKNOWN_VAL


def test_join_distinct_keys_accumulate():
    a = frozenset({Global(".data", 0, 0)})
    b = frozenset({StackFrame(0x401000, -8, -8), Heap(0x401020)})
    assert join_vals(a, b) == a | b


def test_widen_is_stable_once_covered():
    old = frozenset({StackFrame(0x401000, -32, -8)})
    new = frozenset({StackFrame(0x401000, -16, -16)})
    assert widen_vals(old, new) == old


def test_widen_pushes_growth_to_unknown():
    old = frozenset({StackFrame(0x401000, -16, -16)})
    new = frozenset({StackFrame(0x401000, -24, -24)})
    assert widen_vals(old, new) == UNKNOWN_VAL


def test_shift_val_moves_intervals_not_heap():
    val = frozenset({StackFrame(0x401000, -16, -8), Heap(0x401020)})
    shifted = shift_val(val, 8)
    assert StackFrame(0x401000, -8, 0) in shifted
    assert Heap(0x401020) in shifted


def test_classify_const_section_vs_absolute():
    builder = BinaryBuilder("sections")
    t = builder.text
    t.label("main")
    t.emit("ret")
    d = builder.data
    d.label("slot")
    d.quad(0)
    binary = builder.build(entry="main")
    (data_region,) = classify_const(binary, builder.data.labels["slot"])
    assert isinstance(data_region, Global) and data_region.section == ".data"
    (abs_region,) = classify_const(binary, 42)
    assert abs_region == Global(ABS_SECTION, 42, 42)
    assert exact_const(frozenset({abs_region})) == 42
    assert exact_const(UNKNOWN_VAL) is None


def test_summary_keeps_is_separation_aware():
    key = SimpleNamespace(addr=Const(0x420000, 64), size=8)
    pure = Summary()
    assert pure.writes_nothing and pure.keeps(key)
    assert not TOP_SUMMARY.keeps(key)
    # A stack write is separate from any constant address by axiom...
    stack_writer = Summary(writes=frozenset(
        {Span(StackFrame(0x401000, -8, -8), 8)}))
    assert stack_writer.keeps(key)
    # ...an overlapping global write is not separable...
    overlapping = Summary(writes=frozenset(
        {Span(Global(".data", 0x420000, 0x420000), 8)}))
    assert not overlapping.keeps(key)
    # ...and a disjoint global write is.
    disjoint = Summary(writes=frozenset(
        {Span(Global(".data", 0x420100, 0x420100), 8)}))
    assert disjoint.keeps(key)


def test_external_summaries():
    assert external_summary("strlen").writes_nothing
    assert external_summary("memcpy").is_top
    assert external_summary("no_such_function").is_top


# -- per-function facts and summaries ------------------------------------------


def _globals_binary():
    """main reads global ``kept`` around calls; ``bump`` writes ``counter``;
    ``pure`` writes nothing non-local."""
    b = BinaryBuilder("globals")
    t = b.text
    t.label("main")
    t.emit("sub", "rsp", Imm(8, 32))
    t.emit("movabs", "rcx", abs64("kept"))
    t.emit("mov", "rax", Mem(64, base="rcx"))
    t.emit("mov", Mem(64, base="rsp"), "rax")
    t.emit("call", "bump")
    t.emit("call", "pure")
    t.emit("mov", "rax", Mem(64, base="rsp"))
    t.emit("add", "rsp", Imm(8, 32))
    t.emit("ret")
    t.label("bump")
    t.emit("movabs", "rcx", abs64("counter"))
    t.emit("mov", "rax", Mem(64, base="rcx"))
    t.emit("lea", "rax", Mem(64, base="rax", disp=1))
    t.emit("mov", Mem(64, base="rcx"), "rax")
    t.emit("ret")
    t.label("pure")
    t.emit("lea", "rax", Mem(64, base="rdi", index="rdi", scale=2))
    t.emit("ret")
    d = b.data
    d.label("kept")
    d.quad(1)
    d.label("counter")
    d.quad(0)
    binary = b.build(entry="main")
    # Expose every label (text and data) as a symbol for the tests.
    for label, addr in (b.text.labels | b.data.labels).items():
        binary.symbols.setdefault(label, addr)
    return binary


@pytest.fixture(scope="module")
def globals_analysis():
    binary = _globals_binary()
    result = lift_uncached(binary)
    assert result.verified
    return binary, result, PointerAnalysis(AnalysisContext(result)).run()


def test_pure_function_summarized_as_writes_nothing(globals_analysis):
    binary, _, analysis = globals_analysis
    pure = analysis.summaries[binary.symbols["pure"]]
    assert pure.writes_nothing and not pure.is_top


def test_global_writer_summary_is_exact(globals_analysis):
    binary, _, analysis = globals_analysis
    bump = analysis.summaries[binary.symbols["bump"]]
    counter_addr = binary.symbols["counter"]
    assert not bump.writes_nothing
    writes = {(span.region.section, span.region.lo, span.region.hi)
              for span in bump.writes}
    # Spans are byte-normalized at the summary boundary: the 8-byte
    # store becomes the byte range [counter, counter+7].
    assert writes == {(".data", counter_addr, counter_addr + 7)}
    # The exact summary keeps a clause about the *other* global...
    kept = SimpleNamespace(addr=Const(binary.symbols["kept"], 64), size=8)
    assert bump.keeps(kept)
    # ...but not one overlapping its own write.
    counter = SimpleNamespace(addr=Const(counter_addr, 64), size=8)
    assert not bump.keeps(counter)


def test_caller_summary_propagates_callee_effects(globals_analysis):
    binary, _, analysis = globals_analysis
    main = analysis.summaries[binary.symbols["main"]]
    counter_addr = binary.symbols["counter"]
    # main's non-local writes are exactly what its callees write.
    assert any(isinstance(span.region, Global)
               and span.region.lo == counter_addr
               for span in main.writes)


def test_scaled_constant_index_folds_precisely():
    # The minicc array idiom: base in a register, index scaled by 8 —
    # both exact constants, so the address is a single frame slot.
    b = BinaryBuilder("indexed")
    t = b.text
    t.label("main")
    t.emit("sub", "rsp", Imm(32, 32))
    t.emit("lea", "rcx", Mem(64, base="rsp", disp=8))
    t.emit("mov", "rdx", Imm(2, 32))
    t.emit("lea", "rcx", Mem(64, base="rcx", index="rdx", scale=8))
    t.emit("mov", Mem(64, base="rcx"), "rdi")
    t.emit("add", "rsp", Imm(32, 32))
    t.emit("xor", "rax", "rax")
    t.emit("ret")
    binary = b.build(entry="main")
    result = lift_uncached(binary)
    assert result.verified
    analysis = PointerAnalysis(AnalysisContext(result)).run()
    facts = analysis.functions[binary.entry]
    store_addr = next(addr for (addr, kind) in facts.accesses
                      if kind == "store"
                      and facts.accesses[(addr, kind)].size == 8
                      and isinstance(
                          next(iter(facts.accesses[(addr, kind)].regions)),
                          StackFrame))
    access = facts.accesses[(store_addr, "store")]
    (region,) = access.regions
    # entry_rsp - 32 + 8 + 2*8 = entry_rsp - 8: one exact slot.
    assert region == StackFrame(binary.entry, -8, -8)


def test_allocator_result_is_heap_region():
    b = BinaryBuilder("heapuse")
    b.extern("malloc")
    t = b.text
    t.label("main")
    t.emit("sub", "rsp", Imm(8, 32))
    t.emit("mov", "rdi", Imm(32, 32))
    t.emit("call", "malloc")
    t.emit("mov", Mem(64, base="rax"), Imm(7, 32))
    t.emit("add", "rsp", Imm(8, 32))
    t.emit("ret")
    binary = b.build(entry="main")
    result = lift_uncached(binary)
    analysis = PointerAnalysis(AnalysisContext(result)).run()
    facts = analysis.functions[binary.entry]
    heap_stores = [
        access for (addr, kind), access in facts.accesses.items()
        if kind == "store" and any(isinstance(r, Heap)
                                   for r in access.regions)
    ]
    assert heap_stores
    (access,) = heap_stores
    (region,) = access.regions
    assert region.site is not None  # attributed to the call site


# -- feedback into the lifter ---------------------------------------------------


def test_summary_oracle_filters_top_and_missing():
    oracle = SummaryOracle({0x401000: Summary(), 0x402000: TOP_SUMMARY})
    assert oracle.for_internal(0x401000) is not None
    assert oracle.for_internal(0x402000) is None
    assert oracle.for_internal(0x999999) is None
    assert oracle.for_external("strlen").writes_nothing
    assert oracle.for_external("memcpy") is None


@pytest.mark.parametrize("builder", [flag_loop, keeps_loop])
def test_feedback_lift_preserves_verdict_and_annotations(builder):
    binary = builder()
    base = lift_uncached(binary)
    before = counters.snapshot()
    refined = lift_uncached(binary, pointer_summaries=True)
    delta = counters.delta(before, counters.snapshot())
    assert refined.verified == base.verified is True
    assert len(refined.annotations) <= len(base.annotations)
    assert delta.get("pointer_refined_havocs", 0) > 0
    # The refined lift declares its analysis input.
    assert any(a.kind == "pointer-summary" for a in refined.assumptions)


def test_feedback_lift_through_cache_layer(tmp_path):
    # pointer_summaries is part of the lift-store key: both variants
    # coexist and the refined entry round-trips.
    binary = flag_loop()
    plain = lift(binary, cache=True, cache_dir=str(tmp_path))
    refined = lift(binary, cache=True, cache_dir=str(tmp_path),
                   pointer_summaries=True)
    refined_again = lift(binary, cache=True, cache_dir=str(tmp_path),
                         pointer_summaries=True)
    assert plain.verified and refined.verified and refined_again.verified
    assert any(a.kind == "pointer-summary" for a in refined_again.assumptions)


# -- the differential soundness gate --------------------------------------------


def test_gate_passes_on_feedback_workloads():
    for builder in (flag_loop, keeps_loop):
        binary = builder()
        report = run_gate(binary)
        assert report.ok, report.summary()
        assert report.checked > 0
        assert not report.machine_errors


def test_gate_passes_with_heap_traffic():
    b = BinaryBuilder("heapgate")
    b.extern("malloc")
    t = b.text
    t.label("main")
    t.emit("sub", "rsp", Imm(8, 32))
    t.emit("mov", "rdi", Imm(32, 32))
    t.emit("call", "malloc")
    t.emit("mov", Mem(64, base="rax"), Imm(7, 32))
    t.emit("mov", "rax", Mem(64, base="rax"))
    t.emit("add", "rsp", Imm(8, 32))
    t.emit("ret")
    report = run_gate(b.build(entry="main"))
    assert report.ok, report.summary()
    assert report.checked > 0


def test_gate_catches_a_wrong_prediction():
    # Mutation check: corrupt one stack prediction into a bogus global
    # region and the gate must report a miss — this is what "the gate
    # would catch an unsound analysis" means.
    binary = flag_loop()
    result = lift_uncached(binary)
    analysis = PointerAnalysis(AnalysisContext(result)).run()
    facts = analysis.functions[binary.entry]
    key = next((addr, kind) for (addr, kind), access in facts.accesses.items()
               if all(isinstance(r, StackFrame) for r in access.regions))
    good = facts.accesses[key]
    facts.accesses[key] = Access(good.addr, good.kind,
                                 frozenset({Global(".data", 0, 0)}),
                                 good.size)
    report = run_gate(binary, result=result, analysis=analysis)
    assert not report.ok
    assert any(miss.instr_addr == key[0] for miss in report.misses)


# -- AnalysisContext satellites -------------------------------------------------


def test_view_of_returns_identical_objects():
    result = lift_uncached(_globals_binary())
    ctx = AnalysisContext(result)
    for view in ctx.views:
        assert ctx.view_of(view.entry) is view
    assert ctx.view_of(0xDEAD) is None


def test_def_use_falls_back_to_top_on_unsupported():
    result = lift_uncached(_globals_binary())
    ctx = AnalysisContext(result)
    weird = Instruction("cpuid", ())
    assert ctx.def_use(weird) == DefUse.unknown()
    # The fallback is cached like any other summary.
    assert ctx.def_use(weird) == DefUse.unknown()


def test_empty_function_view_yields_empty_facts():
    result = lift_uncached(_globals_binary())
    ctx = AnalysisContext(result)
    empty = FunctionView(entry=0x900000, blocks=())
    facts = collect_facts(ctx, empty, lambda *_: TOP_SUMMARY)
    assert facts.accesses == {} and facts.escapes == []
    assert facts.converged


def test_shared_tail_block_views_stay_consistent():
    # Two functions funnel into one shared tail: whatever the partition
    # decides, every view's edges must stay inside its own block set and
    # the pointer analysis must run without degrading to top.
    b = BinaryBuilder("shared_tail")
    t = b.text
    t.label("main")
    t.emit("call", "helper")
    t.emit("jmp", "tail")
    t.label("helper")
    t.emit("jmp", "tail")
    t.label("tail")
    t.emit("xor", "rax", "rax")
    t.emit("ret")
    binary = b.build(entry="main")
    result = lift_uncached(binary)
    views = function_views(result)
    assert views
    for view in views:
        members = set(view.blocks)
        for leader, succs in view.succs.items():
            assert leader in members
            assert set(succs) <= members
    analysis = PointerAnalysis(AnalysisContext(result)).run()
    assert all(facts.converged for facts in analysis.functions.values())


def test_pointer_problem_converges_on_loops():
    binary = flag_loop()
    result = lift_uncached(binary)
    ctx = AnalysisContext(result)
    view = ctx.view_of(binary.entry)
    assert view is not None
    problem = pointer_problem(ctx, view, lambda *_: TOP_SUMMARY)
    from repro.analysis.engine import solve

    solution = solve(view, problem)
    assert solution.converged
