"""The micro-op engine: compile memo, array interpreter, τ equivalence.

Covers the PR-10 tentpole contracts:

* ``compile_insn`` is deterministic and content-addressed — identical
  opcode+operand shapes share one compiled block regardless of address,
  and a ``SEMANTICS_VERSION`` bump misses the memo;
* ``uop_step`` is a drop-in for ``tau.step``: successor-for-successor
  equal (predicate, memory model, events) on straight-line code;
* the step memo only keeps *pure* transfers (no fresh havoc names) and
  replays them on identical states;
* the vectorized interval interpreter is conservative;
* all three uop caches are registered with the perf layer and reset with
  everything else.
"""

from __future__ import annotations

import pytest

from repro.elf import BinaryBuilder
from repro.expr import Const
from repro.isa import Imm, Mem, insn
from repro.perf import cache_stats, reset_caches
from repro.semantics import LiftContext, initial_state, step
from repro.uop import (
    batch_interval_of,
    block_intervals,
    compile_insn,
    opcode_stats,
    shape_key,
    uop_step,
)
from repro.uop import ir
from repro.uop.interp import _STEP_STATS


def make_binary(instructions, name="uop-test"):
    builder = BinaryBuilder(name)
    builder.text.label("main")
    for instr in instructions:
        builder.text.emit(instr.mnemonic, *instr.operands)
    builder.text.emit("ret")
    return builder.build(entry="main")


def fetch_all(binary, count):
    out = []
    addr = binary.entry
    for _ in range(count):
        instr = binary.fetch(addr)
        out.append(instr)
        addr = instr.end
    return out


def run_engine(instructions, step_fn):
    """Step a straight-line sequence; returns the final successor lists."""
    binary = make_binary(instructions)
    ctx = LiftContext(binary)
    states = [initial_state(binary.entry)]
    successors = []
    for instr in fetch_all(binary, len(instructions)):
        successors = [succ for state in states
                      for succ in step_fn(state, instr, ctx)]
        states = [succ.state for succ in successors]
    return successors


SEQUENCES = {
    "mov-imm": [insn("mov", "rax", Imm(42, 32))],
    "alu-chain": [insn("mov", "rax", "rdi"),
                  insn("add", "rax", Imm(5, 32)),
                  insn("sub", "rax", "rsi"),
                  insn("and", "rax", "rdx")],
    "subreg": [insn("mov", "rax", Imm(0x1100, 32)),
               insn("mov", "al", Imm(0x22, 8))],
    "lea": [insn("lea", "rbx", Mem(base="rdi", index="rsi",
                                   scale=4, disp=8, width=64))],
    "stack": [insn("push", "rdi"), insn("pop", "rax")],
    "store-load": [insn("mov", Mem(base="rsp", disp=-8, width=64), "rdi"),
                   insn("mov", "rcx", Mem(base="rsp", disp=-8, width=64))],
    "flags": [insn("cmp", "rdi", "rsi"), insn("sete", "al")],
    "shift": [insn("mov", "rax", "rdi"), insn("shl", "rax", Imm(3, 8))],
    "cmov": [insn("cmp", "rdi", Imm(0, 32)),
             insn("cmove", "rax", "rsi")],
}


@pytest.mark.parametrize("name", sorted(SEQUENCES))
def test_uop_step_matches_tau_step(name):
    tau_succs = run_engine(SEQUENCES[name], step)
    reset_caches()
    uop_succs = run_engine(SEQUENCES[name], uop_step)
    assert len(tau_succs) == len(uop_succs)
    for t, u in zip(tau_succs, uop_succs):
        assert t.state.pred == u.state.pred
        assert t.state.model == u.state.model
        assert t.assumptions == u.assumptions
        assert t.events == u.events


# -- the compile memo ----------------------------------------------------------


def test_compile_insn_is_deterministic():
    binary = make_binary([insn("add", "rax", Imm(5, 32))])
    instr = binary.fetch(binary.entry)
    reset_caches()
    first = compile_insn(instr)
    again = compile_insn(instr)
    assert again is first          # per-instruction probe hit
    reset_caches()
    rebuilt = compile_insn(instr)
    assert rebuilt is not first
    assert rebuilt.digest == first.digest
    assert rebuilt.ops == first.ops
    assert rebuilt.n_temps == first.n_temps
    assert rebuilt.kind == first.kind


def test_compile_table_shares_shapes_across_addresses():
    # The same opcode+operand shape at two different addresses compiles
    # once: shape_key is address-independent, so the second instruction
    # probes straight into the shape table.
    binary = make_binary([insn("add", "rax", Imm(5, 32)),
                          insn("mov", "rbx", "rcx"),
                          insn("add", "rax", Imm(5, 32))])
    first, middle, third = fetch_all(binary, 3)
    assert first.addr != third.addr
    assert shape_key(first) == shape_key(third)
    reset_caches()
    block_a = compile_insn(first)
    compile_insn(middle)
    block_b = compile_insn(third)
    assert block_b is block_a
    stats = cache_stats()["uop.compile"]
    assert stats["misses"] == 2    # two distinct shapes
    assert stats["hits"] == 1      # the shared shape


def test_semantics_version_bump_misses_the_compile_memo(monkeypatch):
    from repro.perf import store

    binary = make_binary([insn("add", "rax", Imm(5, 32))])
    instr = binary.fetch(binary.entry)
    reset_caches()
    old = compile_insn(instr)
    monkeypatch.setattr(store, "SEMANTICS_VERSION",
                        store.SEMANTICS_VERSION + "-test-bump")
    bumped = compile_insn(instr)
    assert bumped is not old
    assert bumped.digest != old.digest
    stats = cache_stats()["uop.compile"]
    assert stats["misses"] == 2
    monkeypatch.undo()
    assert compile_insn(instr).digest == old.digest


def test_opcode_stats_track_table_traffic():
    binary = make_binary([insn("add", "rax", Imm(5, 32)),
                          insn("add", "rax", Imm(5, 32))])
    first, second = fetch_all(binary, 2)
    reset_caches()
    compile_insn(first)
    compile_insn(second)
    stats = opcode_stats()
    assert stats["add"] == {"hits": 1, "misses": 1}


# -- the step memo -------------------------------------------------------------


def test_step_memo_replays_pure_transfers():
    binary = make_binary([insn("mov", "rax", Imm(42, 32))])
    ctx = LiftContext(binary)
    instr = binary.fetch(binary.entry)
    state = initial_state(binary.entry)
    reset_caches()
    first = uop_step(state, instr, ctx)
    assert _STEP_STATS == {"hits": 0, "misses": 1, "impure": 0}
    again = uop_step(state, instr, ctx)
    assert _STEP_STATS["hits"] == 1
    assert [succ.state.pred for succ in again] == \
        [succ.state.pred for succ in first]


def test_step_memo_skips_impure_transfers():
    # idiv havocs fresh quotient/remainder names; replaying the memoized
    # result would alias two divisions that must stay distinct, so the
    # interpreter refuses to memoize it.
    binary = make_binary([insn("idiv", "rcx")])
    ctx = LiftContext(binary)
    instr = binary.fetch(binary.entry)
    state = initial_state(binary.entry)
    reset_caches()
    uop_step(state, instr, ctx)
    assert _STEP_STATS["impure"] == 1
    uop_step(state, instr, ctx)
    assert _STEP_STATS["hits"] == 0


def test_step_memo_does_not_alias_binaries():
    # Identical bytes, two Binary objects: the memo key folds a per-object
    # token, so lifts of different binaries never share transfer results.
    seq = [insn("mov", "rax", Imm(42, 32))]
    binary_a = make_binary(seq)
    binary_b = make_binary(seq)
    instr_a = binary_a.fetch(binary_a.entry)
    instr_b = binary_b.fetch(binary_b.entry)
    reset_caches()
    uop_step(initial_state(binary_a.entry), instr_a, LiftContext(binary_a))
    uop_step(initial_state(binary_b.entry), instr_b, LiftContext(binary_b))
    assert _STEP_STATS["misses"] == 2
    assert _STEP_STATS["hits"] == 0


# -- the interval interpreter --------------------------------------------------


def test_block_intervals_is_conservative_on_constants():
    binary = make_binary([insn("mov", "rax", Imm(5, 32)),
                          insn("add", "rax", Imm(7, 32))])
    ctx = LiftContext(binary)
    mov, add = fetch_all(binary, 2)
    state = initial_state(binary.entry)
    [after_mov] = uop_step(state, mov, ctx)
    pred = after_mov.state.pred
    assert pred.get_reg("rax") == Const(5, 64)
    block = compile_insn(add)
    assert block.kind == ir.OPS
    bounds = block_intervals(block, pred, add)
    assert bounds                       # OPS blocks define temps
    # Every temp bound stays inside the unsigned 64-bit lattice, and the
    # 5 + 7 sum is bounded exactly (the add kernel transfers precisely).
    assert all(0 <= iv.lo <= iv.hi <= (1 << 64) - 1
               for iv in bounds.values())
    assert any(iv.lo == iv.hi == 12 for iv in bounds.values())


def test_batch_interval_of_matches_singletons():
    pred = initial_state(0x1000).pred
    exprs = [Const(5, 64), Const(0xFF, 64)]
    bounds = batch_interval_of(pred, exprs)
    assert [(iv.lo, iv.hi) for iv in bounds] == [(5, 5), (0xFF, 0xFF)]


# -- verdict identity on the QA targets ----------------------------------------


def test_every_qa_target_is_verdict_identical_across_engines():
    # The PR's equivalence bar (DESIGN.md): same verdict signature —
    # outcome, errors, annotations, obligations, triple statuses, lint
    # findings — on every QA target under either engine.
    from repro.qa.detectors import binary_signature
    from repro.qa.targets import build_target, target_names

    for name in target_names():
        binary = build_target(name)
        reset_caches()
        tau_sig = binary_signature(binary, engine="tau")
        reset_caches()
        uop_sig = binary_signature(binary, engine="uop")
        assert tau_sig == uop_sig, f"engines diverged on target {name!r}"


# -- perf-layer registration ---------------------------------------------------


def test_uop_caches_are_registered_and_reset():
    binary = make_binary([insn("mov", "rax", Imm(42, 32))])
    ctx = LiftContext(binary)
    instr = binary.fetch(binary.entry)
    reset_caches()
    uop_step(initial_state(binary.entry), instr, ctx)
    stats = cache_stats()
    for name in ("uop.compile", "uop.step", "uop.ins"):
        assert name in stats
    assert stats["uop.compile"]["size"] >= 1
    reset_caches()
    stats = cache_stats()
    assert stats["uop.compile"] == {"hits": 0, "misses": 0, "size": 0}
    assert stats["uop.step"]["size"] == 0
    assert opcode_stats() == {}
