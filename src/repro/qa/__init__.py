"""repro.qa — mutation-testing campaigns over the verified lifter.

The package turns "the verifier passes on good binaries" into the far
stronger claim the ISSUE asks for: **the verifier catches bugs**.  Three
layers:

* :mod:`repro.qa.faults` — named, seeded semantic faults injected into the
  trusted computing base (τ, the emulator, the SMT decision procedure, the
  predicate join) via context-managed monkeypatching;
* :mod:`repro.qa.mutants` — byte-level binary mutants produced with the
  assembler/decoder round-trip;
* :mod:`repro.qa.campaign` — the driver that runs every trial through the
  detector pipeline of :mod:`repro.qa.detectors` and rolls up a
  deterministic kill-rate report, plus the τ-vs-emulator differential
  battery of :mod:`repro.qa.diffsweep`.

Entry point: ``python -m repro.eval qa``.
"""

from repro.qa.campaign import (
    CampaignReport,
    Trial,
    TrialResult,
    build_trials,
    run_campaign,
)
from repro.qa.detectors import (
    DETECTOR_ORDER,
    binary_signature,
    signature_diff,
)
from repro.qa.diffsweep import forms, run_battery, run_form
from repro.qa.faults import FAULTS, LAYERS, inject
from repro.qa.mutants import CURATED_MUTANTS, MutationSpec, apply_mutation
from repro.qa.targets import BATTERY, build_target, target_names

__all__ = [
    "BATTERY",
    "CURATED_MUTANTS",
    "CampaignReport",
    "DETECTOR_ORDER",
    "FAULTS",
    "LAYERS",
    "MutationSpec",
    "Trial",
    "TrialResult",
    "apply_mutation",
    "binary_signature",
    "build_target",
    "build_trials",
    "forms",
    "inject",
    "run_battery",
    "run_campaign",
    "run_form",
    "signature_diff",
    "target_names",
]
