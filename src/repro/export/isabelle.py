"""Isabelle/HOL theory generation (Step 2, Section 5.2).

Each Hoare-graph edge becomes one independent lemma: the invariant of the
source vertex, as precondition, guarantees that executing the labelled
instruction establishes the disjunction of the destination vertices'
invariants.  The lemmas are mutually independent — the property the paper
exploits for parallel proof checking.

Isabelle itself is not available in this environment; the generated theory
text is syntactically complete (statement-level), and the *validation*
role of Step 2 is performed by :mod:`repro.export.checker`, which replays
every triple against independent concrete semantics.  See DESIGN.md.
"""

from __future__ import annotations

import io

from repro.expr import Var
from repro.hoare import HoareGraph, LiftResult
from repro.hoare.graph import VertexKey
from repro.obs.profile import phase as _phase
from repro.obs.tracer import tracer as _T
from repro.export.terms import _sanitize, to_isabelle


def _key_name(key: VertexKey) -> str:
    if key[0] == "code":
        suffix = ""
        if len(key) > 2 and key[2]:
            suffix = "_" + _sanitize("_".join(f"{r}{v:x}" for r, v in key[2]))
        if len(key) > 3:
            suffix += f"_m{abs(hash(key[3:])) % 10_000:04d}"
        return f"P_{key[1]:x}{suffix}"
    if key[0] == "ret":
        return f"P_ret_{key[1]:x}"
    return f"P_exit_{_sanitize(str(key[1]))}"


def _state_definition(name: str, state) -> str:
    conjuncts = []
    for reg, value in state.pred.regs:
        conjuncts.append(f"reg σ ''{reg}'' = {to_isabelle(value)}")
    for region, value in state.pred.mem:
        addr = to_isabelle(region.addr)
        conjuncts.append(
            f"read_mem (mem σ) {addr} {region.size} = {to_isabelle(value)}"
        )
    for clause in sorted(state.pred.clauses, key=str):
        symbol = {
            "eq": "=", "ne": "≠", "ltu": "<", "leu": "≤", "gtu": ">",
            "geu": "≥", "lts": "<s", "les": "≤s", "gts": ">s", "ges": "≥s",
        }[clause.op]
        conjuncts.append(
            f"{to_isabelle(clause.lhs)} {symbol} {to_isabelle(clause.rhs)}"
        )
    for tree in sorted(state.model.trees, key=str):
        regions = sorted(tree.all_regions(), key=str)
        if len(regions) > 1:
            conjuncts.append(
                "memrel σ (" + ", ".join(
                    f"({to_isabelle(r.addr)}, {r.size})" for r in regions
                ) + ")"
            )
    if not conjuncts:
        conjuncts = ["True"]
    body = " ∧\n     ".join(conjuncts)
    return f'definition "{name} σ mem₀ ≡\n     {body}"\n'


def export_theory(result: LiftResult, theory_name: str | None = None,
                  with_equations: bool = True) -> str:
    """Render the Hoare graph of *result* as one Isabelle theory.

    With *with_equations* (the default) each lifted instruction also gets a
    generated ``definition step_<addr>`` giving its machine semantics over
    the X86_Semantics state record."""
    with _T.span("export.theory", binary=result.binary.name,
                 entry=result.entry):
        with _phase("export"):
            return _export_theory(result, theory_name, with_equations)


def _export_theory(result: LiftResult, theory_name: str | None,
                   with_equations: bool) -> str:
    graph = result.graph
    name = theory_name or _sanitize(f"HG_{result.binary.name}_{result.entry:x}")
    out = io.StringIO()
    out.write(f"theory {name}\n")
    out.write("  imports X86_Semantics\n")
    out.write("begin\n\n")
    out.write("text ‹Generated Hoare graph for "
              f"{result.binary.name} @ {result.entry:#x}.\n"
              f"  {graph.instruction_count()} instructions, "
              f"{graph.state_count()} symbolic states, "
              f"{graph.edge_count()} Hoare triples.›\n\n")

    # Free symbols (initial values, havoc variables, return symbols).
    symbols: set[str] = set()
    for state in graph.vertices.values():
        for _, value in state.pred.regs:
            symbols.update(_sanitize(v.name) for v in value.walk()
                           if isinstance(v, Var))
        for _, value in state.pred.mem:
            symbols.update(_sanitize(v.name) for v in value.walk()
                           if isinstance(v, Var))
    if symbols:
        out.write("context\n  fixes " + " ".join(sorted(symbols))
                  + " :: \"64 word\"\nbegin\n\n")

    if with_equations and graph.instructions:
        from repro.export.equations import instruction_equations

        out.write(instruction_equations(graph.instructions))
        out.write("\n")

    out.write("subsection ‹Vertex invariants›\n\n")
    names: dict[VertexKey, str] = {}
    for key in sorted(graph.vertices, key=str):
        names[key] = _key_name(key)
        out.write(_state_definition(names[key], graph.vertices[key]))
        out.write("\n")
    sink_keys = {edge.dst for edge in graph.edges} - set(graph.vertices)
    for key in sorted(sink_keys, key=str):
        names[key] = _key_name(key)
        kind = "returned" if key[0] == "ret" else "halted"
        out.write(f'definition "{names[key]} σ mem₀ ≡ {kind} σ"\n\n')

    out.write("subsection ‹Hoare triples (one lemma per edge)›\n\n")
    by_source: dict[tuple[VertexKey, int], list[VertexKey]] = {}
    for edge in graph.edges:
        by_source.setdefault((edge.src, edge.instr_addr), []).append(edge.dst)
    lemma_index = 0
    for (src, instr_addr), dsts in sorted(by_source.items(), key=str):
        if src not in names:
            continue
        instr = graph.instructions.get(instr_addr)
        label = str(instr) if instr else f"@{instr_addr:#x}"
        post = " ∨ ".join(f"{names[dst]} σ' mem₀" for dst in sorted(dsts, key=str)
                          if dst in names)
        if not post:
            continue
        lemma_index += 1
        out.write(
            f"lemma hoare_{lemma_index:04d}_{instr_addr:x}:\n"
            f"  -- ‹{label}›\n"
            f"  assumes \"{names[src]} σ mem₀\"\n"
            f"      and \"step_at {instr_addr:#x} σ σ'\"\n"
            f"  shows \"{post}\"\n"
            f"  using assms by x86_symbolic_execution\n\n"
        )

    if symbols:
        out.write("end\n\n")
    out.write("end\n")
    return out.getvalue()


def export_theory_file(result: LiftResult, path: str,
                       theory_name: str | None = None) -> str:
    text = export_theory(result, theory_name)
    with open(path, "w") as handle:
        handle.write(text)
    return text
