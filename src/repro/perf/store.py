"""The persistent, content-addressed lift store (incremental lifting).

Step-1 extraction dominates the pipeline's cost, and the context-free
call policy (paper Section 4.2) makes every function's Hoare graph a pure
function of (binary image, entry, lifter options, lifter semantics) — so
finished lifts are perfectly cacheable across processes and sessions.
This module stores each :class:`~repro.hoare.lifter.LiftResult` on disk
under a SHA-256 **content address** and serves it back byte-identically.

Key derivation (see also ``INTERNALS.md`` §14)
----------------------------------------------

The key hashes *everything a lift can observe*:

* the **binary image** — every section's name, address, permissions and
  raw bytes, plus the extern-stub and exported-symbol tables.  Sections
  are hashed whole (not just the lifted function's instruction bytes)
  because whole-binary mode trusts ``.data``/``.rodata`` contents: a
  single changed byte anywhere mapped can change a verdict.  Addresses
  are hashed **absolute**, not entry-relative — the lifted predicates
  embed absolute text addresses (rip constants, jump-table entries), so
  two byte-identical functions at different load addresses genuinely
  produce different artifacts and must not share an entry;
* the **entry point** and every lift option that can change the result
  (``trust_data``, ``max_states``, ``max_targets``, ``timeout_seconds``,
  the schedule mode);
* the **semantics fingerprint** — a single version string derived from
  the *source bytes* of every trusted module (τ, solver, predicate join,
  lifter, scheduler …) **and the live bytecode of their functions**.
  The source part invalidates the whole store whenever the semantics
  change between revisions; the live part additionally catches runtime
  monkeypatching (the :mod:`repro.qa.faults` campaign injects bugs
  exactly that way), so a faulted pipeline can never be served a clean
  cached verdict — it misses and re-lifts under the fault.

Failure modes
-------------

* a corrupted, truncated, or schema-mismatched entry degrades to a
  **silent miss** (the bad file is dropped best-effort);
* the index is advisory: if it is corrupt or lost it is rebuilt from a
  directory scan, losing only LRU recency;
* a cached ``timeout`` verdict is replayed as-is — a function that sat
  close to its CPU budget is frozen on whichever side of it the cold
  run landed (the same caveat the parallel runner documents);
* concurrent writers (``run_corpus(jobs=N)``) race only on the index;
  entry files are written to a temp name and atomically renamed.

The store is an optimization **only**: Step-2 verification
(:mod:`repro.verify`, triple replay via ``python -m repro check``) never
reads it — it replays the in-memory graph it is handed, cached or not.
"""

from __future__ import annotations

import hashlib
import importlib
import os
import pickle
import platform
import time
import types
from pathlib import Path

from repro.obs.tracer import tracer as _T
from repro.perf.counters import gated as _gated

#: Bump to invalidate every cache entry on an intentional semantics change
#: that the source fingerprint cannot see (e.g. a data-file format change).
SEMANTICS_VERSION = "1"

#: On-disk payload schema; entries with any other value are misses.
STORE_SCHEMA = 1

#: Environment knobs.
ENV_ENABLE = "REPRO_CACHE"
ENV_DIR = "REPRO_CACHE_DIR"
ENV_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"

DEFAULT_CACHE_DIR = "~/.cache/repro-lift"
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

#: The trusted modules whose source + live bytecode form the semantics
#: fingerprint.  Everything the fixpoint engine executes is either in
#: this list or reached only through it.
_TRUSTED_MODULES = (
    "repro.expr.ast",
    "repro.expr.concrete",
    "repro.expr.simplify",
    "repro.expr.subst",
    "repro.pred.clause",
    "repro.pred.flags",
    "repro.pred.predicate",
    "repro.smt.intervals",
    "repro.smt.linear",
    "repro.smt.solver",
    "repro.memmodel.model",
    "repro.semantics.events",
    "repro.semantics.memory",
    "repro.semantics.state",
    "repro.semantics.tau",
    "repro.hoare.annotations",
    "repro.hoare.calls",
    "repro.hoare.graph",
    "repro.hoare.lifter",
    "repro.hoare.resolve",
    "repro.hoare.schedule",
    "repro.isa.decode",
    "repro.isa.instruction",
    "repro.isa.operands",
    "repro.isa.registers",
    "repro.uop.ir",
    "repro.uop.compile",
    "repro.uop.interp",
)

_source_digests: dict[str, bytes] = {}


def _source_digest(path: str) -> bytes:
    digest = _source_digests.get(path)
    if digest is None:
        try:
            data = Path(path).read_bytes()
        except OSError:
            data = path.encode()
        digest = hashlib.sha256(data).digest()
        _source_digests[path] = digest
    return digest


def _hash_callable(h, qualname: str, func: types.FunctionType) -> None:
    code = func.__code__
    h.update(qualname.encode())
    h.update(code.co_code)
    h.update(",".join(code.co_names).encode())
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            h.update(const.co_code)
        else:
            h.update(repr(const).encode())


def semantics_fingerprint() -> str:
    """The single version string gating every cache entry.

    Covers :data:`SEMANTICS_VERSION`, the Python version, the source
    bytes of every trusted module, and the **live** bytecode of every
    function and method those modules currently expose — so both a
    source edit and a runtime monkeypatch (an injected fault) change the
    fingerprint and turn every prior entry into a miss.
    """
    h = hashlib.sha256()
    h.update(f"repro-semantics|{SEMANTICS_VERSION}|".encode())
    h.update(platform.python_version().encode())
    for module_name in _TRUSTED_MODULES:
        module = importlib.import_module(module_name)
        module_file = getattr(module, "__file__", None)
        if module_file:
            h.update(_source_digest(module_file))
        for name, obj in sorted(vars(module).items()):
            if isinstance(obj, types.FunctionType):
                _hash_callable(h, f"{module_name}.{name}", obj)
            elif isinstance(obj, type) and obj.__module__ == module_name:
                for attr, member in sorted(vars(obj).items()):
                    if isinstance(member, (staticmethod, classmethod)):
                        member = member.__func__
                    if isinstance(member, types.FunctionType):
                        _hash_callable(
                            h, f"{module_name}.{name}.{attr}", member)
    return h.hexdigest()


def binary_fingerprint(binary) -> bytes:
    """SHA-256 digest of everything a lift can read from *binary*."""
    h = hashlib.sha256()
    for section in sorted(binary.sections, key=lambda s: (s.addr, s.name)):
        h.update(
            f"S|{section.name}|{section.addr:#x}|{int(section.executable)}"
            f"|{int(section.writable)}|{len(section.data)}|".encode()
        )
        h.update(section.data)
    for addr, name in sorted(binary.externals.items()):
        h.update(f"E|{addr:#x}|{name}|".encode())
    for name, addr in sorted(binary.symbols.items()):
        h.update(f"Y|{name}|{addr:#x}|".encode())
    return h.digest()


def lift_key(
    binary,
    entry: int | None = None,
    *,
    trust_data: bool = True,
    max_states: int = 50_000,
    max_targets: int = 1024,
    timeout_seconds: float | None = None,
    schedule: str = "scc",
    pointer_summaries: bool = False,
    engine: str = "tau",
) -> str:
    """The content address of one lift (hex SHA-256)."""
    resolved_entry = entry if entry is not None else binary.entry
    h = hashlib.sha256()
    h.update(b"repro-lift-key|1|")
    h.update(semantics_fingerprint().encode())
    h.update(binary_fingerprint(binary))
    h.update(
        f"|entry={resolved_entry:#x}|trust={int(trust_data)}"
        f"|max_states={max_states}|max_targets={max_targets}"
        f"|timeout={timeout_seconds!r}|schedule={schedule}"
        f"|summaries={int(pointer_summaries)}"
        f"|engine={engine}".encode()
    )
    return h.hexdigest()


class LiftStore:
    """A directory of pickled lift results with an LRU size cap.

    Layout: ``<root>/<key[:2]>/<key>.pkl`` per entry plus
    ``<root>/index.json`` holding a logical clock and per-entry access
    stamps.  Every mutation is tolerant of a missing/corrupt index.
    """

    INDEX_NAME = "index.json"

    def __init__(self, root: str | os.PathLike | None = None,
                 max_bytes: int | None = None):
        if root is None:
            root = os.environ.get(ENV_DIR) or DEFAULT_CACHE_DIR
        self.root = Path(root).expanduser()
        if max_bytes is None:
            try:
                max_bytes = int(os.environ.get(ENV_MAX_BYTES,
                                               DEFAULT_MAX_BYTES))
            except ValueError:
                max_bytes = DEFAULT_MAX_BYTES
        self.max_bytes = max_bytes

    # -- paths -------------------------------------------------------------

    @property
    def index_path(self) -> Path:
        return self.root / self.INDEX_NAME

    def entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # -- the index ---------------------------------------------------------

    #: Lifetime counters persisted in the index (advisory, like recency).
    TELEMETRY_FIELDS = ("hits", "misses", "stores", "evictions")

    def _load_index(self) -> dict:
        import json

        try:
            index = json.loads(self.index_path.read_text())
            if (isinstance(index, dict)
                    and isinstance(index.get("entries"), dict)
                    and isinstance(index.get("clock"), int)):
                telemetry = index.get("telemetry")
                if not isinstance(telemetry, dict):
                    telemetry = index["telemetry"] = {}
                for name in self.TELEMETRY_FIELDS:
                    telemetry.setdefault(name, 0)
                return index
        except (OSError, ValueError):
            pass
        # Rebuild from a directory scan (recency is lost, contents are not).
        entries: dict[str, dict] = {}
        for path in sorted(self.root.glob("??/*.pkl")):
            try:
                stat = path.stat()
                entries[path.stem] = {"size": stat.st_size, "at": 0,
                                      "created": stat.st_mtime}
            except OSError:
                continue
        return {"clock": 0, "entries": entries,
                "telemetry": {name: 0 for name in self.TELEMETRY_FIELDS}}

    def _save_index(self, index: dict) -> None:
        import json

        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self.index_path.with_suffix(
                f".tmp.{os.getpid()}")
            tmp.write_text(json.dumps(index, sort_keys=True))
            os.replace(tmp, self.index_path)
        except OSError:
            pass  # advisory only

    def _touch(self, index: dict, key: str, size: int) -> None:
        index["clock"] += 1
        prior = index["entries"].get(key, {})
        index["entries"][key] = {
            "size": size, "at": index["clock"],
            # Wall-clock birth time, preserved across touches — the
            # oldest/newest-entry-age telemetry in ``stats()``.
            "created": prior.get("created", time.time()),
        }

    def _count(self, index: dict, name: str, n: int = 1) -> None:
        telemetry = index.setdefault(
            "telemetry", {field: 0 for field in self.TELEMETRY_FIELDS})
        telemetry[name] = telemetry.get(name, 0) + n

    def _evict(self, index: dict) -> None:
        entries = index["entries"]
        total = sum(entry.get("size", 0) for entry in entries.values())
        if total <= self.max_bytes:
            return
        for key in sorted(entries, key=lambda k: (entries[k].get("at", 0), k)):
            if total <= self.max_bytes:
                break
            total -= entries[key].get("size", 0)
            del entries[key]
            self._drop_file(key)
            self._count(index, "evictions")

    def _drop_file(self, key: str) -> None:
        try:
            self.entry_path(key).unlink(missing_ok=True)
        except OSError:
            pass

    # -- entry access ------------------------------------------------------

    def contains(self, key: str) -> bool:
        """Cheap presence probe: does an entry file exist for *key*?

        No load, no telemetry, no counters — the ``repro serve`` daemon
        uses it to decide whether a duplicate submission can be answered
        from the store before committing to the full :meth:`get` (which
        does count the hit).  A truncated entry can make this return True
        and the subsequent ``get`` still miss; callers must treat it as
        advisory.
        """
        try:
            return self.entry_path(key).is_file()
        except OSError:
            return False

    def get(self, key: str):
        """The stored :class:`LiftResult` for *key*, or None (a miss).

        Any load failure — missing file, truncated pickle, foreign bytes,
        schema or key mismatch — is a silent miss; the offending file is
        removed best-effort so it is not re-tried forever.
        """
        from repro.hoare.lifter import LiftResult

        path = self.entry_path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self._count_miss(key)
            return None
        try:
            payload = pickle.loads(blob)
            if (not isinstance(payload, dict)
                    or payload.get("schema") != STORE_SCHEMA
                    or payload.get("key") != key
                    or not isinstance(payload.get("result"), LiftResult)):
                raise ValueError("malformed store entry")
        except Exception:
            # Corruption tolerance: a bad entry must never take the
            # pipeline down — drop it and re-lift.
            self._drop_file(key)
            self._count_miss(key)
            return None
        index = self._load_index()
        self._touch(index, key, len(blob))
        self._count(index, "hits")
        self._save_index(index)
        _gated("cache_lift_hits")
        if _T.enabled:
            _T.emit("cache.lift.hit", None, key=key[:16], bytes=len(blob))
        return payload["result"]

    def _count_miss(self, key: str) -> None:
        _gated("cache_lift_misses")
        # Persist the lifetime miss count too.  One extra index round-trip
        # per miss is noise next to the cold lift the miss triggers.
        index = self._load_index()
        self._count(index, "misses")
        self._save_index(index)
        if _T.enabled:
            _T.emit("cache.lift.miss", None, key=key[:16])

    def put(self, key: str, result) -> None:
        """Store *result* under *key* (atomic write, then LRU eviction)."""
        blob = pickle.dumps(
            {"schema": STORE_SCHEMA, "key": key, "result": result},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        path = self.entry_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except OSError:
            return  # a full/read-only disk disables the cache, not the lift
        index = self._load_index()
        self._touch(index, key, len(blob))
        self._count(index, "stores")
        self._evict(index)
        self._save_index(index)
        _gated("cache_lift_stores")
        if _T.enabled:
            _T.emit("cache.lift.store", None, key=key[:16], bytes=len(blob))

    # -- maintenance -------------------------------------------------------

    def stats(self) -> dict:
        """Entry count and byte totals from an authoritative directory scan,
        plus the lifetime telemetry persisted in the index (hit/miss/store/
        eviction counts, hit-rate, oldest/newest entry age in seconds)."""
        entries = 0
        total = 0
        for path in self.root.glob("??/*.pkl"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
            entries += 1
        index = self._load_index()
        telemetry = {name: int(index.get("telemetry", {}).get(name, 0))
                     for name in self.TELEMETRY_FIELDS}
        lookups = telemetry["hits"] + telemetry["misses"]
        created = [entry.get("created") for entry in
                   index.get("entries", {}).values()
                   if isinstance(entry.get("created"), (int, float))]
        now = time.time()
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total,
            "max_bytes": self.max_bytes,
            "telemetry": telemetry,
            "hit_rate": (telemetry["hits"] / lookups) if lookups else 0.0,
            "oldest_entry_age": (now - min(created)) if created else None,
            "newest_entry_age": (now - max(created)) if created else None,
        }

    def clear(self) -> int:
        """Remove every entry (and the index); returns entries removed."""
        removed = 0
        for path in list(self.root.glob("??/*.pkl")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        try:
            self.index_path.unlink(missing_ok=True)
        except OSError:
            pass
        return removed


def ambient_enabled() -> bool:
    """True when the ``REPRO_CACHE`` environment variable opts in."""
    return os.environ.get(ENV_ENABLE, "").strip().lower() in (
        "1", "true", "yes", "on")


def resolve_store(cache=None, cache_dir: str | None = None
                  ) -> LiftStore | None:
    """Map a ``cache=`` argument to a store (or None = caching off).

    ``None`` defers to the environment (:func:`ambient_enabled`), booleans
    force the decision, and a ready :class:`LiftStore` passes through.
    """
    if cache is False:
        return None
    if isinstance(cache, LiftStore):
        return cache
    if cache is None and not ambient_enabled():
        return None
    return LiftStore(root=cache_dir)


def cached_lift(
    binary,
    entry: int | None = None,
    store: LiftStore | None = None,
    *,
    trust_data: bool = True,
    max_states: int = 50_000,
    max_targets: int = 1024,
    timeout_seconds: float | None = None,
    schedule: str = "scc",
    pointer_summaries: bool = False,
    engine: str = "tau",
):
    """Serve the lift from *store*, falling back to the cold path on miss.

    A hit reproduces the exact artifact the cold path stored — graph,
    annotations, obligations, assumptions, errors, and stats — with only
    ``stats.seconds`` rewritten to the (tiny) load time, so aggregate
    timing stays honest.  Expressions re-intern on unpickle
    (:mod:`repro.expr.ast` ``__reduce__``), so identity-based fast paths
    keep working on cached graphs.
    """
    from repro.hoare.lifter import lift_uncached

    if store is None:
        store = LiftStore()
    key = lift_key(
        binary, entry, trust_data=trust_data, max_states=max_states,
        max_targets=max_targets, timeout_seconds=timeout_seconds,
        schedule=schedule, pointer_summaries=pointer_summaries,
        engine=engine,
    )
    load_start = time.perf_counter()
    result = store.get(key)
    if result is not None:
        result.stats.seconds = time.perf_counter() - load_start
        return result
    result = lift_uncached(
        binary, entry=entry, trust_data=trust_data, max_states=max_states,
        max_targets=max_targets, timeout_seconds=timeout_seconds,
        schedule=schedule, pointer_summaries=pointer_summaries,
        engine=engine,
    )
    store.put(key, result)
    return result
