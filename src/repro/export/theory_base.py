"""The base Isabelle/HOL theory the exported Hoare graphs build on.

The paper ships a formal model of ~120 x86-64 instructions with a
byte-level little-endian memory, register aliasing, and a library of
simplification theorems driving the ``x86_symbolic_execution`` proof
method (Section 5.2).  ``base_theory()`` renders the corresponding theory
skeleton — machine-state record, memory access functions, the step
relation, and the proof-method setup — and ``export_session`` writes a
complete Isabelle session directory (ROOT + base theory + one theory per
lifted binary).
"""

from __future__ import annotations

import os

from repro.hoare import LiftResult
from repro.export.isabelle import export_theory

BASE_THEORY_NAME = "X86_Semantics"


def base_theory() -> str:
    """The X86_Semantics.thy source text."""
    return r'''theory X86_Semantics
  imports "HOL-Library.Word"
begin

section ‹Machine state›

text ‹Byte-level little-endian memory, 64-bit register file addressed by
  name, and the five status flags — the model the paper's symbolic
  execution engine operates over.›

record state =
  reg   :: "string ⇒ 64 word"
  flag  :: "string ⇒ 1 word"
  mem   :: "64 word ⇒ 8 word"
  rip   :: "64 word"
  halted :: bool
  returned :: bool

section ‹Memory access›

fun read_mem :: "(64 word ⇒ 8 word) ⇒ 64 word ⇒ nat ⇒ 64 word" where
  "read_mem m a 0 = 0"
| "read_mem m a (Suc n) =
     (ucast (m a)) OR (read_mem m (a + 1) n << 8)"

fun write_mem :: "(64 word ⇒ 8 word) ⇒ 64 word ⇒ nat ⇒ 64 word
                  ⇒ (64 word ⇒ 8 word)" where
  "write_mem m a 0 v = m"
| "write_mem m a (Suc n) v =
     write_mem (m(a := ucast v)) (a + 1) n (v >> 8)"

section ‹Region separation (Definition 3.6)›

definition sep :: "64 word × nat ⇒ 64 word × nat ⇒ bool" (infix "⋈" 50)
  where "r0 ⋈ r1 ≡ (case (r0, r1) of ((a0, n0), (a1, n1)) ⇒
           a0 + of_nat n0 ≤ a1 ∨ a1 + of_nat n1 ≤ a0)"

definition enc :: "64 word × nat ⇒ 64 word × nat ⇒ bool" (infix "⪯" 50)
  where "r0 ⪯ r1 ≡ (case (r0, r1) of ((a0, n0), (a1, n1)) ⇒
           a1 ≤ a0 ∧ a0 + of_nat n0 ≤ a1 + of_nat n1)"

lemma read_write_separate:
  assumes "(a, n) ⋈ (a', n')"
  shows "read_mem (write_mem m a' n' v) a n = read_mem m a n"
  sorry (* proven in the full development; elided in this skeleton *)

lemma read_write_alias:
  "n ≤ 8 ⟹ read_mem (write_mem m a n v) a n =
             v AND (mask (8 * n))"
  sorry

section ‹Auxiliary arithmetic›

definition udiv64 :: "64 word ⇒ 64 word ⇒ 64 word"
  where "udiv64 a b = a div b"
definition sdiv64 :: "64 word ⇒ 64 word ⇒ 64 word"
  where "sdiv64 a b = word_of_int (sint a sdiv sint b)"
definition urem64 :: "64 word ⇒ 64 word ⇒ 64 word"
  where "urem64 a b = a mod b"
definition srem64 :: "64 word ⇒ 64 word ⇒ 64 word"
  where "srem64 a b = word_of_int (sint a smod sint b)"
definition parity8 :: "64 word ⇒ 1 word"
  where "parity8 v = (if even (pop_count (v AND 0xff)) then 1 else 0)"
definition scast_from :: "nat ⇒ 64 word ⇒ 64 word"
  where "scast_from n v = (if bit v (n - 1)
                           then v OR (NOT (mask n)) else v AND mask n)"

section ‹The step relation›

text ‹``step_at a σ σ'`` holds when the instruction fetched at address
  ``a`` takes machine state σ to σ'.  The per-instruction equations are
  generated alongside each binary's theory; this skeleton declares the
  constant and the proof-method hook.›

consts step_at :: "64 word ⇒ 'a ⇒ 'a ⇒ bool"

ML ‹
  (* x86_symbolic_execution: unfold the fetched instruction's semantics,
     simplify with the separation lemmas, then discharge the postcondition
     disjunct by blast.  The full tactic ships with the development. *)
›

method_setup x86_symbolic_execution =
  ‹Scan.succeed (fn ctxt => SIMPLE_METHOD (blast_tac ctxt 1))›
  "symbolic execution of one x86-64 instruction"

end
'''


def session_root(theory_names: list[str]) -> str:
    """The ROOT file for an Isabelle session over the exported theories."""
    theories = "\n".join(f"    {name}" for name in theory_names)
    return (
        f'session HoareGraphs = "HOL-Library" +\n'
        f'  options [timeout = 1200]\n'
        f"  theories\n"
        f"    {BASE_THEORY_NAME}\n"
        f"{theories}\n"
    )


def export_session(results: dict[str, LiftResult], directory: str) -> list[str]:
    """Write a complete Isabelle session: base theory, one theory per
    lifted binary, and the ROOT file.  Returns the written paths."""
    os.makedirs(directory, exist_ok=True)
    written = []

    base_path = os.path.join(directory, f"{BASE_THEORY_NAME}.thy")
    with open(base_path, "w") as handle:
        handle.write(base_theory())
    written.append(base_path)

    theory_names = []
    for name, result in sorted(results.items()):
        theory_name = f"HG_{name}"
        text = export_theory(result, theory_name)
        path = os.path.join(directory, f"{theory_name}.thy")
        with open(path, "w") as handle:
            handle.write(text)
        written.append(path)
        theory_names.append(theory_name)

    root_path = os.path.join(directory, "ROOT")
    with open(root_path, "w") as handle:
        handle.write(session_root(theory_names))
    written.append(root_path)
    return written
