"""Scalability experiment: lifting cost as the corpus grows.

The paper's core scalability claim is that Hoare-graph extraction scales
to COTS systems because joining keeps the state count linear in the code
size (399 771 instructions lifted).  This experiment lifts the xenlike
corpus at increasing scale factors and reports instructions, states, and
wall time — the expected shape is *linear* growth of all three (constant
states-per-instruction, roughly constant instructions-per-second).

Corpus *construction* time is measured separately from lift time: the
synthetic corpus builder is itself super-constant in the scale factor,
and folding it into the lift seconds used to skew the instructions-per-
second column (and hence the linearity conclusion) at small scales.
"""

from __future__ import annotations

import io
import time
from dataclasses import dataclass

from repro.corpus import build_corpus
from repro.eval.runner import run_corpus


@dataclass
class ScalePoint:
    scale: int
    functions: int
    instructions: int
    states: int
    #: Lift wall time only (corpus construction excluded).
    seconds: float
    #: Corpus construction wall time.
    build_seconds: float = 0.0

    @property
    def instructions_per_second(self) -> float:
        return self.instructions / self.seconds if self.seconds else 0.0


def run_scaling(scales=(1, 2, 3), timeout_seconds: float = 10.0,
                max_states: int = 10_000, jobs: int = 1) -> list[ScalePoint]:
    points = []
    for scale in scales:
        build_start = time.perf_counter()
        corpus = build_corpus(scale)
        build_seconds = time.perf_counter() - build_start
        lift_start = time.perf_counter()
        report = run_corpus(corpus=corpus, timeout_seconds=timeout_seconds,
                            max_states=max_states, jobs=jobs)
        elapsed = time.perf_counter() - lift_start
        totals_fn = report.totals("function")
        totals_bin = report.totals("binary")
        points.append(ScalePoint(
            scale=scale,
            functions=totals_fn.total + totals_bin.total,
            instructions=totals_fn.instructions + totals_bin.instructions,
            states=totals_fn.states + totals_bin.states,
            seconds=elapsed,
            build_seconds=build_seconds,
        ))
    return points


def format_scaling(points: list[ScalePoint]) -> str:
    out = io.StringIO()
    out.write("Scaling: corpus size vs lifting cost\n\n")
    header = (f"{'scale':>5} {'functions':>10} {'instrs':>9} {'states':>9} "
              f"{'build(s)':>9} {'lift(s)':>8} {'instrs/s':>9} "
              f"{'states/instr':>13}")
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for point in points:
        ratio = point.states / point.instructions if point.instructions else 0
        out.write(
            f"{point.scale:>5} {point.functions:>10} {point.instructions:>9} "
            f"{point.states:>9} {point.build_seconds:>9.2f} "
            f"{point.seconds:>8.1f} "
            f"{point.instructions_per_second:>9.0f} {ratio:>13.3f}\n"
        )
    if len(points) >= 2:
        first, last = points[0], points[-1]
        growth = last.instructions / first.instructions
        cost = last.seconds / first.seconds if first.seconds else 0
        out.write(
            f"\n{growth:.1f}x more code -> {cost:.1f}x more lift time "
            f"(linear scaling ⇔ ratio ≈ 1)\n"
        )
    return out.getvalue()
