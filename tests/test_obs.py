"""The observability layer: tracer, metrics, export, provenance, CLI.

Covers the obs package contracts PR 3 is built on:

* ring-buffer eviction and exact counts under sampling;
* span nesting depths and the disabled no-op path;
* deterministic (order-independent) histogram/snapshot merges;
* the ``gated`` perf-counter helper;
* JSONL schema validation and the Chrome ``trace_event`` envelope;
* provenance chains naming the causing instruction and the SMT verdicts
  for every annotation/error of the seeded-failure binaries;
* the ``python -m repro trace`` verb in all three formats.
"""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.corpus.failures import ALL_FAILURES, buffer_overflow
from repro.elf import BinaryBuilder, save_binary
from repro.hoare import lift
from repro.obs.export import (
    chrome_trace_json,
    events_jsonl,
    to_chrome_trace,
    validate_event_obj,
    validate_jsonl,
)
from repro.obs.metrics import (
    Histogram,
    Metrics,
    canonical_snapshot,
    merge_snapshots,
    percentile,
    percentiles,
)
from repro.obs.report import merge_rollup, render_obs_rollup, task_obs_data
from repro.obs.tracer import Event, Tracer
from repro.perf.counters import counters, gated


@pytest.fixture(autouse=True)
def _obs_off_after():
    """Every test leaves the process-global obs layer off and empty."""
    yield
    obs.disable()
    obs.reset()


# -- tracer ----------------------------------------------------------------

def test_disabled_tracer_span_is_the_shared_noop():
    tracer = Tracer()
    span = tracer.span("work", n=1)
    with span:
        pass
    assert tracer.events() == []
    assert tracer.counts == {}
    # The very same object every time: zero allocation when disabled.
    assert tracer.span("other") is span


def test_span_nesting_records_depths_and_durations():
    tracer = Tracer()
    tracer.configure(enabled=True)
    with tracer.span("outer", binary="b"):
        with tracer.span("inner"):
            pass
    spans = [event for event in tracer.events() if event.kind == "span"]
    assert [s.detail["name"] for s in spans] == ["inner", "outer"]
    assert spans[0].detail["depth"] == 1
    assert spans[1].detail["depth"] == 0
    assert spans[1].detail["binary"] == "b"
    assert all(s.detail["dur"] >= 0.0 for s in spans)


def test_ring_buffer_evicts_oldest_but_counts_exactly():
    tracer = Tracer(capacity=4)
    tracer.configure(enabled=True)
    for n in range(10):
        tracer.emit("tick", n, seq=n)
    assert len(tracer) == 4
    assert [event.detail["seq"] for event in tracer.events()] == [6, 7, 8, 9]
    assert tracer.counts == {"tick": 10}
    assert tracer.tail(2)[-1].detail["seq"] == 9
    assert tracer.capacity == 4


def test_sampling_records_one_in_n_but_counts_all():
    tracer = Tracer()
    tracer.configure(enabled=True, sampling=4)
    for n in range(10):
        tracer.emit_sampled("hot", n, seq=n)
    recorded = [event.detail["seq"] for event in tracer.events()]
    assert recorded == [0, 4, 8]
    assert tracer.counts == {"hot": 10}
    # reset clears the per-kind sample phase: the next stream samples
    # identically (the determinism contract the corpus runner relies on).
    tracer.reset()
    for n in range(10):
        tracer.emit_sampled("hot", n, seq=n)
    assert [event.detail["seq"] for event in tracer.events()] == recorded


def test_sample_record_pair_matches_emit_sampled():
    """``sample()`` + ``record()`` (the allocation-free split used on the
    SMT cached-query path) behaves exactly like ``emit_sampled``."""
    split, fused = Tracer(), Tracer()
    split.configure(enabled=True, sampling=4)
    fused.configure(enabled=True, sampling=4)
    for n in range(10):
        if split.sample("hot"):
            split.record("hot", {"seq": n})
        fused.emit_sampled("hot", seq=n)
    assert split.counts == fused.counts == {"hot": 10}
    assert ([event.detail for event in split.events()]
            == [event.detail for event in fused.events()])


def test_detail_keys_may_shadow_emit_parameters():
    tracer = Tracer()
    tracer.configure(enabled=True)
    tracer.emit("annotation", 7, kind="unresolved-jump", addr="shadow")
    event = tracer.events()[0]
    assert event.addr == 7
    assert event.detail == {"kind": "unresolved-jump", "addr": "shadow"}


def test_configure_rejects_bad_sampling():
    with pytest.raises(ValueError):
        Tracer().configure(sampling=0)


# -- metrics ---------------------------------------------------------------

def test_histogram_uses_power_of_two_buckets():
    histogram = Histogram()
    for value in (0, 1, 5, 5, 300):
        histogram.observe(value)
    snap = histogram.snapshot()
    assert snap["count"] == 5
    assert snap["max"] == 300
    assert snap["sum"] == 311
    assert snap["buckets"]["0"] == 1     # value 0
    assert snap["buckets"]["1"] == 1     # value 1
    assert snap["buckets"]["7"] == 2     # values in [4, 7]
    assert snap["buckets"]["511"] == 1   # values in [256, 511]


def test_snapshot_merge_is_order_independent():
    parts = []
    for base in (1, 10, 100):
        metrics = Metrics()
        metrics.inc("smt.queries", base)
        metrics.add_time("smt.wall", base / 10.0)
        for value in range(base):
            metrics.observe("depth", value)
        parts.append(metrics.snapshot())
    forward: dict = {}
    backward: dict = {}
    for part in parts:
        merge_snapshots(forward, part)
    for part in reversed(parts):
        merge_snapshots(backward, part)
    assert forward == backward
    assert forward["counters"]["smt.queries"] == 111
    assert forward["histograms"]["depth"]["count"] == 111


def test_canonical_snapshot_strips_timers_only():
    metrics = Metrics()
    metrics.inc("smt.queries")
    metrics.add_time("smt.wall", 0.5)
    metrics.observe("depth", 3)
    canonical = canonical_snapshot(metrics.snapshot())
    assert "timers" not in canonical
    assert canonical["counters"] == {"smt.queries": 1}
    assert canonical["histograms"]["depth"]["count"] == 1


# -- the gated counter helper ----------------------------------------------

def test_gated_increments_only_when_counters_enabled():
    counters.reset()
    previous = counters.enabled
    try:
        counters.enabled = False
        gated("expr_new")
        assert counters.expr_new == 0
        counters.enabled = True
        gated("expr_new")
        gated("expr_new", 5)
        assert counters.expr_new == 6
    finally:
        counters.enabled = previous
        counters.reset()


# -- export ----------------------------------------------------------------

def _sample_events() -> list[Event]:
    return [
        Event(0.5, "span", None, {"name": "lift", "dur": 0.25, "depth": 0}),
        Event(0.6, "annotation", 0x401000,
              {"kind": "unresolved-jump", "detail": object()}),
    ]


def test_jsonl_round_trip_passes_schema_validation():
    text = events_jsonl(_sample_events())
    assert validate_jsonl(text) == []
    objs = [json.loads(line) for line in text.splitlines()]
    # Non-JSON detail values are stringified at export time.
    assert isinstance(objs[1]["detail"]["detail"], str)


def test_jsonl_validator_rejects_malformed_events():
    assert validate_event_obj([]) != []
    assert any("missing" in e for e in validate_event_obj({"ts": 1.0}))
    bad_type = {"ts": "late", "kind": "x", "addr": None, "detail": {}}
    assert any("expected" in e for e in validate_event_obj(bad_type))
    bool_ts = {"ts": True, "kind": "x", "addr": None, "detail": {}}
    assert any("bool" in e for e in validate_event_obj(bool_ts))
    extra = {"ts": 1.0, "kind": "x", "addr": None, "detail": {}, "pid": 1}
    assert any("unknown" in e for e in validate_event_obj(extra))
    empty = {"ts": 1.0, "kind": "", "addr": None, "detail": {}}
    assert any("empty" in e for e in validate_event_obj(empty))


def test_chrome_trace_shapes_spans_and_instants():
    trace = to_chrome_trace(_sample_events())
    events = trace["traceEvents"]
    assert events[0]["ph"] == "M"                 # process_name metadata
    span = next(e for e in events if e["ph"] == "X")
    assert span["name"] == "lift"
    assert span["ts"] == pytest.approx(500_000.0)  # seconds -> microseconds
    assert span["dur"] == pytest.approx(250_000.0)
    instant = next(e for e in events if e["ph"] == "i")
    assert instant["name"] == "annotation"
    assert instant["s"] == "t"
    assert instant["args"]["addr"] == hex(0x401000)
    # The serialized form is plain JSON.
    json.loads(chrome_trace_json(_sample_events()))


# -- provenance ------------------------------------------------------------

def test_provenance_names_instruction_and_verdicts_for_buffer_overflow():
    obs.enable(sampling=1)
    obs.reset()
    result = lift(buffer_overflow())
    report = obs.build_provenance(result, obs.tracer.events())
    assert not report.verified
    by_kind = {chain.kind: chain for chain in report.chains}
    chain = by_kind["return-address"]
    assert chain.instruction is not None and "ret" in chain.instruction
    assert chain.smt_verdicts, "the rejection must carry SMT verdicts"
    verdicts = {c.detail["verdict"] for c in chain.smt_verdicts}
    assert "UNKNOWN" in verdicts
    assert "SMT" in report.render()


def test_provenance_covers_every_seeded_failure_annotation():
    for make in ALL_FAILURES.values():
        obs.enable(sampling=1)
        obs.reset()
        result = lift(make())
        report = obs.build_provenance(result, obs.tracer.events())
        assert len(report.chains) == (len(result.annotations)
                                      + len(result.errors))
        for chain in report.chains:
            # Every chain names the causing instruction when one was
            # decoded at that address; undecodable bytes report as absent.
            decoded = result.graph.instructions.get(chain.addr)
            assert (chain.instruction is None) == (decoded is None)
            assert chain.causes, "chains must carry supporting events"


def test_provenance_for_unresolved_register_jump():
    builder = BinaryBuilder("jmpreg")
    builder.text.label("main")
    builder.text.emit("jmp", "rax")
    obs.enable(sampling=1)
    obs.reset()
    result = lift(builder.build(entry="main"))
    assert result.stats.annotations_by_kind == {"unresolved-jump": 1}
    report = obs.build_provenance(result, obs.tracer.events())
    chain = report.chains[0]
    assert chain.kind == "unresolved-jump"
    assert "jmp rax" in chain.instruction


# -- stats surfacing -------------------------------------------------------

def test_summary_reports_annotation_counts_by_kind():
    # A rejected lift's annotation set is partial — exploration aborts on
    # the first sanity error, so which annotations land first depends on
    # the bag order.  Pin the address schedule: it reaches the weird
    # 0x41 return target (lowest address) before the rejecting state.
    result = lift(buffer_overflow(), schedule="address")
    assert result.stats.annotations_by_kind == {"undecodable": 1}
    assert "annotations: undecodable=1" in result.summary()


# -- rollup ----------------------------------------------------------------

def test_task_rollup_merges_in_sorted_order():
    def task(kind_count: int) -> dict:
        tracer = Tracer()
        tracer.configure(enabled=True)
        metrics = Metrics()
        for n in range(kind_count):
            tracer.emit("annotation", n, kind="unresolved-jump")
            metrics.inc("smt.queries")
        return task_obs_data(tracer, metrics)

    rollup = merge_rollup({"b": task(2), "a": task(3)}, sampling=1)
    assert list(rollup["tasks"]) == ["a", "b"]
    assert rollup["totals"]["events"] == {"annotation": 5}
    assert rollup["totals"]["metrics"]["counters"]["smt.queries"] == 5
    text = render_obs_rollup(rollup)
    assert "annotation" in text and "sampling level 1" in text


# -- the trace CLI verb ----------------------------------------------------

@pytest.fixture(scope="module")
def overflow_path(tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("obs") / "overflow.elf"
    save_binary(buffer_overflow(), str(path))
    return str(path)


def test_trace_verb_text_report(overflow_path, capsys):
    from repro.__main__ import main

    assert main(["trace", overflow_path]) == 0
    out = capsys.readouterr().out
    assert "Trace:" in out
    assert "Provenance report" in out
    assert "return-address" in out
    assert not obs.is_enabled(), "trace must restore the prior obs state"


def test_trace_verb_jsonl_validates(overflow_path, tmp_path, capsys):
    from repro.__main__ import main

    out_path = tmp_path / "trace.jsonl"
    assert main(["trace", overflow_path, "--format", "jsonl",
                 "-o", str(out_path)]) == 0
    assert validate_jsonl(out_path.read_text()) == []


def test_trace_verb_chrome_trace_is_loadable(overflow_path, tmp_path):
    from repro.__main__ import main

    out_path = tmp_path / "trace.json"
    assert main(["trace", overflow_path, "--format", "chrome",
                 "-o", str(out_path)]) == 0
    trace = json.loads(out_path.read_text())
    assert isinstance(trace["traceEvents"], list)
    phases = {event["ph"] for event in trace["traceEvents"]}
    assert "X" in phases and "i" in phases


# -- ring overflow accounting (PR 8) ---------------------------------------

def test_ring_overflow_increments_the_dropped_counter():
    tracer = Tracer(capacity=4)
    tracer.configure(enabled=True)
    for n in range(10):
        tracer.emit("state.explore", n)
    assert len(tracer.events()) == 4
    assert tracer.dropped == 6
    # Exact counts still cover every emission, dropped or not.
    assert tracer.counts["state.explore"] == 10
    tracer.reset()
    assert tracer.dropped == 0


def test_trace_summary_warns_about_dropped_events():
    tracer = Tracer(capacity=2)
    tracer.configure(enabled=True)
    for n in range(5):
        tracer.emit("join", n)
    text = obs.render_trace_summary(tracer.events(), Metrics().snapshot(),
                                    dict(tracer.counts), tracer.capacity,
                                    dropped=tracer.dropped)
    assert "3 events dropped" in text
    clean = obs.render_trace_summary([], Metrics().snapshot(), {}, 2)
    assert "dropped" not in clean


def test_provenance_fails_loudly_on_a_truncated_stream():
    result = lift(buffer_overflow())
    with pytest.raises(obs.TruncatedTraceError, match="7 events dropped"):
        obs.build_provenance(result, [], dropped=7)
    # A complete stream (dropped == 0) still builds.
    assert obs.build_provenance(result, []) is not None


def test_trace_verb_exits_nonzero_on_truncation(overflow_path, capsys):
    from repro.__main__ import main

    assert main(["trace", overflow_path, "--capacity", "16"]) == 1
    captured = capsys.readouterr()
    assert "events dropped" in captured.out      # summary warning
    assert "trace ring wrapped" in captured.err  # the hard failure
    assert "--capacity" in captured.err          # ... with the remedy


def test_task_obs_data_reports_dropped_and_phases():
    tracer = Tracer(capacity=2)
    tracer.configure(enabled=True)
    for n in range(5):
        tracer.emit("join", n)
    from repro.obs.profile import PhaseTimer

    timer = PhaseTimer()
    timer.start("decode")
    timer.stop()
    data = task_obs_data(tracer, Metrics(), phases=timer)
    assert data["events_dropped"] == 3
    assert data["phases"]["decode"]["count"] == 1
    rollup = merge_rollup({"t": data}, sampling=1)
    assert rollup["totals"]["events_dropped"] == 3
    assert rollup["totals"]["phases"]["decode"]["count"] == 1
    text = render_obs_rollup(rollup)
    assert "Phase self-time" in text and "3 events dropped" in text


# -- percentiles from power-of-two buckets (PR 8) --------------------------

def test_percentile_of_empty_and_single_value_histograms():
    assert percentile(Histogram().snapshot(), 50) == 0.0
    histogram = Histogram()
    histogram.observe(5)
    snap = histogram.snapshot()
    # One sample: every percentile is that sample (max caps the bucket).
    assert percentile(snap, 50) == 5.0
    assert percentile(snap, 99) == 5.0


def test_percentiles_are_monotone_and_bounded_by_max():
    histogram = Histogram()
    for value in range(1, 101):
        histogram.observe(value)
    snap = histogram.snapshot()
    estimates = percentiles(snap)
    assert set(estimates) == {"p50", "p90", "p99"}
    assert estimates["p50"] <= estimates["p90"] <= estimates["p99"] <= 100
    # Power-of-two buckets bound the error by 2x on either side.
    assert 25 <= estimates["p50"] <= 100
    assert estimates["p99"] >= 64


def test_percentiles_agree_on_merged_snapshots():
    parts = []
    for base in (3, 17, 60):
        histogram = Histogram()
        for value in range(base):
            histogram.observe(value)
        parts.append({"histograms": {"depth": histogram.snapshot()}})
    forward: dict = {}
    backward: dict = {}
    for part in parts:
        merge_snapshots(forward, part)
    for part in reversed(parts):
        merge_snapshots(backward, part)
    assert (percentiles(forward["histograms"]["depth"])
            == percentiles(backward["histograms"]["depth"]))


def test_histogram_tables_render_percentiles():
    metrics = Metrics()
    for value in (1, 2, 3, 40):
        metrics.observe("join.depth", value)
    text = obs.render_trace_summary([], metrics.snapshot(), {}, 64)
    assert "p50=" in text and "p90=" in text and "p99=" in text
