"""Decision procedures for the memory-relation queries of Definition 3.6.

The paper discharges "necessarily aliasing / separate / enclosed" queries by
translating pointer expressions to Z3 bit-vectors.  Z3 is not available in
this environment, so this module implements a sound specialized procedure
for the query shapes the lifter produces:

* pointer expressions are put in linear normal form (``Σ cᵢ·tᵢ + k``);
* a **constant difference** decides the relation exactly;
* otherwise the difference is bounded with **interval arithmetic**, where
  term intervals come from the current predicate's clauses (the
  :class:`BoundsProvider` hook);
* two **domain assumptions** — recorded explicitly, never silent — mirror
  the implicit assumptions the paper notes must be exported to Isabelle
  (Section 5.2):

  - *stack/global separation*: pointers into the local stack frame
    (linear in ``rsp0``) do not overlap constant-address global regions;
  - *access alignment*: an ``n``-byte access (n ∈ {1,2,4,8}) is ``n``-
    aligned, so two differently-based accesses never *partially* overlap —
    they alias, enclose, or are separate.  This is what lets the lifter
    fork a clean aliasing/separation case split (Figure 1) instead of
    destroying memory; for non-power-of-two regions the fork is abandoned
    and memory is destroyed, as in Section 1.

Every answer is either a proven relation, a set of *possible* relations to
fork over, or "may partially overlap" (→ destroy).  Unknown never becomes a
claim: precision can be lost, soundness cannot.
"""

from __future__ import annotations

import enum
import time
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from typing import Protocol

from repro.expr.ast import App, Const, Deref, Expr, MASK64, Var, expr_key
from repro.expr.simplify import sub
from repro.obs.metrics import metrics as _M
from repro.obs.profile import phases as _phases
from repro.obs.tracer import tracer as _T
from repro.perf import register_cache, register_lru
from repro.perf.counters import gated as _gated
from repro.smt.intervals import TOP, Interval, from_width, singleton
from repro.smt.linear import Linear, difference, linearize


class Relation(enum.Enum):
    """The four total region relations of Definition 3.6."""

    ALIAS = "≡"
    SEPARATE = "⋈"
    ENCLOSED = "⪯"   # r0 within r1
    ENCLOSES = "⪰"   # r1 within r0

    def flipped(self) -> "Relation":
        if self is Relation.ENCLOSED:
            return Relation.ENCLOSES
        if self is Relation.ENCLOSES:
            return Relation.ENCLOSED
        return self


@dataclass(frozen=True)
class Region:
    """A memory region ``[addr, size]``: constant-expression address, byte size."""

    addr: Expr
    size: int

    def __str__(self) -> str:
        return f"[{self.addr}, {self.size}]"


@lru_cache(maxsize=1 << 16)
def region_key(region: Region) -> str:
    """Memoized ``str(region)`` for deterministic sort keys.

    Rendering an expression tree is linear in its size; predicates sort
    their memory valuations on every functional update, so the string is
    worth caching (regions are interned-expression keyed and long-lived)."""
    return str(region)


register_lru("smt.region_key", region_key)


@dataclass(frozen=True)
class Assumption:
    """An explicitly recorded assumption the verdict depends on."""

    kind: str  # "stack-global-separation" | "alignment" | ...
    detail: str

    def __str__(self) -> str:
        return f"ASSUME {self.kind}: {self.detail}"


class BoundsProvider(Protocol):
    """Supplies unsigned intervals for non-constant terms (from predicate
    clauses); return ``None`` when nothing is known."""

    def interval_of(self, term: Expr) -> Interval | None: ...


class NoBounds:
    """A BoundsProvider that knows nothing."""

    def interval_of(self, term: Expr) -> Interval | None:
        return None


NO_BOUNDS = NoBounds()

#: The distinguished initial-stack-pointer variable.
STACK_BASE = "rsp0"


def expr_interval(expr: Expr, bounds: BoundsProvider) -> Interval:
    """A conservative unsigned interval for *expr*."""
    if isinstance(expr, Const):
        return singleton(expr.value)
    linear = linearize(expr)
    if linear.is_const:
        return singleton(linear.const)
    total = singleton(linear.const)
    for term, coeff in linear.terms:
        term_iv = _term_interval(term, bounds)
        scaled = term_iv.scale(coeff) if coeff >= 0 else TOP
        total = total.add(scaled)
        if total.is_top:
            return TOP
    return total


def _term_interval(term: Expr, bounds: BoundsProvider) -> Interval:
    provided = bounds.interval_of(term)
    width_iv = from_width(term.width)
    if isinstance(term, App) and term.op == "zext":
        width_iv = from_width(term.args[0].width)
        inner = bounds.interval_of(term.args[0])
        if inner is not None:
            clipped = inner.intersect(width_iv)
            width_iv = clipped if clipped is not None else width_iv
    if provided is None:
        return width_iv
    clipped = provided.intersect(width_iv)
    return clipped if clipped is not None else width_iv


# -- pointer base classification ------------------------------------------------

def pointer_bases(expr: Expr) -> frozenset[Expr]:
    """The non-constant terms a pointer is built from."""
    return frozenset(term for term, _ in linearize(expr).terms)


def is_stack_pointer(expr: Expr) -> bool:
    """Linear in ``rsp0`` with coefficient 1 (a local-frame address)."""
    for term, coeff in linearize(expr).terms:
        if isinstance(term, Var) and term.name == STACK_BASE:
            return coeff == 1
    return False


def is_global_pointer(expr: Expr) -> bool:
    """A concrete constant address (global/rodata/data space)."""
    return linearize(expr).is_const


# -- relation decisions ----------------------------------------------------------

@dataclass(frozen=True)
class Decision:
    """Outcome of a necessary-relation query.

    ``relation`` is a proven Relation or None (unknown); ``assumptions``
    lists the domain assumptions the verdict relies on.
    """

    relation: Relation | None
    assumptions: tuple[Assumption, ...] = ()


def _decide_const_diff(diff: int, n0: int, n1: int) -> Relation | None:
    """Exact relation of [e, n0] and [e+diff, n1] for a known diff (mod 2^64)."""
    diff &= MASK64
    if diff == 0 and n0 == n1:
        return Relation.ALIAS
    # r0 fully before r1 (no wrap of either region into the other).
    if n0 <= diff <= (1 << 64) - n1:
        return Relation.SEPARATE
    back = (1 << 64) - diff  # e0 - e1
    if n1 <= back <= (1 << 64) - n0:
        return Relation.SEPARATE
    # r0 within r1: 0 <= e0-e1 and e0-e1 + n0 <= n1.
    if back <= MASK64 and back + n0 <= n1:
        return Relation.ENCLOSED
    if diff + n1 <= n0:
        return Relation.ENCLOSES
    if diff == 0:
        return Relation.ENCLOSED if n0 <= n1 else Relation.ENCLOSES
    # Anything else partially overlaps; callers treat it as "no total
    # relation", which is exactly what destroy handles.
    return None


# -- verdict cache ---------------------------------------------------------------
#
# Relation queries dominate the lifter's profile: the same (r0, r1) pair is
# re-decided at every re-visit of a store instruction.  Verdicts depend
# only on the two address expressions, the two sizes, and the intervals the
# BoundsProvider supplies for the *terms* of those addresses — every
# interval the decision procedure can consult flows through
# ``bounds.interval_of`` on a term of one of the two (linearized) addresses
# or the ``zext`` argument of such a term.  Keying the cache on that
# fingerprint makes it exact: a verdict that relied on a term having *no*
# bound (a TOP interval) carries ``None`` for that term in its key, so a
# later query under a predicate that does bound the term can never be
# served the stale TOP-dependent verdict.


class VerdictCache:
    """A small LRU mapping query keys to verdicts, with hit/miss counters."""

    def __init__(self, maxsize: int = 1 << 16) -> None:
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        entry = self._data.get(key, _MISSING)
        if entry is _MISSING:
            self.misses += 1
            _gated("solver_misses")
            return _MISSING
        self._data.move_to_end(key)
        self.hits += 1
        _gated("solver_hits")
        return entry

    def put(self, key, value) -> None:
        self._data[key] = value
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "size": len(self._data)}


_MISSING = object()
_DECIDE_CACHE = VerdictCache()
_FORK_CACHE = VerdictCache()

register_cache("smt.decide", _DECIDE_CACHE.stats, _DECIDE_CACHE.clear)
register_cache("smt.fork", _FORK_CACHE.stats, _FORK_CACHE.clear)


def reset_solver_caches() -> None:
    """Drop every cached verdict (used by tests and the bench harness)."""
    _DECIDE_CACHE.clear()
    _FORK_CACHE.clear()


def solver_cache_stats() -> dict[str, dict]:
    return {"decide": _DECIDE_CACHE.stats(), "fork": _FORK_CACHE.stats()}


def _bounds_fingerprint(r0: Region, r1: Region,
                        bounds: BoundsProvider) -> tuple:
    """The portion of *bounds* a relation query can observe.

    Every interval the procedures consult comes from
    ``bounds.interval_of(t)`` where ``t`` is a term of ``linearize`` of one
    of the two addresses (or of their canonical difference, whose terms are
    a subset), or the inner argument of such a term when it is a ``zext``
    (see :func:`_term_interval`).  The simplified differences are included
    explicitly: simplification may synthesize terms (e.g. folding a shared
    subtraction) that appear in neither address's own linear form."""
    terms = _fingerprint_terms(r0.addr, r1.addr)
    if not terms:
        return ()
    fingerprint = []
    for term in terms:
        interval = bounds.interval_of(term)
        fingerprint.append(
            (term, None if interval is None else (interval.lo, interval.hi))
        )
    return tuple(fingerprint)


@lru_cache(maxsize=1 << 16)
def _fingerprint_terms(a0: Expr, a1: Expr) -> tuple[Expr, ...]:
    """The terms whose bounds a relation query on (a0, a1) can consult,
    in deterministic order.  Pure in the address pair, so memoized — the
    same pair is re-queried under many different predicates."""
    terms: set[Expr] = set()
    for expr in (a0, a1, sub(a1, a0), sub(a0, a1)):
        for term, _ in linearize(expr).terms:
            terms.add(term)
            if isinstance(term, App) and term.op == "zext":
                terms.add(term.args[0])
    return tuple(sorted(terms, key=expr_key))


register_lru("smt.fingerprint_terms", _fingerprint_terms)


def _decision_verdict(decision: Decision) -> str:
    return "UNKNOWN" if decision.relation is None else decision.relation.name


def _fork_verdict(fork: "Fork") -> str:
    cases = "|".join(relation.name for relation in fork.relations)
    return f"{cases}+PARTIAL" if fork.may_partial else cases


def _query_detail(op: str, r0: Region, r1: Region, verdict: str,
                  assumptions, cached: bool) -> dict:
    detail = dict(op=op, r0=r0, r1=r1, verdict=verdict, cached=cached)
    if assumptions:
        detail["assumptions"] = [a.kind for a in assumptions]
    return detail


def decide_relation(
    r0: Region, r1: Region, bounds: BoundsProvider = NO_BOUNDS
) -> Decision:
    """Try to prove a *necessary* relation between two regions (cached).

    Tracing discipline (~1M queries per scale-1 corpus, almost all cache
    hits): the hit path pays only the exact-count bookkeeping
    (``_M.inc`` + ``_T.sample``) and builds the event detail solely for
    the 1-in-``sampling`` occurrences that enter the ring.  Decisions
    actually computed are always recorded (provenance chains cite them)
    and contribute to the SMT wall-time accumulator.
    """
    key = (r0.addr, r0.size, r1.addr, r1.size,
           _bounds_fingerprint(r0, r1, bounds))
    cached = _DECIDE_CACHE.get(key)
    if cached is not _MISSING:
        if _T.enabled:
            _M.inc("smt.queries")
            if _T.sample("smt.query"):
                _T.record("smt.query", _query_detail(
                    "decide", r0, r1, _decision_verdict(cached),
                    cached.assumptions, True))
        return cached
    if _T.enabled:
        # The smt *phase* attributes solver self-time to the pipeline
        # profile; its wall total doubles as the smt.wall timer.
        _phases.start("smt")
        try:
            decision = _decide_relation_uncached(r0, r1, bounds)
        finally:
            wall = _phases.stop()
        _M.inc("smt.queries")
        _M.add_time("smt.wall", wall)
        _T.emit("smt.query", **_query_detail(
            "decide", r0, r1, _decision_verdict(decision),
            decision.assumptions, False))
    else:
        decision = _decide_relation_uncached(r0, r1, bounds)
    _DECIDE_CACHE.put(key, decision)
    return decision


def _decide_relation_uncached(
    r0: Region, r1: Region, bounds: BoundsProvider = NO_BOUNDS
) -> Decision:
    """The actual decision procedure behind :func:`decide_relation`."""
    diff = difference(r1.addr, r0.addr)  # e1 - e0
    if diff.is_const:
        relation = _decide_const_diff(diff.const, r0.size, r1.size)
        return Decision(relation)

    # Interval reasoning on the difference, both directions.
    forward = expr_interval(sub(r1.addr, r0.addr), bounds)
    if not forward.is_top:
        if forward.lo >= r0.size and forward.hi <= (1 << 64) - r1.size:
            return Decision(Relation.SEPARATE)
        if forward.hi == 0 and forward.lo == 0 and r0.size == r1.size:
            return Decision(Relation.ALIAS)
        if forward.hi + r1.size <= r0.size:
            return Decision(Relation.ENCLOSES)
    backward = expr_interval(sub(r0.addr, r1.addr), bounds)
    if not backward.is_top:
        if backward.lo >= r1.size and backward.hi <= (1 << 64) - r0.size:
            return Decision(Relation.SEPARATE)
        if backward.hi + r0.size <= r1.size:
            return Decision(Relation.ENCLOSED)

    # Domain rule: local stack frame vs. constant-address global space.
    # "Global" includes bounded address *ranges* such as a jump-table access
    # [table + 8*idx, 8] with idx bounded by a branch condition.
    stack0, stack1 = is_stack_pointer(r0.addr), is_stack_pointer(r1.addr)
    global0 = is_global_pointer(r0.addr) or not expr_interval(r0.addr, bounds).is_top
    global1 = is_global_pointer(r1.addr) or not expr_interval(r1.addr, bounds).is_top
    if (stack0 and global1) or (stack1 and global0):
        assumption = Assumption(
            "stack-global-separation",
            f"{r0} and {r1} do not overlap (local frame vs global space)",
        )
        return Decision(Relation.SEPARATE, (assumption,))

    # Domain rule: the function's *private* frame (at or below the return-
    # address slot [rsp0, 8]) vs. externally-derived pointers (arguments,
    # heap values).  Well-formed callers cannot hold addresses into a frame
    # that did not exist before the call; the assumption is recorded, and
    # its violations are exactly the paper's "weird" executions (Sec. 5.3).
    for mine, other in ((r0, r1), (r1, r0)):
        if _is_private_frame_region(mine) and _is_external_pointer(other.addr):
            assumption = Assumption(
                "frame-privacy",
                f"externally-derived {other} does not overlap private frame {mine}",
            )
            return Decision(Relation.SEPARATE, (assumption,))
    return Decision(None)


def _is_private_frame_region(region: Region) -> bool:
    """[rsp0 + c, n] entirely at or below the return-address slot."""
    linear = linearize(region.addr)
    terms = linear.term_dict()
    if len(terms) != 1:
        return False
    (term, coeff), = terms.items()
    if coeff != 1 or not isinstance(term, Var) or term.name != STACK_BASE:
        return False
    offset = linear.const
    if offset >= (1 << 63):
        offset -= 1 << 64
    return offset + region.size <= 8


def _is_external_pointer(addr: Expr) -> bool:
    """Linear in exactly one non-rsp0 variable with coefficient 1."""
    linear = linearize(addr)
    terms = linear.term_dict()
    if len(terms) != 1:
        return False
    (term, coeff), = terms.items()
    return (
        coeff == 1
        and isinstance(term, Var)
        and term.name != STACK_BASE
        and not term.name.startswith("join@")
    )


_POW2_SIZES = frozenset({1, 2, 4, 8})


@dataclass(frozen=True)
class Fork:
    """Outcome of a possible-relations query for an undecided pair.

    ``relations`` are the cases to fork over; ``may_partial`` signals that a
    partial overlap cannot be excluded (→ destroy, Section 1)."""

    relations: tuple[Relation, ...]
    may_partial: bool
    assumptions: tuple[Assumption, ...] = ()


def possible_relations(
    r0: Region, r1: Region, bounds: BoundsProvider = NO_BOUNDS
) -> Fork:
    """Enumerate the relations an undecided pair may stand in (cached)."""
    key = (r0.addr, r0.size, r1.addr, r1.size,
           _bounds_fingerprint(r0, r1, bounds))
    cached = _FORK_CACHE.get(key)
    if cached is not _MISSING:
        if _T.enabled:
            _M.inc("smt.queries")
            if _T.sample("smt.query"):
                _T.record("smt.query", _query_detail(
                    "fork", r0, r1, _fork_verdict(cached),
                    cached.assumptions, True))
        return cached
    if _T.enabled:
        _phases.start("smt")
        try:
            fork = _possible_relations_uncached(r0, r1, bounds)
        finally:
            wall = _phases.stop()
        _M.inc("smt.queries")
        _M.add_time("smt.wall", wall)
        _T.emit("smt.query", **_query_detail(
            "fork", r0, r1, _fork_verdict(fork), fork.assumptions, False))
    else:
        fork = _possible_relations_uncached(r0, r1, bounds)
    _FORK_CACHE.put(key, fork)
    return fork


def _possible_relations_uncached(
    r0: Region, r1: Region, bounds: BoundsProvider = NO_BOUNDS
) -> Fork:
    """Enumerate the relations an undecided pair may stand in.

    Under the recorded alignment assumption, power-of-two-sized accesses
    never partially overlap, so the fork is a clean case split."""
    if r0.size in _POW2_SIZES and r1.size in _POW2_SIZES:
        assumption = Assumption(
            "alignment",
            f"{r0} and {r1} are size-aligned accesses (no partial overlap)",
        )
        if r0.size == r1.size:
            cases = (Relation.ALIAS, Relation.SEPARATE)
        elif r0.size < r1.size:
            cases = (Relation.ENCLOSED, Relation.SEPARATE)
        else:
            cases = (Relation.ENCLOSES, Relation.SEPARATE)
        # Drop cases refuted by interval reasoning.
        cases = tuple(
            c for c in cases if not _refuted(c, r0, r1, bounds)
        ) or (Relation.SEPARATE,)
        return Fork(cases, may_partial=False, assumptions=(assumption,))
    return Fork(
        (Relation.ALIAS, Relation.SEPARATE, Relation.ENCLOSED, Relation.ENCLOSES),
        may_partial=True,
    )


def _refuted(relation: Relation, r0: Region, r1: Region,
             bounds: BoundsProvider) -> bool:
    """Can interval reasoning exclude *relation* outright?"""
    forward = expr_interval(sub(r1.addr, r0.addr), bounds)
    if forward.is_top:
        return False
    if relation is Relation.ALIAS:
        return not forward.contains(0)
    if relation is Relation.ENCLOSED:
        # e0 >= e1 requires e1 - e0 to admit a "negative" (wrapped) value or 0.
        return forward.lo > 0 and forward.hi <= MASK64 - (1 << 63)
    return False
