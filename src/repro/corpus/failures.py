"""The instructive failure binaries of Sections 5.1 and 5.3.

Each builder returns a Binary whose lift outcome reproduces one failure
mode from the paper:

* :func:`buffer_overflow` — writes through an unbounded stack index; the
  return-address proof fails and no HG is produced (Section 5.1, item 2).
* :func:`stack_probe`     — an internal callee clobbers rax, then the
  caller does ``sub rsp, rax``: the stack pointer becomes unknowable
  (Section 5.3, "Stack Probing").
* :func:`nonstandard_rsp` — restores rsp from computed memory before
  returning (Section 5.3, "Non-standard Stackpointer Restoration").
* :func:`concurrency`     — calls pthread_create: declared out of scope.
* :func:`ret2win`         — passes a stack-frame pointer to external
  ``memset``; lifting *succeeds* and emits the MUST-PRESERVE proof
  obligation whose negation is the exploit (Section 5.3, "Stack
  Overflow").
"""

from __future__ import annotations

from repro.elf import Binary, BinaryBuilder
from repro.isa import Imm, Mem


def buffer_overflow() -> Binary:
    builder = BinaryBuilder("overflow")
    t = builder.text
    t.label("main")
    t.emit("sub", "rsp", Imm(32, 32))
    # rdi is an unbounded index; [rsp + rdi*8] may be the return address.
    t.emit("mov", Mem(64, base="rsp", index="rdi", scale=8), Imm(0x41, 32))
    t.emit("add", "rsp", Imm(32, 32))
    t.emit("ret")
    return builder.build(entry="main")


def stack_probe() -> Binary:
    builder = BinaryBuilder("stack_probe")
    t = builder.text
    t.label("main")
    # mov eax, 0x1400; call __probe; sub rsp, rax  (the /usr/bin/zip shape)
    t.emit("mov", "eax", Imm(0x1400, 32))
    t.emit("call", "probe")
    t.emit("sub", "rsp", "rax")
    t.emit("add", "rsp", Imm(0x1400, 32))
    t.emit("ret")
    t.label("probe")
    # Touch pages downward; from the caller's context-free view rax is
    # simply not provably preserved.
    t.emit("mov", "r11", "rsp")
    t.emit("sub", "r11", Imm(0x1000, 32))
    t.emit("mov", "r10b", Mem(8, base="r11"))
    t.emit("ret")
    return builder.build(entry="main")


def nonstandard_rsp() -> Binary:
    builder = BinaryBuilder("nonstd_rsp")
    t = builder.text
    t.label("main")
    t.emit("sub", "rsp", Imm(0x40, 32))
    t.emit("mov", Mem(64, base="rsp", disp=0x8), "rsp")
    # Restore rsp from a computed memory location (the /usr/bin/ssh shape).
    t.emit("mov", "rax", Mem(64, base="rsp", index="r9", scale=4, disp=8))
    t.emit("mov", "rsp", "rax")
    t.emit("ret")
    return builder.build(entry="main")


def concurrency() -> Binary:
    builder = BinaryBuilder("threads")
    builder.extern("pthread_create")
    builder.extern("pthread_join")
    t = builder.text
    t.label("main")
    t.emit("push", "rbp")
    t.emit("call", "pthread_create")
    t.emit("pop", "rbp")
    t.emit("ret")
    return builder.build(entry="main")


def ret2win() -> Binary:
    builder = BinaryBuilder("ret2win")
    builder.extern("memset")
    t = builder.text
    t.label("main")
    t.emit("sub", "rsp", Imm(32, 32))
    t.emit("lea", "rdi", Mem(64, base="rsp", disp=0))    # rdi := rsp0 - 40
    t.emit("mov", "esi", Imm(0x41, 32))
    t.emit("mov", "edx", Imm(48, 32))                     # 48 > 32: exploitable
    t.emit("call", "memset")
    t.emit("add", "rsp", Imm(32, 32))
    t.emit("ret")
    return builder.build(entry="main")


ALL_FAILURES = {
    "buffer_overflow": buffer_overflow,
    "stack_probe": stack_probe,
    "nonstandard_rsp": nonstandard_rsp,
    "concurrency": concurrency,
    "ret2win": ret2win,
}
