"""Step-2 tests: Isabelle theory generation and triple replay validation."""

from __future__ import annotations

import pytest

from repro import lift
from repro.elf import BinaryBuilder
from repro.export import check_triples, export_theory, to_isabelle
from repro.expr import Const, Deref, const, simplify as s, var
from repro.isa import Imm, Mem, abs64


def build(program, **kwargs):
    builder = BinaryBuilder("export-test")
    program(builder)
    return builder.build(entry="main", **kwargs)


def lifted(program, **kwargs):
    result = lift(build(program), **kwargs)
    assert result.verified, [str(e) for e in result.errors]
    return result


def straightline(b):
    t = b.text
    t.label("main")
    t.emit("push", "rbp")
    t.emit("mov", "rbp", "rsp")
    t.emit("mov", "eax", Imm(42, 32))
    t.emit("pop", "rbp")
    t.emit("ret")


# -- term printing -------------------------------------------------------------

def test_const_and_var_terms():
    assert to_isabelle(const(5)) == "(0x5 :: 64 word)"
    assert to_isabelle(var("rdi0")) == "rdi0"


def test_arith_terms():
    expr = s.add(var("rsp0"), const(-8))
    text = to_isabelle(expr)
    assert "rsp0" in text and "+" in text


def test_deref_term():
    text = to_isabelle(Deref(var("rsp0"), 8))
    assert text == "(read_mem mem₀ rsp0 8)"


def test_sanitized_symbol_names():
    assert to_isabelle(var("ret@0x401000")) == "ret_0x401000"
    assert to_isabelle(var("havoc%3")) == "havoc_3"


# -- theory generation ------------------------------------------------------------

def test_theory_structure():
    result = lifted(straightline)
    theory = export_theory(result)
    assert theory.startswith("theory ")
    assert theory.rstrip().endswith("end")
    assert "subsection ‹Vertex invariants›" in theory
    assert "subsection ‹Hoare triples" in theory


def test_one_lemma_per_edge_group():
    result = lifted(straightline)
    theory = export_theory(result)
    lemmas = theory.count("lemma hoare_")
    # One lemma per (source vertex, instruction) group.
    groups = {(e.src, e.instr_addr) for e in result.graph.edges}
    assert lemmas == len(groups)


def test_theory_mentions_return_symbol_and_rsp0():
    result = lifted(straightline)
    theory = export_theory(result)
    assert "rsp0" in theory
    assert "ret_0x" in theory


def test_branch_lemma_has_disjunctive_postcondition():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("cmp", "rdi", Imm(5, 32))
        t.emit("ja", "big")
        t.emit("nop")
        t.label("big")
        t.emit("ret")

    result = lifted(program)
    theory = export_theory(result)
    assert "∨" in theory


# -- triple replay: the validation role of Step 2 ----------------------------------

def test_straightline_triples_all_proven():
    result = lifted(straightline)
    report = check_triples(result)
    assert report.failed == 0
    assert report.proven > 0
    assert report.all_proven, report.summary()


def test_branching_triples_proven():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("cmp", "rdi", Imm(5, 32))
        t.emit("ja", "big")
        t.emit("mov", "eax", Imm(1, 32))
        t.emit("jmp", "out")
        t.label("big")
        t.emit("mov", "eax", Imm(2, 32))
        t.label("out")
        t.emit("ret")

    report = check_triples(lifted(program))
    assert report.failed == 0, report.summary()
    assert report.proven >= 6


def test_loop_triples_proven():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("xor", "eax", "eax")
        t.label("loop")
        t.emit("add", "rax", "rdi")
        t.emit("sub", "rdi", Imm(1, 32))
        t.emit("test", "rdi", "rdi")
        t.emit("jne", "loop")
        t.emit("ret")

    report = check_triples(lifted(program))
    assert report.failed == 0, report.summary()


def test_memory_traffic_triples_proven():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("push", "rbp")
        t.emit("mov", "rbp", "rsp")
        t.emit("sub", "rsp", Imm(32, 32))
        t.emit("mov", Mem(64, base="rbp", disp=-8), "rdi")
        t.emit("mov", "rax", Mem(64, base="rbp", disp=-8))
        t.emit("leave")
        t.emit("ret")

    report = check_triples(lifted(program))
    assert report.failed == 0, report.summary()


def test_call_edges_reported_as_assumed():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("call", "helper")
        t.emit("ret")
        t.label("helper")
        t.emit("mov", "eax", Imm(7, 32))
        t.emit("ret")

    report = check_triples(lifted(program))
    assert report.assumed >= 1
    assert report.failed == 0


def test_jump_table_triples_proven():
    def program(b):
        t = b.text
        t.label("main")
        t.emit("cmp", "rdi", Imm(1, 32))
        t.emit("ja", "default")
        t.emit("movabs", "rcx", abs64("table"))
        t.emit("mov", "rax", Mem(64, base="rcx", index="rdi", scale=8))
        t.emit("jmp", "rax")
        t.label("default")
        t.emit("mov", "eax", Imm(99, 32))
        t.emit("ret")
        t.label("case0")
        t.emit("mov", "eax", Imm(10, 32))
        t.emit("ret")
        t.label("case1")
        t.emit("mov", "eax", Imm(11, 32))
        t.emit("ret")
        rod = b.rodata
        rod.label("table")
        rod.quad(abs64("case0"))
        rod.quad(abs64("case1"))

    report = check_triples(lifted(program))
    assert report.failed == 0, report.summary()
    assert report.proven > 0


def test_report_summary_format():
    report = check_triples(lifted(straightline))
    text = report.summary()
    assert "proven" in text and "triples" in text


def test_corrupted_graph_detected():
    """Sanity check the checker itself: swap a destination state's rip and
    the replay must FAIL (the checker is not vacuously true)."""
    result = lifted(straightline)
    graph = result.graph
    # Find a mov edge and retarget its destination invariant to a wrong
    # register value by mutating the vertex's predicate.
    from repro.expr import const as c

    for key, state in list(graph.vertices.items()):
        instr = result.instructions.get(key[1])
        if instr is not None and instr.mnemonic == "pop":
            # Claim rax == 43 right before `pop rbp` (it is 42).
            corrupted = state.with_pred(
                state.pred.with_regs({**state.pred.reg_dict(), "rax": c(43)})
            )
            graph.vertices[key] = corrupted
    report = check_triples(result)
    assert report.failed >= 1 or report.untested >= 1
