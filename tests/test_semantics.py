"""τ unit tests plus the Lemma 4.5 differential property against the CPU.

The differential harness runs a concrete execution and checks that at every
step, some symbolic successor is related (``R``) to the concrete next
state: predicate holds, memory model holds.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elf import BinaryBuilder
from repro.expr import Const, Deref, EvalEnv, Var, const, simplify as s, var
from repro.isa import Imm, Mem, Reg, insn
from repro.machine import CPU, Memory
from repro.memmodel import model_holds
from repro.pred import Clause
from repro.semantics import (
    CallEvent,
    LiftContext,
    RetEvent,
    SymState,
    TerminalEvent,
    UnknownWriteEvent,
    initial_state,
    step,
)
from repro.smt.solver import Region

RSP0 = var("rsp0")
RDI0 = var("rdi0")


def make_binary(instructions=(), rodata=b""):
    builder = BinaryBuilder("tau-test")
    builder.text.label("main")
    for instr in instructions:
        builder.text.emit(instr.mnemonic, *instr.operands)
    builder.text.emit("ret")
    if rodata:
        builder.rodata.raw(rodata)
    return builder.build(entry="main")


def run_tau(instructions, state=None, rodata=b""):
    """Step the given instruction list symbolically; returns final states."""
    binary = make_binary(instructions, rodata)
    ctx = LiftContext(binary)
    states = [state or initial_state(binary.entry, ret_symbol=Var("ret0"))]
    addr = binary.entry
    for _ in instructions:
        instr = binary.fetch(addr)
        next_states = []
        for current in states:
            for succ in step(current, instr, ctx):
                next_states.append(succ.state)
        states = next_states
        addr = instr.end
    return states, ctx


# -- basic dataflow ---------------------------------------------------------------

def test_mov_imm_sets_register():
    states, _ = run_tau([insn("mov", "eax", Imm(42, 32))])
    (state,) = states
    assert state.pred.get_reg("rax") == const(42)


def test_mov_reg_to_reg():
    states, _ = run_tau([insn("mov", "rax", "rdi")])
    (state,) = states
    assert state.pred.get_reg("rax") == RDI0


def test_add_and_flags():
    states, _ = run_tau([
        insn("mov", "rax", "rdi"),
        insn("add", "rax", Imm(5, 32)),
    ])
    (state,) = states
    assert state.pred.get_reg("rax") == s.add(RDI0, const(5))
    assert state.pred.flags is not None and state.pred.flags.kind == "arith"


def test_32bit_write_zero_extends():
    states, _ = run_tau([
        insn("movabs", "rax", Imm(0xFFFFFFFF_FFFFFFFF, 64)),
        insn("mov", "eax", Imm(7, 32)),
    ])
    (state,) = states
    assert state.pred.get_reg("rax") == const(7)


def test_8bit_write_merges():
    states, _ = run_tau([
        insn("mov", "rax", Imm(0x1100, 32)),
        insn("mov", "al", Imm(0x22, 8)),
    ])
    (state,) = states
    assert state.pred.get_reg("rax") == const(0x1122)


def test_rip_advances():
    states, _ = run_tau([insn("nop")])
    (state,) = states
    rip = state.pred.rip
    assert isinstance(rip, Const)


def test_push_then_pop_restores():
    states, _ = run_tau([insn("push", "rdi"), insn("pop", "rax")])
    (state,) = states
    assert state.pred.get_reg("rax") == RDI0
    assert state.pred.get_reg("rsp") == RSP0


def test_push_preserves_return_address_tracking():
    states, _ = run_tau([insn("push", "rbp")])
    (state,) = states
    mem = state.pred.mem_dict()
    assert mem[Region(RSP0, 8)] == Var("ret0")
    assert mem[Region(s.sub(RSP0, const(8)), 8)] == Var("rbp0")


def test_stack_store_load_roundtrip():
    states, _ = run_tau([
        insn("sub", "rsp", Imm(16, 32)),
        insn("mov", Mem(64, base="rsp", disp=8), "rdi"),
        insn("mov", "rax", Mem(64, base="rsp", disp=8)),
        insn("add", "rsp", Imm(16, 32)),
    ])
    (state,) = states
    assert state.pred.get_reg("rax") == RDI0
    assert state.pred.get_reg("rsp") == RSP0


def test_narrow_read_extracts_from_wide_store():
    states, _ = run_tau([
        insn("sub", "rsp", Imm(16, 32)),
        insn("mov", Mem(64, base="rsp"), Imm(0x11223344, 32)),
        insn("mov", "eax", Mem(32, base="rsp")),
    ])
    (state,) = states
    assert state.pred.get_reg("rax") == const(0x11223344)


def test_cmp_then_cond_jump_forks_with_clauses():
    binary = make_binary([
        insn("cmp", "rdi", Imm(10, 32)),
        insn("ja", Imm(0x10, 32)),
    ])
    ctx = LiftContext(binary)
    state = initial_state(binary.entry, Var("ret0"))
    instr = binary.fetch(binary.entry)
    (after_cmp,) = [x.state for x in step(state, instr, ctx)]
    ja = binary.fetch(instr.end)
    successors = step(after_cmp, ja, ctx)
    assert len(successors) == 2
    clauses = [succ.state.pred.clauses for succ in successors]
    all_clauses = set().union(*clauses)
    assert Clause(RDI0, "gtu", const(10), 64) in all_clauses
    assert Clause(RDI0, "leu", const(10), 64) in all_clauses


def test_infeasible_branch_pruned():
    states, _ = run_tau([
        insn("mov", "eax", Imm(5, 32)),
        insn("cmp", "eax", Imm(5, 32)),
        insn("je", Imm(4, 32)),
    ])
    # eax == 5 is trivially true: only the taken edge survives.
    assert len(states) == 1
    rip = states[0].pred.rip
    assert isinstance(rip, Const)


def test_rodata_read_resolves_to_constant():
    from repro.elf import RODATA_BASE

    states, _ = run_tau(
        [insn("mov", "rax", Mem(64, disp=RODATA_BASE))],
        rodata=(1234).to_bytes(8, "little"),
    )
    (state,) = states
    assert state.pred.get_reg("rax") == const(1234)


def test_unknown_register_read_gives_bottom():
    state = SymState(
        pred=initial_state(0x401000, Var("ret0")).pred.with_regs(
            {"rip": const(0x401000), "rsp": RSP0}
        ),
        model=initial_state(0x401000).model,
    )
    binary = make_binary([insn("mov", "rax", "rbx")])
    ctx = LiftContext(binary)
    instr = binary.fetch(binary.entry)
    (succ,) = step(state, instr, ctx)
    assert succ.state.pred.get_reg("rax") is None


def test_call_emits_event():
    binary = make_binary([insn("call", Imm(0x100, 32))])
    ctx = LiftContext(binary)
    state = initial_state(binary.entry, Var("ret0"))
    (succ,) = step(state, binary.fetch(binary.entry), ctx)
    (event,) = succ.events
    assert isinstance(event, CallEvent)
    assert isinstance(event.target, Const)


def test_ret_emits_event_with_return_symbol():
    binary = make_binary([])
    ctx = LiftContext(binary)
    state = initial_state(binary.entry, Var("ret0"))
    (succ,) = step(state, binary.fetch(binary.entry), ctx)
    (event,) = succ.events
    assert isinstance(event, RetEvent)
    assert event.target == Var("ret0")
    assert event.rsp_after == s.add(RSP0, const(8))


def test_terminal_instructions():
    for mnemonic in ("hlt", "ud2", "int3"):
        binary = make_binary([insn(mnemonic)])
        ctx = LiftContext(binary)
        state = initial_state(binary.entry, Var("ret0"))
        (succ,) = step(state, binary.fetch(binary.entry), ctx)
        assert any(isinstance(e, TerminalEvent) for e in succ.events)


def test_write_through_arg_pointer_keeps_return_address():
    """mov [rdi], rax must not clobber the tracked return address (the
    frame-privacy assumption makes them separate)."""
    states, _ = run_tau([insn("mov", Mem(64, base="rdi"), "rsi")])
    (state,) = states
    assert state.pred.mem_dict()[Region(RSP0, 8)] == Var("ret0")
    assert state.pred.mem_dict()[Region(RDI0, 8)] == Var("rsi0")


def test_aliasing_fork_figure_1():
    """Stores through rdi and rsi fork into aliasing/separate models with
    different read results afterwards (the Section 2 phenomenon)."""
    states, _ = run_tau([
        insn("mov", Mem(32, base="rdi"), Imm(7, 32)),
        insn("mov", Mem(32, base="rsi"), Imm(1, 32)),
        insn("mov", "eax", Mem(32, base="rdi")),
    ])
    values = {state.pred.get_reg("rax") for state in states}
    assert const(1) in values  # aliasing: second store wins
    assert const(7) in values  # separate: first store intact


def test_unknown_write_destroys_and_flags():
    """A store through an unvalued register is an UnknownWriteEvent."""
    pred = initial_state(0x401000, Var("ret0")).pred
    regs = pred.reg_dict()
    del regs["rbx"]
    state = SymState(pred=pred.with_regs(regs), model=initial_state(0).model)
    binary = make_binary([insn("mov", Mem(64, base="rbx"), "rax")])
    ctx = LiftContext(binary)
    (succ,) = step(state, binary.fetch(binary.entry), ctx)
    assert any(isinstance(e, UnknownWriteEvent) for e in succ.events)
    assert not succ.state.pred.mem  # all memory knowledge gone


def test_leave_restores_frame():
    states, _ = run_tau([
        insn("push", "rbp"),
        insn("mov", "rbp", "rsp"),
        insn("sub", "rsp", Imm(32, 32)),
        insn("leave"),
    ])
    (state,) = states
    assert state.pred.get_reg("rsp") == RSP0
    assert state.pred.get_reg("rbp") == Var("rbp0")


def test_setcc_computes_condition_value():
    states, _ = run_tau([
        insn("cmp", "rdi", Imm(3, 32)),
        insn("sete", "al"),
    ])
    (state,) = states
    rax = state.pred.get_reg("rax")
    assert rax is not None
    env_eq = EvalEnv(variables={"rdi0": 3, "rax0": 0})
    env_ne = EvalEnv(variables={"rdi0": 4, "rax0": 0})
    from repro.expr import evaluate

    assert evaluate(rax, env_eq) & 0xFF == 1
    assert evaluate(rax, env_ne) & 0xFF == 0


def test_division_after_cqo_is_precise():
    states, _ = run_tau([
        insn("mov", "rax", "rdi"),
        insn("cqo"),
        insn("idiv", "rsi"),
    ])
    (state,) = states
    rax = state.pred.get_reg("rax")
    assert rax is not None and not rax.__str__().startswith("havoc")
    from repro.expr import evaluate

    env = EvalEnv(variables={"rdi0": 100, "rsi0": 7})
    assert evaluate(rax, env) == 14


# -- Lemma 4.5 differential property ------------------------------------------------

def _initial_env(cpu: CPU, binary) -> EvalEnv:
    pristine = Memory(binary)
    pristine.bytes = dict(cpu_initial_bytes)
    variables = {f"{reg}0": value for reg, value in cpu.regs.items()}
    variables["ret0"] = pristine.read(cpu.regs["rsp"], 8)
    return EvalEnv(
        variables=variables,
        read_mem=lambda addr, size: pristine.read(addr, size),
        registers=dict(cpu.regs),
    )


cpu_initial_bytes: dict[int, int] = {}


def check_simulation(instructions, args, rodata=b""):
    """Run concretely and symbolically in lockstep; assert R at every step."""
    global cpu_initial_bytes
    binary = make_binary(instructions, rodata)
    cpu = CPU(binary)
    for reg, value in zip(("rdi", "rsi", "rdx", "rcx"), args):
        cpu.regs[reg] = value & ((1 << 64) - 1)
    cpu_initial_bytes = dict(cpu.memory.bytes)
    env = _initial_env(cpu, binary)

    ctx = LiftContext(binary)
    states = [initial_state(binary.entry, Var("ret0"))]
    for _ in instructions:
        instr = binary.fetch(cpu.rip)
        cpu.execute(instr)
        next_states = []
        for state in states:
            next_states += [x.state for x in step(state, instr, ctx)]
        env.registers = {**cpu.regs, "rip": cpu.rip}
        related = []
        for state in next_states:
            bindings = dict(env.variables)
            _bind_unknowns(state, env, cpu, bindings)
            probe = EvalEnv(bindings, env.read_mem, env.registers)
            if state.pred.holds(probe, read_current=cpu.memory.read) and \
                    model_holds(state.model, probe):
                related.append(state)
        assert related, f"no related symbolic state after {instr}"
        states = related
    return states


def _bind_unknowns(state, env, cpu, bindings):
    """Witness assignment for havoc/join variables: read them off the
    concrete state when they value a register."""
    for reg, value in state.pred.regs:
        if isinstance(value, Var) and value.name not in bindings:
            concrete = cpu.regs.get(reg) if reg != "rip" else cpu.rip
            if concrete is not None:
                bindings[value.name] = concrete


def test_simulation_straightline_arith():
    check_simulation(
        [
            insn("mov", "rax", "rdi"),
            insn("add", "rax", "rsi"),
            insn("xor", "rdx", "rdx"),
            insn("sub", "rax", Imm(3, 32)),
            insn("imul", "rax", "rax"),
        ],
        args=[11, 31],
    )


def test_simulation_stack_traffic():
    check_simulation(
        [
            insn("push", "rbp"),
            insn("mov", "rbp", "rsp"),
            insn("sub", "rsp", Imm(32, 32)),
            insn("mov", Mem(64, base="rbp", disp=-8), "rdi"),
            insn("mov", Mem(32, base="rbp", disp=-16), Imm(77, 32)),
            insn("mov", "rax", Mem(64, base="rbp", disp=-8)),
            insn("mov", "ecx", Mem(32, base="rbp", disp=-16)),
            insn("leave"),
        ],
        args=[123456],
    )


def test_simulation_branches():
    check_simulation(
        [
            insn("cmp", "rdi", "rsi"),
            insn("ja", Imm(1, 32)),   # skips one nop when rdi > rsi
            insn("nop"),
            insn("nop"),
        ],
        args=[5, 9],                   # not taken: cmp, ja, nop, nop
    )
    check_simulation(
        [
            insn("cmp", "rdi", "rsi"),
            insn("ja", Imm(1, 32)),
            insn("nop"),               # skipped on the taken path
            insn("nop"),               # taken path: cmp, ja, nop, ret
        ],
        args=[9, 5],
    )


@settings(max_examples=60, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=(1 << 63) - 1),
    b=st.integers(min_value=0, max_value=(1 << 63) - 1),
    imm=st.integers(min_value=-1000, max_value=1000),
)
def test_prop_simulation_random_arith(a, b, imm):
    check_simulation(
        [
            insn("mov", "rax", "rdi"),
            insn("add", "rax", Imm(imm, 32)),
            insn("and", "rax", "rsi"),
            insn("shl", "rax", Imm(3, 8)),
            insn("or", "rax", Imm(1, 32)),
        ],
        args=[a, b],
    )


def test_simulation_setcc_cmov_division():
    check_simulation(
        [
            insn("cmp", "rdi", "rsi"),
            insn("setb", "al"),
            insn("movzx", "eax", "al"),
            insn("mov", "rcx", Imm(100, 32)),
            insn("cmova", "rax", "rcx"),
            insn("mov", "rax", "rdi"),
            insn("cqo"),
            insn("idiv", "rsi"),
        ],
        args=[1000, 7],
    )


def test_simulation_subregister_merges():
    check_simulation(
        [
            insn("movabs", "rax", Imm(0x1122334455667788, 64)),
            insn("mov", "al", Imm(0xFF, 8)),
            insn("mov", "rdx", "rax"),
            insn("mov", "eax", Imm(7, 32)),
            insn("movzx", "ecx", "dl"),
        ],
        args=[],
    )


def test_simulation_string_ops():
    check_simulation(
        [
            insn("push", "rdi"),          # make some known stack state
            insn("pop", "rdi"),
            insn("mov", "ecx", Imm(2, 32)),
            insn("mov", "rsi", "rsp"),    # copy from the stack downward...
            insn("sub", "rsp", Imm(32, 32)),
            insn("mov", "rdi", "rsp"),
            insn("rep_movsq"),            # ...into the new frame
            insn("add", "rsp", Imm(32, 32)),
        ],
        args=[0x1234],
    )


def test_simulation_shift_by_cl():
    check_simulation(
        [
            insn("mov", "rcx", Imm(5, 32)),
            insn("mov", "rax", "rdi"),
            insn("shl", "rax", Reg("cl")),
            insn("sar", "rax", Imm(2, 8)),
        ],
        args=[0x40],
    )


def test_simulation_leave_frame():
    check_simulation(
        [
            insn("push", "rbp"),
            insn("mov", "rbp", "rsp"),
            insn("sub", "rsp", Imm(48, 32)),
            insn("mov", Mem(64, base="rbp", disp=-48), "rsi"),
            insn("leave"),
        ],
        args=[5, 6],
    )
