"""CFG derivation, HG diffing (patch audit), and the command-line tool."""

from __future__ import annotations

import pytest

from repro import lift
from repro.elf import save_binary
from repro.hoare.cfg import build_cfg, to_dot, to_networkx
from repro.hoare.diff import diff_lifts
from repro.minicc import compile_source

BRANCHY = """
long helper(long x) { return x * 2; }
long main(long n) {
    long r = 0;
    if (n > 10) r = helper(n);
    else r = n + 1;
    while (r > 100) r = r - 100;
    return r;
}
"""


@pytest.fixture(scope="module")
def branchy_result():
    return lift(compile_source(BRANCHY, name="branchy"))


def test_cfg_blocks_partition_instructions(branchy_result):
    cfg = build_cfg(branchy_result)
    covered = set()
    for block in cfg.blocks.values():
        for addr in block.addresses:
            assert addr not in covered, f"{addr:#x} in two blocks"
            covered.add(addr)
    assert covered == set(branchy_result.instructions)


def test_cfg_has_branches_and_returns(branchy_result):
    cfg = build_cfg(branchy_result)
    out_degree = {}
    for src, dst in cfg.edges:
        out_degree[src] = out_degree.get(src, 0) + 1
    assert any(v >= 2 for v in out_degree.values())  # the if and the while
    assert cfg.returns  # both functions return


def test_cfg_function_partition(branchy_result):
    cfg = build_cfg(branchy_result)
    assert len(cfg.functions) == 2  # main + helper
    # Function block sets are disjoint.
    sets = list(cfg.functions.values())
    assert not (sets[0] & sets[1])


def test_cfg_networkx_and_dot(branchy_result):
    cfg = build_cfg(branchy_result)
    graph = to_networkx(cfg)
    assert graph.number_of_nodes() == len(cfg.blocks)
    assert graph.number_of_edges() == len(cfg.edges)
    dot = to_dot(cfg, branchy_result)
    assert dot.startswith("digraph") and dot.rstrip().endswith("}")
    assert "->" in dot


# -- diff / patch audit ----------------------------------------------------------

ORIGINAL = """
long main(long n) {
    if (n > 100) n = 100;
    return n * 2;
}
"""

PATCHED_BENIGN = """
long main(long n) {
    if (n > 50) n = 50;
    return n * 2;
}
"""

PATCHED_SUSPICIOUS = """
extern long system();
long main(long n) {
    if (n > 100) n = 100;
    system(n);
    return n * 2;
}
"""


def test_diff_identical_is_clean():
    result = lift(compile_source(ORIGINAL, name="orig"))
    again = lift(compile_source(ORIGINAL, name="orig2"))
    diff = diff_lifts(result, again)
    assert diff.is_clean, diff.summary()


def test_diff_benign_patch_shows_changed_immediate():
    original = lift(compile_source(ORIGINAL, name="orig"))
    patched = lift(compile_source(PATCHED_BENIGN, name="patched"))
    diff = diff_lifts(original, patched)
    assert not diff.is_clean
    assert diff.changed_instructions
    assert not diff.added_obligations  # no new external-call assumptions


def test_diff_suspicious_patch_surfaces_new_obligation():
    original = lift(compile_source(ORIGINAL, name="orig"))
    patched = lift(compile_source(PATCHED_SUSPICIOUS, name="patched"))
    diff = diff_lifts(original, patched)
    assert any("system" in text for text in diff.added_obligations)


def test_diff_detects_verdict_change():
    from repro.corpus import buffer_overflow

    good = lift(compile_source(ORIGINAL, name="orig"))
    bad = lift(buffer_overflow())
    diff = diff_lifts(good, bad)
    assert diff.verdict_change == (True, False)


# -- CLI ---------------------------------------------------------------------------

@pytest.fixture()
def elf_path(tmp_path):
    binary = compile_source(BRANCHY, name="branchy")
    path = tmp_path / "branchy.elf"
    save_binary(binary, str(path))
    return str(path)


def test_cli_lift(elf_path, capsys):
    from repro.__main__ import main

    assert main(["lift", elf_path]) == 0
    out = capsys.readouterr().out
    assert "OK" in out


def test_cli_disasm(elf_path, capsys):
    from repro.__main__ import main

    assert main(["disasm", elf_path]) == 0
    out = capsys.readouterr().out
    assert "push rbp" in out and "ret" in out


def test_cli_cfg_writes_dot(elf_path, tmp_path, capsys):
    from repro.__main__ import main

    out_path = tmp_path / "cfg.dot"
    assert main(["cfg", elf_path, "-o", str(out_path)]) == 0
    assert out_path.read_text().startswith("digraph")


def test_cli_export(elf_path, tmp_path):
    from repro.__main__ import main

    out_path = tmp_path / "theory.thy"
    assert main(["export", elf_path, "-o", str(out_path)]) == 0
    assert out_path.read_text().startswith("theory ")


def test_cli_check(elf_path, capsys):
    from repro.__main__ import main

    assert main(["check", elf_path]) == 0
    assert "proven" in capsys.readouterr().out


def test_cli_diff(tmp_path, capsys):
    from repro.__main__ import main

    a = tmp_path / "a.elf"
    b = tmp_path / "b.elf"
    save_binary(compile_source(ORIGINAL, name="a"), str(a))
    save_binary(compile_source(PATCHED_SUSPICIOUS, name="b"), str(b))
    assert main(["diff", str(a), str(b)]) == 1  # not clean
    out = capsys.readouterr().out
    assert "OBLIGATION" in out


def test_cli_rejected_binary_exit_code(tmp_path):
    from repro.__main__ import main
    from repro.corpus import buffer_overflow

    path = tmp_path / "overflow.elf"
    save_binary(buffer_overflow(), str(path))
    assert main(["lift", str(path)]) == 1


def test_cli_decompile(elf_path, capsys):
    from repro.__main__ import main

    assert main(["decompile", elf_path]) == 0
    out = capsys.readouterr().out
    assert "uint64_t main(void)" in out
    assert "goto block_" in out
