"""Feedback workloads: binaries built to exercise the pointer-summaries
refinement (``lift(..., pointer_summaries=True)``).

The minicc corpus rarely re-reads global state across calls inside loops
— its codegen keeps working values in the frame — so the call-cleaning
refinement, while *firing* on most corpus calls, barely moves the join or
SMT-query counts there.  These builders concentrate the pattern the
feedback targets:

* a global read back after a call to a **pure** callee (the
  ``writes_nothing`` path: the cleaning keeps every non-stack clause and
  leaves the epoch at 0, so the re-read still sees the initial-memory
  value);
* a global read back after a call to a callee that writes **one other**
  global (the ``keeps`` path: the cleaning havocs exactly the callee's
  MAY-written region and keeps the rest);
* both inside loops, where every clause the context-free policy drops is
  re-derived — and re-queried — once per fixpoint iteration.

``python -m repro.eval bench --summaries-ab`` lifts these off/on next to
the corpus A/B; they are deliberately *not* part of ``build_corpus`` so
Table 1 and its golden files are untouched.
"""

from __future__ import annotations

from repro.elf import Binary, BinaryBuilder
from repro.isa import Imm, Mem, abs64


#: Globals polled per iteration of :func:`flag_loop`.  Each one is a
#: clause the context-free policy re-derives (and re-queries) once per
#: fixpoint iteration; the refinement cost/benefit scales with it.
FLAG_COUNT = 4


def flag_loop() -> Binary:
    """A loop polling ``FLAG_COUNT`` global flags, calling a pure helper
    for each one that is set.

    Context-free cleaning drops every flag clause at each call, so every
    iteration re-reads post-epoch memory; with the helper summarized as
    ``writes_nothing`` the clauses (and epoch 0) survive the calls."""
    b = BinaryBuilder("flag_loop")
    t = b.text
    t.label("main")
    t.emit("sub", "rsp", Imm(16, 32))
    t.emit("mov", Mem(64, base="rsp"), Imm(8, 32))
    t.label("loop")
    for i in range(FLAG_COUNT):
        t.emit("movabs", "rcx", abs64(f"flag{i}"))
        t.emit("mov", "rax", Mem(64, base="rcx"))
        t.emit("test", "rax", "rax")
        t.emit("je", f"skip{i}")
        t.emit("call", "helper")
        t.label(f"skip{i}")
    t.emit("mov", "rdx", Mem(64, base="rsp"))
    t.emit("sub", "rdx", Imm(1, 32))
    t.emit("mov", Mem(64, base="rsp"), "rdx")
    t.emit("test", "rdx", "rdx")
    t.emit("jne", "loop")
    t.emit("add", "rsp", Imm(16, 32))
    t.emit("xor", "rax", "rax")
    t.emit("ret")
    t.label("helper")
    t.emit("lea", "rax", Mem(64, base="rdi", disp=3))
    t.emit("ret")
    d = b.data
    for i in range(FLAG_COUNT):
        d.label(f"flag{i}")
        d.quad(1)
    return b.build(entry="main")


def keeps_loop() -> Binary:
    """A loop reading global ``kept`` around a callee that writes only
    global ``counter``: the ``keeps`` path must havoc ``counter`` and
    preserve the ``kept`` clause."""
    b = BinaryBuilder("keeps_loop")
    t = b.text
    t.label("main")
    t.emit("sub", "rsp", Imm(16, 32))
    t.emit("mov", Mem(64, base="rsp"), Imm(6, 32))
    t.label("loop")
    t.emit("movabs", "rcx", abs64("kept"))
    t.emit("mov", "rax", Mem(64, base="rcx"))
    t.emit("test", "rax", "rax")
    t.emit("je", "skip")
    t.emit("call", "bump")
    t.label("skip")
    t.emit("mov", "rdx", Mem(64, base="rsp"))
    t.emit("sub", "rdx", Imm(1, 32))
    t.emit("mov", Mem(64, base="rsp"), "rdx")
    t.emit("test", "rdx", "rdx")
    t.emit("jne", "loop")
    t.emit("add", "rsp", Imm(16, 32))
    t.emit("xor", "rax", "rax")
    t.emit("ret")
    t.label("bump")
    t.emit("movabs", "rcx", abs64("counter"))
    t.emit("mov", "rax", Mem(64, base="rcx"))
    t.emit("lea", "rax", Mem(64, base="rax", disp=1))
    t.emit("mov", Mem(64, base="rcx"), "rax")
    t.emit("ret")
    d = b.data
    d.label("kept")
    d.quad(1)
    d.label("counter")
    d.quad(0)
    return b.build(entry="main")


def pure_chain() -> Binary:
    """Straight-line calls to pure helpers between global reads: every
    call site is a refined havoc, no loop — isolates the per-call cost."""
    b = BinaryBuilder("pure_chain")
    t = b.text
    t.label("main")
    t.emit("sub", "rsp", Imm(8, 32))
    for i in range(4):
        t.emit("movabs", "rcx", abs64("table"))
        t.emit("mov", "rax", Mem(64, base="rcx", disp=8 * i))
        t.emit("mov", Mem(64, base="rsp"), "rax")
        t.emit("call", "mix")
    t.emit("mov", "rax", Mem(64, base="rsp"))
    t.emit("add", "rsp", Imm(8, 32))
    t.emit("ret")
    t.label("mix")
    t.emit("lea", "rax", Mem(64, base="rdi", index="rdi", scale=2))
    t.emit("ret")
    d = b.data
    d.label("table")
    for value in (3, 5, 7, 11):
        d.quad(value)
    return b.build(entry="main")


#: name -> builder, the ``--summaries-ab`` workload set (sorted order is
#: the measurement order).
FEEDBACK_WORKLOADS = {
    "flag_loop": flag_loop,
    "keeps_loop": keeps_loop,
    "pure_chain": pure_chain,
}


def build_feedback_workloads() -> list[tuple[str, Binary]]:
    return [(name, FEEDBACK_WORKLOADS[name]())
            for name in sorted(FEEDBACK_WORKLOADS)]
