"""A small peephole optimizer: the compiler's ``-O1`` flavour.

The paper targets binaries "compiled with various levels of optimization";
the corpus builds some binaries optimized and some not.  The passes work
on the assembler's item stream before layout (labels act as barriers, so
no transformation crosses a join point):

* **store-load forwarding** — ``mov [slot], r ; mov r', [slot]`` becomes
  ``mov [slot], r ; mov r', r``;
* **redundant-load elimination** — a reload of the slot just stored to the
  same register is dropped;
* **immediate folding** — ``mov rcx, imm ; <op> x, rcx`` becomes
  ``<op> x, imm`` (safe by a minicc invariant: rcx is never live past the
  instruction that consumes it);
* **jump-to-next elimination** — ``jmp L`` immediately followed by ``L:``.
"""

from __future__ import annotations

from repro.isa.assembler import _Item
from repro.isa.instruction import ALU_OPS, Instruction
from repro.isa.operands import Imm, Mem, Reg


def _is_insn(item: _Item) -> bool:
    return item.kind == "insn"


def _reads_reg(instr: Instruction, name: str) -> bool:
    for op in instr.operands:
        if isinstance(op, Reg) and op.family == name:
            return True
        if isinstance(op, Mem) and name in (op.base, op.index):
            return True
    return False


def _same_mem(a: Mem, b: Mem) -> bool:
    return (a.base, a.index, a.scale, a.disp, a.width) == \
        (b.base, b.index, b.scale, b.disp, b.width)


def _fold_jump_to_next(items: list[_Item]) -> list[_Item]:
    out: list[_Item] = []
    for index, item in enumerate(items):
        if item.kind == "insn_ref":
            mnemonic, operands = item.payload
            if mnemonic == "jmp" and len(operands) == 1 and \
                    getattr(operands[0], "kind", None) == "rel32":
                # Find the next label; drop the jmp if it targets it.
                peek = index + 1
                while peek < len(items) and items[peek].kind == "label":
                    if items[peek].payload == operands[0].label:
                        break
                    peek += 1
                else:
                    out.append(item)
                    continue
                if peek < len(items) and items[peek].kind == "label" and \
                        items[peek].payload == operands[0].label:
                    continue  # fallthrough suffices
        out.append(item)
    return out


def _forward_stores(items: list[_Item]) -> list[_Item]:
    out: list[_Item] = []
    for item in items:
        if _is_insn(item) and out and _is_insn(out[-1]):
            prev: Instruction = out[-1].payload
            cur: Instruction = item.payload
            if (
                prev.mnemonic == "mov" and cur.mnemonic == "mov"
                and len(prev.operands) == 2 and len(cur.operands) == 2
                and isinstance(prev.operands[0], Mem)
                and isinstance(prev.operands[1], Reg)
                and isinstance(cur.operands[1], Mem)
                and isinstance(cur.operands[0], Reg)
                and _same_mem(prev.operands[0], cur.operands[1])
                and prev.operands[1].width == cur.operands[0].width
            ):
                stored = prev.operands[1]
                target = cur.operands[0]
                if target.family == stored.family:
                    continue  # reload of the same register: drop entirely
                out.append(_Item("insn", Instruction(
                    "mov", (target, stored)
                )))
                continue
        out.append(item)
    return out


def _fold_immediates(items: list[_Item]) -> list[_Item]:
    out: list[_Item] = []
    index = 0
    while index < len(items):
        item = items[index]
        nxt = items[index + 1] if index + 1 < len(items) else None
        if (
            _is_insn(item) and nxt is not None and _is_insn(nxt)
            and item.payload.mnemonic == "mov"
            and len(item.payload.operands) == 2
            and isinstance(item.payload.operands[0], Reg)
            and item.payload.operands[0].family == "rcx"
            and isinstance(item.payload.operands[1], Imm)
            and -(1 << 31) <= item.payload.operands[1].signed < (1 << 31)
        ):
            imm = item.payload.operands[1]
            user: Instruction = nxt.payload
            # Compiler invariant: minicc never keeps rcx live past the
            # instruction that consumes it, so folding the immediate into
            # the consumer is always safe here.
            if (
                user.mnemonic in ALU_OPS
                and len(user.operands) == 2
                and isinstance(user.operands[1], Reg)
                and user.operands[1].family == "rcx"
                and not _reads_reg_in_dst(user, "rcx")
            ):
                out.append(_Item("insn", Instruction(
                    user.mnemonic,
                    (user.operands[0], Imm(imm.signed, 32)),
                )))
                index += 2
                continue
        out.append(item)
        index += 1
    return out


def _reads_reg_in_dst(instr: Instruction, name: str) -> bool:
    dst = instr.operands[0]
    if isinstance(dst, Reg):
        return dst.family == name
    if isinstance(dst, Mem):
        return name in (dst.base, dst.index)
    return False


def _operand_reads_rcx(op) -> bool:
    if isinstance(op, Reg):
        return op.family == "rcx"
    if isinstance(op, Mem):
        return "rcx" in (op.base, op.index)
    return False


def optimize_items(items: list[_Item]) -> list[_Item]:
    """Apply all peephole passes until a fixed point (bounded)."""
    for _ in range(4):
        before = len(items)
        items = _fold_jump_to_next(items)
        items = _forward_stores(items)
        items = _fold_immediates(items)
        if len(items) == before:
            break
    return items
