"""Concrete x86-64 emulator: the executable ``→_B`` of Definition 3.1."""

from repro.machine.cpu import CPU, MachineError, Memory, STACK_TOP, run_binary

__all__ = ["CPU", "MachineError", "Memory", "STACK_TOP", "run_binary"]
