"""Isabelle session export: base theory, per-binary theories, ROOT file."""

from __future__ import annotations

import os

import pytest

from repro import lift
from repro.export import base_theory, export_session, session_root
from repro.minicc import compile_source


def test_base_theory_structure():
    text = base_theory()
    assert text.startswith("theory X86_Semantics")
    assert text.rstrip().endswith("end")
    for definition in ("read_mem", "write_mem", "sep", "enc",
                       "udiv64", "step_at", "x86_symbolic_execution"):
        assert definition in text, definition


def test_session_root_lists_theories():
    text = session_root(["HG_a", "HG_b"])
    assert "session HoareGraphs" in text
    assert "X86_Semantics" in text
    assert "HG_a" in text and "HG_b" in text


def test_export_session_writes_files(tmp_path):
    results = {
        "alpha": lift(compile_source(
            "long main() { return 1; }", name="alpha")),
        "beta": lift(compile_source(
            "long main(long x) { if (x > 0) return x; return 0; }",
            name="beta")),
    }
    written = export_session(results, str(tmp_path))
    names = {os.path.basename(path) for path in written}
    assert names == {"X86_Semantics.thy", "HG_alpha.thy", "HG_beta.thy", "ROOT"}
    alpha = (tmp_path / "HG_alpha.thy").read_text()
    assert alpha.startswith("theory HG_alpha")
    assert "imports X86_Semantics" in alpha
    root = (tmp_path / "ROOT").read_text()
    assert "HG_alpha" in root and "HG_beta" in root


def test_exported_theories_have_balanced_blocks(tmp_path):
    result = lift(compile_source(
        "long main(long x) { long s = 0; while (x > 0) "
        "{ s = s + x; x = x - 1; } return s; }", name="loopy"))
    written = export_session({"loopy": result}, str(tmp_path))
    for path in written:
        if not path.endswith(".thy"):
            continue
        text = open(path).read()
        # every `theory` opens one block closed by the final `end`
        assert text.count("\nbegin") + text.count(" begin") >= 1
        assert text.rstrip().endswith("end")
