"""mini-C function templates for the synthetic corpus.

Each template is a function ``make_x(tag, **params) -> str`` returning the
source of one function whose name embeds *tag*, so a shared object can hold
many instantiations.  The templates cover the phenomenology Table 1
measures: resolvable jump tables (column A), callback invocations that
cannot be resolved context-free (column C), computed jumps that fail to
resolve (column B), plain arithmetic/loop/recursion bodies, and external
calls that generate MUST-PRESERVE obligations.
"""

from __future__ import annotations


def make_arith(tag: str, multiplier: int = 3, addend: int = 7) -> str:
    return f"""
long arith_{tag}(long x, long y) {{
    long t = x * {multiplier} + y;
    t = t - (x & y);
    t = t ^ (y << 2);
    return t + {addend};
}}
"""


def make_clamp(tag: str, lo: int = 0, hi: int = 255) -> str:
    return f"""
long clamp_{tag}(long x) {{
    if (x < {lo}) return {lo};
    if (x > {hi}) return {hi};
    return x;
}}
"""


def make_loop_sum(tag: str, stride: int = 1) -> str:
    return f"""
long loopsum_{tag}(long n) {{
    long sum = 0;
    for (long i = 0; i < n; i = i + {stride}) {{
        sum = sum + i;
    }}
    return sum;
}}
"""


def make_global_table_walk(tag: str, size: int = 16) -> str:
    return f"""
long walktab_{tag}[{size}];
long walk_{tag}(long n) {{
    if (n < 0) n = 0;
    if (n > {size - 1}) n = {size - 1};
    long sum = 0;
    for (long i = 0; i < {size}; i = i + 1) {{
        walktab_{tag}[i] = i * n;
        if (i <= n) sum = sum + walktab_{tag}[i];
    }}
    return sum;
}}
"""


def make_local_buffer(tag: str, size: int = 8) -> str:
    return f"""
long localbuf_{tag}(long n) {{
    long buf[{size}];
    for (long i = 0; i < {size}; i = i + 1) buf[i] = i + n;
    if (n < 0) n = 0;
    if (n > {size - 1}) n = {size - 1};
    return buf[n];
}}
"""


def make_switch_dispatch(tag: str, cases: int = 6, base: int = 100) -> str:
    """A dense switch: compiles to a rodata jump table (column A)."""
    body = "\n".join(
        f"        case {i}: return {base + i};" for i in range(cases)
    )
    return f"""
long dispatch_{tag}(long op) {{
    switch (op) {{
{body}
        default: return -1;
    }}
}}
"""


def make_state_machine(tag: str, states: int = 5) -> str:
    transitions = "\n".join(
        f"            case {i}: state = {(i * 2 + 1) % states}; break;"
        for i in range(states)
    )
    return f"""
long fsm_{tag}(long steps, long start) {{
    long state = start;
    if (state < 0) state = 0;
    if (state > {states - 1}) state = 0;
    for (long i = 0; i < steps; i = i + 1) {{
        switch (state) {{
{transitions}
            default: state = 0;
        }}
    }}
    return state;
}}
"""


def make_callback_invoker(tag: str) -> str:
    """Calls a function pointer parameter: an unresolvable indirect call
    (column C) — the paper's dominant annotation cause."""
    return f"""
long invoke_{tag}(long callback, long arg) {{
    if (callback == 0) return -1;
    return (*callback)(arg);
}}
"""


def make_callback_registry(tag: str, slots: int = 4) -> str:
    """Stores/retrieves callbacks through a global table; calling through
    the writable table is an unresolvable indirect call (column C)."""
    return f"""
long cbtable_{tag}[{slots}];
long register_{tag}(long slot, long fn) {{
    if (slot < 0) return -1;
    if (slot > {slots - 1}) return -1;
    cbtable_{tag}[slot] = fn;
    return 0;
}}
long fire_{tag}(long slot, long arg) {{
    if (slot < 0) return -1;
    if (slot > {slots - 1}) return -1;
    long fn = cbtable_{tag}[slot];
    if (fn == 0) return 0;
    return (*fn)(arg);
}}
"""


def make_recursive(tag: str, base: int = 1) -> str:
    return f"""
long recur_{tag}(long n) {{
    if (n <= {base}) return {base};
    return n * recur_{tag}(n - 1);
}}
"""


def make_extern_user(tag: str, extern_name: str = "malloc") -> str:
    return f"""
extern long {extern_name}();
long use_{tag}(long n) {{
    long p = {extern_name}(n);
    if (p == 0) return -1;
    return p;
}}
"""


def make_buffer_writer_extern(tag: str, size: int = 40) -> str:
    """Passes a pointer to a local buffer to an external function: produces
    the ret2win-style MUST-PRESERVE obligation (Section 5.3)."""
    return f"""
extern long memset();
long fillbuf_{tag}(long c) {{
    long buf[{size // 8}];
    memset(&buf[0], c, {size});
    return buf[0];
}}
"""


def make_helper_chain(tag: str, depth: int = 3) -> str:
    """A chain of internal calls (context-free exploration, Section 4.2.2)."""
    parts = []
    for level in range(depth):
        callee = f"chain_{tag}_{level + 1}" if level + 1 < depth else None
        if callee:
            body = f"return {callee}(x + {level});"
        else:
            body = f"return x * {depth};"
        parts.append(f"long chain_{tag}_{level}(long x) {{ {body} }}")
    parts.reverse()
    return "\n".join(parts) + "\n"


def make_byte_scanner(tag: str, size: int = 32) -> str:
    """wc-style: scan a global byte buffer counting a class of bytes."""
    return f"""
char scanbuf_{tag}[{size}];
long scan_{tag}(long needle) {{
    long count = 0;
    for (long i = 0; i < {size}; i = i + 1) {{
        if (scanbuf_{tag}[i] == needle) count = count + 1;
    }}
    return count;
}}
"""


def make_checksum(tag: str, size: int = 16) -> str:
    """tar-style: header checksum over a global region."""
    return f"""
char hdr_{tag}[{size}];
long checksum_{tag}() {{
    long sum = 0;
    for (long i = 0; i < {size}; i = i + 1) {{
        sum = sum + hdr_{tag}[i];
    }}
    return sum & 0xffff;
}}
"""


def make_bitops(tag: str) -> str:
    return f"""
long bits_{tag}(long x) {{
    long count = 0;
    while (x != 0) {{
        count = count + (x & 1);
        x = x >> 1;
        if (count > 64) break;
    }}
    return count;
}}
"""


def make_unrolled(tag: str, steps: int = 40) -> str:
    """A large straight-line function: many instructions, no joins, so it
    lifts in time linear in size — this is what makes verification time
    nearly independent of instruction count (Figure 3)."""
    body = "\n".join(
        f"    acc = acc * {2 + i % 5} + (x >> {i % 7}) - {i * 3 + 1};"
        for i in range(steps)
    )
    return f"""
long unrolled_{tag}(long x) {{
    long acc = x;
{body}
    return acc;
}}
"""


def make_divider(tag: str, divisor: int = 10) -> str:
    return f"""
long divmod_{tag}(long x) {{
    long q = x / {divisor};
    long r = x % {divisor};
    return q * 1000 + r;
}}
"""
