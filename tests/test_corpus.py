"""Corpus and evaluation-harness tests (kept light: scale-1 subsets)."""

from __future__ import annotations

import pytest

from repro import lift
from repro.corpus import (
    ALL_FAILURES,
    build_corpus,
    build_coreutils,
    build_library,
    function_binary,
)
from repro.corpus.xenlike import _binary_source
from repro.hoare import lift_function
from repro.machine import run_binary
from repro.minicc import compile_source


def test_corpus_structure():
    corpus = build_corpus(scale=1)
    assert len(corpus.binaries) == 18
    assert len(corpus.libraries) == 4
    directories = corpus.directories()
    for expected in ("bin", "xen/bin", "sbin", "libexec", "lib",
                     "xenfsimage", "dist-packages", "lowlevel"):
        assert expected in directories
    functions = sum(len(lib.functions) for lib in corpus.libraries)
    assert functions > 100


def test_corpus_scales_linearly():
    small = build_corpus(scale=1)
    large = build_corpus(scale=2)
    assert len(large.binaries) == 2 * len(small.binaries)
    assert len(large.libraries) == 2 * len(small.libraries)


def test_corpus_binaries_execute_concretely():
    """Generated binaries are real programs, not just lift fodder."""
    binary = compile_source(_binary_source(3), name="b3")
    cpu = run_binary(binary, args=[5])
    assert cpu.halted


def test_library_functions_execute_concretely():
    library = build_library("librun.so", "lib", bundles=1)
    arith = next(f for f in library.functions if f.startswith("arith_"))
    binary = function_binary(library, arith)
    cpu = run_binary(binary, args=[3, 4])  # entry is the first function
    assert cpu.halted


def test_expected_unprovable_functions_reject():
    corpus = build_corpus(scale=1)
    library = corpus.libraries[0]
    smash = [f for f, outcome in library.expected.items()
             if outcome == "unprovable"]
    assert smash
    result = lift_function(function_binary(library, smash[0]), smash[0],
                           max_states=4000, timeout_seconds=10)
    assert not result.verified


def test_failure_binaries_build_and_classify():
    from repro.corpus import (
        buffer_overflow, concurrency, nonstandard_rsp, ret2win, stack_probe,
    )

    assert not lift(buffer_overflow()).verified
    assert not lift(stack_probe()).verified
    assert not lift(nonstandard_rsp()).verified
    concurrency_result = lift(concurrency())
    assert concurrency_result.errors[0].kind == "concurrency"
    ret2win_result = lift(ret2win())
    assert ret2win_result.verified
    assert ret2win_result.obligations


def test_coreutils_programs_build_and_run():
    programs = build_coreutils()
    assert set(programs) == {"hexdump", "od", "wc", "tar", "du", "gzip"}
    for name, binary in programs.items():
        cpu = run_binary(binary, args=[7], max_steps=2_000_000)
        assert cpu.halted, name


def test_library_mode_lifts_sample_functions():
    library = build_library("libt.so", "lib", bundles=1)
    sample = [f for f in library.functions
              if f.split("_")[0] in ("arith", "clamp", "dispatch", "recur")]
    for name in sample:
        result = lift_function(function_binary(library, name), name,
                               max_states=4000, timeout_seconds=10)
        assert result.verified, f"{name}: {result.errors}"


def test_callback_functions_annotate_not_reject():
    library = build_library("libcb.so", "lib", bundles=1)
    invoker = next(f for f in library.functions if f.startswith("invoke_"))
    result = lift_function(function_binary(library, invoker), invoker,
                           max_states=4000, timeout_seconds=10)
    assert result.verified
    assert result.stats.unresolved_calls >= 1


def test_obligation_generating_function():
    library = build_library("libob.so", "lib", bundles=1)
    filler = next(f for f in library.functions if f.startswith("fillbuf_"))
    result = lift_function(function_binary(library, filler), filler,
                           max_states=4000, timeout_seconds=10)
    assert result.verified
    assert any(ob.callee == "memset" for ob in result.obligations)
