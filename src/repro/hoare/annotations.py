"""Annotations, proof obligations and verification errors.

Three output channels, mirroring the paper:

* :class:`Annotation` — unsoundness warnings (unresolved indirect jump or
  call): the lifted representation is overapproximative *except* past these
  points, which are clearly marked (Algorithm 1, line 13).
* :class:`Obligation` — generated proof obligations over external code,
  e.g. ``@400701: memset(RDI := RSP0 - 40) MUST PRESERVE [RSP0-8, RSP0+8]``
  (Section 5.3).  The HG is sound *under* these obligations.
* :class:`VerificationError` — the sanity properties could not be proven
  (return address integrity, bounded control flow, calling-convention
  adherence): the function/binary is rejected and no HG is produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.expr import Expr
from repro.smt.solver import Region


@dataclass(frozen=True)
class Annotation:
    """An unsoundness warning attached to one instruction."""

    kind: str  # "unresolved-jump" | "unresolved-call"
    addr: int
    detail: str = ""

    def __str__(self) -> str:
        return f"@{self.addr:#x}: {self.kind} {self.detail}".rstrip()


@dataclass(frozen=True)
class Obligation:
    """A MUST-PRESERVE proof obligation over an external/opaque call."""

    addr: int
    callee: str
    pointer_args: tuple[tuple[str, str], ...]  # (register, symbolic value)
    preserve: tuple[str, ...]                  # regions that must be kept

    def __str__(self) -> str:
        args = ", ".join(f"{reg.upper()} := {val}" for reg, val in self.pointer_args)
        spans = ", ".join(self.preserve)
        return f"@{self.addr:#x}: {self.callee}({args}) MUST PRESERVE {spans}"


@dataclass(frozen=True)
class VerificationError:
    """A sanity property failed; the lift is rejected."""

    kind: str  # "return-address" | "calling-convention" | "unknown-write" | ...
    addr: int
    detail: str = ""

    def __str__(self) -> str:
        return f"@{self.addr:#x}: verification error ({self.kind}) {self.detail}".rstrip()
