"""Operand model for the x86-64 subset: registers, immediates, memory.

Operands are immutable value objects.  ``Mem`` covers the full ModRM/SIB
addressing space we support::

    [base]  [base+disp]  [base+index*scale+disp]  [index*scale+disp]
    [disp32]  [rip+disp]

Widths are in bits throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import registers


@dataclass(frozen=True)
class Reg:
    """A general-purpose register operand, e.g. ``Reg("eax")``."""

    name: str

    def __post_init__(self) -> None:
        if not registers.is_register(self.name):
            raise ValueError(f"unknown register: {self.name!r}")

    @property
    def width(self) -> int:
        return registers.reg_width(self.name)

    @property
    def number(self) -> int:
        return registers.reg_number(self.name)

    @property
    def family(self) -> str:
        return registers.family_of(self.name)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm:
    """An immediate operand.  *value* is stored unsigned modulo 2**width."""

    value: int
    width: int = 32

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", self.value & ((1 << self.width) - 1))

    @property
    def signed(self) -> int:
        sign_bit = 1 << (self.width - 1)
        return self.value - (1 << self.width) if self.value & sign_bit else self.value

    def __str__(self) -> str:
        return hex(self.value)


_PTR_NAMES = {8: "byte ptr", 16: "word ptr", 32: "dword ptr", 64: "qword ptr"}


@dataclass(frozen=True)
class Mem:
    """A memory operand ``width ptr [base + index*scale + disp]``.

    ``base`` / ``index`` are 64-bit register names or None; ``rip`` is
    permitted as a base (RIP-relative addressing) with no index.
    """

    width: int
    base: str | None = None
    index: str | None = None
    scale: int = 1
    disp: int = 0

    def __post_init__(self) -> None:
        if self.width not in (8, 16, 32, 64):
            raise ValueError(f"bad memory width: {self.width}")
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"bad scale: {self.scale}")
        if self.index is None and self.scale != 1:
            # Scale is meaningless without an index; canonicalize so that
            # encode/decode round-trips are exact.
            object.__setattr__(self, "scale", 1)
        if self.index == "rsp":
            raise ValueError("rsp cannot be an index register")
        if self.base == "rip" and self.index is not None:
            raise ValueError("rip-relative addressing takes no index")
        for reg in (self.base, self.index):
            if reg is not None and reg != "rip" and registers.reg_width(reg) != 64:
                raise ValueError(f"address registers must be 64-bit: {reg}")

    def __str__(self) -> str:
        parts = []
        if self.base:
            parts.append(self.base)
        if self.index:
            parts.append(f"{self.index}*{self.scale}")
        addr = " + ".join(parts) if parts else ""
        if self.disp or not parts:
            disp = self.disp
            if addr:
                addr += f" - {-disp:#x}" if disp < 0 else f" + {disp:#x}"
            else:
                addr = f"{disp:#x}"
        return f"{_PTR_NAMES[self.width]} [{addr}]"


Operand = Reg | Imm | Mem
