"""The flat micro-op IR (ROADMAP item 2): τ compiled to VEX-style uops.

A decoded instruction compiles **once** (per opcode + operand shape, see
:mod:`repro.uop.compile`) into a :class:`UopBlock` — a flat tuple of
micro-ops executed by the array interpreter in :mod:`repro.uop.interp`
against a dense temp-slot file.  The grammar follows the classic
binary-lifting IL shape (VEX / BIL: *Sound Transpilation from Binary to
Machine-Independent Code*, IsaBIL):

* ``IMARK``          — instruction boundary; ``addr``/``end`` are bound at
  execution time so one block serves every call site of its form;
* ``GET``/``PUT``    — register-file access (family name + static width,
  sub-register merges precompiled as keep-mask constants);
* ``ADDR``/``ADDR_RIP`` — address-template evaluation (the compile step
  pre-simplifies ``disp + base + index*scale`` through the expression
  kernels; rip-relative forms defer only the ``end + disp`` fold);
* ``LOAD``/``STORE`` — memory traffic through the shared, trusted
  :mod:`repro.semantics.memory` helpers (region slots are evaluated once
  per step and shared between the fork recipe and the body);
* ``BIN``/``UN``/``ITE`` — ⊥-propagating applications of the simplifying
  expression constructors;
* ``COND``           — condition-code expression over the flag thunk;
* ``FLAG_*``         — the CCALL-style flag thunks: status flags stay a
  symbolic :class:`~repro.pred.flags.FlagState` (operation kind + operand
  temps) and are only materialized into clauses when a later ``jcc``/
  ``setcc`` reads them — flag computation is batched into one terminal
  micro-op per block instead of per-bit assignments;
* ``SHIFT``          — the shift/rotate transformer (count-dependent flag
  contract of τ preserved, including the runtime constant-count check);
* ``RUN``-kind blocks — compiled closures for the stack/control forms
  (``push``/``pop``/``jcc``) whose successor structure doesn't fit the
  straight-line temp file;
* ``CCALL``-kind blocks — clean-call fallback into τ's own transformer
  for the rare complex forms (string ops, mul/div, ``adc``/``sbb``,
  ``xchg``…): identical semantics by construction.

Temporaries are *hash-consed*: the emitter value-numbers every pure
micro-op, so structurally identical subcomputations inside one block share
a single temp slot (see :class:`BlockEmitter`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

# -- opcodes (dense ints: the interpreter dispatches on op[0]) -----------------

IMARK = 0        # ()                     instruction boundary (informational)
GET = 1          # (dst, family, low_width)   low_width==0 -> full 64-bit read
CONST = 2        # (dst, expr)            pre-simplified constant/expression
ADDR = 3         # (dst, slot)            address value of memory-operand slot
LOAD = 4         # (dst, slot, size)      read_region via the slot's region
BIN = 5          # (dst, kernel, a, b, width)  ⊥-propagating binary kernel
UN = 6           # (dst, kernel, a, width)     ⊥-propagating unary kernel
ITE = 7          # (dst, c, a, b, width)       ⊥-propagating if-then-else
COND = 8         # (dst, cc)              condition expr over the flag thunk
STORE = 9        # (slot, size, src)      write_region (⊥ value -> fresh havoc)
PUT = 10         # (family, src, width, keep_mask)  sub-register merge baked in
FLAG_CMP = 11    # (kind, a, b, width)    flag thunk from both operands
FLAG_ARITH = 12  # (result, width)        flag thunk from the result temp
FLAG_NONE = 13   # ()                     havoc the flag state
SHIFT = 14       # (dst, code, a, n, width)    full τ shift/rotate contract
FLAG_SHIFT = 15  # (result, n, code, width)    count-dependent shift flags

#: Shift codes for the SHIFT micro-op.
SHL, SHR, SAR, ROL, ROR = 0, 1, 2, 3, 4

OP_NAMES = {
    IMARK: "IMark", GET: "GET", CONST: "CONST", ADDR: "ADDR", LOAD: "LOAD",
    BIN: "BINOP", UN: "UNOP", ITE: "ITE", COND: "COND", STORE: "STORE",
    PUT: "PUT", FLAG_CMP: "FLAG_CMP", FLAG_ARITH: "FLAG_ARITH",
    FLAG_NONE: "FLAG_NONE", SHIFT: "SHIFT", FLAG_SHIFT: "FLAG_SHIFT",
}

# -- region-recipe entries (Definition 4.2's R, precompiled per form) ----------

RG_MEM = 0       # (RG_MEM, template_or_None, size, rip_disp)  a Mem operand
RG_PUSH = 1      # (RG_PUSH,)              [rsp-8, 8]  when rsp is valued
RG_POPRET = 2    # (RG_POPRET,)            [rsp, 8]    when rsp is valued
RG_LEAVE = 3     # (RG_LEAVE,)             [rbp, 8]    when rbp is valued
RG_STRING = 4    # (RG_STRING, use_rdi, use_rsi, size)

#: Block kinds.
OPS = "ops"      # flat micro-op body run by the array interpreter
RUN = "run"      # compiled closure (stack/control successor shapes)
CCALL = "ccall"  # clean call into τ's reference transformer


@dataclass(frozen=True)
class UopBlock:
    """One compiled instruction form.

    ``digest`` content-addresses the block (opcode + operand shape +
    ``SEMANTICS_VERSION``); it doubles as the step-memo namespace, so a
    semantics bump invalidates both the compile table and every memoized
    transfer result.  ``pure_hint`` marks forms that can never consume
    fresh havoc names — the interpreter additionally *verifies* purity
    dynamically (name-counter check) before memoizing a transfer.
    """

    digest: str
    mnemonic: str
    kind: str                                   # OPS | RUN | CCALL
    regions: tuple[tuple, ...] = ()             # region recipe
    ops: tuple[tuple, ...] = ()                 # OPS bodies
    run: Callable | None = None                 # RUN bodies
    n_temps: int = 0
    pure_hint: bool = False

    def __str__(self) -> str:
        lines = [f"UopBlock[{self.mnemonic}] kind={self.kind} "
                 f"digest={self.digest[:12]}"]
        for op in self.ops:
            lines.append(f"  {OP_NAMES.get(op[0], op[0])}{op[1:]}")
        return "\n".join(lines)


class BlockEmitter:
    """Emit micro-ops with hash-consed (value-numbered) temporaries.

    Pure ops (GET/CONST/ADDR/BIN/UN/ITE/COND) with identical operands are
    emitted once and share a temp slot; effectful ops (LOAD/STORE/PUT/
    FLAG_*/SHIFT) always append.  LOADs are *not* value-numbered: τ issues
    one ``read_region`` per operand read and the uop engine must consume
    fresh-name state in the same order.
    """

    _PURE = (GET, CONST, ADDR, BIN, UN, ITE, COND)

    def __init__(self) -> None:
        self.ops: list[tuple] = [(IMARK,)]
        self._numbered: dict[tuple, int] = {}
        self._n_temps = 0

    def temp(self) -> int:
        t = self._n_temps
        self._n_temps += 1
        return t

    def emit(self, code: int, *args: Any) -> None:
        self.ops.append((code, *args))

    def value(self, code: int, *args: Any) -> int:
        """Emit a pure value-producing op; returns its (hash-consed) temp."""
        key = (code, *args)
        found = self._numbered.get(key)
        if found is not None:
            return found
        dst = self.temp()
        self.ops.append((code, dst, *args))
        self._numbered[key] = dst
        return dst

    def load(self, slot: int, size: int) -> int:
        dst = self.temp()
        self.ops.append((LOAD, dst, slot, size))
        return dst

    def shift(self, code: int, a: int, n: int, width: int) -> int:
        dst = self.temp()
        self.ops.append((SHIFT, dst, code, a, n, width))
        return dst

    def finish(self) -> tuple[tuple[tuple, ...], int]:
        return tuple(self.ops), self._n_temps
