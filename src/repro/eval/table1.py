"""Table 1: the Xen(-like) case-study statistics summary."""

from __future__ import annotations

import io

from repro.eval.runner import CorpusReport, DirectoryRow, run_corpus

_HEADER = (
    f"{'Directory':<16} {'counts (w=lift x=ret y=conc z=time)':<38} "
    f"{'Instrs.':>8} {'States':>8} {'A':>5} {'B':>5} {'C':>5} {'Time':>9}"
)


def _fmt_row(row: DirectoryRow) -> str:
    minutes, seconds = divmod(int(row.seconds), 60)
    hours, minutes = divmod(minutes, 60)
    return (
        f"{row.directory:<16} {row.counts_cell():<38} "
        f"{row.instructions:>8} {row.states:>8} {row.resolved:>5} "
        f"{row.unresolved_jumps:>5} {row.unresolved_calls:>5} "
        f"{hours}:{minutes:02d}:{seconds:02d}".rjust(0)
    )


def format_table1(report: CorpusReport) -> str:
    out = io.StringIO()
    out.write("Table 1: xenlike case study statistics summary\n")
    out.write("(counts cell: total = lifted + unprovable-ret + concurrency"
              " + timeout)\n\n")
    out.write(_HEADER + "\n")
    out.write("-" * len(_HEADER) + "\n")
    out.write("Binaries\n")
    for row in report.rows:
        if row.kind == "binary":
            out.write(_fmt_row(row) + "\n")
    out.write(_fmt_row(report.totals("binary")) + "\n\n")
    out.write("Library functions\n")
    for row in report.rows:
        if row.kind == "function":
            out.write(_fmt_row(row) + "\n")
    out.write(_fmt_row(report.totals("function")) + "\n")
    out.write(
        "\nA = resolved indirections   B = unresolved jumps   "
        "C = unresolved calls\n"
    )
    annotated = [row for row in report.rows if row.annotations]
    if annotated:
        out.write("\nUnsoundness annotations by kind:\n")
        for row in annotated:
            cell = "  ".join(f"{kind}={count}" for kind, count
                             in sorted(row.annotations.items()))
            out.write(f"  {row.directory:<16} ({row.kind}) {cell}\n")
    return out.getvalue()


def generate_table1(scale: int = 1, timeout_seconds: float = 10.0,
                    max_states: int = 10_000,
                    jobs: int = 1, engine: str = "tau",
                    ) -> tuple[CorpusReport, str]:
    report = run_corpus(scale=scale, timeout_seconds=timeout_seconds,
                        max_states=max_states, jobs=jobs, engine=engine)
    return report, format_table1(report)
