"""Hash-consing invariants of the expression AST.

The optimization layers (memoized simplification, the SMT verdict cache,
state-join short-circuits) all lean on one invariant: while two
structurally equal nodes are alive in one process, they are the *same
object*.  These tests pin that invariant down, including the deliberate
limits: pickling re-interns rather than assuming cross-process hash
stability, and nodes from before a cache reset stay comparable.
"""

from __future__ import annotations

import gc
import pickle

import pytest

from repro.expr.ast import (
    MASK64,
    App,
    Const,
    Deref,
    FlagRef,
    RegRef,
    Var,
    intern_table_sizes,
)


def build_samples():
    return [
        Const(42),
        Const(7, width=8),
        Var("rdi0"),
        Var("idx", width=32),
        RegRef("rax"),
        FlagRef("zf"),
        Deref(Var("rsp0"), 8),
        App("add", (Var("rdi0"), Const(8))),
        App("zext", (Var("idx", width=32),), 64),
    ]


def rebuild(expr):
    """Reconstruct *expr* bottom-up through the public constructors."""
    if isinstance(expr, Const):
        return Const(expr.value, expr.width)
    if isinstance(expr, Var):
        return Var(expr.name, expr.width)
    if isinstance(expr, RegRef):
        return RegRef(expr.name, expr.width)
    if isinstance(expr, FlagRef):
        return FlagRef(expr.name, expr.width)
    if isinstance(expr, Deref):
        return Deref(rebuild(expr.addr), expr.size)
    return App(expr.op, tuple(rebuild(a) for a in expr.args), expr.width)


def test_equal_implies_identical():
    for expr in build_samples():
        twin = rebuild(expr)
        assert twin == expr
        assert twin is expr, f"{expr!r} not interned"
        assert hash(twin) == hash(expr)


def test_distinct_nodes_are_distinct():
    assert Const(1) is not Const(1, width=32)
    assert Var("a") != Var("b")
    assert App("add", (Var("a"), Var("b"))) != App("sub", (Var("a"), Var("b")))
    # Same name, different node class: never equal, never the same object.
    assert Var("rax") != RegRef("rax")


def test_const_normalizes_modulo_width():
    assert Const(-1) is Const(MASK64)
    assert Const(256, width=8) is Const(0, width=8)
    assert Const(-1, width=8).value == 0xFF


def test_pickle_reinterns():
    for expr in build_samples():
        clone = pickle.loads(pickle.dumps(expr))
        assert clone is expr

    # Deep structure round-trips to the identical interned graph.
    deep = App("add", (Deref(App("add", (Var("rsp0"), Const(-16))), 8),
                       Const(1)))
    assert pickle.loads(pickle.dumps(deep)) is deep


def test_nodes_are_immutable():
    v = Var("frozen")
    with pytest.raises(AttributeError):
        v.name = "thawed"
    with pytest.raises(AttributeError):
        del v.name


def test_equality_survives_cache_reset():
    from repro.perf import reset_caches

    old = App("add", (Var("reset_probe"), Const(3)))
    reset_caches()
    new = App("add", (Var("reset_probe"), Const(3)))
    # Different objects (the table was dropped) but still equal, with
    # equal hashes — the structural fallback in __eq__.
    assert new is not old
    assert new == old and hash(new) == hash(old)
    assert len({new, old}) == 1
    reset_caches()


def test_unreferenced_nodes_are_reclaimed():
    name = "interning_gc_probe_unique"
    Var(name)
    gc.collect()
    sizes = intern_table_sizes()
    # The weak-value table must not have kept the dead node alive.
    assert all(
        key != (name, 64) for key in Var._interned.keys()
    ), "dead node still interned"
    assert sizes["Var"] == len(Var._interned)


def test_no_cross_process_hash_assumption():
    """The pickle payload must carry constructor arguments, not hashes."""
    expr = App("add", (Var("h"), Const(5)))
    fn, argv = expr.__reduce__()
    assert fn is App
    flat = repr(argv)
    assert str(expr._hash) not in flat
