"""Evaluation harness: regenerates every table and figure of Section 5."""

from repro.eval.figure3 import Figure3Data, figure3_data, generate_figure3, pearson
from repro.eval.failures_report import generate_failures_report
from repro.eval.runner import CorpusReport, DirectoryRow, FunctionRecord, run_corpus
from repro.eval.table1 import format_table1, generate_table1
from repro.eval.scaling import ScalePoint, format_scaling, run_scaling
from repro.eval.table2 import Table2Row, format_table2, generate_table2

__all__ = [
    "Figure3Data", "figure3_data", "generate_figure3", "pearson",
    "generate_failures_report",
    "CorpusReport", "DirectoryRow", "FunctionRecord", "run_corpus",
    "format_table1", "generate_table1",
    "Table2Row", "format_table2", "generate_table2",
    "ScalePoint", "format_scaling", "run_scaling",
]
