"""Relational clauses ``E □ C`` (Section 3.1).

A clause relates a symbolic expression to another; the lifter produces them
from branch conditions (``ja`` not-taken after ``cmp eax, 0xc3`` yields
``eax0 ≤ 0xc3``).  Clauses whose right-hand side is a constant feed the
solver's interval reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.expr import Const, EvalEnv, Expr, evaluate, mask, to_signed
from repro.perf import register_lru
from repro.smt.intervals import Interval, TOP, from_width

#: Relations, paper Section 3.1: {=, ≠, <, <s, ≥, ≥s} plus their closures.
OPS = ("eq", "ne", "ltu", "leu", "gtu", "geu", "lts", "les", "gts", "ges")

_NEGATION = {
    "eq": "ne", "ne": "eq",
    "ltu": "geu", "geu": "ltu", "leu": "gtu", "gtu": "leu",
    "lts": "ges", "ges": "lts", "les": "gts", "gts": "les",
}

_FLIP = {  # a OP b  <=>  b FLIP[OP] a
    "eq": "eq", "ne": "ne",
    "ltu": "gtu", "gtu": "ltu", "leu": "geu", "geu": "leu",
    "lts": "gts", "gts": "lts", "les": "ges", "ges": "les",
}


@dataclass(frozen=True)
class Clause:
    """``lhs op rhs``, both constant expressions, compared at ``width`` bits."""

    lhs: Expr
    op: str
    rhs: Expr
    width: int = 64

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown clause relation: {self.op}")

    def negated(self) -> "Clause":
        return Clause(self.lhs, _NEGATION[self.op], self.rhs, self.width)

    def flipped(self) -> "Clause":
        """The same fact with operands swapped."""
        return Clause(self.rhs, _FLIP[self.op], self.lhs, self.width)

    def normalized(self) -> "Clause":
        """Keep the non-constant side on the left when possible."""
        if isinstance(self.lhs, Const) and not isinstance(self.rhs, Const):
            return self.flipped()
        return self

    def holds(self, env: EvalEnv) -> bool:
        """Evaluate the clause in a concrete environment (``s ⊢ clause``)."""
        left = evaluate(self.lhs, env) & mask(self.width)
        right = evaluate(self.rhs, env) & mask(self.width)
        sl, sr = to_signed(left, self.width), to_signed(right, self.width)
        table = {
            "eq": left == right, "ne": left != right,
            "ltu": left < right, "leu": left <= right,
            "gtu": left > right, "geu": left >= right,
            "lts": sl < sr, "les": sl <= sr,
            "gts": sl > sr, "ges": sl >= sr,
        }
        return table[self.op]

    def __str__(self) -> str:
        symbol = {
            "eq": "==", "ne": "!=", "ltu": "<u", "leu": "<=u", "gtu": ">u",
            "geu": ">=u", "lts": "<s", "les": "<=s", "gts": ">s", "ges": ">=s",
        }[self.op]
        return f"{self.lhs} {symbol} {self.rhs}"


def clause_interval(clause: Clause, term: Expr) -> Interval | None:
    """The unsigned interval *clause* imposes on *term*, or None.

    Only unsigned relations against constants are translated; signed
    relations against non-negative constants give the obvious sound bound.
    """
    normalized = clause.normalized()
    if normalized.lhs != term or not isinstance(normalized.rhs, Const):
        return None
    bound = normalized.rhs.value & mask(normalized.width)
    top = from_width(normalized.width)
    half = 1 << (normalized.width - 1)
    op = normalized.op
    if op == "eq":
        return Interval(bound, bound)
    if op == "ltu":
        return Interval(0, bound - 1) if bound else None
    if op == "leu":
        return Interval(0, bound)
    if op == "gtu":
        return Interval(bound + 1, top.hi) if bound < top.hi else None
    if op == "geu":
        return Interval(bound, top.hi)
    if op == "ges" and bound < half:
        # x >=s c with c >= 0: the sign bit is clear, so unsigned
        # x in [c, half-1].
        return Interval(bound, half - 1)
    if op == "gts" and bound + 1 < half:
        return Interval(bound + 1, half - 1)
    return None


def _signed_upper(clause: Clause, term: Expr) -> int | None:
    """The inclusive upper bound from ``x <s c`` / ``x <=s c`` with c >= 0.

    Only sound once the term is known non-negative (handled by the caller's
    second pass)."""
    normalized = clause.normalized()
    if normalized.lhs != term or not isinstance(normalized.rhs, Const):
        return None
    bound = normalized.rhs.value & mask(normalized.width)
    half = 1 << (normalized.width - 1)
    if bound >= half:
        return None
    if normalized.op == "lts":
        return bound - 1 if bound else None
    if normalized.op == "les":
        return bound
    return None


def intersect_intervals(term: Expr, clauses) -> Interval:
    """Intersect every interval the clauses impose on *term*.

    Memoized on ``(term, clauses)``: clause sets are long-lived frozensets
    whose hashes are cached, and the same term is bounded against the same
    predicate's clauses thousands of times per join fixpoint."""
    if type(clauses) is not frozenset:
        clauses = frozenset(clauses)
    return _intersect_cached(term, clauses)


@lru_cache(maxsize=1 << 16)
def _intersect_cached(term: Expr, clauses: frozenset) -> Interval:
    """Two passes: unsigned (and sign-bit-clearing) bounds first, then signed
    upper bounds, which become plain unsigned bounds once the first pass
    has pinned the term below the sign bit."""
    result = from_width(term.width)
    for clause in clauses:
        bound = clause_interval(clause, term)
        if bound is not None:
            clipped = result.intersect(bound)
            if clipped is None:
                return result  # contradictory bounds; stay conservative
            result = clipped
    half = 1 << (term.width - 1)
    if result.hi < half:
        for clause in clauses:
            upper = _signed_upper(clause, term)
            if upper is not None:
                clipped = result.intersect(Interval(0, upper))
                if clipped is not None:
                    result = clipped
    return result


register_lru("pred.intervals", _intersect_cached)
